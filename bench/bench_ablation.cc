// Ablation studies for the design choices called out in DESIGN.md §5:
//   A. prefix-filter similarity join vs nested loop (index build),
//   B. paper bounds (Algorithm 1) vs tight two-sided bounds,
//   C. schema voting on vs off,
//   D. HERA vs the attribute-agnostic token-blocking baseline
//      (the related-work alternative for heterogeneous ER).
// Run on D_m1 (1000 records) at xi = delta = 0.5.

#include <cstdio>

#include "bench_util.h"
#include "blocking/token_blocking.h"
#include "common/timer.h"
#include "data/benchmark_datasets.h"
#include "sim/metrics.h"

using namespace hera;

namespace {

void Report(const char* label, const bench::HeraRun& run) {
  const HeraStats& st = run.result.stats;
  std::printf("%-28s F1=%.3f P=%.3f R=%.3f | cmps=%-5zu direct=%-5zu "
              "pruned=%-6zu k=%-3zu votes=%-3zu | build=%6.1fms total=%7.1fms\n",
              label, run.metrics.f1, run.metrics.precision, run.metrics.recall,
              st.comparisons, st.direct_merges, st.pruned_by_bound,
              st.iterations, st.decided_schema_matchings, st.index_build_ms,
              st.total_ms);
}

bench::HeraRun RunWith(const Dataset& ds, HeraOptions opts) {
  auto result = Hera(opts).Run(ds);
  if (!result.ok()) {
    std::fprintf(stderr, "HERA failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  bench::HeraRun run;
  run.metrics = EvaluatePairs(result->entity_of, ds.entity_of());
  run.result = std::move(result).value();
  return run;
}

}  // namespace

int main() {
  Dataset ds = BuildBenchmarkDataset(BenchmarkDataset::kDm1);
  std::printf("Ablations on D_m1 (n=%zu, xi=0.5, delta=0.5)\n", ds.size());
  bench::PrintRule(100);

  HeraOptions base;
  base.xi = 0.5;
  base.delta = 0.5;

  // A. Join strategy for index construction.
  {
    HeraOptions opts = base;
    Report("A1 prefix-filter join", RunWith(ds, opts));
    opts.use_prefix_filter_join = false;
    Report("A2 nested-loop join", RunWith(ds, opts));
  }
  bench::PrintRule(100);

  // B. Bound mode.
  {
    HeraOptions opts = base;
    opts.tight_bounds = false;
    Report("B1 paper bounds (Alg. 1)", RunWith(ds, opts));
    opts.tight_bounds = true;
    Report("B2 tight two-sided bounds", RunWith(ds, opts));
  }
  bench::PrintRule(100);

  // C. Schema-based method.
  {
    HeraOptions opts = base;
    opts.enable_schema_voting = true;
    Report("C1 schema voting on", RunWith(ds, opts));
    opts.enable_schema_voting = false;
    Report("C2 schema voting off", RunWith(ds, opts));
  }
  bench::PrintRule(100);

  // D. Attribute-agnostic token blocking baseline (Papadakis-style).
  {
    auto metric = MakeSimilarity("jaccard_q2");
    Timer timer;
    auto blocks = BuildBlocks(ds);
    size_t purged = PurgeBlocks(&blocks, ds.size());
    auto candidates = CandidatePairsFromBlocks(blocks);
    BlockingQuality bq = EvaluateBlocking(candidates, ds.entity_of());
    std::printf("D  token blocking: %zu blocks (%zu purged), %zu candidates, "
                "completeness=%.3f, reduction=%.3f\n",
                blocks.size(), purged, bq.num_candidates, bq.pair_completeness,
                bq.reduction_ratio);
    auto labels = TokenBlockingER(ds, *metric, {});
    PairMetrics m = EvaluatePairs(labels, ds.entity_of());
    std::printf("%-28s F1=%.3f P=%.3f R=%.3f | total=%7.1fms\n",
                "D  token-blocking ER", m.f1, m.precision, m.recall,
                timer.ElapsedMillis());
    std::printf("   (quality can rival HERA on data with high inter-source "
                "attribute overlap, but it\n    verifies every co-blocked "
                "pair pairwise: ~100x HERA's online cost here, no merge\n"
                "    evidence accumulation, and no similarity bounds — see "
                "bench_blocking)\n");
  }
  bench::PrintRule(100);
  return 0;
}
