// Candidate-generation comparison: HERA's index-based candidates vs
// the two schema-agnostic blocking methods (token blocking, sorted
// neighborhood) on D_m1 — pair completeness, reduction ratio, and
// build time. Context for the paper's related-work discussion of [1]:
// blocking alone bounds recall; HERA's index gives candidates *and*
// the similarity evidence to verify them.

#include <cstdio>
#include <set>

#include "bench_util.h"
#include "blocking/sorted_neighborhood.h"
#include "blocking/token_blocking.h"
#include "common/timer.h"
#include "data/benchmark_datasets.h"
#include "sim/metrics.h"

using namespace hera;

namespace {

void Report(const char* label, double ms,
            const std::vector<std::pair<uint32_t, uint32_t>>& candidates,
            const std::vector<uint32_t>& truth) {
  BlockingQuality q = EvaluateBlocking(candidates, truth);
  std::printf("%-24s %10zu cands  completeness=%.3f  reduction=%.3f  %8.1f ms\n",
              label, q.num_candidates, q.pair_completeness, q.reduction_ratio,
              ms);
}

}  // namespace

int main() {
  Dataset ds = BuildBenchmarkDataset(BenchmarkDataset::kDm1);
  const std::vector<uint32_t>& truth = ds.entity_of();
  std::printf("Candidate generation on D_m1 (n=%zu, %zu entities)\n", ds.size(),
              ds.NumEntities());
  bench::PrintRule(92);

  {
    Timer t;
    auto blocks = BuildBlocks(ds);
    PurgeBlocks(&blocks, ds.size());
    auto candidates = CandidatePairsFromBlocks(blocks);
    Report("token blocking", t.ElapsedMillis(), candidates, truth);
  }
  {
    Timer t;
    SortedNeighborhoodOptions opts;
    opts.window = 10;
    opts.passes = 2;
    auto candidates = SortedNeighborhoodPairs(ds, opts);
    Report("sorted neighborhood w=10", t.ElapsedMillis(), candidates, truth);
  }
  {
    Timer t;
    SortedNeighborhoodOptions opts;
    opts.window = 30;
    opts.passes = 3;
    auto candidates = SortedNeighborhoodPairs(ds, opts);
    Report("sorted neighborhood w=30", t.ElapsedMillis(), candidates, truth);
  }
  {
    // HERA's candidates: record pairs sharing >= 1 indexed value pair.
    Timer t;
    HeraOptions opts;
    opts.xi = 0.5;
    auto pairs = ComputeSimilarValuePairs(ds, opts);
    std::set<std::pair<uint32_t, uint32_t>> uniq;
    for (const ValuePair& p : *pairs) {
      uint32_t a = p.a.rid, b = p.b.rid;
      uniq.emplace(std::min(a, b), std::max(a, b));
    }
    std::vector<std::pair<uint32_t, uint32_t>> candidates(uniq.begin(),
                                                          uniq.end());
    Report("HERA value-pair index", t.ElapsedMillis(), candidates, truth);
  }
  bench::PrintRule(92);
  std::printf("(completeness bounds the recall any downstream matcher can "
              "reach; HERA additionally\nrefines its candidates with "
              "similarity bounds before any verification)\n");
  return 0;
}
