// Reproduces Fig 10(a): number of comparisons performed by HERA as
// delta varies.
//
// Shape expectation: comparisons decline as delta rises (a higher
// threshold shrinks the candidate set via the Up < delta prune).

#include <cstdio>

#include "bench_util.h"

using namespace hera;

int main() {
  const double deltas[] = {0.2, 0.4, 0.5, 0.6, 0.8, 1.0};

  std::printf("Fig 10(a): # comparisons vs delta (xi=0.5)\n");
  bench::PrintRule();
  std::printf("%-8s", "dataset");
  for (double d : deltas) std::printf("%10s%.1f", "d=", d);
  std::printf("\n");
  for (auto which : AllBenchmarkDatasets()) {
    Dataset ds = BuildBenchmarkDataset(which);
    auto pairs = bench::JoinOnce(ds, 0.5);
    std::printf("%-8s", SpecFor(which).name.c_str());
    for (double delta : deltas) {
      bench::HeraRun run = bench::RunHeraWithPairs(ds, pairs, 0.5, delta);
      std::printf("%12zu", run.result.stats.comparisons);
    }
    std::printf("\n");
  }
  bench::PrintRule();
  std::printf("(also reporting bound-pruned groups and direct merges at "
              "delta=0.5)\n");
  for (auto which : AllBenchmarkDatasets()) {
    Dataset ds = BuildBenchmarkDataset(which);
    bench::HeraRun run = bench::RunHera(ds, 0.5, 0.5);
    std::printf("%-8s pruned=%zu direct=%zu candidates=%zu\n",
                SpecFor(which).name.c_str(), run.result.stats.pruned_by_bound,
                run.result.stats.direct_merges, run.result.stats.candidates);
    bench::WriteBenchReport("fig10_" + SpecFor(which).name, run.result.report);
  }
  return 0;
}
