// Reproduces Fig 11(a-c): HERA vs R-Swoosh vs CR (collective ER) vs CC
// (correlation clustering) on the homogeneous projections
// D_m1-S..D_m4-S, in precision / recall / F1.
//
// HERA runs on the original heterogeneous records (the paper's
// framework, Fig 1-(d)); the baselines run on the lossy `-S`
// projection (Fig 1-(c)). Both are scored against the same ground
// truth. Each method is reported at its best-F1 record threshold from
// a small delta sweep (the original paper does not publish per-method
// thresholds; best-threshold comparison is the standard fair policy,
// and the min-normalized similarity makes methods sharply
// threshold-sensitive on sparse projections).
//
// Shape expectations from the paper: HERA best on all three measures
// on every dataset (avg precision > 0.9, beats R-Swoosh by ~6%, CR by
// ~10-12%, CC by ~13-16%); R-Swoosh is the closest competitor; CC/CR
// have the weakest recall; HERA is least sensitive to dataset size.
//
// Pass --large to run on the D_m*-L projections instead (2/3 of the
// distinct attributes) — the experiment the paper defers to its
// technical report. With less information loss the baselines close
// part of the gap.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/collective_er.h"
#include "baselines/correlation_clustering.h"
#include "baselines/rswoosh.h"
#include "bench_util.h"
#include "data/data_exchange.h"
#include "sim/metrics.h"

using namespace hera;

namespace {

const double kDeltas[] = {0.4, 0.5, 0.6, 0.7, 0.8};

PairMetrics BestOf(const std::vector<PairMetrics>& candidates) {
  PairMetrics best;
  for (const PairMetrics& m : candidates) {
    if (m.f1 > best.f1) best = m;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = !(argc > 1 && std::string(argv[1]) == "--large");
  const char* suffix = small ? "-S" : "-L";
  auto metric = MakeSimilarity("jaccard_q2");
  const double xi = 0.5;

  struct Row {
    const char* algo;
    PairMetrics m[4];
  };
  std::vector<Row> rows = {{"HERA", {}},
                           {"R-Swoosh", {}},
                           {"CR", {}},
                           {"CC", {}}};

  int d = 0;
  for (auto which : AllBenchmarkDatasets()) {
    std::fprintf(stderr, "running %s...\n", SpecFor(which).name.c_str());
    Dataset heterogeneous = BuildBenchmarkDataset(which);
    ExchangeResult projected = BuildHomogeneousProjection(which, small);
    const Dataset& homogeneous = projected.dataset;
    const std::vector<uint32_t>& truth = heterogeneous.entity_of();

    auto hetero_pairs = bench::JoinOnce(heterogeneous, xi);
    std::vector<PairMetrics> hera_runs, rs_runs, cr_runs, cc_runs;
    for (double delta : kDeltas) {
      hera_runs.push_back(
          bench::RunHeraWithPairs(heterogeneous, hetero_pairs, xi, delta)
              .metrics);
      rs_runs.push_back(
          EvaluatePairs(RSwoosh(homogeneous, *metric, {xi, delta}), truth));
      cr_runs.push_back(EvaluatePairs(
          CollectiveER(homogeneous, *metric, {xi, delta, 0.3}), truth));
      cc_runs.push_back(EvaluatePairs(
          CorrelationClustering(homogeneous, *metric, {xi, delta, 42}), truth));
    }
    rows[0].m[d] = BestOf(hera_runs);
    rows[1].m[d] = BestOf(rs_runs);
    rows[2].m[d] = BestOf(cr_runs);
    rows[3].m[d] = BestOf(cc_runs);
    ++d;
  }

  for (const char* measure : {"precision", "recall", "F1"}) {
    std::printf("Fig 11 %s on D_m*%s (xi=%.1f, each method at its "
                "best-F1 delta)\n",
                measure, suffix, xi);
    bench::PrintRule();
    std::printf("%-10s", "algorithm");
    for (auto which : AllBenchmarkDatasets()) {
      std::printf("%8s%s", SpecFor(which).name.c_str(), suffix);
    }
    std::printf("%10s\n", "avg");
    for (const Row& row : rows) {
      std::printf("%-10s", row.algo);
      double sum = 0.0;
      for (int i = 0; i < 4; ++i) {
        double v = measure[0] == 'p'   ? row.m[i].precision
                   : measure[0] == 'r' ? row.m[i].recall
                                       : row.m[i].f1;
        sum += v;
        std::printf("%11.3f", v);
      }
      std::printf("%10.3f\n", sum / 4.0);
    }
    bench::PrintRule();
    std::printf("\n");
  }
  return 0;
}
