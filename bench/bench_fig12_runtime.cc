// Reproduces Fig 12(a): HERA execution time vs delta per dataset.
//
// Shape expectations: larger datasets take longer; runtime falls as
// delta rises, with the per-dataset spread narrowing at high delta
// (the paper reports ~100 ms at delta = 0.8 on all datasets on their
// hardware; absolute numbers differ here).

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"

using namespace hera;

int main() {
  const double deltas[] = {0.2, 0.4, 0.5, 0.6, 0.8, 1.0};

  std::printf("Fig 12(a): execution time (ms) vs delta (xi=0.5)\n");
  std::printf("(resolution time; the offline index build is excluded, as in "
              "the paper, and\nreported separately below)\n");
  bench::PrintRule();
  std::printf("%-8s", "dataset");
  for (double d : deltas) std::printf("   d=%.1f", d);
  std::printf("\n");
  for (auto which : AllBenchmarkDatasets()) {
    Dataset ds = BuildBenchmarkDataset(which);
    auto pairs = bench::JoinOnce(ds, 0.5);
    std::printf("%-8s", SpecFor(which).name.c_str());
    for (double delta : deltas) {
      // Best of 3 runs to damp noise.
      double best = 1e18;
      for (int rep = 0; rep < 3; ++rep) {
        bench::HeraRun run = bench::RunHeraWithPairs(ds, pairs, 0.5, delta);
        best = std::min(best, run.result.stats.total_ms);
      }
      std::printf(" %7.1f", best);
    }
    std::printf("\n");
  }
  bench::PrintRule();
  std::printf("index build time at delta=0.5 for reference:\n");
  for (auto which : AllBenchmarkDatasets()) {
    Dataset ds = BuildBenchmarkDataset(which);
    bench::HeraRun run = bench::RunHera(ds, 0.5, 0.5);
    std::printf("%-8s build=%.1f ms total=%.1f ms\n",
                SpecFor(which).name.c_str(), run.result.stats.index_build_ms,
                run.result.stats.total_ms);
    bench::WriteBenchReport("fig12_" + SpecFor(which).name, run.result.report);
  }
  return 0;
}
