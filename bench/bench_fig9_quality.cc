// Reproduces Fig 9(a-c): precision, recall, and F1 of HERA as the
// record similarity threshold delta varies, on the four heterogeneous
// datasets (xi fixed at 0.5).
//
// Shape expectations from the paper: precision rises with delta and
// declines mildly with dataset size; recall was reported higher at
// high delta on their data (their recall "climbs dramatically as
// delta increases" — an artifact of merged-evidence growth); F1 peaks
// mid-range; larger datasets score slightly lower.

#include <cstdio>

#include "bench_util.h"

using namespace hera;

int main() {
  const double deltas[] = {0.2, 0.4, 0.5, 0.6, 0.8, 1.0};

  for (const char* metric_name : {"precision", "recall", "F1"}) {
    std::printf("Fig 9 %s vs delta (xi=0.5)\n", metric_name);
    bench::PrintRule();
    std::printf("%-8s", "dataset");
    for (double d : deltas) std::printf("  d=%.1f", d);
    std::printf("\n");
    for (auto which : AllBenchmarkDatasets()) {
      Dataset ds = BuildBenchmarkDataset(which);
      auto pairs = bench::JoinOnce(ds, 0.5);
      std::printf("%-8s", SpecFor(which).name.c_str());
      for (double delta : deltas) {
        bench::HeraRun run = bench::RunHeraWithPairs(ds, pairs, 0.5, delta);
        double v = metric_name[0] == 'p'   ? run.metrics.precision
                   : metric_name[0] == 'r' ? run.metrics.recall
                                           : run.metrics.f1;
        std::printf("  %5.3f", v);
      }
      std::printf("\n");
    }
    bench::PrintRule();
    std::printf("\n");
  }
  return 0;
}
