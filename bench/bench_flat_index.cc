// Micro-benchmark for the flat index backend (index/flat_table.h): the
// candidate-generation probe storm measured as ns/probe against the
// ordered/node-based containers the backend replaces, a prefetch
// pipeline-depth sweep, and an end-to-end prefix-filter join at both
// backends.
//
// Plain executable (no google-benchmark dependency) so it can run in
// the CI bench-smoke job. With HERA_BENCH_JSON_DIR set it writes
// BENCH_flat_index.json; the committed baseline lives at
// bench/baselines/BENCH_flat_index.json and tools/bench_compare.py
// gates candgen.batched_speedup against it.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/file_util.h"
#include "core/hera.h"
#include "data/movie_generator.h"
#include "index/flat_table.h"
#include "obs/json.h"

namespace hera {
namespace bench {
namespace {

volatile uint64_t g_sink = 0;  // Defeats dead-code elimination.

/// Best-of-repeats wall time for one full sweep of `fn`, divided by
/// `ops` — ns per operation at steady state.
template <typename Fn>
double NsPerOpSweep(size_t ops, int reps, const Fn& fn) {
  double best = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    uint64_t acc = fn();
    auto t1 = std::chrono::steady_clock::now();
    g_sink = g_sink + acc;
    double ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                static_cast<double>(ops);
    best = std::min(best, ns);
  }
  return best;
}

struct CandgenRow {
  size_t keys = 0;
  size_t probes = 0;
  double ordered_map_ns = 0;    // std::map::find (the replaced path).
  double unordered_map_ns = 0;  // std::unordered_map::find.
  double flat_scalar_ns = 0;    // FlatTable::Find, one key at a time.
  double flat_batched_ns = 0;   // FlatTable::FindBatch, pipelined.
  double batched_speedup = 0;   // ordered_map_ns / flat_batched_ns.
  double speedup_vs_unordered = 0;
};

/// The candidate-generation shape: a large token -> posting-slot table
/// probed in random order, far beyond cache. Keys are splitmix-spread
/// so every probe is a fresh DRAM line — exactly what the prefetch
/// pipeline is for.
CandgenRow RunCandgen() {
  constexpr size_t kKeys = 1u << 20;  // ~1M entries.
  constexpr size_t kBatch = 256;
  std::mt19937_64 rng(42);

  std::vector<uint64_t> keys(kKeys);
  for (size_t i = 0; i < kKeys; ++i) keys[i] = rng() | 1u;

  std::map<uint64_t, uint64_t> ordered;
  std::unordered_map<uint64_t, uint64_t> unordered;
  FlatTable flat(kKeys);
  for (size_t i = 0; i < kKeys; ++i) {
    ordered.emplace(keys[i], i);
    unordered.emplace(keys[i], i);
    *flat.FindOrInsert(keys[i], 0) = i;
  }

  // Probe stream: the inserted keys, reshuffled (all hits — candidate
  // generation probes tokens that exist), random order so neither the
  // tree nor the table sees locality.
  std::vector<uint64_t> probes = keys;
  std::shuffle(probes.begin(), probes.end(), rng);

  CandgenRow row;
  row.keys = kKeys;
  row.probes = probes.size();
  row.ordered_map_ns = NsPerOpSweep(probes.size(), 3, [&] {
    uint64_t acc = 0;
    for (uint64_t k : probes) acc += ordered.find(k)->second;
    return acc;
  });
  row.unordered_map_ns = NsPerOpSweep(probes.size(), 3, [&] {
    uint64_t acc = 0;
    for (uint64_t k : probes) acc += unordered.find(k)->second;
    return acc;
  });
  const FlatTable& cflat = flat;
  row.flat_scalar_ns = NsPerOpSweep(probes.size(), 3, [&] {
    uint64_t acc = 0;
    for (uint64_t k : probes) acc += *cflat.Find(k);
    return acc;
  });
  std::vector<const uint64_t*> out(kBatch);
  row.flat_batched_ns = NsPerOpSweep(probes.size(), 3, [&] {
    uint64_t acc = 0;
    for (size_t at = 0; at < probes.size(); at += kBatch) {
      size_t n = std::min(kBatch, probes.size() - at);
      cflat.FindBatch({probes.data() + at, n}, {out.data(), n});
      for (size_t i = 0; i < n; ++i) acc += *out[i];
    }
    return acc;
  });
  row.batched_speedup = row.ordered_map_ns / row.flat_batched_ns;
  row.speedup_vs_unordered = row.unordered_map_ns / row.flat_batched_ns;

  std::printf("candidate-generation probe storm (%zu keys, %zu probes)\n",
              row.keys, row.probes);
  PrintRule(52);
  std::printf("%-28s %12.1f ns/probe\n", "std::map (ordered)", row.ordered_map_ns);
  std::printf("%-28s %12.1f ns/probe\n", "std::unordered_map", row.unordered_map_ns);
  std::printf("%-28s %12.1f ns/probe\n", "flat scalar", row.flat_scalar_ns);
  std::printf("%-28s %12.1f ns/probe\n", "flat batched (depth 8)",
              row.flat_batched_ns);
  std::printf("%-28s %11.2fx (%.2fx vs unordered_map)\n", "batched speedup",
              row.batched_speedup, row.speedup_vs_unordered);
  return row;
}

struct DepthRow {
  size_t depth = 0;
  double ns_per_probe = 0;
};

std::vector<DepthRow> RunDepthSweep() {
  constexpr size_t kKeys = 1u << 20;
  constexpr size_t kBatch = 256;
  std::mt19937_64 rng(43);
  std::vector<uint64_t> keys(kKeys);
  for (size_t i = 0; i < kKeys; ++i) keys[i] = rng() | 1u;
  std::vector<uint64_t> probes = keys;
  std::shuffle(probes.begin(), probes.end(), rng);

  std::vector<DepthRow> rows;
  std::printf("\nprefetch pipeline depth sweep (batched probes)\n");
  PrintRule(52);
  for (size_t depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
    FlatTable flat(kKeys, depth);
    for (size_t i = 0; i < kKeys; ++i) *flat.FindOrInsert(keys[i], 0) = i;
    const FlatTable& cflat = flat;
    std::vector<const uint64_t*> out(kBatch);
    double ns = NsPerOpSweep(probes.size(), 3, [&] {
      uint64_t acc = 0;
      for (size_t at = 0; at < probes.size(); at += kBatch) {
        size_t n = std::min(kBatch, probes.size() - at);
        cflat.FindBatch({probes.data() + at, n}, {out.data(), n});
        for (size_t i = 0; i < n; ++i) acc += *out[i];
      }
      return acc;
    });
    rows.push_back({depth, ns});
    std::printf("depth %-22zu %12.1f ns/probe\n", depth, ns);
  }
  return rows;
}

struct JoinRow {
  size_t records = 0;
  size_t pairs = 0;
  double ordered_ms = 0;
  double flat_ms = 0;
  double speedup = 0;
};

/// End-to-end prefix-filter self-join, ordered vs flat backend. Same
/// pair list both ways (asserted) — the backends differ in probe cost
/// only.
JoinRow RunJoin() {
  MovieGeneratorConfig config;
  config.num_records = 1500;
  config.num_entities = 250;
  config.seed = 11;
  Dataset ds = GenerateMovieDataset(config);

  auto run = [&](IndexBackend backend) {
    HeraOptions opts;
    opts.index_backend = backend;
    opts.num_threads = BenchThreads();
    double best = 1e30;
    std::vector<ValuePair> pairs;
    for (int rep = 0; rep < 3; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      auto result = ComputeSimilarValuePairs(ds, opts);
      auto t1 = std::chrono::steady_clock::now();
      if (!result.ok()) {
        std::fprintf(stderr, "join failed: %s\n",
                     result.status().ToString().c_str());
        std::abort();
      }
      pairs = std::move(result).value();
      best = std::min(
          best, std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    return std::make_pair(best, pairs.size());
  };
  auto [ordered_ms, ordered_pairs] = run(IndexBackend::kOrdered);
  auto [flat_ms, flat_pairs] = run(IndexBackend::kFlat);
  if (ordered_pairs != flat_pairs) {
    std::fprintf(stderr, "backend pair counts diverge: %zu vs %zu\n",
                 ordered_pairs, flat_pairs);
    std::abort();
  }

  JoinRow row;
  row.records = config.num_records;
  row.pairs = ordered_pairs;
  row.ordered_ms = ordered_ms;
  row.flat_ms = flat_ms;
  row.speedup = ordered_ms / flat_ms;
  std::printf("\nend-to-end prefix-filter join (%zu records, %zu pairs)\n",
              row.records, row.pairs);
  PrintRule(52);
  std::printf("%-28s %12.1f ms\n", "ordered backend", row.ordered_ms);
  std::printf("%-28s %12.1f ms\n", "flat backend", row.flat_ms);
  std::printf("%-28s %11.2fx\n", "join speedup", row.speedup);
  return row;
}

void WriteJson(const CandgenRow& candgen, const std::vector<DepthRow>& depths,
               const JoinRow& join) {
  const char* dir = BenchJsonDir();
  if (dir == nullptr) return;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("flat_index");
  w.Key("candgen").BeginObject();
  w.Key("keys").UInt(candgen.keys);
  w.Key("probes").UInt(candgen.probes);
  w.Key("ordered_map_ns").Number(candgen.ordered_map_ns);
  w.Key("unordered_map_ns").Number(candgen.unordered_map_ns);
  w.Key("flat_scalar_ns").Number(candgen.flat_scalar_ns);
  w.Key("flat_batched_ns").Number(candgen.flat_batched_ns);
  w.Key("batched_speedup").Number(candgen.batched_speedup);
  w.Key("speedup_vs_unordered").Number(candgen.speedup_vs_unordered);
  w.EndObject();
  w.Key("depth_sweep").BeginArray();
  for (const DepthRow& r : depths) {
    w.BeginObject();
    w.Key("depth").UInt(r.depth);
    w.Key("ns_per_probe").Number(r.ns_per_probe);
    w.EndObject();
  }
  w.EndArray();
  w.Key("join").BeginObject();
  w.Key("records").UInt(join.records);
  w.Key("pairs").UInt(join.pairs);
  w.Key("ordered_ms").Number(join.ordered_ms);
  w.Key("flat_ms").Number(join.flat_ms);
  w.Key("speedup").Number(join.speedup);
  w.EndObject();
  w.EndObject();
  std::string path = std::string(dir) + "/BENCH_flat_index.json";
  Status st = AtomicWriteFile(path, w.str() + "\n");
  if (!st.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 st.ToString().c_str());
  } else {
    std::printf("\nwrote %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace hera

int main() {
  hera::bench::CandgenRow candgen = hera::bench::RunCandgen();
  std::vector<hera::bench::DepthRow> depths = hera::bench::RunDepthSweep();
  hera::bench::JoinRow join = hera::bench::RunJoin();
  hera::bench::WriteJson(candgen, depths, join);
  return 0;
}
