// Micro-benchmark for the integer-encoded similarity kernels
// (sim/kernel.h): intersection strategies across set sizes, skew, and
// id density, an end-to-end verification-phase comparison against the
// string metric path on generated movie data (scalar and SIMD tiers
// measured separately), and the Myers bit-parallel edit distance
// against the row DP across string lengths.
//
// Plain executable (no google-benchmark dependency) so it can run in
// the CI bench-smoke job. With HERA_BENCH_JSON_DIR set it writes
// BENCH_kernel.json with every measured series; the committed baseline
// lives at bench/baselines/BENCH_kernel.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/file_util.h"
#include "data/movie_generator.h"
#include "obs/json.h"
#include "record/super_record.h"
#include "sim/kernel.h"
#include "sim/kernel_dispatch.h"
#include "sim/metrics.h"
#include "sim/string_metrics.h"
#include "text/normalize.h"
#include "text/qgram.h"

namespace hera {
namespace bench {
namespace {

volatile uint64_t g_sink = 0;  // Defeats dead-code elimination.

/// Median-of-repeats wall time per call, in nanoseconds.
template <typename Fn>
double NsPerOp(size_t iters, const Fn& fn) {
  double best = 1e30;
  for (int rep = 0; rep < 5; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    uint64_t acc = 0;
    for (size_t i = 0; i < iters; ++i) acc += fn(i);
    auto t1 = std::chrono::steady_clock::now();
    g_sink += acc;
    double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(iters);
    best = std::min(best, ns);
  }
  return best;
}

std::vector<uint32_t> MakeSet(std::mt19937* rng, size_t n, uint32_t universe) {
  std::uniform_int_distribution<uint32_t> dist(0, universe - 1);
  std::vector<uint32_t> v;
  v.reserve(n * 2);
  while (v.size() < n) {
    v.push_back(dist(*rng));
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  v.resize(n);
  return v;
}

/// Decimal renderings of the ids, sorted — a stand-in gram set for the
/// string-path comparison (same cardinalities, string comparisons).
std::vector<std::string> AsStringSet(const std::vector<uint32_t>& ids) {
  std::vector<std::string> s;
  s.reserve(ids.size());
  for (uint32_t id : ids) s.push_back(std::to_string(id));
  std::sort(s.begin(), s.end());
  return s;
}

struct SyntheticRow {
  size_t na, nb;
  const char* shape;
  const char* strategy;
  double ns_per_op;
};

void RunSynthetic(std::vector<SyntheticRow>* rows) {
  std::mt19937 rng(1234);
  struct Shape {
    const char* name;
    size_t na, nb;
    uint32_t universe;  // Small universe => dense window => bitmap.
  };
  std::vector<Shape> shapes;
  for (size_t n : {8u, 32u, 128u, 512u, 2048u}) {
    shapes.push_back({"balanced", n, n, static_cast<uint32_t>(8 * n)});
    shapes.push_back({"skew16", n, std::max<size_t>(1, n / 16),
                      static_cast<uint32_t>(8 * n)});
    if (2 * n < kBitmapBits) {
      shapes.push_back({"dense", n, n, static_cast<uint32_t>(2 * n)});
    }
  }
  std::printf("%-9s %6s %6s  %-8s %12s\n", "shape", "na", "nb", "strategy",
              "ns/op");
  PrintRule(48);
  for (const Shape& sh : shapes) {
    // A pool of pairs so the branch predictor sees varied data.
    constexpr size_t kPool = 32;
    std::vector<std::vector<uint32_t>> as, bs;
    std::vector<std::vector<std::string>> sa, sb;
    for (size_t p = 0; p < kPool; ++p) {
      as.push_back(MakeSet(&rng, sh.na, sh.universe));
      bs.push_back(MakeSet(&rng, sh.nb, sh.universe));
      sa.push_back(AsStringSet(as.back()));
      sb.push_back(AsStringSet(bs.back()));
    }
    size_t iters = std::max<size_t>(2000, 2000000 / (sh.na + sh.nb));
    auto add = [&](const char* strategy, double ns) {
      rows->push_back({sh.na, sh.nb, sh.name, strategy, ns});
      std::printf("%-9s %6zu %6zu  %-8s %12.1f\n", sh.name, sh.na, sh.nb,
                  strategy, ns);
    };
    add("strings", NsPerOp(iters / 4 + 1, [&](size_t i) {
          size_t p = i % kPool;
          return OverlapOfSets(sa[p], sb[p]);
        }));
    add("merge", NsPerOp(iters, [&](size_t i) {
          size_t p = i % kPool;
          return IntersectSizeMerge(as[p].data(), as[p].size(), bs[p].data(),
                                    bs[p].size());
        }));
    add("gallop", NsPerOp(iters, [&](size_t i) {
          size_t p = i % kPool;
          return IntersectSizeGallop(bs[p].data(), bs[p].size(), as[p].data(),
                                     as[p].size());
        }));
    if (BitmapEligible(as[0], bs[0])) {
      add("bitmap", NsPerOp(iters, [&](size_t i) {
            size_t p = i % kPool;
            return IntersectSizeBitmap(as[p], bs[p]);
          }));
    }
    // The SIMD tiers on the same shapes; on a CPU without the tier the
    // row aliases a lower one (resolution clamps down).
    add("sse4", NsPerOp(iters, [&](size_t i) {
          size_t p = i % kPool;
          return IntersectSizeSimd(as[p].data(), as[p].size(), bs[p].data(),
                                   bs[p].size(), KernelDispatch::kSse4);
        }));
    add("avx2", NsPerOp(iters, [&](size_t i) {
          size_t p = i % kPool;
          return IntersectSizeSimd(as[p].data(), as[p].size(), bs[p].data(),
                                   bs[p].size(), KernelDispatch::kAvx2);
        }));
    add("auto", NsPerOp(iters, [&](size_t i) {
          size_t p = i % kPool;
          return IntersectSize(as[p], bs[p]);
        }));
  }
}

struct VerifyResultRow {
  size_t pairs = 0;
  double string_ns = 0;        // Cached string metric (TokenCache-backed).
  double string_cold_ns = 0;   // Re-normalize + re-tokenize every call.
  double kernel_ns = 0;        // SetSimilarityBounded on encoded sets.
  double kernel_scalar_ns = 0; // Intersection comparison, scalar tier.
  double kernel_simd_ns = 0;   // Intersection comparison, best SIMD tier.
  double speedup = 0;          // string_ns / kernel_ns.
  double speedup_cold = 0;     // string_cold_ns / kernel_ns.
  double simd_speedup = 0;     // kernel_scalar_ns / kernel_simd_ns.
};

/// The verification workload: candidate value pairs from generated
/// movie records, scored at xi by (a) the string metric, (b) the
/// bounded kernel on dictionary-encoded gram sets.
VerifyResultRow RunVerifyPhase() {
  MovieGeneratorConfig config;
  config.num_records = 400;
  config.num_entities = 80;
  config.seed = 7;
  Dataset ds = GenerateMovieDataset(config);
  std::vector<Value> values;
  for (const Record& r : ds.records()) {
    SuperRecord sr = SuperRecord::FromRecord(r);
    for (uint32_t f = 0; f < sr.num_fields(); ++f) {
      for (uint32_t v = 0; v < sr.field(f).size(); ++v) {
        const Value& val = sr.field(f).value(v).value;
        if (val.is_string()) values.push_back(val);
      }
    }
  }
  const double xi = 0.5;
  auto metric = MakeSimilarity("jaccard_q2");
  QgramDictionary dict(2);
  for (const Value& v : values) dict.Add(Normalize(v.AsString()));
  dict.Freeze();
  std::vector<std::vector<uint32_t>> ids;
  ids.reserve(values.size());
  for (const Value& v : values) ids.push_back(dict.Encode(Normalize(v.AsString())));

  // Candidate pairs: a pseudo-random sample, the same for every path.
  std::mt19937 rng(99);
  std::uniform_int_distribution<size_t> pick(0, values.size() - 1);
  constexpr size_t kPairs = 20000;
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(kPairs);
  for (size_t i = 0; i < kPairs; ++i) pairs.push_back({pick(rng), pick(rng)});

  VerifyResultRow row;
  row.pairs = kPairs;
  // Warm the metric's token cache once so "strings" measures the
  // steady-state cached path (the cold path is measured separately).
  for (const Value& v : values) (void)metric->Compute(v, v);
  row.string_ns = NsPerOp(kPairs, [&](size_t i) {
    const auto& [a, b] = pairs[i % kPairs];
    return static_cast<uint64_t>(
        metric->Compute(values[a], values[b]) >= xi);
  });
  row.string_cold_ns = NsPerOp(kPairs, [&](size_t i) {
    const auto& [a, b] = pairs[i % kPairs];
    return static_cast<uint64_t>(
        JaccardOfSets(QgramSet(Normalize(values[a].AsString()), 2),
                      QgramSet(Normalize(values[b].AsString()), 2)) >= xi);
  });
  row.kernel_ns = NsPerOp(kPairs, [&](size_t i) {
    const auto& [a, b] = pairs[i % kPairs];
    return static_cast<uint64_t>(
        SetSimilarityBounded(SetSimKind::kJaccard, ids[a], ids[b], xi) !=
        kBelowThreshold);
  });
  // Tier comparison on the pairs that reach a real SIMD merge. Two
  // screens: (a) q = 2's ~1.3k-gram universe keeps every id window
  // inside the bitmap kernel, which no tier changes, so the tier rows
  // use q = 3 encodings (50k-gram universe -> wide windows -> the
  // merge shape the SIMD kernels own); (b) merge cost concentrates in
  // the long values (titles, name lists — years and genres take the
  // scalar path on every tier), so pairs draw from values with >= 16
  // grams, each scored against itself and its nearest pool neighbor
  // (high overlap, full-length intersections) rather than random pairs
  // that abandon after a few elements. The cutoff keeps three-plus
  // AVX2 blocks in flight per side.
  QgramDictionary dict3(3);
  for (const Value& v : values) dict3.Add(Normalize(v.AsString()));
  dict3.Freeze();
  std::vector<std::vector<uint32_t>> ids3;
  ids3.reserve(values.size());
  for (const Value& v : values) {
    ids3.push_back(dict3.Encode(Normalize(v.AsString())));
  }
  std::vector<size_t> longs;
  for (size_t i = 0; i < ids3.size(); ++i) {
    if (ids3[i].size() >= 24) longs.push_back(i);
  }
  std::uniform_int_distribution<size_t> pick_long(0, longs.size() - 1);
  std::vector<std::pair<size_t, size_t>> cands;
  cands.reserve(kPairs);
  for (size_t i = 0; i < kPairs; ++i) {
    size_t a = pick_long(rng);
    cands.push_back(
        {longs[a], i % 2 == 0 ? longs[a] : longs[(a + 1) % longs.size()]});
  }
  // The rows measure the intersection comparison itself (the work the
  // tier actually changes); the threshold conversion and shape
  // dispatch around it are tier-independent and already counted in
  // kernel_ns above.
  const KernelDispatch simd_tier = ResolveKernelDispatch(KernelDispatch::kAuto);
  row.kernel_scalar_ns = NsPerOp(kPairs, [&](size_t i) {
    const auto& [a, b] = cands[i % kPairs];
    return IntersectSizeSimd(ids3[a].data(), ids3[a].size(), ids3[b].data(),
                             ids3[b].size(), KernelDispatch::kScalar);
  });
  row.kernel_simd_ns = NsPerOp(kPairs, [&](size_t i) {
    const auto& [a, b] = cands[i % kPairs];
    return IntersectSizeSimd(ids3[a].data(), ids3[a].size(), ids3[b].data(),
                             ids3[b].size(), simd_tier);
  });
  row.speedup = row.string_ns / row.kernel_ns;
  row.speedup_cold = row.string_cold_ns / row.kernel_ns;
  row.simd_speedup = row.kernel_scalar_ns / row.kernel_simd_ns;
  std::printf("\nverification phase (%zu candidate pairs, xi=%.2f)\n",
              row.pairs, xi);
  PrintRule(48);
  std::printf("%-28s %12.1f ns/pair\n", "string metric (cached grams)",
              row.string_ns);
  std::printf("%-28s %12.1f ns/pair\n", "string metric (re-tokenize)",
              row.string_cold_ns);
  std::printf("%-28s %12.1f ns/pair\n", "encoded kernel (bounded)",
              row.kernel_ns);
  std::printf("%-28s %11.2fx (%.2fx vs re-tokenize)\n", "kernel speedup",
              row.speedup, row.speedup_cold);
  std::printf("%-28s %12.1f ns/pair\n", "intersection, scalar tier",
              row.kernel_scalar_ns);
  std::printf("%-28s %12.1f ns/pair (%s)\n", "intersection, simd tier",
              row.kernel_simd_ns, KernelDispatchToString(simd_tier));
  std::printf("%-28s %11.2fx\n", "simd speedup", row.simd_speedup);
  return row;
}

struct MyersRow {
  size_t len = 0;
  double dp_ns = 0;
  double myers_ns = 0;
  double speedup = 0;
};

/// Myers bit-parallel kernel vs the row DP on pools of near-duplicate
/// strings (one substitution apart — representative of verification,
/// and neither pre-filter can shortcut them).
std::vector<MyersRow> RunMyers() {
  std::mt19937 rng(4321);
  std::uniform_int_distribution<int> ch('a', 'z');
  std::vector<MyersRow> rows;
  std::printf("\nedit distance (dp vs myers)\n");
  PrintRule(48);
  std::printf("%6s %12s %12s %10s\n", "len", "dp ns/op", "myers ns/op",
              "speedup");
  for (size_t len : {16u, 64u, 256u}) {
    constexpr size_t kPool = 32;
    std::vector<std::string> as, bs;
    for (size_t p = 0; p < kPool; ++p) {
      std::string s;
      for (size_t i = 0; i < len; ++i) s.push_back(static_cast<char>(ch(rng)));
      as.push_back(s);
      s[rng() % len] = static_cast<char>(ch(rng));
      bs.push_back(s);
    }
    size_t iters = std::max<size_t>(500, 400000 / (len + 1));
    MyersRow row;
    row.len = len;
    row.dp_ns = NsPerOp(iters, [&](size_t i) {
      size_t p = i % kPool;
      return LevenshteinDistanceDp(as[p], bs[p]);
    });
    row.myers_ns = NsPerOp(iters, [&](size_t i) {
      size_t p = i % kPool;
      return LevenshteinDistanceMyers(as[p], bs[p]);
    });
    row.speedup = row.dp_ns / row.myers_ns;
    std::printf("%6zu %12.1f %12.1f %9.2fx\n", row.len, row.dp_ns,
                row.myers_ns, row.speedup);
    rows.push_back(row);
  }
  return rows;
}

void WriteJson(const std::vector<SyntheticRow>& rows,
               const VerifyResultRow& verify,
               const std::vector<MyersRow>& myers) {
  const char* dir = BenchJsonDir();
  if (dir == nullptr) return;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("kernel");
  w.Key("synthetic").BeginArray();
  for (const SyntheticRow& r : rows) {
    w.BeginObject();
    w.Key("shape").String(r.shape);
    w.Key("na").UInt(r.na);
    w.Key("nb").UInt(r.nb);
    w.Key("strategy").String(r.strategy);
    w.Key("ns_per_op").Number(r.ns_per_op);
    w.EndObject();
  }
  w.EndArray();
  w.Key("verify").BeginObject();
  w.Key("pairs").UInt(verify.pairs);
  w.Key("string_ns_per_pair").Number(verify.string_ns);
  w.Key("string_cold_ns_per_pair").Number(verify.string_cold_ns);
  w.Key("kernel_ns_per_pair").Number(verify.kernel_ns);
  w.Key("kernel_scalar_ns_per_pair").Number(verify.kernel_scalar_ns);
  w.Key("kernel_simd_ns_per_pair").Number(verify.kernel_simd_ns);
  w.Key("speedup").Number(verify.speedup);
  w.Key("speedup_cold").Number(verify.speedup_cold);
  w.Key("simd_speedup").Number(verify.simd_speedup);
  w.EndObject();
  w.Key("myers").BeginObject();
  w.Key("dispatch_tier").String(
      KernelDispatchToString(ResolveKernelDispatch(KernelDispatch::kAuto)));
  w.Key("rows").BeginArray();
  for (const MyersRow& r : myers) {
    w.BeginObject();
    w.Key("len").UInt(r.len);
    w.Key("dp_ns_per_op").Number(r.dp_ns);
    w.Key("myers_ns_per_op").Number(r.myers_ns);
    w.Key("speedup").Number(r.speedup);
    w.EndObject();
  }
  w.EndArray();
  for (const MyersRow& r : myers) {
    // Named gauges so the bench gate can track each length directly.
    w.Key(("speedup_" + std::to_string(r.len)).c_str()).Number(r.speedup);
  }
  w.EndObject();
  w.EndObject();
  std::string path = std::string(dir) + "/BENCH_kernel.json";
  Status st = AtomicWriteFile(path, w.str() + "\n");
  if (!st.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 st.ToString().c_str());
  } else {
    std::printf("\nwrote %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace hera

int main() {
  std::printf("kernel dispatch tier: %s\n",
              hera::KernelDispatchToString(
                  hera::ActiveKernelDispatch()));
  std::vector<hera::bench::SyntheticRow> rows;
  hera::bench::RunSynthetic(&rows);
  hera::bench::VerifyResultRow verify = hera::bench::RunVerifyPhase();
  std::vector<hera::bench::MyersRow> myers = hera::bench::RunMyers();
  hera::bench::WriteJson(rows, verify, myers);
  return 0;
}
