// Micro-benchmarks for the index subsystem (google-benchmark):
//   - prefix-filter similarity join vs nested loop (the paper claims
//     index-assisted similarity computation beats nest-loop by ~3
//     orders of magnitude),
//   - index construction (Proposition 1),
//   - candidate-range lookup (Algorithm 1's binary searches),
//   - merge maintenance (Proposition 4).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "data/movie_generator.h"
#include "index/bounds.h"
#include "index/value_pair_index.h"
#include "sim/metrics.h"
#include "simjoin/similarity_join.h"

namespace hera {
namespace {

std::vector<LabeledValue> MakeValues(size_t num_records) {
  MovieGeneratorConfig config;
  config.num_records = num_records;
  config.num_entities = std::max<size_t>(1, num_records / 8);
  config.seed = 5;
  Dataset ds = GenerateMovieDataset(config);
  std::vector<LabeledValue> values;
  for (const Record& r : ds.records()) {
    for (uint32_t i = 0; i < r.size(); ++i) {
      if (r.value(i).is_null()) continue;
      values.push_back({ValueLabel{r.id(), i, 0}, r.value(i)});
    }
  }
  return values;
}

void BM_NestedLoopJoin(benchmark::State& state) {
  auto values = MakeValues(static_cast<size_t>(state.range(0)));
  auto metric = MakeSimilarity("jaccard_q2");
  NestedLoopJoin join;
  for (auto _ : state) {
    auto pairs = join.Join(values, *metric, 0.5);
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_NestedLoopJoin)->Arg(50)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_PrefixFilterJoin(benchmark::State& state) {
  auto values = MakeValues(static_cast<size_t>(state.range(0)));
  auto metric = MakeSimilarity("jaccard_q2");
  PrefixFilterJoin join;
  for (auto _ : state) {
    auto pairs = join.Join(values, *metric, 0.5);
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_PrefixFilterJoin)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_IndexBuild(benchmark::State& state) {
  auto values = MakeValues(static_cast<size_t>(state.range(0)));
  auto metric = MakeSimilarity("jaccard_q2");
  auto pairs = PrefixFilterJoin().Join(values, *metric, 0.5);
  for (auto _ : state) {
    ValuePairIndex index;
    index.Build(pairs);
    benchmark::DoNotOptimize(index);
  }
  state.counters["pairs"] = static_cast<double>(pairs.size());
}
BENCHMARK(BM_IndexBuild)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_CandidateLookup(benchmark::State& state) {
  auto values = MakeValues(500);
  auto metric = MakeSimilarity("jaccard_q2");
  ValuePairIndex index;
  index.Build(PrefixFilterJoin().Join(values, *metric, 0.5));
  Rng rng(3);
  for (auto _ : state) {
    uint32_t i = static_cast<uint32_t>(rng.Uniform(500));
    uint32_t j = static_cast<uint32_t>(rng.Uniform(500));
    if (i == j) continue;
    auto pairs = index.PairsFor(i, j);
    benchmark::DoNotOptimize(pairs);
  }
}
BENCHMARK(BM_CandidateLookup);

void BM_ComputeBounds(benchmark::State& state) {
  auto values = MakeValues(500);
  auto metric = MakeSimilarity("jaccard_q2");
  ValuePairIndex index;
  index.Build(PrefixFilterJoin().Join(values, *metric, 0.5));
  // Collect non-empty groups once.
  std::vector<std::vector<IndexedPair>> groups;
  index.ForEachGroup([&](uint32_t, uint32_t, const std::vector<IndexedPair>& p) {
    groups.push_back(p);
  });
  size_t g = 0;
  for (auto _ : state) {
    const auto& pairs = groups[g++ % groups.size()];
    auto bounds = ComputeBounds(pairs, 10, 10);
    benchmark::DoNotOptimize(bounds);
  }
  state.counters["groups"] = static_cast<double>(groups.size());
}
BENCHMARK(BM_ComputeBounds);

void BM_IndexMerge(benchmark::State& state) {
  auto values = MakeValues(500);
  auto metric = MakeSimilarity("jaccard_q2");
  auto pairs = PrefixFilterJoin().Join(values, *metric, 0.5);
  for (auto _ : state) {
    state.PauseTiming();
    ValuePairIndex index;
    index.Build(pairs);
    // Merge records 0 and 1 with a synthetic remap covering their
    // labels.
    std::vector<std::pair<ValueLabel, ValueLabel>> remap;
    std::set<ValueLabel> seen;
    for (const auto& p : index.Dump()) {
      for (const ValueLabel& l : {p.a, p.b}) {
        if ((l.rid == 0 || l.rid == 1) && seen.insert(l).second) {
          remap.push_back(
              {l, ValueLabel{0, l.rid == 0 ? l.fid : l.fid + 32, l.vid}});
        }
      }
    }
    state.ResumeTiming();
    index.ApplyMerge(0, 1, 0, remap);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IndexMerge)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace hera

BENCHMARK_MAIN();
