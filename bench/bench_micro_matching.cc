// Micro-benchmarks for the bipartite matching subsystem: Kuhn–Munkres
// scaling (O(m^3)) and the effect of graph simplification (the paper's
// m̄ ≈ 8-11 claim rests on it).

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "matching/bipartite.h"

namespace hera {
namespace {

std::vector<std::vector<double>> RandomMatrix(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> w(n, std::vector<double>(n));
  for (auto& row : w) {
    for (auto& x : row) x = rng.UniformDouble();
  }
  return w;
}

void BM_KuhnMunkres(benchmark::State& state) {
  auto w = RandomMatrix(static_cast<size_t>(state.range(0)), 11);
  for (auto _ : state) {
    auto m = KuhnMunkres(w);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_KuhnMunkres)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

/// Sparse field graph shaped like real verification inputs: mostly
/// degree-1 nodes (simplified away) plus a small conflicted core.
std::vector<WeightedEdge> FieldGraph(size_t fields, double conflict_rate,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedEdge> edges;
  for (uint32_t f = 0; f < fields; ++f) {
    edges.push_back({f, f, 0.5 + 0.5 * rng.UniformDouble()});
    if (rng.Bernoulli(conflict_rate)) {
      edges.push_back({f, static_cast<uint32_t>((f + 1) % fields),
                       0.5 * rng.UniformDouble()});
    }
  }
  return edges;
}

void BM_SolveFieldMatchingSparse(benchmark::State& state) {
  auto edges = FieldGraph(static_cast<size_t>(state.range(0)), 0.2, 7);
  for (auto _ : state) {
    auto result = SolveFieldMatching(edges);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SolveFieldMatchingSparse)->Arg(8)->Arg(16)->Arg(64)->Arg(256);

void BM_SolveFieldMatchingDense(benchmark::State& state) {
  // No simplification possible: every node conflicted.
  Rng rng(13);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<WeightedEdge> edges;
  for (uint32_t l = 0; l < n; ++l) {
    for (uint32_t r = 0; r < n; ++r) {
      edges.push_back({l, r, rng.UniformDouble()});
    }
  }
  for (auto _ : state) {
    auto result = SolveFieldMatching(edges);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SolveFieldMatchingDense)->Arg(8)->Arg(16)->Arg(32);

void BM_GreedyMatching(benchmark::State& state) {
  auto edges = FieldGraph(static_cast<size_t>(state.range(0)), 0.2, 7);
  for (auto _ : state) {
    auto result = GreedyMatching(edges);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GreedyMatching)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace hera

BENCHMARK_MAIN();
