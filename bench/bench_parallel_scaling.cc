// Parallel scaling: wall time vs worker threads (1/2/4/8) for the
// similarity join and full resolution, plus TokenCache effectiveness.
//
// Shape expectations: join and verification time fall as threads rise
// (the speedup column approaches the physical core count; on a
// single-core machine all rows are flat — the point of the harness is
// the *identical results* column, which must read "yes" everywhere).
// The TokenCache section shows a near-zero hit rate on the first join
// and a near-100% rate on the second, identical-output join.
//
// The final section measures timeline-sampler overhead: the same run
// with collect_report only vs. report + a 50 ms sampler, best of 3.
// The delta is the cost of the sampler thread (expected well under 2%;
// the measured figure is quoted in docs/observability.md).
//
// HERA_BENCH_RECORDS overrides the dataset size (default 2000).
// With HERA_BENCH_JSON_DIR set, the run report of the widest
// configuration is written as BENCH_parallel_scaling.json (including
// its sampled timeline).

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/timer.h"
#include "data/movie_generator.h"
#include "sim/metrics.h"
#include "simjoin/similarity_join.h"
#include "text/token_cache.h"

using namespace hera;

namespace {

size_t BenchRecords() {
  const char* v = std::getenv("HERA_BENCH_RECORDS");
  return v != nullptr ? std::strtoull(v, nullptr, 10) : 2000;
}

std::vector<LabeledValue> ValuesOf(const Dataset& ds) {
  std::vector<LabeledValue> values;
  for (const Record& r : ds.records()) {
    SuperRecord sr = SuperRecord::FromRecord(r);
    for (uint32_t f = 0; f < sr.num_fields(); ++f) {
      for (uint32_t v = 0; v < sr.field(f).size(); ++v) {
        values.push_back(
            {ValueLabel{sr.rid(), f, v}, sr.field(f).value(v).value});
      }
    }
  }
  return values;
}

}  // namespace

int main() {
  const size_t thread_counts[] = {1, 2, 4, 8};

  MovieGeneratorConfig config;
  config.num_records = BenchRecords();
  config.num_entities = config.num_records / 8;
  config.seed = 42;
  Dataset ds = GenerateMovieDataset(config);

  std::printf("parallel scaling on movies (%zu records, %zu entities)\n",
              ds.size(), ds.NumEntities());
  bench::PrintRule();
  std::printf("%-8s %10s %12s %10s %9s %10s\n", "threads", "join_ms",
              "resolve_ms", "total_ms", "speedup", "identical");

  std::vector<uint32_t> baseline_labels;
  std::vector<std::pair<uint32_t, uint32_t>> baseline_merges;
  double baseline_ms = 0.0;
  obs::RunReport widest_report;

  for (size_t threads : thread_counts) {
    HeraOptions opts;
    opts.num_threads = threads;
    opts.collect_report = bench::BenchJsonDir() != nullptr;
    // Sample the timeline in instrumented mode so the emitted
    // BENCH_parallel_scaling.json carries merges-vs-time curves.
    if (opts.collect_report) opts.timeline_interval_ms = 50;
    // Best of 3 runs to damp noise.
    double best_join = 1e18, best_resolve = 1e18, best_total = 1e18;
    bool identical = true;
    for (int rep = 0; rep < 3; ++rep) {
      auto result = Hera(opts).Run(ds);
      if (!result.ok()) {
        std::fprintf(stderr, "HERA failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const HeraStats& st = result->stats;
      best_join = std::min(best_join, st.index_build_ms);
      best_resolve = std::min(best_resolve, st.total_ms);
      best_total = std::min(best_total, st.index_build_ms + st.total_ms);
      if (threads == 1 && rep == 0) {
        baseline_labels = result->entity_of;
        baseline_merges = st.merge_sequence;
      }
      identical = identical && result->entity_of == baseline_labels &&
                  st.merge_sequence == baseline_merges;
      if (threads == thread_counts[3]) widest_report = result->report;
    }
    if (threads == 1) baseline_ms = best_total;
    std::printf("%-8zu %10.1f %12.1f %10.1f %8.2fx %10s\n", threads, best_join,
                best_resolve, best_total, baseline_ms / best_total,
                identical ? "yes" : "NO");
  }
  bench::PrintRule();

  // TokenCache effectiveness: the second join over the same live value
  // set (what every round after the first sees) is served from the
  // cache. Output must not change.
  std::vector<LabeledValue> values = ValuesOf(ds);
  auto metric = MakeSimilarity(HeraOptions{}.metric);
  PrefixFilterJoin join;
  auto cache = std::make_shared<TokenCache>(join.q());
  join.SetTokenCache(cache);
  std::vector<ValuePair> first, second;
  Timer t1;
  if (!join.Join(values, *metric, 0.5, RunGuard(), &first).ok()) return 1;
  double cold_ms = t1.ElapsedMillis();
  TokenCache::Stats cold = cache->stats();
  Timer t2;
  if (!join.Join(values, *metric, 0.5, RunGuard(), &second).ok()) return 1;
  double warm_ms = t2.ElapsedMillis();
  TokenCache::Stats warm = cache->stats();
  uint64_t round2_hits = warm.hits - cold.hits;
  uint64_t round2_total = round2_hits + (warm.misses - cold.misses);
  std::printf("token cache: %zu entries interned\n", warm.entries);
  std::printf("  round 1 (cold): %6.1f ms, hit rate %5.1f%%\n", cold_ms,
              100.0 * cold.hits / (cold.hits + cold.misses));
  std::printf("  round 2 (warm): %6.1f ms, hit rate %5.1f%%, identical %s\n",
              warm_ms,
              round2_total > 0 ? 100.0 * round2_hits / round2_total : 0.0,
              first.size() == second.size() ? "yes" : "NO");

  // Timeline-sampler overhead: same resolution with the report on in
  // both arms, the 50 ms sampler only in the second. Best of 5 per arm
  // (interleaved) to damp noise; results must be identical (sampling
  // is read-only).
  bench::PrintRule();
  double best_plain = 1e18, best_sampled = 1e18;
  uint64_t sampled_rows = 0;
  bool sampler_identical = true;
  for (int rep = 0; rep < 5; ++rep) {
    HeraOptions plain;
    plain.num_threads = 4;
    plain.collect_report = true;
    auto r1 = Hera(plain).Run(ds);
    if (!r1.ok()) return 1;
    best_plain =
        std::min(best_plain, r1->stats.index_build_ms + r1->stats.total_ms);

    HeraOptions sampled = plain;
    sampled.timeline_interval_ms = 50;
    auto r2 = Hera(sampled).Run(ds);
    if (!r2.ok()) return 1;
    best_sampled =
        std::min(best_sampled, r2->stats.index_build_ms + r2->stats.total_ms);
    sampled_rows = r2->report.timeline.samples.size();
    sampler_identical = sampler_identical &&
                        r1->entity_of == r2->entity_of &&
                        r1->stats.merge_sequence == r2->stats.merge_sequence;
  }
  double overhead_pct =
      best_plain > 0.0 ? 100.0 * (best_sampled - best_plain) / best_plain : 0.0;
  std::printf(
      "timeline sampler (50 ms, 4 threads): %0.1f ms -> %0.1f ms "
      "(%+.2f%% overhead), %llu samples, identical %s\n",
      best_plain, best_sampled, overhead_pct,
      static_cast<unsigned long long>(sampled_rows),
      sampler_identical ? "yes" : "NO");

  bench::WriteBenchReport("parallel_scaling", widest_report);
  return 0;
}
