// Quality-vs-budget curves for progressive (best-first frontier)
// execution against the blind canonical-order baseline, on the
// ambiguity corpus (data/ambiguity_generator.h) whose decoys sit at
// low record ids — exactly where a blind budget burns first.
//
// The curve is deterministic: it counts verifications and measures
// pair recall, no wall clock involved, so the committed baseline is a
// tight regression gate. tools/bench_compare.py gates
// progressive.recall_gain_50 (best-first recall / blind recall at 50%
// of the full budget); a frontier that silently degrades to canonical
// order collapses the gain to ~0.5x and fails loudly.
//
// Plain executable (no google-benchmark dependency) so it can run in
// the CI bench-smoke job. With HERA_BENCH_JSON_DIR set it writes
// BENCH_progressive.json; the committed baseline lives at
// bench/baselines/BENCH_progressive.json.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/file_util.h"
#include "core/hera.h"
#include "data/ambiguity_generator.h"
#include "eval/metrics.h"
#include "obs/json.h"

namespace hera {
namespace bench {
namespace {

struct CurvePoint {
  double fraction = 0;       // Budget as a fraction of the full run's V.
  size_t budget = 0;         // max_verifications handed to the guard.
  size_t blind_spent = 0;    // Verifications actually spent, blind.
  size_t frontier_spent = 0; // ... and best-first (must equal budget).
  double blind_recall = 0;
  double frontier_recall = 0;
  double gain = 0;           // frontier_recall / blind_recall.
};

HeraResult RunGoverned(const Dataset& ds, bool progressive, size_t budget) {
  HeraOptions opts;
  opts.progressive = progressive;
  opts.num_threads = BenchThreads();
  opts.guard.WithMaxVerifications(budget);
  auto result = Hera(opts).Run(ds);
  if (!result.ok()) {
    std::fprintf(stderr, "HERA failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

void WriteJson(size_t entities, size_t decoys, size_t total_verifications,
               double full_recall, const std::vector<CurvePoint>& curve) {
  const char* dir = BenchJsonDir();
  if (dir == nullptr) return;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("progressive");
  w.Key("dataset").BeginObject();
  w.Key("entities").UInt(entities);
  w.Key("decoys").UInt(decoys);
  w.EndObject();
  w.Key("progressive").BeginObject();
  w.Key("total_verifications").UInt(total_verifications);
  w.Key("full_recall").Number(full_recall);
  double gain_50 = 0;
  for (const CurvePoint& p : curve) {
    if (p.fraction == 0.5) gain_50 = p.gain;
  }
  w.Key("recall_gain_50").Number(gain_50);
  w.EndObject();
  w.Key("curve").BeginArray();
  for (const CurvePoint& p : curve) {
    w.BeginObject();
    w.Key("fraction").Number(p.fraction);
    w.Key("budget").UInt(p.budget);
    w.Key("blind_spent").UInt(p.blind_spent);
    w.Key("frontier_spent").UInt(p.frontier_spent);
    w.Key("blind_recall").Number(p.blind_recall);
    w.Key("frontier_recall").Number(p.frontier_recall);
    w.Key("gain").Number(p.gain);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::string path = std::string(dir) + "/BENCH_progressive.json";
  Status st = AtomicWriteFile(path, w.str() + "\n");
  if (!st.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 st.ToString().c_str());
  } else {
    std::printf("\nwrote %s\n", path.c_str());
  }
}

int Run() {
  AmbiguityGeneratorConfig config;
  config.num_entities = 50;
  config.num_decoys = 50;
  config.seed = 11;
  Dataset ds = GenerateAmbiguousDataset(config);

  // Gauge the governed progressive run's own verification demand: the
  // frontier reorders verification, so its total can differ from the
  // canonical run's. Budgets are fractions of this V.
  HeraOptions gauge;
  gauge.progressive = true;
  gauge.num_threads = BenchThreads();
  gauge.guard.WithMaxVerifications(1u << 30);
  auto full = Hera(gauge).Run(ds);
  if (!full.ok() || full->stats.outcome != RunOutcome::kCompleted) {
    std::fprintf(stderr, "gauge run did not complete\n");
    return 1;
  }
  const size_t total = full->stats.candidates;
  const double full_recall =
      EvaluatePairs(full->entity_of, ds.entity_of()).recall;

  std::printf("quality vs verification budget (%zu entities, %zu decoys, "
              "full run: %zu verifications, recall %.3f)\n",
              config.num_entities, config.num_decoys, total, full_recall);
  PrintRule(72);
  std::printf("%-8s %-8s %14s %14s %8s\n", "budget", "(frac)", "blind recall",
              "frontier recall", "gain");

  std::vector<CurvePoint> curve;
  for (double fraction : {0.25, 0.5, 0.75}) {
    CurvePoint p;
    p.fraction = fraction;
    p.budget = static_cast<size_t>(static_cast<double>(total) * fraction);
    auto blind = RunGoverned(ds, /*progressive=*/false, p.budget);
    auto frontier = RunGoverned(ds, /*progressive=*/true, p.budget);
    if (blind.stats.outcome != RunOutcome::kTruncatedBudget ||
        frontier.stats.outcome != RunOutcome::kTruncatedBudget) {
      std::fprintf(stderr, "budget %zu did not bind\n", p.budget);
      return 1;
    }
    p.blind_spent = blind.stats.candidates;
    p.frontier_spent = frontier.stats.candidates;
    p.blind_recall = EvaluatePairs(blind.entity_of, ds.entity_of()).recall;
    p.frontier_recall =
        EvaluatePairs(frontier.entity_of, ds.entity_of()).recall;
    p.gain = p.blind_recall > 0 ? p.frontier_recall / p.blind_recall
                                : p.frontier_recall > 0 ? 99.0 : 1.0;
    curve.push_back(p);
    std::printf("%-8zu %-8.2f %14.3f %14.3f %7.2fx\n", p.budget, p.fraction,
                p.blind_recall, p.frontier_recall, p.gain);
  }

  WriteJson(config.num_entities, config.num_decoys, total, full_recall, curve);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hera

int main() { return hera::bench::Run(); }
