// Reproduces Table I: technical characteristics of D_m1..D_m4.
//
// Paper (Table I):
//   dataset                D_m1   D_m2   D_m3   D_m4
//   n                      1000   2000   3000   4000
//   # of entity             121    277    361    533
//   # of distinct attribute  16     22     23     21
//
// Our datasets are generated (see DESIGN.md §3); n and #entities match
// the paper by construction, distinct attributes by profile choice.

#include <cstdio>

#include "bench_util.h"
#include "data/benchmark_datasets.h"

using namespace hera;

int main() {
  std::printf("Table I: dataset characteristics (paper values in "
              "parentheses)\n");
  bench::PrintRule();
  std::printf("%-26s", "");
  for (auto which : AllBenchmarkDatasets()) {
    std::printf("%12s", SpecFor(which).name.c_str());
  }
  std::printf("\n");

  const size_t paper_n[] = {1000, 2000, 3000, 4000};
  const size_t paper_entities[] = {121, 277, 361, 533};
  const size_t paper_attrs[] = {16, 22, 23, 21};

  size_t n[4], entities[4], attrs[4];
  int i = 0;
  for (auto which : AllBenchmarkDatasets()) {
    Dataset ds = BuildBenchmarkDataset(which);
    n[i] = ds.size();
    entities[i] = ds.NumEntities();
    attrs[i] = ds.NumDistinctAttributes();
    ++i;
  }

  std::printf("%-26s", "n");
  for (int d = 0; d < 4; ++d) std::printf("  %4zu (%4zu)", n[d], paper_n[d]);
  std::printf("\n%-26s", "# of entity");
  for (int d = 0; d < 4; ++d) {
    std::printf("  %4zu (%4zu)", entities[d], paper_entities[d]);
  }
  std::printf("\n%-26s", "# of distinct attribute");
  for (int d = 0; d < 4; ++d) {
    std::printf("  %4zu (%4zu)", attrs[d], paper_attrs[d]);
  }
  std::printf("\n");
  bench::PrintRule();
  return 0;
}
