// Reproduces Table II: key run parameters of HERA per dataset —
// |S| (index size), m̄ (average simplified-bipartite-graph size), and
// k (iterations) at xi = delta = 0.5.
//
// Paper (Table II):
//   |S|   13294  39270  52463  79462
//   m̄       8.3   11.2    7.9    8.6
//   k        19     24     27     26
//
// Shape expectations: |S| grows with dataset size; m̄ stays small
// (single digits) thanks to graph simplification; k stays in the tens.

#include <cstdio>

#include "bench_util.h"

using namespace hera;

int main() {
  std::printf("Table II: HERA parameters at xi=0.5, delta=0.5 "
              "(paper values in parentheses)\n");
  bench::PrintRule();
  const double paper_s[] = {13294, 39270, 52463, 79462};
  const double paper_m[] = {8.3, 11.2, 7.9, 8.6};
  const double paper_k[] = {19, 24, 27, 26};

  std::printf("%-8s %18s %16s %14s\n", "dataset", "|S|", "m_bar", "k");
  int i = 0;
  for (auto which : AllBenchmarkDatasets()) {
    Dataset ds = BuildBenchmarkDataset(which);
    bench::HeraRun run = bench::RunHera(ds, 0.5, 0.5);
    const HeraStats& st = run.result.stats;
    std::printf("%-8s %9zu (%6.0f) %7.1f (%5.1f) %6zu (%3.0f)\n",
                SpecFor(which).name.c_str(), st.index_size, paper_s[i],
                st.avg_simplified_nodes, paper_m[i], st.iterations,
                paper_k[i]);
    ++i;
  }
  bench::PrintRule();
  return 0;
}
