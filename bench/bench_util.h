// Shared helpers for the table/figure reproduction harnesses.
//
// Machine-readable output: set HERA_BENCH_JSON_DIR to a directory and
// the harnesses collect run reports and write one BENCH_<name>.json
// per measured configuration (schema: docs/observability.md). Unset
// (the default), collection stays off and the harness measures the
// uninstrumented path.

#ifndef HERA_BENCH_BENCH_UTIL_H_
#define HERA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/file_util.h"
#include "core/hera.h"
#include "data/benchmark_datasets.h"
#include "eval/metrics.h"

namespace hera {
namespace bench {

/// The HERA_BENCH_JSON_DIR directory, or nullptr (reports disabled).
inline const char* BenchJsonDir() {
  static const char* dir = std::getenv("HERA_BENCH_JSON_DIR");
  return dir;
}

/// Worker threads from HERA_THREADS (0 = serial, the default).
/// Parallelism never changes results, so every harness honors it; the
/// run report's parallel.num_threads gauge records the value used.
inline size_t BenchThreads() {
  static const size_t threads = [] {
    const char* v = std::getenv("HERA_THREADS");
    return v != nullptr ? static_cast<size_t>(std::strtoull(v, nullptr, 10))
                        : size_t{0};
  }();
  return threads;
}

/// Writes `report` to $HERA_BENCH_JSON_DIR/BENCH_<name>.json
/// (atomically, so a killed harness never leaves a torn report); no-op
/// when the env var is unset.
inline void WriteBenchReport(const std::string& name,
                             const obs::RunReport& report) {
  const char* dir = BenchJsonDir();
  if (dir == nullptr) return;
  std::string path = std::string(dir) + "/BENCH_" + name + ".json";
  Status st = AtomicWriteFile(path, report.ToJson() + "\n");
  if (!st.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 st.ToString().c_str());
  }
}

/// Runs HERA with (xi, delta) on a dataset and returns result+metrics.
struct HeraRun {
  HeraResult result;
  PairMetrics metrics;
};

inline HeraRun RunHera(const Dataset& ds, double xi, double delta) {
  HeraOptions opts;
  opts.xi = xi;
  opts.delta = delta;
  opts.num_threads = BenchThreads();
  opts.collect_report = BenchJsonDir() != nullptr;
  auto result = Hera(opts).Run(ds);
  if (!result.ok()) {
    std::fprintf(stderr, "HERA failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  HeraRun run;
  run.metrics = EvaluatePairs(result->entity_of, ds.entity_of());
  run.result = std::move(result).value();
  return run;
}

/// Offline join once per (dataset, xi); delta sweeps reuse it.
inline std::vector<ValuePair> JoinOnce(const Dataset& ds, double xi) {
  HeraOptions opts;
  opts.xi = xi;
  opts.num_threads = BenchThreads();
  auto pairs = ComputeSimilarValuePairs(ds, opts);
  if (!pairs.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 pairs.status().ToString().c_str());
    std::abort();
  }
  return std::move(pairs).value();
}

inline HeraRun RunHeraWithPairs(const Dataset& ds,
                                const std::vector<ValuePair>& pairs, double xi,
                                double delta) {
  HeraOptions opts;
  opts.xi = xi;
  opts.delta = delta;
  opts.num_threads = BenchThreads();
  opts.collect_report = BenchJsonDir() != nullptr;
  auto result = Hera(opts).RunWithPairs(ds, pairs);
  if (!result.ok()) {
    std::fprintf(stderr, "HERA failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  HeraRun run;
  run.metrics = EvaluatePairs(result->entity_of, ds.entity_of());
  run.result = std::move(result).value();
  return run;
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bench
}  // namespace hera

#endif  // HERA_BENCH_BENCH_UTIL_H_
