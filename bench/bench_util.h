// Shared helpers for the table/figure reproduction harnesses.

#ifndef HERA_BENCH_BENCH_UTIL_H_
#define HERA_BENCH_BENCH_UTIL_H_

#include <cstdio>

#include "core/hera.h"
#include "data/benchmark_datasets.h"
#include "eval/metrics.h"

namespace hera {
namespace bench {

/// Runs HERA with (xi, delta) on a dataset and returns result+metrics.
struct HeraRun {
  HeraResult result;
  PairMetrics metrics;
};

inline HeraRun RunHera(const Dataset& ds, double xi, double delta) {
  HeraOptions opts;
  opts.xi = xi;
  opts.delta = delta;
  auto result = Hera(opts).Run(ds);
  if (!result.ok()) {
    std::fprintf(stderr, "HERA failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  HeraRun run;
  run.metrics = EvaluatePairs(result->entity_of, ds.entity_of());
  run.result = std::move(result).value();
  return run;
}

/// Offline join once per (dataset, xi); delta sweeps reuse it.
inline std::vector<ValuePair> JoinOnce(const Dataset& ds, double xi) {
  HeraOptions opts;
  opts.xi = xi;
  auto pairs = ComputeSimilarValuePairs(ds, opts);
  if (!pairs.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 pairs.status().ToString().c_str());
    std::abort();
  }
  return std::move(pairs).value();
}

inline HeraRun RunHeraWithPairs(const Dataset& ds,
                                const std::vector<ValuePair>& pairs, double xi,
                                double delta) {
  HeraOptions opts;
  opts.xi = xi;
  opts.delta = delta;
  auto result = Hera(opts).RunWithPairs(ds, pairs);
  if (!result.ok()) {
    std::fprintf(stderr, "HERA failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  HeraRun run;
  run.metrics = EvaluatePairs(result->entity_of, ds.entity_of());
  run.result = std::move(result).value();
  return run;
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bench
}  // namespace hera

#endif  // HERA_BENCH_BENCH_UTIL_H_
