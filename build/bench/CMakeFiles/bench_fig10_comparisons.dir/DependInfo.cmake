
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_comparisons.cc" "bench/CMakeFiles/bench_fig10_comparisons.dir/bench_fig10_comparisons.cc.o" "gcc" "bench/CMakeFiles/bench_fig10_comparisons.dir/bench_fig10_comparisons.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blocking/CMakeFiles/hera_blocking.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hera_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/hera_index.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/hera_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/hera_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hera_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/simjoin/CMakeFiles/hera_simjoin.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hera_data.dir/DependInfo.cmake"
  "/root/repo/build/src/record/CMakeFiles/hera_record.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hera_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/hera_text.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/hera_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hera_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
