file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_comparisons.dir/bench_fig10_comparisons.cc.o"
  "CMakeFiles/bench_fig10_comparisons.dir/bench_fig10_comparisons.cc.o.d"
  "bench_fig10_comparisons"
  "bench_fig10_comparisons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_comparisons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
