# Empty dependencies file for bench_micro_matching.
# This may be replaced when dependencies are built.
