# Empty compiler generated dependencies file for bibliography_dedup.
# This may be replaced when dependencies are built.
