file(REMOVE_RECURSE
  "CMakeFiles/customer_dedup.dir/customer_dedup.cpp.o"
  "CMakeFiles/customer_dedup.dir/customer_dedup.cpp.o.d"
  "customer_dedup"
  "customer_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/customer_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
