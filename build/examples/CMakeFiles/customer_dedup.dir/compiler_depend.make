# Empty compiler generated dependencies file for customer_dedup.
# This may be replaced when dependencies are built.
