file(REMOVE_RECURSE
  "CMakeFiles/hera_cli.dir/hera_cli.cpp.o"
  "CMakeFiles/hera_cli.dir/hera_cli.cpp.o.d"
  "hera_cli"
  "hera_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hera_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
