# Empty compiler generated dependencies file for hera_cli.
# This may be replaced when dependencies are built.
