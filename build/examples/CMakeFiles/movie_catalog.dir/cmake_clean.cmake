file(REMOVE_RECURSE
  "CMakeFiles/movie_catalog.dir/movie_catalog.cpp.o"
  "CMakeFiles/movie_catalog.dir/movie_catalog.cpp.o.d"
  "movie_catalog"
  "movie_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
