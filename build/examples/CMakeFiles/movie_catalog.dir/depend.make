# Empty dependencies file for movie_catalog.
# This may be replaced when dependencies are built.
