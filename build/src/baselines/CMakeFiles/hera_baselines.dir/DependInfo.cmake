
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/collective_er.cc" "src/baselines/CMakeFiles/hera_baselines.dir/collective_er.cc.o" "gcc" "src/baselines/CMakeFiles/hera_baselines.dir/collective_er.cc.o.d"
  "/root/repo/src/baselines/correlation_clustering.cc" "src/baselines/CMakeFiles/hera_baselines.dir/correlation_clustering.cc.o" "gcc" "src/baselines/CMakeFiles/hera_baselines.dir/correlation_clustering.cc.o.d"
  "/root/repo/src/baselines/homogeneous.cc" "src/baselines/CMakeFiles/hera_baselines.dir/homogeneous.cc.o" "gcc" "src/baselines/CMakeFiles/hera_baselines.dir/homogeneous.cc.o.d"
  "/root/repo/src/baselines/naive.cc" "src/baselines/CMakeFiles/hera_baselines.dir/naive.cc.o" "gcc" "src/baselines/CMakeFiles/hera_baselines.dir/naive.cc.o.d"
  "/root/repo/src/baselines/rswoosh.cc" "src/baselines/CMakeFiles/hera_baselines.dir/rswoosh.cc.o" "gcc" "src/baselines/CMakeFiles/hera_baselines.dir/rswoosh.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hera_common.dir/DependInfo.cmake"
  "/root/repo/build/src/record/CMakeFiles/hera_record.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hera_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/simjoin/CMakeFiles/hera_simjoin.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/hera_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
