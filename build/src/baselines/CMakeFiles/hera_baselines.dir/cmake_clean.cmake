file(REMOVE_RECURSE
  "CMakeFiles/hera_baselines.dir/collective_er.cc.o"
  "CMakeFiles/hera_baselines.dir/collective_er.cc.o.d"
  "CMakeFiles/hera_baselines.dir/correlation_clustering.cc.o"
  "CMakeFiles/hera_baselines.dir/correlation_clustering.cc.o.d"
  "CMakeFiles/hera_baselines.dir/homogeneous.cc.o"
  "CMakeFiles/hera_baselines.dir/homogeneous.cc.o.d"
  "CMakeFiles/hera_baselines.dir/naive.cc.o"
  "CMakeFiles/hera_baselines.dir/naive.cc.o.d"
  "CMakeFiles/hera_baselines.dir/rswoosh.cc.o"
  "CMakeFiles/hera_baselines.dir/rswoosh.cc.o.d"
  "libhera_baselines.a"
  "libhera_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hera_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
