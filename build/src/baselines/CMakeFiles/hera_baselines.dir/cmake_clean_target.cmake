file(REMOVE_RECURSE
  "libhera_baselines.a"
)
