# Empty compiler generated dependencies file for hera_baselines.
# This may be replaced when dependencies are built.
