
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blocking/sorted_neighborhood.cc" "src/blocking/CMakeFiles/hera_blocking.dir/sorted_neighborhood.cc.o" "gcc" "src/blocking/CMakeFiles/hera_blocking.dir/sorted_neighborhood.cc.o.d"
  "/root/repo/src/blocking/token_blocking.cc" "src/blocking/CMakeFiles/hera_blocking.dir/token_blocking.cc.o" "gcc" "src/blocking/CMakeFiles/hera_blocking.dir/token_blocking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hera_common.dir/DependInfo.cmake"
  "/root/repo/build/src/record/CMakeFiles/hera_record.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hera_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/hera_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
