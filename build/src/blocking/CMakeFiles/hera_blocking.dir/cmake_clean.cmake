file(REMOVE_RECURSE
  "CMakeFiles/hera_blocking.dir/sorted_neighborhood.cc.o"
  "CMakeFiles/hera_blocking.dir/sorted_neighborhood.cc.o.d"
  "CMakeFiles/hera_blocking.dir/token_blocking.cc.o"
  "CMakeFiles/hera_blocking.dir/token_blocking.cc.o.d"
  "libhera_blocking.a"
  "libhera_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hera_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
