file(REMOVE_RECURSE
  "libhera_blocking.a"
)
