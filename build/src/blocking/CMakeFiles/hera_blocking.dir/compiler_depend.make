# Empty compiler generated dependencies file for hera_blocking.
# This may be replaced when dependencies are built.
