file(REMOVE_RECURSE
  "CMakeFiles/hera_common.dir/logging.cc.o"
  "CMakeFiles/hera_common.dir/logging.cc.o.d"
  "CMakeFiles/hera_common.dir/random.cc.o"
  "CMakeFiles/hera_common.dir/random.cc.o.d"
  "CMakeFiles/hera_common.dir/status.cc.o"
  "CMakeFiles/hera_common.dir/status.cc.o.d"
  "CMakeFiles/hera_common.dir/string_util.cc.o"
  "CMakeFiles/hera_common.dir/string_util.cc.o.d"
  "libhera_common.a"
  "libhera_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hera_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
