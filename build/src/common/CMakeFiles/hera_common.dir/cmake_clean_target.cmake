file(REMOVE_RECURSE
  "libhera_common.a"
)
