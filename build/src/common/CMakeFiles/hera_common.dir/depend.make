# Empty dependencies file for hera_common.
# This may be replaced when dependencies are built.
