
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/hera_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/hera_core.dir/engine.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/hera_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/hera_core.dir/explain.cc.o.d"
  "/root/repo/src/core/hera.cc" "src/core/CMakeFiles/hera_core.dir/hera.cc.o" "gcc" "src/core/CMakeFiles/hera_core.dir/hera.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/core/CMakeFiles/hera_core.dir/incremental.cc.o" "gcc" "src/core/CMakeFiles/hera_core.dir/incremental.cc.o.d"
  "/root/repo/src/core/sweep.cc" "src/core/CMakeFiles/hera_core.dir/sweep.cc.o" "gcc" "src/core/CMakeFiles/hera_core.dir/sweep.cc.o.d"
  "/root/repo/src/core/verifier.cc" "src/core/CMakeFiles/hera_core.dir/verifier.cc.o" "gcc" "src/core/CMakeFiles/hera_core.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hera_common.dir/DependInfo.cmake"
  "/root/repo/build/src/record/CMakeFiles/hera_record.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hera_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/simjoin/CMakeFiles/hera_simjoin.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/hera_index.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/hera_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/hera_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/hera_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/hera_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
