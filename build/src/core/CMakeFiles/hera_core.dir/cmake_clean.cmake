file(REMOVE_RECURSE
  "CMakeFiles/hera_core.dir/engine.cc.o"
  "CMakeFiles/hera_core.dir/engine.cc.o.d"
  "CMakeFiles/hera_core.dir/explain.cc.o"
  "CMakeFiles/hera_core.dir/explain.cc.o.d"
  "CMakeFiles/hera_core.dir/hera.cc.o"
  "CMakeFiles/hera_core.dir/hera.cc.o.d"
  "CMakeFiles/hera_core.dir/incremental.cc.o"
  "CMakeFiles/hera_core.dir/incremental.cc.o.d"
  "CMakeFiles/hera_core.dir/sweep.cc.o"
  "CMakeFiles/hera_core.dir/sweep.cc.o.d"
  "CMakeFiles/hera_core.dir/verifier.cc.o"
  "CMakeFiles/hera_core.dir/verifier.cc.o.d"
  "libhera_core.a"
  "libhera_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hera_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
