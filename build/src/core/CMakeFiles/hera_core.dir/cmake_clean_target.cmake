file(REMOVE_RECURSE
  "libhera_core.a"
)
