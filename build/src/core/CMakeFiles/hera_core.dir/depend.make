# Empty dependencies file for hera_core.
# This may be replaced when dependencies are built.
