
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/benchmark_datasets.cc" "src/data/CMakeFiles/hera_data.dir/benchmark_datasets.cc.o" "gcc" "src/data/CMakeFiles/hera_data.dir/benchmark_datasets.cc.o.d"
  "/root/repo/src/data/corpus_model.cc" "src/data/CMakeFiles/hera_data.dir/corpus_model.cc.o" "gcc" "src/data/CMakeFiles/hera_data.dir/corpus_model.cc.o.d"
  "/root/repo/src/data/corruption.cc" "src/data/CMakeFiles/hera_data.dir/corruption.cc.o" "gcc" "src/data/CMakeFiles/hera_data.dir/corruption.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/hera_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/hera_data.dir/csv.cc.o.d"
  "/root/repo/src/data/data_exchange.cc" "src/data/CMakeFiles/hera_data.dir/data_exchange.cc.o" "gcc" "src/data/CMakeFiles/hera_data.dir/data_exchange.cc.o.d"
  "/root/repo/src/data/entity_fusion.cc" "src/data/CMakeFiles/hera_data.dir/entity_fusion.cc.o" "gcc" "src/data/CMakeFiles/hera_data.dir/entity_fusion.cc.o.d"
  "/root/repo/src/data/movie_generator.cc" "src/data/CMakeFiles/hera_data.dir/movie_generator.cc.o" "gcc" "src/data/CMakeFiles/hera_data.dir/movie_generator.cc.o.d"
  "/root/repo/src/data/profile.cc" "src/data/CMakeFiles/hera_data.dir/profile.cc.o" "gcc" "src/data/CMakeFiles/hera_data.dir/profile.cc.o.d"
  "/root/repo/src/data/publication_generator.cc" "src/data/CMakeFiles/hera_data.dir/publication_generator.cc.o" "gcc" "src/data/CMakeFiles/hera_data.dir/publication_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hera_common.dir/DependInfo.cmake"
  "/root/repo/build/src/record/CMakeFiles/hera_record.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hera_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/hera_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
