file(REMOVE_RECURSE
  "CMakeFiles/hera_data.dir/benchmark_datasets.cc.o"
  "CMakeFiles/hera_data.dir/benchmark_datasets.cc.o.d"
  "CMakeFiles/hera_data.dir/corpus_model.cc.o"
  "CMakeFiles/hera_data.dir/corpus_model.cc.o.d"
  "CMakeFiles/hera_data.dir/corruption.cc.o"
  "CMakeFiles/hera_data.dir/corruption.cc.o.d"
  "CMakeFiles/hera_data.dir/csv.cc.o"
  "CMakeFiles/hera_data.dir/csv.cc.o.d"
  "CMakeFiles/hera_data.dir/data_exchange.cc.o"
  "CMakeFiles/hera_data.dir/data_exchange.cc.o.d"
  "CMakeFiles/hera_data.dir/entity_fusion.cc.o"
  "CMakeFiles/hera_data.dir/entity_fusion.cc.o.d"
  "CMakeFiles/hera_data.dir/movie_generator.cc.o"
  "CMakeFiles/hera_data.dir/movie_generator.cc.o.d"
  "CMakeFiles/hera_data.dir/profile.cc.o"
  "CMakeFiles/hera_data.dir/profile.cc.o.d"
  "CMakeFiles/hera_data.dir/publication_generator.cc.o"
  "CMakeFiles/hera_data.dir/publication_generator.cc.o.d"
  "libhera_data.a"
  "libhera_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hera_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
