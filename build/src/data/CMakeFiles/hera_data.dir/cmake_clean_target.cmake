file(REMOVE_RECURSE
  "libhera_data.a"
)
