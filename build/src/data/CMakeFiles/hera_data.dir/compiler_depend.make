# Empty compiler generated dependencies file for hera_data.
# This may be replaced when dependencies are built.
