file(REMOVE_RECURSE
  "CMakeFiles/hera_eval.dir/cluster_metrics.cc.o"
  "CMakeFiles/hera_eval.dir/cluster_metrics.cc.o.d"
  "CMakeFiles/hera_eval.dir/metrics.cc.o"
  "CMakeFiles/hera_eval.dir/metrics.cc.o.d"
  "libhera_eval.a"
  "libhera_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hera_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
