file(REMOVE_RECURSE
  "libhera_eval.a"
)
