# Empty dependencies file for hera_eval.
# This may be replaced when dependencies are built.
