file(REMOVE_RECURSE
  "CMakeFiles/hera_index.dir/bounds.cc.o"
  "CMakeFiles/hera_index.dir/bounds.cc.o.d"
  "CMakeFiles/hera_index.dir/value_pair_index.cc.o"
  "CMakeFiles/hera_index.dir/value_pair_index.cc.o.d"
  "libhera_index.a"
  "libhera_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hera_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
