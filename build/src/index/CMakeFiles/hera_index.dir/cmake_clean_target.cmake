file(REMOVE_RECURSE
  "libhera_index.a"
)
