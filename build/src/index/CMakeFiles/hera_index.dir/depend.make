# Empty dependencies file for hera_index.
# This may be replaced when dependencies are built.
