file(REMOVE_RECURSE
  "CMakeFiles/hera_matching.dir/bipartite.cc.o"
  "CMakeFiles/hera_matching.dir/bipartite.cc.o.d"
  "libhera_matching.a"
  "libhera_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hera_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
