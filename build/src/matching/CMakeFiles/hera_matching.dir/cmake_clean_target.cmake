file(REMOVE_RECURSE
  "libhera_matching.a"
)
