# Empty compiler generated dependencies file for hera_matching.
# This may be replaced when dependencies are built.
