file(REMOVE_RECURSE
  "CMakeFiles/hera_record.dir/dataset.cc.o"
  "CMakeFiles/hera_record.dir/dataset.cc.o.d"
  "CMakeFiles/hera_record.dir/record.cc.o"
  "CMakeFiles/hera_record.dir/record.cc.o.d"
  "CMakeFiles/hera_record.dir/schema.cc.o"
  "CMakeFiles/hera_record.dir/schema.cc.o.d"
  "CMakeFiles/hera_record.dir/super_record.cc.o"
  "CMakeFiles/hera_record.dir/super_record.cc.o.d"
  "libhera_record.a"
  "libhera_record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hera_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
