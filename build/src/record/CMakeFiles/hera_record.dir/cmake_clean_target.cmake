file(REMOVE_RECURSE
  "libhera_record.a"
)
