# Empty compiler generated dependencies file for hera_record.
# This may be replaced when dependencies are built.
