file(REMOVE_RECURSE
  "CMakeFiles/hera_schema.dir/majority_vote.cc.o"
  "CMakeFiles/hera_schema.dir/majority_vote.cc.o.d"
  "libhera_schema.a"
  "libhera_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hera_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
