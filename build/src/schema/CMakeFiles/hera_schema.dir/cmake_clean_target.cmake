file(REMOVE_RECURSE
  "libhera_schema.a"
)
