# Empty compiler generated dependencies file for hera_schema.
# This may be replaced when dependencies are built.
