
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/hera_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/hera_sim.dir/metrics.cc.o.d"
  "/root/repo/src/sim/string_metrics.cc" "src/sim/CMakeFiles/hera_sim.dir/string_metrics.cc.o" "gcc" "src/sim/CMakeFiles/hera_sim.dir/string_metrics.cc.o.d"
  "/root/repo/src/sim/value.cc" "src/sim/CMakeFiles/hera_sim.dir/value.cc.o" "gcc" "src/sim/CMakeFiles/hera_sim.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hera_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/hera_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
