file(REMOVE_RECURSE
  "CMakeFiles/hera_sim.dir/metrics.cc.o"
  "CMakeFiles/hera_sim.dir/metrics.cc.o.d"
  "CMakeFiles/hera_sim.dir/string_metrics.cc.o"
  "CMakeFiles/hera_sim.dir/string_metrics.cc.o.d"
  "CMakeFiles/hera_sim.dir/value.cc.o"
  "CMakeFiles/hera_sim.dir/value.cc.o.d"
  "libhera_sim.a"
  "libhera_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hera_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
