file(REMOVE_RECURSE
  "libhera_sim.a"
)
