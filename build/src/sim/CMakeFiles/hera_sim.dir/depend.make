# Empty dependencies file for hera_sim.
# This may be replaced when dependencies are built.
