file(REMOVE_RECURSE
  "CMakeFiles/hera_simjoin.dir/similarity_join.cc.o"
  "CMakeFiles/hera_simjoin.dir/similarity_join.cc.o.d"
  "libhera_simjoin.a"
  "libhera_simjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hera_simjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
