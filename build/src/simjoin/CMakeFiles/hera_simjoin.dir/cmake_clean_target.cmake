file(REMOVE_RECURSE
  "libhera_simjoin.a"
)
