# Empty compiler generated dependencies file for hera_simjoin.
# This may be replaced when dependencies are built.
