
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/normalize.cc" "src/text/CMakeFiles/hera_text.dir/normalize.cc.o" "gcc" "src/text/CMakeFiles/hera_text.dir/normalize.cc.o.d"
  "/root/repo/src/text/qgram.cc" "src/text/CMakeFiles/hera_text.dir/qgram.cc.o" "gcc" "src/text/CMakeFiles/hera_text.dir/qgram.cc.o.d"
  "/root/repo/src/text/tfidf.cc" "src/text/CMakeFiles/hera_text.dir/tfidf.cc.o" "gcc" "src/text/CMakeFiles/hera_text.dir/tfidf.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/hera_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/hera_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hera_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
