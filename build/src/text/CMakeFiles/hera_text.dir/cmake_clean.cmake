file(REMOVE_RECURSE
  "CMakeFiles/hera_text.dir/normalize.cc.o"
  "CMakeFiles/hera_text.dir/normalize.cc.o.d"
  "CMakeFiles/hera_text.dir/qgram.cc.o"
  "CMakeFiles/hera_text.dir/qgram.cc.o.d"
  "CMakeFiles/hera_text.dir/tfidf.cc.o"
  "CMakeFiles/hera_text.dir/tfidf.cc.o.d"
  "CMakeFiles/hera_text.dir/tokenizer.cc.o"
  "CMakeFiles/hera_text.dir/tokenizer.cc.o.d"
  "libhera_text.a"
  "libhera_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hera_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
