file(REMOVE_RECURSE
  "libhera_text.a"
)
