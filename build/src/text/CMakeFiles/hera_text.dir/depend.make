# Empty dependencies file for hera_text.
# This may be replaced when dependencies are built.
