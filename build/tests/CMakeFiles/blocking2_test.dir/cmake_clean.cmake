file(REMOVE_RECURSE
  "CMakeFiles/blocking2_test.dir/blocking2_test.cc.o"
  "CMakeFiles/blocking2_test.dir/blocking2_test.cc.o.d"
  "blocking2_test"
  "blocking2_test.pdb"
  "blocking2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
