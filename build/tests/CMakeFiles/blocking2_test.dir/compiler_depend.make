# Empty compiler generated dependencies file for blocking2_test.
# This may be replaced when dependencies are built.
