file(REMOVE_RECURSE
  "CMakeFiles/hera_test.dir/hera_test.cc.o"
  "CMakeFiles/hera_test.dir/hera_test.cc.o.d"
  "hera_test"
  "hera_test.pdb"
  "hera_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hera_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
