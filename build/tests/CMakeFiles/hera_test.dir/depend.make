# Empty dependencies file for hera_test.
# This may be replaced when dependencies are built.
