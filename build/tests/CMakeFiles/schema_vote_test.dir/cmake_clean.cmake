file(REMOVE_RECURSE
  "CMakeFiles/schema_vote_test.dir/schema_vote_test.cc.o"
  "CMakeFiles/schema_vote_test.dir/schema_vote_test.cc.o.d"
  "schema_vote_test"
  "schema_vote_test.pdb"
  "schema_vote_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_vote_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
