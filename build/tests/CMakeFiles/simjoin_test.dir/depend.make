# Empty dependencies file for simjoin_test.
# This may be replaced when dependencies are built.
