file(REMOVE_RECURSE
  "CMakeFiles/sweep_explain_test.dir/sweep_explain_test.cc.o"
  "CMakeFiles/sweep_explain_test.dir/sweep_explain_test.cc.o.d"
  "sweep_explain_test"
  "sweep_explain_test.pdb"
  "sweep_explain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
