# Empty dependencies file for sweep_explain_test.
# This may be replaced when dependencies are built.
