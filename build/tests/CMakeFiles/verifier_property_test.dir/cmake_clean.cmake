file(REMOVE_RECURSE
  "CMakeFiles/verifier_property_test.dir/verifier_property_test.cc.o"
  "CMakeFiles/verifier_property_test.dir/verifier_property_test.cc.o.d"
  "verifier_property_test"
  "verifier_property_test.pdb"
  "verifier_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
