# Empty compiler generated dependencies file for verifier_property_test.
# This may be replaced when dependencies are built.
