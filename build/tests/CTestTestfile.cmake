# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/logging_timer_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/simjoin_test[1]_include.cmake")
include("/root/repo/build/tests/record_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/matching_test[1]_include.cmake")
include("/root/repo/build/tests/schema_vote_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/hera_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/exchange_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/blocking_test[1]_include.cmake")
include("/root/repo/build/tests/blocking2_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/publication_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/fusion_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_explain_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_property_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/paper_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
