// Bibliographic deduplication: resolve citation records shared among
// DBLP-, ACM-, and Scholar-style sources — the classic ER benchmark
// domain, with venue abbreviations ("PVLDB" vs the full proceedings
// name) as a source-systematic variation on top of typographic noise.
// Also demonstrates incremental resolution: a second batch of records
// streams in after the first resolve.
//
//   $ ./build/examples/bibliography_dedup

#include <cstdio>

#include "core/incremental.h"
#include "data/publication_generator.h"
#include "eval/cluster_metrics.h"
#include "eval/metrics.h"

using namespace hera;

int main() {
  PublicationGeneratorConfig config;
  config.num_records = 600;
  config.num_entities = 100;
  config.seed = 2024;
  Dataset ds = GeneratePublicationDataset(config);

  std::printf("Generated %zu citation records for %zu papers across "
              "%zu sources.\n\n",
              ds.size(), ds.NumEntities(), ds.schemas().size());

  HeraOptions opts;
  opts.xi = 0.5;
  opts.delta = 0.5;
  auto inc_or = IncrementalHera::Create(opts, ds.schemas());
  if (!inc_or.ok()) {
    std::fprintf(stderr, "error: %s\n", inc_or.status().ToString().c_str());
    return 1;
  }
  IncrementalHera& inc = **inc_or;

  // First batch: 70% of the records.
  const size_t first_batch = ds.size() * 7 / 10;
  for (uint32_t r = 0; r < first_batch; ++r) {
    auto id = inc.AddRecord(ds.record(r).schema_id(), ds.record(r).values());
    if (!id.ok()) {
      std::fprintf(stderr, "error: %s\n", id.status().ToString().c_str());
      return 1;
    }
  }
  inc.Resolve();
  {
    std::vector<uint32_t> truth(ds.entity_of().begin(),
                                ds.entity_of().begin() + first_batch);
    PairMetrics m = EvaluatePairs(inc.Labels(), truth);
    std::printf("After batch 1 (%zu records): P=%.3f R=%.3f F1=%.3f\n",
                first_batch, m.precision, m.recall, m.f1);
  }

  // Second batch streams in; resolution resumes incrementally.
  for (uint32_t r = static_cast<uint32_t>(first_batch); r < ds.size(); ++r) {
    auto id = inc.AddRecord(ds.record(r).schema_id(), ds.record(r).values());
    if (!id.ok()) {
      std::fprintf(stderr, "error: %s\n", id.status().ToString().c_str());
      return 1;
    }
  }
  inc.Resolve();
  auto labels = inc.Labels();
  PairMetrics m = EvaluatePairs(labels, ds.entity_of());
  std::printf("After batch 2 (%zu records): P=%.3f R=%.3f F1=%.3f ARI=%.3f\n\n",
              ds.size(), m.precision, m.recall, m.f1,
              AdjustedRandIndex(labels, ds.entity_of()));

  // Per-entity outcome breakdown.
  auto outcomes = PerEntityBreakdown(labels, ds.entity_of());
  BreakdownSummary summary = SummarizeBreakdown(outcomes);
  std::printf("Entity outcomes: %zu exact, %zu split, %zu contaminated "
              "(of %zu papers)\n",
              summary.exact, summary.split, summary.contaminated,
              outcomes.size());

  // Show one resolved paper with its merged evidence.
  for (const auto& [rid, sr] : inc.super_records()) {
    (void)rid;
    if (sr.members().size() >= 4) {
      std::printf("\nExample super record (%zu source records merged):\n  %s\n",
                  sr.members().size(), sr.ToString().c_str());
      break;
    }
  }
  std::printf("\nStats: index=%zu pairs, %zu iterations, %zu comparisons, "
              "%zu schema matchings decided\n",
              inc.stats().index_size, inc.stats().iterations,
              inc.stats().comparisons, inc.stats().decided_schema_matchings);
  return 0;
}
