// The paper's motivating example (Fig 1): three customer databases
// with different schemas, including the description-difference pair
// (r1, r2) that no direct pairwise comparison can catch.
//
//   $ ./build/examples/customer_dedup
//
// Walks through the compare-and-merge process and prints the final
// entities next to the ground truth, plus what a naive pairwise
// approach would have produced.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/explain.h"
#include "core/hera.h"
#include "data/entity_fusion.h"
#include "eval/metrics.h"
#include "sim/metrics.h"

using namespace hera;

namespace {

Dataset MakeCustomers() {
  Dataset ds;
  uint32_t c1 = ds.schemas().Register(
      Schema("CustomerI", {"name", "address", "e-mail", "city", "Con.Type"}));
  uint32_t c2 =
      ds.schemas().Register(Schema("CustomerII", {"name", "Contact No.", "Job"}));
  uint32_t c3 = ds.schemas().Register(
      Schema("CustomerIII", {"name", "addr", "work mailbox", "Tel", "Con.Type"}));
  auto sv = [](const char* s) { return Value(std::string(s)); };
  ds.AddRecord(c1, {sv("John"), sv("2 Norman Street"), sv("bush@gmail"),
                    sv("LA"), sv("Electronic")});
  ds.AddRecord(c2, {sv("Bush"), sv("831-432"), sv("manager")});
  ds.AddRecord(c2, {sv("J.Bush"), sv("247-326"), sv("Product manager")});
  ds.AddRecord(c3, {sv("Bush"), sv("2 West Norman"), sv("bush@gmail"),
                    sv("831-432"), sv("Electronic")});
  ds.AddRecord(c3, {sv("J.Bush"), sv("West Norman"), sv("john@gmail"),
                    sv("247-326"), sv("sports")});
  ds.AddRecord(c3, {sv("John"), sv("2 Norman Street"), sv("bush@gmail"),
                    sv("831-432"), sv("electronics")});
  ds.entity_of() = {0, 0, 1, 0, 1, 0};
  // Canonical attribute concepts (0 name, 1 address, 2 e-mail, 3 city,
  // 4 Con.Type, 5 phone, 6 job) — used by the final fusion step.
  auto map_attr = [&](uint32_t schema, uint32_t attr, uint32_t concept_id) {
    ds.canonical_attr()[AttrRef{schema, attr}] = concept_id;
  };
  map_attr(c1, 0, 0); map_attr(c1, 1, 1); map_attr(c1, 2, 2);
  map_attr(c1, 3, 3); map_attr(c1, 4, 4);
  map_attr(c2, 0, 0); map_attr(c2, 1, 5); map_attr(c2, 2, 6);
  map_attr(c3, 0, 0); map_attr(c3, 1, 1); map_attr(c3, 2, 2);
  map_attr(c3, 3, 5); map_attr(c3, 4, 4);
  return ds;
}

}  // namespace

int main() {
  Dataset ds = MakeCustomers();
  std::printf("Input: 6 customer records under 3 schemas.\n");
  std::printf("Ground truth: {r1,r2,r4,r6} and {r3,r5}.\n");
  std::printf("Note: r1 and r2 share NO attribute above threshold --\n");
  std::printf("the paper's 'description difference' pair.\n\n");

  HeraOptions opts;
  opts.xi = 0.5;
  opts.delta = 0.5;
  auto result = Hera(opts).Run(ds);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("HERA result (xi=%.2f, delta=%.2f):\n", opts.xi, opts.delta);
  std::map<uint32_t, std::vector<uint32_t>> clusters;
  for (uint32_t r = 0; r < ds.size(); ++r) {
    clusters[result->entity_of[r]].push_back(r);
  }
  for (const auto& [label, members] : clusters) {
    std::printf("  entity e%u: {", label);
    for (size_t i = 0; i < members.size(); ++i) {
      std::printf("%sr%u", i ? "," : "", members[i] + 1);
    }
    std::printf("}\n");
  }

  PairMetrics m = EvaluatePairs(result->entity_of, ds.entity_of());
  std::printf("\nprecision=%.3f recall=%.3f F1=%.3f\n", m.precision, m.recall,
              m.f1);
  std::printf("merges=%zu iterations=%zu direct_merges=%zu comparisons=%zu\n",
              result->stats.merges, result->stats.iterations,
              result->stats.direct_merges, result->stats.comparisons);

  std::printf("\nFinal super records (merged evidence per entity):\n");
  for (const auto& [rid, sr] : result->super_records) {
    (void)rid;
    std::printf("  %s\n", sr.ToString().c_str());
  }

  // Why did r4 and r6 merge directly? (Example 4 of the paper.)
  auto metric = MakeSimilarity("jaccard_q2");
  std::printf("\nExplanation of the (r4, r6) comparison:\n%s\n",
              ExplainPair(ds.schemas(), SuperRecord::FromRecord(ds.record(3)),
                          SuperRecord::FromRecord(ds.record(5)), *metric, 0.5)
                  .ToString()
                  .c_str());

  // Final data exchange: one fused record per entity (Fig 1-(d)'s last
  // step — the "ideal exchange" joins records of the same entity).
  FusionResult fused = FuseEntities(ds, result->super_records, AllConcepts(ds));
  std::printf("\nFused target records (name/address/e-mail/city/type/phone/job):\n");
  for (const Record& r : fused.dataset.records()) {
    std::printf("  [");
    for (size_t a = 0; a < r.size(); ++a) {
      std::printf("%s%s", a ? " | " : "",
                  r.value(a).is_null() ? "-" : r.value(a).ToString().c_str());
    }
    std::printf("]\n");
  }
  return m.f1 == 1.0 ? 0 : 2;
}
