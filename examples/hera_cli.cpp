// hera_cli: run HERA over a dataset file from the command line.
//
//   hera_cli resolve <input.hera> [--xi X] [--delta D] [--metric NAME]
//                    [--threads N] [--index-backend ordered|flat]
//                    [--kernel-dispatch auto|avx2|sse4|scalar]
//                    [--out labels.csv] [--quiet]
//                    [--emit-report report.json] [--log-level LEVEL]
//                    [--trace-out trace.json] [--timeline-csv FILE]
//                    [--timeline-interval-ms MS]
//                    [--checkpoint-dir DIR] [--checkpoint-every K]
//                    [--resume] [--deadline-ms MS]
//   hera_cli generate <movies|publications> <output.hera>
//                    [--records N] [--entities E] [--seed S]
//   hera_cli stats <input.hera>
//
// `resolve` prints (or writes) one "record_id,entity_label" line per
// record plus run statistics; when the input carries ground truth it
// also reports precision/recall/F1. --emit-report turns on metric
// collection and writes the machine-readable run report (JSON; see
// docs/observability.md). --trace-out writes the run as a Chrome-trace
// JSON file (open at ui.perfetto.dev or chrome://tracing); it and
// --timeline-csv imply report collection and, unless overridden by
// --timeline-interval-ms, a 50 ms timeline sampler. Profiling is
// observation-only: labels and merge order are byte-identical with it
// on or off. --log-level (debug|info|warning|error|off)
// overrides the HERA_LOG_LEVEL environment variable. --threads (or the
// HERA_THREADS environment variable; the flag wins) sets
// HeraOptions::num_threads — results are identical at any setting (see
// docs/performance.md); the run report records the value used.
// --index-backend (or HERA_INDEX_BACKEND; the flag wins) picks the
// hash-structure backend for candidate generation and index lookups:
// "ordered" (the default node-based containers) or "flat" (the
// batched, prefetch-pipelined flat table — same labels and merge
// order, lower probe cost; see docs/performance.md).
// --kernel-dispatch (or HERA_KERNEL_DISPATCH; the flag wins) picks the
// SIMD tier for the similarity kernels: "auto" (default: best
// supported), "avx2", "sse4", or "scalar". Tiers unsupported by the
// CPU clamp down; labels and merge order are byte-identical at every
// tier (see docs/performance.md, "SIMD kernel tier").
//
// Durability: --checkpoint-dir makes the run resumable after a kill or
// a --deadline-ms truncation (snapshots + WAL, docs/file_format.md);
// --resume continues from the directory's newest checkpoint (falling
// back to a fresh run when it holds none).
//
// Progressive mode: --progressive verifies candidate groups best-first
// (highest similarity upper bound first) whenever the run is governed,
// so a budget or deadline cut sheds the least promising work;
// --max-verifications N caps total verifier invocations and
// --frontier-capacity C bounds the per-pass reordering (see
// docs/operational_limits.md, "Progressive mode"). SIGINT/SIGTERM are
// converted into cooperative cancellation: the run stops at its next
// safe point, checkpoints, and exits 2 with a resume hint.
//
// Exit codes: 0 the run completed; 2 the run ended governed (degraded,
// iteration cap, budget spent, or truncated — the labeling is valid
// and, with a checkpoint directory, resumable); 3 error (unreadable
// input, corrupt checkpoint, write failure); 64 usage error.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/file_util.h"
#include "common/logging.h"
#include "core/hera.h"
#include "data/ambiguity_generator.h"
#include "data/csv.h"
#include "data/profile.h"
#include "data/movie_generator.h"
#include "data/publication_generator.h"
#include "eval/cluster_metrics.h"
#include "eval/metrics.h"
#include "obs/perfetto.h"

using namespace hera;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hera_cli resolve <input.hera> [--xi X] [--delta D] [--metric NAME]\n"
      "                   [--threads N] [--index-backend ordered|flat]\n"
      "                   [--kernel-dispatch auto|avx2|sse4|scalar]\n"
      "                   [--out labels.csv] [--quiet]\n"
      "                   [--emit-report report.json] [--log-level LEVEL]\n"
      "                   [--trace-out trace.json] [--timeline-csv FILE]\n"
      "                   [--timeline-interval-ms MS]\n"
      "                   [--checkpoint-dir DIR] [--checkpoint-every K]\n"
      "                   [--resume] [--deadline-ms MS]\n"
      "                   [--progressive] [--max-verifications N]\n"
      "                   [--frontier-capacity C]\n"
      "  hera_cli generate <movies|publications|ambiguous> <output.hera>\n"
      "                   [--records N] [--entities E] [--seed S]\n"
      "                   [--decoys D]   (ambiguous only; --records unused)\n"
      "  hera_cli stats <input.hera>\n");
  return 64;
}

/// Signal-to-cancellation bridge: SIGINT/SIGTERM request RunGuard
/// cancellation, so the run stops at its next safe point, writes its
/// checkpoint (when --checkpoint-dir is set), and exits 2 with a
/// resume hint instead of dying mid-write. RequestCancel is one
/// relaxed atomic store — async-signal-safe.
CancellationToken g_signal_cancel = CancellationToken::Make();

extern "C" void HandleStopSignal(int /*sig*/) {
  g_signal_cancel.RequestCancel();
}

/// Returns the value following `flag`, or nullptr.
const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int CmdResolve(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto ds = ReadDataset(argv[0]);
  if (!ds.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", argv[0],
                 ds.status().ToString().c_str());
    return 3;
  }
  HeraOptions opts;
  if (const char* v = FlagValue(argc, argv, "--xi")) opts.xi = std::atof(v);
  if (const char* v = FlagValue(argc, argv, "--delta")) opts.delta = std::atof(v);
  if (const char* v = FlagValue(argc, argv, "--metric")) opts.metric = v;
  if (const char* v = std::getenv("HERA_THREADS")) {
    opts.num_threads = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--threads")) {
    opts.num_threads = std::strtoull(v, nullptr, 10);
  }
  const char* backend_name = std::getenv("HERA_INDEX_BACKEND");
  if (const char* v = FlagValue(argc, argv, "--index-backend")) backend_name = v;
  if (backend_name != nullptr &&
      !IndexBackendFromString(backend_name, &opts.index_backend)) {
    std::fprintf(stderr, "unknown index backend %s (want ordered|flat)\n",
                 backend_name);
    return Usage();
  }
  const char* dispatch_name = std::getenv("HERA_KERNEL_DISPATCH");
  if (const char* v = FlagValue(argc, argv, "--kernel-dispatch")) {
    dispatch_name = v;
  }
  if (dispatch_name != nullptr &&
      !KernelDispatchFromString(dispatch_name, &opts.kernel_dispatch)) {
    std::fprintf(stderr,
                 "unknown kernel dispatch %s (want auto|avx2|sse4|scalar)\n",
                 dispatch_name);
    return Usage();
  }
  if (const char* v = FlagValue(argc, argv, "--checkpoint-dir")) {
    opts.checkpoint_dir = v;
  }
  if (const char* v = FlagValue(argc, argv, "--checkpoint-every")) {
    opts.checkpoint_every = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--deadline-ms")) {
    opts.guard.WithTimeoutMs(std::atof(v));
  }
  opts.progressive = HasFlag(argc, argv, "--progressive");
  if (const char* v = FlagValue(argc, argv, "--max-verifications")) {
    opts.guard.WithMaxVerifications(std::strtoull(v, nullptr, 10));
  }
  if (const char* v = FlagValue(argc, argv, "--frontier-capacity")) {
    opts.frontier_capacity = std::strtoull(v, nullptr, 10);
  }
  const bool quiet_early = HasFlag(argc, argv, "--quiet");
  if (opts.progressive && !quiet_early) {
    opts.guard.WithBudgetObserver([](const char* reason) {
      std::fprintf(stderr,
                   "progressive cut (%s): draining frontier and writing "
                   "checkpoint\n",
                   reason);
    });
  }
  // An operator Ctrl-C (or a supervisor's SIGTERM) becomes cooperative
  // cancellation: the run ends governed at the next safe point with a
  // valid labeling, a final checkpoint, and exit code 2.
  opts.guard.WithCancellation(g_signal_cancel);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  const bool resume = HasFlag(argc, argv, "--resume");
  if (resume && opts.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return Usage();
  }
  const bool quiet = HasFlag(argc, argv, "--quiet");
  const char* report_path = FlagValue(argc, argv, "--emit-report");
  const char* trace_path = FlagValue(argc, argv, "--trace-out");
  const char* timeline_csv_path = FlagValue(argc, argv, "--timeline-csv");
  opts.collect_report =
      report_path != nullptr || trace_path != nullptr ||
      timeline_csv_path != nullptr;
  // Trace/timeline output wants sampled counter tracks, so those flags
  // turn the sampler on at its 50 ms default unless the user sets an
  // explicit interval (0 disables the sampler but keeps span tracing).
  if (trace_path != nullptr || timeline_csv_path != nullptr) {
    opts.timeline_interval_ms = 50;
  }
  if (const char* v = FlagValue(argc, argv, "--timeline-interval-ms")) {
    opts.timeline_interval_ms = std::strtoull(v, nullptr, 10);
  }

  StatusOr<HeraResult> result =
      resume ? Hera(opts).Resume(*ds) : Hera(opts).Run(*ds);
  if (resume && !result.ok() &&
      result.status().code() == StatusCode::kNotFound) {
    std::fprintf(stderr, "no checkpoint in %s; starting a fresh run\n",
                 opts.checkpoint_dir.c_str());
    result = Hera(opts).Run(*ds);
  }
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 3;
  }

  const char* out_path = FlagValue(argc, argv, "--out");
  if (out_path != nullptr) {
    std::string csv = "record_id,entity_label\n";
    for (uint32_t r = 0; r < ds->size(); ++r) {
      csv += std::to_string(r) + "," + std::to_string(result->entity_of[r]) +
             "\n";
    }
    Status wst = AtomicWriteFile(out_path, csv);
    if (!wst.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", out_path,
                   wst.ToString().c_str());
      return 3;
    }
  } else if (!quiet) {
    std::printf("record_id,entity_label\n");
    for (uint32_t r = 0; r < ds->size(); ++r) {
      std::printf("%u,%u\n", r, result->entity_of[r]);
    }
  }

  const HeraStats& st = result->stats;
  std::fprintf(stderr,
               "records=%zu entities=%zu index=%zu iterations=%zu "
               "comparisons=%zu direct=%zu merges=%zu backend=%s time=%.1fms\n",
               ds->size(), result->super_records.size(), st.index_size,
               st.iterations, st.comparisons, st.direct_merges, st.merges,
               IndexBackendToString(opts.index_backend), st.total_ms);
  int exit_code = 0;
  if (st.outcome != RunOutcome::kCompleted) {
    std::fprintf(stderr, "outcome=%s (run was governed; labeling is valid)\n",
                 RunOutcomeToString(st.outcome));
    if (!opts.checkpoint_dir.empty()) {
      std::fprintf(stderr,
                   "resume hint: rerun with --checkpoint-dir %s --resume to "
                   "continue this run\n",
                   opts.checkpoint_dir.c_str());
    }
    exit_code = 2;
  }
  if (report_path != nullptr) {
    Status wst = AtomicWriteFile(report_path, result->report.ToJson() + "\n");
    if (!wst.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", report_path,
                   wst.ToString().c_str());
      return 3;
    }
    if (!quiet) {
      std::fprintf(stderr, "%s", result->report.ToString().c_str());
      std::fprintf(stderr, "report written to %s\n", report_path);
    }
  }
  if (opts.collect_report && result->report.empty()) {
    std::fprintf(stderr,
                 "note: this build has observability compiled out "
                 "(-DHERA_OBS=OFF); report/trace/timeline output is "
                 "empty-but-valid\n");
  }
  if (trace_path != nullptr) {
    Status wst = AtomicWriteFile(trace_path,
                                 obs::ExportChromeTrace(result->report));
    if (!wst.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", trace_path,
                   wst.ToString().c_str());
      return 3;
    }
    if (!quiet) {
      std::fprintf(stderr,
                   "trace written to %s (open at ui.perfetto.dev)\n",
                   trace_path);
    }
  }
  if (timeline_csv_path != nullptr) {
    Status wst = AtomicWriteFile(timeline_csv_path,
                                 result->report.TimelineCsv());
    if (!wst.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", timeline_csv_path,
                   wst.ToString().c_str());
      return 3;
    }
    if (!quiet) {
      std::fprintf(stderr, "timeline written to %s\n", timeline_csv_path);
    }
  }
  if (ds->has_ground_truth()) {
    PairMetrics m = EvaluatePairs(result->entity_of, ds->entity_of());
    std::fprintf(stderr, "precision=%.3f recall=%.3f F1=%.3f ARI=%.3f\n",
                 m.precision, m.recall, m.f1,
                 AdjustedRandIndex(result->entity_of, ds->entity_of()));
  }
  return exit_code;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string domain = argv[0];
  std::string out_path = argv[1];
  size_t records = 1000, entities = 150;
  uint64_t seed = 1;
  if (const char* v = FlagValue(argc, argv, "--records")) {
    records = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--entities")) {
    entities = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--seed")) {
    seed = std::strtoull(v, nullptr, 10);
  }
  if (domain == "ambiguous") {
    // Verification-heavy corpus: every merge costs a KM verification,
    // decoys add verification-shaped non-matches. Record count follows
    // from entities and decoys, so --records does not apply.
    if (entities == 0) {
      std::fprintf(stderr, "need entities >= 1\n");
      return Usage();
    }
    AmbiguityGeneratorConfig config;
    config.num_entities = entities;
    config.seed = seed;
    if (const char* v = FlagValue(argc, argv, "--decoys")) {
      config.num_decoys = std::strtoull(v, nullptr, 10);
    }
    Dataset ds = GenerateAmbiguousDataset(config);
    Status st = WriteDataset(ds, out_path);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 3;
    }
    std::printf("wrote %zu records / %zu entities / %zu schemas to %s\n",
                ds.size(), ds.NumEntities(), ds.schemas().size(),
                out_path.c_str());
    return 0;
  }
  if (entities == 0 || records < entities) {
    std::fprintf(stderr, "need records >= entities >= 1\n");
    return Usage();
  }
  Dataset ds;
  if (domain == "movies") {
    MovieGeneratorConfig config;
    config.num_records = records;
    config.num_entities = entities;
    config.seed = seed;
    ds = GenerateMovieDataset(config);
  } else if (domain == "publications") {
    PublicationGeneratorConfig config;
    config.num_records = records;
    config.num_entities = entities;
    config.seed = seed;
    ds = GeneratePublicationDataset(config);
  } else {
    return Usage();
  }
  Status st = WriteDataset(ds, out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 3;
  }
  std::printf("wrote %zu records / %zu entities / %zu schemas to %s\n",
              ds.size(), ds.NumEntities(), ds.schemas().size(),
              out_path.c_str());
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto ds = ReadDataset(argv[0]);
  if (!ds.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", argv[0],
                 ds.status().ToString().c_str());
    return 3;
  }
  std::printf("records:             %zu\n", ds->size());
  std::printf("schemas:             %zu\n", ds->schemas().size());
  for (uint32_t s = 0; s < ds->schemas().size(); ++s) {
    size_t count = 0;
    for (const Record& r : ds->records()) {
      if (r.schema_id() == s) ++count;
    }
    std::printf("  %-16s %zu records, %zu attributes\n",
                ds->schemas().Get(s).name().c_str(), count,
                ds->schemas().Get(s).size());
  }
  std::printf("ground truth:        %s\n", ds->has_ground_truth() ? "yes" : "no");
  if (ds->has_ground_truth()) {
    std::printf("entities:            %zu\n", ds->NumEntities());
  }
  std::printf("distinct attributes: %zu\n", ds->NumDistinctAttributes());
  std::printf("\n%s", ProfileDataset(*ds).ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (const char* v = FlagValue(argc, argv, "--log-level")) {
    LogLevel level;
    if (!ParseLogLevel(v, &level)) {
      std::fprintf(stderr,
                   "unknown --log-level %s (want debug|info|warning|error|off)\n",
                   v);
      return 64;
    }
    SetLogLevel(level);
  }
  std::string cmd = argv[1];
  if (cmd == "resolve") return CmdResolve(argc - 2, argv + 2);
  if (cmd == "generate") return CmdGenerate(argc - 2, argv + 2);
  if (cmd == "stats") return CmdStats(argc - 2, argv + 2);
  return Usage();
}
