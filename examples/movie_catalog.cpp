// Movie catalog integration: generate an IMDB/DBPedia-style
// heterogeneous movie dataset, resolve it with HERA, and compare
// against running a naive matcher on the lossy homogeneous projection
// (the paper's conventional pipeline, Fig 1-(c)).
//
//   $ ./build/examples/movie_catalog [num_records] [num_entities]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "baselines/naive.h"
#include "core/hera.h"
#include "data/data_exchange.h"
#include "data/movie_generator.h"
#include "eval/metrics.h"
#include "sim/metrics.h"

using namespace hera;

int main(int argc, char** argv) {
  MovieGeneratorConfig config;
  config.num_records = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  config.num_entities = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 60;
  config.seed = 42;

  std::printf("Generating %zu movie records for %zu entities across 4 "
              "source profiles...\n",
              config.num_records, config.num_entities);
  Dataset ds = GenerateMovieDataset(config);
  std::printf("  schemas: ");
  for (uint32_t s = 0; s < ds.schemas().size(); ++s) {
    std::printf("%s%s(%zu attrs)", s ? ", " : "",
                ds.schemas().Get(s).name().c_str(), ds.schemas().Get(s).size());
  }
  std::printf("\n  distinct attribute concepts: %zu\n\n",
              ds.NumDistinctAttributes());

  // --- HERA on the heterogeneous records (the paper's Fig 1-(d)).
  HeraOptions opts;
  opts.xi = 0.5;
  opts.delta = 0.5;
  auto result = Hera(opts).Run(ds);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  PairMetrics hera_m = EvaluatePairs(result->entity_of, ds.entity_of());
  std::printf("HERA on heterogeneous records:\n");
  std::printf("  P=%.3f R=%.3f F1=%.3f  (index=%zu pairs, k=%zu iterations, "
              "%zu comparisons, %.1f ms)\n\n",
              hera_m.precision, hera_m.recall, hera_m.f1,
              result->stats.index_size, result->stats.iterations,
              result->stats.comparisons, result->stats.total_ms);

  // --- Conventional pipeline: exchange to a narrow random target
  // schema, then match homogeneous records. Which attributes the
  // random target schema keeps decides how lossy one projection is, so
  // average over several draws (a lucky draw can keep exactly the
  // discriminative attributes; an unlucky one loses them).
  auto metric = MakeSimilarity("jaccard_q2");
  double f1_sum = 0.0, f1_min = 1.0, f1_max = 0.0;
  const int kDraws = 5;
  size_t target_width = 0;
  for (uint64_t seed = 1; seed <= kDraws; ++seed) {
    ExchangeResult projected = ExchangeToTargetSchema(ds, 1.0 / 3.0, seed);
    target_width = projected.target_concepts.size();
    auto naive = NaivePairwiseER(projected.dataset, *metric, {0.5, 0.5, false});
    double f1 = EvaluatePairs(naive, ds.entity_of()).f1;
    f1_sum += f1;
    f1_min = std::min(f1_min, f1);
    f1_max = std::max(f1_max, f1);
  }
  double naive_f1 = f1_sum / kDraws;
  std::printf("Conventional pipeline (project to a random %zu-attribute "
              "target schema, then match;\naveraged over %d target-schema "
              "draws):\n",
              target_width, kDraws);
  std::printf("  F1=%.3f (min %.3f, max %.3f across draws)\n\n", naive_f1,
              f1_min, f1_max);

  std::printf("F1 delta (HERA - conventional mean): %+.3f\n",
              hera_m.f1 - naive_f1);
  return 0;
}
