// Quickstart: resolve a handful of heterogeneous records in ~30 lines.
//
//   $ ./build/examples/quickstart
//
// Three sources describe people under different schemas; HERA finds
// which rows refer to the same person without any schema matching.

#include <cstdio>

#include "core/hera.h"

using namespace hera;

int main() {
  Dataset ds;

  // Each source brings its own schema.
  uint32_t crm = ds.schemas().Register(
      Schema("crm", {"full_name", "email", "city"}));
  uint32_t billing = ds.schemas().Register(
      Schema("billing", {"customer", "invoice_email", "phone"}));
  uint32_t support = ds.schemas().Register(
      Schema("support", {"name", "phone_number", "last_ticket"}));

  auto sv = [](const char* s) { return Value(std::string(s)); };
  ds.AddRecord(crm, {sv("Alice Johnson"), sv("alice.j@example.com"),
                     sv("Portland")});
  ds.AddRecord(billing, {sv("Alice Johnson"), sv("alice.j@example.com"),
                         sv("503-555-0188")});
  ds.AddRecord(support, {sv("A. Johnson"), sv("503-555-0188"),
                         sv("printer on fire")});
  ds.AddRecord(crm, {sv("Robert Chen"), sv("rchen@example.com"),
                     sv("Seattle")});
  ds.AddRecord(billing, {sv("Robert Chen"), sv("rchen@example.com"),
                         sv("206-555-0123")});

  HeraOptions opts;
  opts.xi = 0.5;     // Value similarity threshold.
  opts.delta = 0.5;  // Record similarity threshold.

  auto result = Hera(opts).Run(ds);
  if (!result.ok()) {
    std::fprintf(stderr, "HERA failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("record -> entity label\n");
  for (uint32_t r = 0; r < ds.size(); ++r) {
    std::printf("  r%u (%s) -> e%u\n", r,
                ds.schemas().Get(ds.record(r).schema_id()).name().c_str(),
                result->entity_of[r]);
  }
  std::printf("\nresolved entities:\n");
  for (const auto& [rid, sr] : result->super_records) {
    (void)rid;
    std::printf("  %s\n", sr.ToString().c_str());
  }
  std::printf("\nstats: index=%zu pairs, %zu iterations, %zu direct merges, "
              "%zu full verifications\n",
              result->stats.index_size, result->stats.iterations,
              result->stats.direct_merges, result->stats.comparisons);
  return 0;
}
