// Schema matching discovery: HERA's schema-based method (Section IV-B)
// promotes instance-level field matches into trusted attribute
// matchings by majority vote. This example prints the matchings HERA
// discovered and scores them against the generator's canonical
// attribute concepts.
//
//   $ ./build/examples/schema_discovery

#include <cstdio>

#include "core/hera.h"
#include "data/movie_generator.h"
#include "schema/majority_vote.h"

using namespace hera;

int main() {
  MovieGeneratorConfig config;
  config.num_records = 500;
  config.num_entities = 70;
  config.seed = 7;
  Dataset ds = GenerateMovieDataset(config);

  // Run HERA but keep our own predictor to inspect: replicate the
  // voting by re-running verification predictions through a predictor
  // with the same parameters. Simplest faithful route: run HERA and
  // read its decided-matchings count, then rebuild the vote from a
  // second pass where we ask HERA for matchings via options.
  HeraOptions opts;
  opts.xi = 0.5;
  opts.delta = 0.5;
  opts.enable_schema_voting = true;
  opts.vote_prior_p = 0.8;
  opts.vote_rho = 0.6;
  auto result = Hera(opts).Run(ds);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("HERA resolved %zu records into %zu entities; the vote "
              "promoted %zu schema matchings.\n\n",
              ds.size(), result->super_records.size(),
              result->stats.decided_schema_matchings);

  // Score discovered matchings indirectly: inspect the merged super
  // records — fields that merged values from different schemas imply
  // attribute correspondences. Count how often the implied matchings
  // agree with the canonical concepts.
  size_t agree = 0, disagree = 0;
  for (const auto& [rid, sr] : result->super_records) {
    (void)rid;
    for (const Field& f : sr.fields()) {
      for (size_t i = 0; i < f.size(); ++i) {
        for (size_t j = i + 1; j < f.size(); ++j) {
          const AttrRef& a = f.value(i).origin;
          const AttrRef& b = f.value(j).origin;
          if (a.schema_id == b.schema_id) continue;
          uint32_t ca = ds.canonical_attr().at(a);
          uint32_t cb = ds.canonical_attr().at(b);
          if (ca == cb) {
            ++agree;
          } else {
            ++disagree;
          }
        }
      }
    }
  }
  double total = static_cast<double>(agree + disagree);
  std::printf("Cross-schema field co-locations in final super records:\n");
  std::printf("  consistent with ground-truth concepts: %zu\n", agree);
  std::printf("  inconsistent:                          %zu\n", disagree);
  if (total > 0) {
    std::printf("  field-matching accuracy: %.1f%%\n", 100.0 * agree / total);
  }

  std::printf("\nPer-schema attribute names for reference:\n");
  for (uint32_t s = 0; s < ds.schemas().size(); ++s) {
    const Schema& schema = ds.schemas().Get(s);
    std::printf("  %-10s:", schema.name().c_str());
    for (const auto& attr : schema.attributes()) std::printf(" %s", attr.c_str());
    std::printf("\n");
  }
  return 0;
}
