#include "baselines/collective_er.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "baselines/homogeneous.h"
#include "common/union_find.h"
#include "text/normalize.h"

namespace hera {

namespace {

/// State of the agglomerative process.
struct CollectiveState {
  UnionFind uf;
  std::unordered_map<uint32_t, HomogeneousCluster> clusters;
  // Normalized value -> clusters containing it (relational structure).
  std::unordered_map<std::string, std::unordered_set<uint32_t>> posting;
  // Cluster -> its value keys.
  std::unordered_map<uint32_t, std::unordered_set<std::string>> keys_of;
  // Merge epoch per cluster; stale heap entries are detected with it.
  std::unordered_map<uint32_t, uint64_t> version;

  std::unordered_set<uint32_t> Neighborhood(uint32_t c) const {
    std::unordered_set<uint32_t> nb;
    auto it = keys_of.find(c);
    if (it == keys_of.end()) return nb;
    for (const std::string& key : it->second) {
      auto pit = posting.find(key);
      if (pit == posting.end()) continue;
      for (uint32_t other : pit->second) {
        if (other != c) nb.insert(other);
      }
    }
    return nb;
  }
};

/// Jaccard of the two neighborhoods with `a` and `b` themselves
/// excluded. Returns a negative sentinel when neither cluster has any
/// external neighbor: no relational evidence exists, which must not be
/// read as negative evidence (two isolated duplicates would otherwise
/// be pushed below threshold by a zero term).
double RelationalJaccard(const std::unordered_set<uint32_t>& na,
                         const std::unordered_set<uint32_t>& nb, uint32_t a,
                         uint32_t b) {
  size_t inter = 0, uni = 0;
  std::unordered_set<uint32_t> all;
  for (uint32_t x : na) {
    if (x != a && x != b) all.insert(x);
  }
  for (uint32_t x : nb) {
    if (x != a && x != b) all.insert(x);
  }
  uni = all.size();
  if (uni == 0) return -1.0;
  for (uint32_t x : na) {
    if (x != a && x != b && nb.count(x)) ++inter;
  }
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

std::vector<uint32_t> CollectiveER(const Dataset& dataset,
                                   const ValueSimilarity& simv,
                                   const CollectiveEROptions& options) {
  const size_t n = dataset.size();
  std::vector<uint32_t> labels(n, 0);
  if (n == 0) return labels;

  CollectiveState st;
  st.uf.Reset(n);
  for (const Record& r : dataset.records()) {
    st.clusters.emplace(r.id(), HomogeneousCluster::FromRecord(r));
    st.version[r.id()] = 0;
    auto& keys = st.keys_of[r.id()];
    for (const Value& v : r.values()) {
      if (v.is_null()) continue;
      std::string key = Normalize(v.ToString());
      if (key.empty()) continue;
      keys.insert(key);
      st.posting[key].insert(r.id());
    }
  }

  BestPairScorer scorer(simv);
  auto combined_sim = [&](uint32_t a, uint32_t b) {
    double attr = ClusterSimilarity(st.clusters.at(a), st.clusters.at(b), scorer,
                                    options.xi);
    double rel = RelationalJaccard(st.Neighborhood(a), st.Neighborhood(b), a, b);
    if (rel < 0.0) return attr;  // No relational evidence either way.
    return (1.0 - options.alpha) * attr + options.alpha * rel;
  };

  // Candidate cluster pairs from blocking; max-heap with lazy staleness.
  struct HeapItem {
    double sim;
    uint32_t a, b;
    uint64_t va, vb;
    bool operator<(const HeapItem& o) const { return sim < o.sim; }
  };
  std::priority_queue<HeapItem> heap;
  std::set<std::pair<uint32_t, uint32_t>> cand_edges;
  for (auto [i, j] : CandidateRecordPairs(dataset, simv, options.xi)) {
    cand_edges.emplace(std::min(i, j), std::max(i, j));
  }
  for (auto [i, j] : cand_edges) {
    double s = combined_sim(i, j);
    if (s >= options.delta) heap.push({s, i, j, 0, 0});
  }
  // Cluster -> candidate partners (maintained across merges).
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> partners;
  for (auto [i, j] : cand_edges) {
    partners[i].insert(j);
    partners[j].insert(i);
  }

  while (!heap.empty()) {
    HeapItem top = heap.top();
    heap.pop();
    uint32_t a = st.uf.Find(top.a), b = st.uf.Find(top.b);
    if (a == b) continue;
    if (st.version[a] != top.va || st.version[b] != top.vb ||
        a != top.a || b != top.b) {
      continue;  // Stale entry; a fresh one was (or will be) pushed.
    }
    if (top.sim < options.delta) continue;

    // Merge b into a.
    uint32_t survivor = st.uf.Union(a, b);
    uint32_t absorbed = survivor == a ? b : a;
    st.clusters.at(survivor).Absorb(st.clusters.at(absorbed));
    st.clusters.erase(absorbed);
    for (const std::string& key : st.keys_of[absorbed]) {
      st.posting[key].erase(absorbed);
      st.posting[key].insert(survivor);
      st.keys_of[survivor].insert(key);
    }
    st.keys_of.erase(absorbed);
    ++st.version[survivor];

    // Re-point candidate partners and refresh affected similarities.
    auto& pa = partners[survivor];
    for (uint32_t p : partners[absorbed]) {
      if (st.uf.Find(p) != survivor) pa.insert(p);
    }
    partners.erase(absorbed);
    std::vector<uint32_t> fresh;
    for (uint32_t p : pa) {
      uint32_t rp = st.uf.Find(p);
      if (rp != survivor) fresh.push_back(rp);
    }
    std::sort(fresh.begin(), fresh.end());
    fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
    for (uint32_t p : fresh) {
      double s = combined_sim(survivor, p);
      if (s >= options.delta) {
        heap.push({s, survivor, p, st.version[survivor], st.version[p]});
      }
    }
  }

  for (uint32_t r = 0; r < n; ++r) labels[r] = st.uf.Find(r);
  return labels;
}

}  // namespace hera
