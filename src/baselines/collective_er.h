// CR — collective entity resolution in the spirit of Bhattacharya &
// Getoor ("Collective entity resolution in relational data", TKDD
// 2007): greedy agglomerative clustering whose cluster similarity
// blends attribute similarity with *relational* similarity — the
// overlap between the clusters' neighborhoods, where two clusters are
// neighbors when they share an exact (normalized) attribute value.
//
// Merging clusters updates their neighborhoods, so early decisions
// propagate collectively, the defining property of the approach.

#ifndef HERA_BASELINES_COLLECTIVE_ER_H_
#define HERA_BASELINES_COLLECTIVE_ER_H_

#include <cstdint>
#include <vector>

#include "record/dataset.h"
#include "sim/similarity.h"

namespace hera {

/// Options for CollectiveER().
struct CollectiveEROptions {
  double xi = 0.5;     ///< Attribute-level similarity threshold.
  double delta = 0.5;  ///< Merge threshold on the combined similarity.
  double alpha = 0.3;  ///< Weight of the relational component in [0,1].
};

/// Runs collective ER over a homogeneous dataset; returns one entity
/// label per record.
std::vector<uint32_t> CollectiveER(const Dataset& dataset,
                                   const ValueSimilarity& simv,
                                   const CollectiveEROptions& options);

}  // namespace hera

#endif  // HERA_BASELINES_COLLECTIVE_ER_H_
