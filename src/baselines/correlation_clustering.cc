#include "baselines/correlation_clustering.h"

#include <numeric>
#include <unordered_set>

#include "baselines/homogeneous.h"
#include "common/random.h"

namespace hera {

std::vector<uint32_t> CorrelationClustering(
    const Dataset& dataset, const ValueSimilarity& simv,
    const CorrelationClusteringOptions& options) {
  const size_t n = dataset.size();
  std::vector<uint32_t> labels(n, 0);
  if (n == 0) return labels;

  // Lift records once; "+" edges among blocking candidates.
  std::vector<HomogeneousCluster> recs;
  recs.reserve(n);
  for (const Record& r : dataset.records()) {
    recs.push_back(HomogeneousCluster::FromRecord(r));
  }
  std::vector<std::unordered_set<uint32_t>> plus(n);
  BestPairScorer scorer(simv);
  for (auto [i, j] : CandidateRecordPairs(dataset, simv, options.xi)) {
    double sim = ClusterSimilarity(recs[i], recs[j], scorer, options.xi);
    if (sim >= options.delta) {
      plus[i].insert(j);
      plus[j].insert(i);
    }
  }

  // CC-Pivot over a random permutation.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(options.seed);
  rng.Shuffle(&order);

  std::vector<bool> clustered(n, false);
  uint32_t next_label = 0;
  for (uint32_t pivot : order) {
    if (clustered[pivot]) continue;
    uint32_t label = next_label++;
    labels[pivot] = label;
    clustered[pivot] = true;
    for (uint32_t nb : plus[pivot]) {
      if (!clustered[nb]) {
        labels[nb] = label;
        clustered[nb] = true;
      }
    }
  }
  return labels;
}

}  // namespace hera
