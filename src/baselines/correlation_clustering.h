// CC — correlation clustering via the CC-Pivot algorithm (Ailon,
// Charikar, Newman, "Aggregating inconsistent information", JACM 2008).
//
// Records are nodes; an edge is "+" when the pairwise similarity
// reaches delta, "−" otherwise. CC-Pivot repeatedly picks a random
// pivot, clusters it with all remaining "+"-neighbors, and recurses on
// the rest — a 3-approximation in expectation for minimizing
// disagreements.

#ifndef HERA_BASELINES_CORRELATION_CLUSTERING_H_
#define HERA_BASELINES_CORRELATION_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "record/dataset.h"
#include "sim/similarity.h"

namespace hera {

/// Options for CorrelationClustering().
struct CorrelationClusteringOptions {
  double xi = 0.5;     ///< Attribute-level similarity threshold.
  double delta = 0.5;  ///< "+"-edge threshold.
  uint64_t seed = 42;  ///< Pivot order seed (algorithm is randomized).
};

/// Runs CC-Pivot over a homogeneous dataset; returns one entity label
/// per record. "+"-edges only exist between blocking candidates.
std::vector<uint32_t> CorrelationClustering(
    const Dataset& dataset, const ValueSimilarity& simv,
    const CorrelationClusteringOptions& options);

}  // namespace hera

#endif  // HERA_BASELINES_CORRELATION_CLUSTERING_H_
