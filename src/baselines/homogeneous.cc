#include "baselines/homogeneous.h"

#include <algorithm>
#include <set>

#include "simjoin/similarity_join.h"

namespace hera {

HomogeneousCluster HomogeneousCluster::FromRecord(const Record& r) {
  HomogeneousCluster c;
  c.attr_values_.resize(r.size());
  for (size_t i = 0; i < r.size(); ++i) {
    if (!r.value(i).is_null()) c.attr_values_[i].push_back(r.value(i));
  }
  c.members_.push_back(r.id());
  return c;
}

void HomogeneousCluster::Absorb(const HomogeneousCluster& other) {
  if (attr_values_.size() < other.attr_values_.size()) {
    attr_values_.resize(other.attr_values_.size());
  }
  for (size_t i = 0; i < other.attr_values_.size(); ++i) {
    for (const Value& v : other.attr_values_[i]) {
      bool present = false;
      for (const Value& mine : attr_values_[i]) {
        if (mine == v) {
          present = true;
          break;
        }
      }
      if (!present) attr_values_[i].push_back(v);
    }
  }
  members_.insert(members_.end(), other.members_.begin(), other.members_.end());
  std::sort(members_.begin(), members_.end());
}

size_t HomogeneousCluster::NumPopulatedAttrs() const {
  size_t n = 0;
  for (const auto& vs : attr_values_) {
    if (!vs.empty()) ++n;
  }
  return n;
}

double ClusterSimilarity(const HomogeneousCluster& a, const HomogeneousCluster& b,
                         const ValueSimilarity& simv, double xi) {
  BestPairScorer scorer(simv);
  return ClusterSimilarity(a, b, scorer, xi);
}

double ClusterSimilarity(const HomogeneousCluster& a, const HomogeneousCluster& b,
                         BestPairScorer& scorer, double xi) {
  size_t pa = a.NumPopulatedAttrs(), pb = b.NumPopulatedAttrs();
  if (pa == 0 || pb == 0) return 0.0;
  double total = 0.0;
  size_t attrs = std::min(a.attr_values().size(), b.attr_values().size());
  for (size_t i = 0; i < attrs; ++i) {
    // Only bests reaching xi contribute, so per-cell skipping below xi
    // cannot change the sum (the BestAtLeast exactness contract).
    double best = scorer.BestAtLeast(a.attr_values()[i], b.attr_values()[i], xi);
    if (best >= xi) total += best;
  }
  return total / static_cast<double>(std::min(pa, pb));
}

std::vector<std::pair<uint32_t, uint32_t>> CandidateRecordPairs(
    const Dataset& dataset, const ValueSimilarity& simv, double xi) {
  std::vector<LabeledValue> values;
  for (const Record& r : dataset.records()) {
    for (uint32_t i = 0; i < r.size(); ++i) {
      if (r.value(i).is_null()) continue;
      values.push_back({ValueLabel{r.id(), i, 0}, r.value(i)});
    }
  }
  PrefixFilterJoin join;
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (const ValuePair& p : join.Join(values, simv, xi)) {
    uint32_t i = p.a.rid, j = p.b.rid;
    if (i > j) std::swap(i, j);
    seen.emplace(i, j);
  }
  return {seen.begin(), seen.end()};
}

}  // namespace hera
