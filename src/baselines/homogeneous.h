// Shared machinery for the homogeneous-schema baselines (R-Swoosh,
// correlation clustering, collective ER, naive transitive closure).
//
// These algorithms run on the paper's `-S`/`-L` datasets: every record
// under one target schema. Their record similarity accumulates the
// per-attribute best value-pair similarity (counting attributes whose
// similarity reaches ξ) normalized by the smaller number of populated
// attributes — the homogeneous specialization of Definition 5, so that
// the comparison against HERA isolates the framework rather than the
// metric.

#ifndef HERA_BASELINES_HOMOGENEOUS_H_
#define HERA_BASELINES_HOMOGENEOUS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "matching/weight_kernel.h"
#include "record/dataset.h"
#include "sim/similarity.h"

namespace hera {

/// \brief A cluster of homogeneous records: per attribute, the set of
/// distinct non-null values contributed by its members.
class HomogeneousCluster {
 public:
  /// Lifts one record (all records must share one schema).
  static HomogeneousCluster FromRecord(const Record& r);

  /// Merges `other` into this cluster (attribute-wise value union).
  void Absorb(const HomogeneousCluster& other);

  const std::vector<std::vector<Value>>& attr_values() const {
    return attr_values_;
  }
  const std::vector<uint32_t>& members() const { return members_; }

  /// Number of attributes with at least one value.
  size_t NumPopulatedAttrs() const;

 private:
  std::vector<std::vector<Value>> attr_values_;
  std::vector<uint32_t> members_;
};

/// Similarity of two clusters: sum over attributes of the max value
/// pair similarity when it reaches `xi`, divided by the smaller
/// populated-attribute count. In [0, 1].
double ClusterSimilarity(const HomogeneousCluster& a, const HomogeneousCluster& b,
                         const ValueSimilarity& simv, double xi);

/// Same score, computed through a BestPairScorer so cells that cannot
/// reach `xi` are abandoned early (bit-equal; see weight_kernel.h).
/// Drivers with a pair loop hold one scorer so encodings are memoized
/// across calls; the simv overload above is a one-shot convenience.
double ClusterSimilarity(const HomogeneousCluster& a, const HomogeneousCluster& b,
                         BestPairScorer& scorer, double xi);

/// \brief Blocking: record pairs sharing at least one value pair with
/// simv >= xi, computed with the prefix-filter similarity join. All
/// baselines restrict comparisons to these pairs (standard practice;
/// keeps the O(n^2) algorithms tractable and treats every method
/// equally).
std::vector<std::pair<uint32_t, uint32_t>> CandidateRecordPairs(
    const Dataset& dataset, const ValueSimilarity& simv, double xi);

}  // namespace hera

#endif  // HERA_BASELINES_HOMOGENEOUS_H_
