#include "baselines/naive.h"

#include "baselines/homogeneous.h"
#include "common/union_find.h"

namespace hera {

std::vector<uint32_t> NaivePairwiseER(const Dataset& dataset,
                                      const ValueSimilarity& simv,
                                      const NaiveOptions& options) {
  const size_t n = dataset.size();
  std::vector<uint32_t> labels(n, 0);
  if (n == 0) return labels;

  std::vector<HomogeneousCluster> recs;
  recs.reserve(n);
  for (const Record& r : dataset.records()) {
    recs.push_back(HomogeneousCluster::FromRecord(r));
  }

  UnionFind uf(n);
  BestPairScorer scorer(simv);
  auto consider = [&](uint32_t i, uint32_t j) {
    if (uf.Connected(i, j)) return;
    double s = ClusterSimilarity(recs[i], recs[j], scorer, options.xi);
    if (s >= options.delta) uf.Union(i, j);
  };

  if (options.exhaustive) {
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = i + 1; j < n; ++j) consider(i, j);
    }
  } else {
    for (auto [i, j] : CandidateRecordPairs(dataset, simv, options.xi)) {
      consider(i, j);
    }
  }

  for (uint32_t r = 0; r < n; ++r) labels[r] = uf.Find(r);
  return labels;
}

}  // namespace hera
