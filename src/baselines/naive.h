// Naive baseline: pairwise threshold match + transitive closure.
// The simplest ER strategy; included as a floor for the comparison
// benches and as a test oracle for small inputs.

#ifndef HERA_BASELINES_NAIVE_H_
#define HERA_BASELINES_NAIVE_H_

#include <cstdint>
#include <vector>

#include "record/dataset.h"
#include "sim/similarity.h"

namespace hera {

/// Options for NaivePairwiseER().
struct NaiveOptions {
  double xi = 0.5;     ///< Attribute-level similarity threshold.
  double delta = 0.5;  ///< Record-level match threshold.
  /// When true, compare all O(n^2) pairs; otherwise only blocking
  /// candidates.
  bool exhaustive = false;
};

/// Matches record pairs whose similarity reaches delta and unions them
/// transitively; returns one entity label per record.
std::vector<uint32_t> NaivePairwiseER(const Dataset& dataset,
                                      const ValueSimilarity& simv,
                                      const NaiveOptions& options);

}  // namespace hera

#endif  // HERA_BASELINES_NAIVE_H_
