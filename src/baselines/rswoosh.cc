#include "baselines/rswoosh.h"

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "baselines/homogeneous.h"

namespace hera {

std::vector<uint32_t> RSwoosh(const Dataset& dataset, const ValueSimilarity& simv,
                              const RSwooshOptions& options) {
  const size_t n = dataset.size();
  std::vector<uint32_t> labels(n);
  if (n == 0) return labels;

  // Blocking adjacency over base records.
  std::vector<std::unordered_set<uint32_t>> adjacent(n);
  for (auto [i, j] : CandidateRecordPairs(dataset, simv, options.xi)) {
    adjacent[i].insert(j);
    adjacent[j].insert(i);
  }

  struct Node {
    HomogeneousCluster cluster;
    std::unordered_set<uint32_t> candidates;  // Base-record ids it may match.
  };

  // Working queue R and resolved set R'.
  std::deque<std::unique_ptr<Node>> pending;
  for (const Record& r : dataset.records()) {
    auto node = std::make_unique<Node>();
    node->cluster = HomogeneousCluster::FromRecord(r);
    node->candidates = adjacent[r.id()];
    pending.push_back(std::move(node));
  }

  std::vector<std::unique_ptr<Node>> resolved;
  BestPairScorer scorer(simv);
  while (!pending.empty()) {
    std::unique_ptr<Node> cur = std::move(pending.front());
    pending.pop_front();

    // Find a match in R'. Blocking: a resolved node is comparable only
    // if one of its members is a candidate of one of cur's members.
    size_t match_idx = resolved.size();
    for (size_t k = 0; k < resolved.size(); ++k) {
      bool comparable = false;
      for (uint32_t m : resolved[k]->cluster.members()) {
        if (cur->candidates.count(m)) {
          comparable = true;
          break;
        }
      }
      if (!comparable) continue;
      double sim = ClusterSimilarity(cur->cluster, resolved[k]->cluster, scorer,
                                     options.xi);
      if (sim >= options.delta) {
        match_idx = k;
        break;
      }
    }

    if (match_idx == resolved.size()) {
      resolved.push_back(std::move(cur));
      continue;
    }
    // Merge and put the result back into the working set (R-Swoosh's
    // defining move).
    std::unique_ptr<Node> partner = std::move(resolved[match_idx]);
    resolved.erase(resolved.begin() + static_cast<long>(match_idx));
    partner->cluster.Absorb(cur->cluster);
    for (uint32_t c : cur->candidates) partner->candidates.insert(c);
    pending.push_back(std::move(partner));
  }

  for (size_t k = 0; k < resolved.size(); ++k) {
    for (uint32_t m : resolved[k]->cluster.members()) {
      labels[m] = static_cast<uint32_t>(k);
    }
  }
  return labels;
}

}  // namespace hera
