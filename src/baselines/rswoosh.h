// R-Swoosh (Benjelloun et al., "Swoosh: a generic approach to entity
// resolution", VLDB Journal 2009): generic match/merge ER.
//
// R-Swoosh maintains a resolved set R'. Each input record is compared
// against R'; on a match the partner is removed from R', merged with
// the record, and the merge result goes back into the working set —
// so merged information immediately participates in later matches
// (dominance through merge, like HERA's super records but under one
// fixed schema).

#ifndef HERA_BASELINES_RSWOOSH_H_
#define HERA_BASELINES_RSWOOSH_H_

#include <cstdint>
#include <vector>

#include "record/dataset.h"
#include "sim/similarity.h"

namespace hera {

/// Options for RSwoosh().
struct RSwooshOptions {
  double xi = 0.5;     ///< Attribute-level similarity threshold.
  double delta = 0.5;  ///< Record-level match threshold.
};

/// Runs R-Swoosh over a homogeneous dataset; returns one entity label
/// per record. Comparisons are restricted to blocking candidates
/// (CandidateRecordPairs) lifted to clusters.
std::vector<uint32_t> RSwoosh(const Dataset& dataset, const ValueSimilarity& simv,
                              const RSwooshOptions& options);

}  // namespace hera

#endif  // HERA_BASELINES_RSWOOSH_H_
