#include "blocking/sorted_neighborhood.h"

#include <algorithm>
#include <set>

#include "text/tokenizer.h"

namespace hera {

std::string SortedNeighborhoodKey(const Record& record, size_t pass,
                                  const SortedNeighborhoodOptions& options) {
  std::set<std::string> tokens;
  for (const Value& v : record.values()) {
    if (v.is_null()) continue;
    for (auto& tok : WordTokenSet(v.ToString())) {
      if (tok.size() >= options.min_token_length) tokens.insert(std::move(tok));
    }
  }
  if (tokens.empty()) return "";
  // Rotate: pass p keys on the p-th smallest token (mod token count),
  // concatenated with the following tokens as tie-breakers.
  std::vector<std::string> sorted(tokens.begin(), tokens.end());
  size_t offset = pass % sorted.size();
  std::string key;
  for (size_t i = 0; i < sorted.size() && key.size() < 48; ++i) {
    key += sorted[(offset + i) % sorted.size()];
    key += '\x01';
  }
  return key;
}

std::vector<std::pair<uint32_t, uint32_t>> SortedNeighborhoodPairs(
    const Dataset& dataset, const SortedNeighborhoodOptions& options) {
  std::set<std::pair<uint32_t, uint32_t>> pairs;
  const size_t n = dataset.size();
  for (size_t pass = 0; pass < options.passes; ++pass) {
    std::vector<std::pair<std::string, uint32_t>> keyed;
    keyed.reserve(n);
    for (const Record& r : dataset.records()) {
      std::string key = SortedNeighborhoodKey(r, pass, options);
      if (key.empty()) continue;  // Keyless records join no window.
      keyed.emplace_back(std::move(key), r.id());
    }
    std::sort(keyed.begin(), keyed.end());
    for (size_t i = 0; i < keyed.size(); ++i) {
      size_t hi = std::min(keyed.size(), i + options.window);
      for (size_t j = i + 1; j < hi; ++j) {
        uint32_t a = keyed[i].second, b = keyed[j].second;
        if (a == b) continue;
        pairs.emplace(std::min(a, b), std::max(a, b));
      }
    }
  }
  return {pairs.begin(), pairs.end()};
}

}  // namespace hera
