// Schema-agnostic sorted neighborhood (Hernández & Stolfo's method
// adapted to heterogeneous records): records are sorted by a blocking
// key derived from their values — here, their lexicographically
// smallest rare-ish tokens — and every pair within a sliding window is
// a candidate. Complements token blocking: linear candidate count
// (n * window) instead of sum of block-size squares.

#ifndef HERA_BLOCKING_SORTED_NEIGHBORHOOD_H_
#define HERA_BLOCKING_SORTED_NEIGHBORHOOD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "record/dataset.h"

namespace hera {

/// Options for SortedNeighborhoodPairs.
struct SortedNeighborhoodOptions {
  /// Sliding window size (candidates per record ≈ window - 1).
  size_t window = 10;
  /// Number of passes with rotated keys; multiple passes recover pairs
  /// a single sort order would miss.
  size_t passes = 2;
  /// Tokens shorter than this are ignored when building keys.
  size_t min_token_length = 2;
};

/// The sort key of one record for pass `pass`: its tokens sorted, then
/// rotated by `pass` (pass 0 keys on the alphabetically first token,
/// pass 1 on the second, ...). Exposed for tests.
std::string SortedNeighborhoodKey(const Record& record, size_t pass,
                                  const SortedNeighborhoodOptions& options);

/// Distinct candidate pairs (first < second) from all passes.
std::vector<std::pair<uint32_t, uint32_t>> SortedNeighborhoodPairs(
    const Dataset& dataset, const SortedNeighborhoodOptions& options = {});

}  // namespace hera

#endif  // HERA_BLOCKING_SORTED_NEIGHBORHOOD_H_
