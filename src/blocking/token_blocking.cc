#include "blocking/token_blocking.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/union_find.h"
#include "matching/weight_kernel.h"
#include "text/tokenizer.h"

namespace hera {

std::vector<Block> BuildBlocks(const Dataset& dataset,
                               const BlockingOptions& options) {
  std::unordered_map<std::string, std::vector<uint32_t>> by_token;
  for (const Record& r : dataset.records()) {
    std::set<std::string> record_tokens;  // Dedup within the record.
    for (const Value& v : r.values()) {
      if (v.is_null()) continue;
      for (auto& tok : WordTokenSet(v.ToString())) {
        if (tok.size() >= options.min_token_length) {
          record_tokens.insert(std::move(tok));
        }
      }
    }
    for (const auto& tok : record_tokens) by_token[tok].push_back(r.id());
  }
  std::vector<Block> blocks;
  blocks.reserve(by_token.size());
  for (auto& [token, ids] : by_token) {
    blocks.push_back(Block{token, std::move(ids)});
  }
  // Deterministic order for reproducibility.
  std::sort(blocks.begin(), blocks.end(),
            [](const Block& a, const Block& b) { return a.token < b.token; });
  return blocks;
}

size_t PurgeBlocks(std::vector<Block>* blocks, size_t dataset_size,
                   const BlockingOptions& options) {
  size_t limit = dataset_size;
  if (options.max_block_fraction > 0.0) {
    limit = static_cast<size_t>(options.max_block_fraction *
                                static_cast<double>(dataset_size));
    limit = std::max<size_t>(limit, 2);
  }
  size_t before = blocks->size();
  blocks->erase(
      std::remove_if(blocks->begin(), blocks->end(),
                     [&](const Block& b) {
                       return b.record_ids.size() < 2 ||
                              b.record_ids.size() > limit;
                     }),
      blocks->end());
  return before - blocks->size();
}

std::vector<std::pair<uint32_t, uint32_t>> CandidatePairsFromBlocks(
    const std::vector<Block>& blocks) {
  std::set<std::pair<uint32_t, uint32_t>> pairs;
  for (const Block& b : blocks) {
    for (size_t i = 0; i < b.record_ids.size(); ++i) {
      for (size_t j = i + 1; j < b.record_ids.size(); ++j) {
        uint32_t a = b.record_ids[i], c = b.record_ids[j];
        pairs.emplace(std::min(a, c), std::max(a, c));
      }
    }
  }
  return {pairs.begin(), pairs.end()};
}

BlockingQuality EvaluateBlocking(
    const std::vector<std::pair<uint32_t, uint32_t>>& candidates,
    const std::vector<uint32_t>& truth) {
  BlockingQuality q;
  q.num_candidates = candidates.size();
  uint64_t true_pairs = 0;
  std::unordered_map<uint32_t, uint64_t> sizes;
  for (uint32_t label : truth) ++sizes[label];
  for (const auto& [label, n] : sizes) {
    (void)label;
    true_pairs += n * (n - 1) / 2;
  }
  uint64_t found = 0;
  for (auto [a, b] : candidates) {
    if (truth[a] == truth[b]) ++found;
  }
  q.pair_completeness =
      true_pairs == 0 ? 1.0
                      : static_cast<double>(found) /
                            static_cast<double>(true_pairs);
  uint64_t total_space =
      static_cast<uint64_t>(truth.size()) * (truth.size() - 1) / 2;
  q.reduction_ratio =
      total_space == 0
          ? 0.0
          : 1.0 - static_cast<double>(candidates.size()) /
                      static_cast<double>(total_space);
  return q;
}

namespace {

/// Schema-agnostic record similarity: values of the smaller record,
/// each matched to its best partner in the other record (one-to-one is
/// not enforced — this is the baseline's coarseness), normalized by the
/// smaller value count. Only bests reaching xi contribute, so the
/// scorer's per-cell skipping below xi cannot change the sum.
double BagSimilarity(const Record& a, const Record& b, BestPairScorer& scorer,
                     double xi) {
  const Record& small = a.NumPresent() <= b.NumPresent() ? a : b;
  const Record& large = a.NumPresent() <= b.NumPresent() ? b : a;
  size_t denom = small.NumPresent();
  if (denom == 0) return 0.0;
  double total = 0.0;
  for (const Value& vs : small.values()) {
    if (vs.is_null()) continue;
    double best = scorer.BestAtLeast(vs, large.values(), xi);
    if (best >= xi) total += best;
  }
  return total / static_cast<double>(denom);
}

}  // namespace

std::vector<uint32_t> TokenBlockingER(const Dataset& dataset,
                                      const ValueSimilarity& simv,
                                      const TokenBlockingEROptions& options) {
  const size_t n = dataset.size();
  std::vector<uint32_t> labels(n, 0);
  if (n == 0) return labels;
  std::vector<Block> blocks = BuildBlocks(dataset, options.blocking);
  PurgeBlocks(&blocks, n, options.blocking);
  UnionFind uf(n);
  BestPairScorer scorer(simv, options.use_encoded_kernels);
  for (auto [i, j] : CandidatePairsFromBlocks(blocks)) {
    if (uf.Connected(i, j)) continue;
    double sim =
        BagSimilarity(dataset.record(i), dataset.record(j), scorer, options.xi);
    if (sim >= options.delta) uf.Union(i, j);
  }
  for (uint32_t r = 0; r < n; ++r) labels[r] = uf.Find(r);
  return labels;
}

}  // namespace hera
