// Attribute-agnostic token blocking (Papadakis et al., "Efficient
// entity resolution for large heterogeneous information spaces",
// WSDM 2011 — reference [1] of the paper).
//
// The related-work alternative for heterogeneous ER: ignore schemas
// entirely, key every record by the normalized tokens of its values,
// and consider co-blocked records candidate pairs. The paper argues
// this "did not comprise the exact solution of record similarity
// computation" and cannot handle description difference; this module
// lets the claim be measured (bench_ablation).
//
// Pipeline stages, each independently usable:
//   1. BuildBlocks     — token -> record ids.
//   2. PurgeBlocks     — drop oversized, low-information blocks
//                        (block purging).
//   3. CandidatePairs  — distinct co-blocked pairs.
//   4. TokenBlockingER — full baseline: blocking + pairwise record
//                        similarity + transitive closure.

#ifndef HERA_BLOCKING_TOKEN_BLOCKING_H_
#define HERA_BLOCKING_TOKEN_BLOCKING_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "record/dataset.h"
#include "sim/similarity.h"

namespace hera {

/// One block: the records containing a given token.
struct Block {
  std::string token;
  std::vector<uint32_t> record_ids;  // Sorted, unique.
};

/// Blocking configuration.
struct BlockingOptions {
  /// Blocks larger than this fraction of the dataset are purged as
  /// uninformative (stop-word tokens). 0 disables purging.
  double max_block_fraction = 0.1;
  /// Tokens shorter than this never form blocks.
  size_t min_token_length = 2;
};

/// Builds one block per distinct normalized word token across every
/// value of every record, schema-agnostically.
std::vector<Block> BuildBlocks(const Dataset& dataset,
                               const BlockingOptions& options = {});

/// Removes blocks with more than max_block_fraction * |dataset| records
/// (and empties/singletons, which generate no pairs). Returns the
/// number of purged blocks.
size_t PurgeBlocks(std::vector<Block>* blocks, size_t dataset_size,
                   const BlockingOptions& options = {});

/// Distinct record pairs co-occurring in at least one block
/// (first < second).
std::vector<std::pair<uint32_t, uint32_t>> CandidatePairsFromBlocks(
    const std::vector<Block>& blocks);

/// Blocking quality vs ground truth: pair completeness (recall of true
/// pairs among candidates) and reduction ratio (fraction of the full
/// pair space avoided).
struct BlockingQuality {
  double pair_completeness = 0.0;
  double reduction_ratio = 0.0;
  size_t num_candidates = 0;
};
BlockingQuality EvaluateBlocking(
    const std::vector<std::pair<uint32_t, uint32_t>>& candidates,
    const std::vector<uint32_t>& truth);

/// Full attribute-agnostic ER baseline: token blocking, then pairwise
/// instance similarity (records as value bags, best-pair per value of
/// the smaller record, min-normalized), then transitive closure over
/// pairs reaching `delta`.
struct TokenBlockingEROptions {
  BlockingOptions blocking;
  double xi = 0.5;
  double delta = 0.5;
  /// Score record pairs on the integer kernels with per-cell skipping
  /// (matching/weight_kernel.h). Bit-equal either way — a speed knob,
  /// kept toggleable so tests can pin that equality.
  bool use_encoded_kernels = true;
};
std::vector<uint32_t> TokenBlockingER(const Dataset& dataset,
                                      const ValueSimilarity& simv,
                                      const TokenBlockingEROptions& options);

}  // namespace hera

#endif  // HERA_BLOCKING_TOKEN_BLOCKING_H_
