#include "common/failpoint.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace hera {
namespace failpoint {

namespace {

struct SiteState {
  Status error;
  int skip = 0;
  int trips = 0;  // Remaining trips; < 0 = unlimited.
  bool armed = false;
  size_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteState> sites;
  // Fast-path gate: number of armed sites. When zero, Check() is one
  // relaxed load and no lock is taken.
  std::atomic<int> armed_count{0};
  // Trip observer slot (see SetTripObserver). shared_ptr so Check can
  // invoke it outside the lock without racing a concurrent Clear.
  const void* observer_owner = nullptr;
  std::shared_ptr<std::function<void(const char*)>> observer;
};

Registry& GlobalRegistry() {
  static Registry* r = new Registry();
  return *r;
}

}  // namespace

void Arm(const std::string& site, Status error, int skip, int trips) {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  SiteState& s = r.sites[site];
  if (!s.armed) r.armed_count.fetch_add(1, std::memory_order_relaxed);
  s.error = std::move(error);
  s.skip = skip;
  s.trips = trips;
  s.armed = true;
  s.hits = 0;
}

void Disarm(const std::string& site) {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it != r.sites.end() && it->second.armed) {
    it->second.armed = false;
    r.armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites.clear();
  r.armed_count.store(0, std::memory_order_relaxed);
}

size_t HitCount(const std::string& site) {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

std::vector<std::string> KnownSites() {
  return {"csv.read",     "csv.record", "index.build",
          "simjoin.join", "verify.km",  "engine.merge",
          "persist.snapshot", "persist.wal.append", "persist.recover",
          "persist.write.short"};
}

void SetTripObserver(const void* owner,
                     std::function<void(const char* site)> observer) {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.observer_owner = owner;
  r.observer =
      std::make_shared<std::function<void(const char*)>>(std::move(observer));
}

void ClearTripObserver(const void* owner) {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.observer_owner != owner) return;
  r.observer_owner = nullptr;
  r.observer.reset();
}

Status Check(const char* site) {
  Registry& r = GlobalRegistry();
  if (r.armed_count.load(std::memory_order_relaxed) == 0) return Status::OK();
  std::shared_ptr<std::function<void(const char*)>> observer;
  Status tripped;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.sites.find(site);
    if (it == r.sites.end()) return Status::OK();
    SiteState& s = it->second;
    ++s.hits;
    if (!s.armed) return Status::OK();
    if (s.skip > 0) {
      --s.skip;
      return Status::OK();
    }
    if (s.trips == 0) return Status::OK();
    if (s.trips > 0) --s.trips;
    tripped = s.error;
    observer = r.observer;
  }
  if (observer && *observer) (*observer)(site);
  return tripped;
}

}  // namespace failpoint
}  // namespace hera
