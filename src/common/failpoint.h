// Deterministic fault injection for tests.
//
// The library declares named failpoint *sites* on its error-prone
// paths (csv load, index build, similarity join, KM verification,
// merge). A test arms a site with the Status it should yield and,
// optionally, how many passing hits to skip first and how many times
// to trip — so it can force "the 3rd merge fails" reproducibly and
// assert that the public API surfaces a clean error (or a documented
// degraded result) instead of crashing or corrupting state.
//
//   failpoint::Arm("engine.merge", Status::Internal("boom"),
//                  /*skip=*/2, /*trips=*/1);
//   auto result = Hera(opts).Run(ds);   // Fails on the 3rd merge.
//   failpoint::DisarmAll();
//
// When nothing is armed, a check is one relaxed atomic load. Compiling
// with -DHERA_DISABLE_FAILPOINTS (CMake: -DHERA_FAILPOINTS=OFF)
// removes the checks entirely for release builds.

#ifndef HERA_COMMON_FAILPOINT_H_
#define HERA_COMMON_FAILPOINT_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace hera {
namespace failpoint {

/// Arms `site`: after `skip` passing hits, the next `trips` hits
/// return `error` (trips < 0 trips forever). Re-arming replaces the
/// previous configuration and resets the site's hit count.
void Arm(const std::string& site, Status error, int skip = 0, int trips = 1);

/// Disarms one site; its hit count is kept.
void Disarm(const std::string& site);

/// Disarms every site and zeroes all hit counts.
void DisarmAll();

/// Hits observed at `site` since it was armed (counted only while any
/// site is armed; 0 for unknown sites).
size_t HitCount(const std::string& site);

/// Every site compiled into the library, for sweep tests.
std::vector<std::string> KnownSites();

/// The check the HERA_FAILPOINT macro calls; returns the armed error
/// when the site trips, OK otherwise.
Status Check(const char* site);

/// Registers a process-wide observer invoked (outside the registry
/// lock) each time an armed site trips. One slot: a later registration
/// replaces the current one. The observability layer uses this to turn
/// injected faults into structured trace events; `owner` identifies
/// the registrant so a stale owner's Clear cannot drop a newer
/// observer.
void SetTripObserver(const void* owner,
                     std::function<void(const char* site)> observer);

/// Clears the observer iff `owner` still holds the slot.
void ClearTripObserver(const void* owner);

}  // namespace failpoint
}  // namespace hera

#ifndef HERA_DISABLE_FAILPOINTS
/// Returns the armed error from the enclosing function when `site`
/// trips; no-op when unarmed or when failpoints are compiled out.
#define HERA_FAILPOINT(site) HERA_RETURN_NOT_OK(::hera::failpoint::Check(site))
#else
#define HERA_FAILPOINT(site) \
  do {                       \
  } while (false)
#endif

#endif  // HERA_COMMON_FAILPOINT_H_
