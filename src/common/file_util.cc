#include "common/file_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"

namespace hera {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

/// fsyncs the directory containing `path` so the rename itself is
/// durable. Best-effort: some filesystems reject O_DIRECTORY fsync.
void SyncParentDir(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  std::string dir = parent.empty() ? "." : parent.string();
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view content) {
  std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("cannot create", tmp);

#ifndef HERA_DISABLE_FAILPOINTS
  // Simulated short write / ENOSPC: the temp file dies with the write,
  // the destination (previous epoch) is never touched. A manual check,
  // not HERA_FAILPOINT — the macro returns without the cleanup below.
  if (Status st = failpoint::Check("persist.write.short"); !st.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
#endif

  const char* data = content.data();
  size_t left = content.size();
  while (left > 0) {
    ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = ErrnoStatus("cannot write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    data += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status st = ErrnoStatus("cannot fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::close(fd) != 0) {
    Status st = ErrnoStatus("cannot close", tmp);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = ErrnoStatus("cannot rename to", path);
    ::unlink(tmp.c_str());
    return st;
  }
  SyncParentDir(path);
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (!std::filesystem::exists(path)) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IOError("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("cannot read " + path);
  return buf.str();
}

Status EnsureDirectory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::IOError("cannot create directory " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

}  // namespace hera
