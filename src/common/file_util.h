// Filesystem helpers shared by the persistence layer and the
// report/bench exporters.
//
// AtomicWriteFile is the single write-a-file-durably primitive: the
// content goes to a temporary sibling, is fsync'd, and is renamed over
// the destination, so a crash at any instant leaves either the old
// file or the new one — never a torn mixture. Every artifact a crashed
// run may need to read back (checkpoints, run reports, bench JSON)
// goes through it.

#ifndef HERA_COMMON_FILE_UTIL_H_
#define HERA_COMMON_FILE_UTIL_H_

#include <string>
#include <string_view>

#include "common/statusor.h"

namespace hera {

/// Writes `content` to `path` atomically: write `<path>.tmp.<pid>`,
/// fsync it, rename over `path`, fsync the parent directory. On error
/// the temporary is removed and `path` is untouched.
Status AtomicWriteFile(const std::string& path, std::string_view content);

/// Reads the whole file into a string. NotFound when the file does not
/// exist, IOError on any other failure.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Creates `path` (and missing parents) as a directory; ok if it
/// already exists.
Status EnsureDirectory(const std::string& path);

}  // namespace hera

#endif  // HERA_COMMON_FILE_UTIL_H_
