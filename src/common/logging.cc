#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <thread>

namespace hera {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

/// The threshold HERA_LOG_LEVEL requests, or kWarning when unset or
/// unparseable.
LogLevel LevelFromEnv() {
  const char* env = std::getenv("HERA_LOG_LEVEL");
  LogLevel level = LogLevel::kWarning;
  if (env != nullptr) ParseLogLevel(env, &level);
  return level;
}

/// Magic static: the env var is consulted exactly once, on first use.
std::atomic<LogLevel>& Level() {
  static std::atomic<LogLevel> g_level{LevelFromEnv()};
  return g_level;
}

/// "2026-08-05T12:34:56.789Z" (UTC) for the current wall clock.
///
/// system_clock is intentional here — log lines must correlate with
/// external logs/events, so they carry wall time and may jump under
/// NTP. Every *measured* duration in the codebase (Timer, spans,
/// timeline samples, deadlines) uses steady_clock instead.
void FormatTimestamp(char* buf, size_t buf_size) {
  using std::chrono::duration_cast;
  using std::chrono::milliseconds;
  auto now = std::chrono::system_clock::now();
  std::time_t secs = std::chrono::system_clock::to_time_t(now);
  int ms = static_cast<int>(
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  std::snprintf(buf, buf_size, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, ms);
}

}  // namespace

LogLevel GetLogLevel() { return Level().load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  Level().store(level, std::memory_order_relaxed);
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else if (lower == "off") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel() && level != LogLevel::kOff) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    char ts[32];
    FormatTimestamp(ts, sizeof(ts));
    stream_ << "[" << ts << " " << LevelName(level) << " tid:"
            << std::this_thread::get_id() << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << "\n";
}

}  // namespace internal
}  // namespace hera
