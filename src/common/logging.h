// Minimal leveled logging to stderr. Off below Warning by default;
// benches enable INFO. Each line carries an ISO-8601 UTC timestamp
// (millisecond precision), the level tag, the calling thread's id, and
// the source location:
//
//   [2026-08-05T12:34:56.789Z INFO tid:140233 engine.cc:173] message
//
// The initial threshold comes from the HERA_LOG_LEVEL environment
// variable (debug|info|warning|error|off, case-insensitive), read once
// on first use; SetLogLevel overrides it at runtime.

#ifndef HERA_COMMON_LOGGING_H_
#define HERA_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace hera {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses a level name ("debug", "info", "warning"/"warn", "error",
/// "off"; any case) into `*out`. Returns false (leaving `*out`
/// untouched) on an unknown name. Backs both the HERA_LOG_LEVEL
/// environment variable and the CLI --log-level flag.
bool ParseLogLevel(const std::string& name, LogLevel* out);

namespace internal {

/// Accumulates one log line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hera

#define HERA_LOG(level) \
  ::hera::internal::LogMessage(::hera::LogLevel::k##level, __FILE__, __LINE__)

#endif  // HERA_COMMON_LOGGING_H_
