// Minimal leveled logging. Off by default; benches enable INFO.

#ifndef HERA_COMMON_LOGGING_H_
#define HERA_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace hera {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hera

#define HERA_LOG(level) \
  ::hera::internal::LogMessage(::hera::LogLevel::k##level, __FILE__, __LINE__)

#endif  // HERA_COMMON_LOGGING_H_
