#include "common/random.h"

#include <cmath>

namespace hera {

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  // Inverse-CDF over the (small) support. Harmonic normalization is
  // recomputed per call; callers draw at most a few thousand samples.
  double h = 0.0;
  for (uint64_t r = 0; r < n; ++r) h += 1.0 / std::pow(static_cast<double>(r + 1), s);
  double u = UniformDouble() * h;
  double acc = 0.0;
  for (uint64_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
    if (u <= acc) return r;
  }
  return n - 1;
}

}  // namespace hera
