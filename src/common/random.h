// Deterministic pseudo-random number generation.
//
// All dataset generation in the library is seeded through Rng so that
// every experiment is exactly reproducible. The engine is SplitMix64 —
// tiny state, excellent statistical quality for simulation workloads,
// and identical output on every platform (unlike std::mt19937 whose
// distributions are implementation-defined).

#ifndef HERA_COMMON_RANDOM_H_
#define HERA_COMMON_RANDOM_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hera {

/// \brief Deterministic 64-bit PRNG (SplitMix64).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Zipf-like skewed integer in [0, n): rank r chosen with probability
  /// proportional to 1/(r+1)^s. Used to produce skewed records-per-entity
  /// distributions. O(n) setup-free inverse-CDF via rejection would be
  /// complex; n here is small (entity counts), so linear scan is fine.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks one element uniformly. Vector must be non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    assert(!v.empty());
    return v[Uniform(v.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace hera

#endif  // HERA_COMMON_RANDOM_H_
