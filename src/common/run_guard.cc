#include "common/run_guard.h"

namespace hera {

Status RunGuard::StatusIfInterrupted() const {
  if (Cancelled()) return Status::Cancelled("run cancelled via token");
  if (DeadlineExpired()) {
    return Status::DeadlineExceeded("run deadline of " +
                                    std::to_string(timeout_ms_) +
                                    " ms exceeded");
  }
  return Status::OK();
}

void RunGuard::NotifyBudgetCut(const char* reason) const {
  if (!observer_ || !*observer_ || !observer_fired_) return;
  if (observer_fired_->exchange(true, std::memory_order_relaxed)) return;
  (*observer_)(reason);
}

}  // namespace hera
