#include "common/run_guard.h"

namespace hera {

Status RunGuard::StatusIfInterrupted() const {
  if (Cancelled()) return Status::Cancelled("run cancelled via token");
  if (DeadlineExpired()) {
    return Status::DeadlineExceeded("run deadline of " +
                                    std::to_string(timeout_ms_) +
                                    " ms exceeded");
  }
  return Status::OK();
}

}  // namespace hera
