// Run governance: deadlines, cooperative cancellation, and resource
// ceilings for one resolution run.
//
// A RunGuard is a *spec* carried in HeraOptions: a relative time
// budget, an optional cancellation token, and ceilings on the data
// structures a run may grow. The engine arms the guard at run start
// (Arm() turns the relative budget into an absolute deadline) and
// checks it at safe points — iteration boundaries in the
// compare-and-merge loop, candidate strides inside the similarity
// join. On expiry or cancellation the run stops at the next safe point
// and returns the current, valid partial result; on ceiling breach the
// engine sheds load (drops weakest index pairs, truncates posting
// lists, defers candidate groups) instead of dying. HeraStats records
// the outcome and what was shed (see docs/operational_limits.md).
//
// A default-constructed RunGuard imposes nothing and its checks reduce
// to one boolean load, so unguarded runs pay no measurable cost.

#ifndef HERA_COMMON_RUN_GUARD_H_
#define HERA_COMMON_RUN_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>

#include "common/status.h"

namespace hera {

/// \brief Shared cancellation flag. Copies observe the same flag, so a
/// controller thread can cancel a run it handed the token to. A
/// default-constructed token is empty and never reports cancellation.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// A token backed by a fresh flag.
  static CancellationToken Make() {
    CancellationToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// Requests cancellation. Safe from any thread; no-op on an empty
  /// token.
  void RequestCancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  bool CancelRequested() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  bool empty() const { return flag_ == nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief Deadline + cancellation + resource ceilings for one run.
///
/// All limits default to "unlimited". Ceilings use 0 for "no limit".
class RunGuard {
 public:
  RunGuard() = default;

  /// Wall-clock budget in milliseconds, measured from Arm(). A budget
  /// of 0 expires immediately once armed (useful to probe the
  /// truncation path); negative clears the deadline.
  RunGuard& WithTimeoutMs(double ms) {
    timeout_ms_ = ms;
    has_timeout_ = ms >= 0.0;
    watched_ = has_timeout_ || !cancel_.empty();
    return *this;
  }

  /// Attaches a cancellation token (see CancellationToken::Make).
  RunGuard& WithCancellation(CancellationToken token) {
    cancel_ = std::move(token);
    watched_ = has_timeout_ || !cancel_.empty();
    return *this;
  }

  /// Ceiling on total value pairs held by the value-pair index; on
  /// breach the weakest (lowest-similarity) excess pairs are shed.
  RunGuard& WithMaxIndexPairs(size_t n) {
    max_index_pairs_ = n;
    return *this;
  }

  /// Ceiling on posting-list length: per-token candidate lists inside
  /// the prefix-filter join and per-record pair lists inside the
  /// value-pair index. Excess entries are shed (frequent-token /
  /// hub-record degradation).
  RunGuard& WithMaxPostingList(size_t n) {
    max_posting_list_ = n;
    return *this;
  }

  /// Ceiling on candidate groups examined per compare-and-merge
  /// iteration; excess groups are deferred to later iterations.
  RunGuard& WithMaxCandidatesPerIteration(size_t n) {
    max_candidates_per_iteration_ = n;
    return *this;
  }

  /// Verification budget: total verifier invocations this run may
  /// spend (0 = unlimited). Counted from Arm(), so a resumed run gets
  /// a fresh budget, like a deadline. Under HeraOptions::progressive
  /// the budget is spent best-first (highest similarity upper bound
  /// first); groups left unverified at exhaustion are deferred into
  /// the checkpointable queue, not dropped.
  RunGuard& WithMaxVerifications(size_t n) {
    max_verifications_ = n;
    return *this;
  }

  /// Hook fired (at most once per run) when the engine converts a
  /// budget/deadline/cancellation trip into an orderly frontier drain
  /// instead of a blind shed. `reason` is a static string such as
  /// "budget", "deadline", or "cancelled". Fired on the controller
  /// thread, before the truncation checkpoint is written.
  using BudgetObserver = std::function<void(const char* reason)>;

  /// Attaches a budget observer. Copies of the guard share the
  /// observer and its fired-once latch.
  RunGuard& WithBudgetObserver(BudgetObserver observer) {
    observer_ = std::make_shared<BudgetObserver>(std::move(observer));
    observer_fired_ = std::make_shared<std::atomic<bool>>(false);
    return *this;
  }

  /// Starts the clock: deadline = now + timeout. Called by the engine
  /// at run start; re-arming grants a fresh budget (each
  /// IncrementalHera::Resolve round is its own run).
  void Arm() {
    if (has_timeout_) {
      deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double, std::milli>(
                                         timeout_ms_));
      armed_ = true;
    }
  }

  /// True when the run must stop: armed deadline expired or the token
  /// was cancelled. One boolean load when no deadline/token is set.
  bool Interrupted() const {
    if (!watched_) return false;
    return cancel_.CancelRequested() || (armed_ && Clock::now() >= deadline_);
  }

  bool Cancelled() const { return cancel_.CancelRequested(); }
  bool DeadlineExpired() const { return armed_ && Clock::now() >= deadline_; }

  /// OK, or DeadlineExceeded/Cancelled describing why the run must
  /// stop — for callers that want an error instead of a partial result.
  Status StatusIfInterrupted() const;

  /// Fires the budget observer with `reason`, exactly once across all
  /// copies of this guard; later calls (and calls with no observer)
  /// are no-ops. Called by the engine at the first budget/guard cut of
  /// a progressive run.
  void NotifyBudgetCut(const char* reason) const;

  size_t max_index_pairs() const { return max_index_pairs_; }
  size_t max_posting_list() const { return max_posting_list_; }
  size_t max_candidates_per_iteration() const {
    return max_candidates_per_iteration_;
  }
  size_t max_verifications() const { return max_verifications_; }

  /// True when a deadline or cancellation token is configured (the
  /// conditions Interrupted() watches, as opposed to the ceilings).
  bool watched() const { return watched_; }

  /// True when any deadline, token, or ceiling is configured.
  bool active() const {
    return watched_ || max_index_pairs_ > 0 || max_posting_list_ > 0 ||
           max_candidates_per_iteration_ > 0 || max_verifications_ > 0;
  }

 private:
  using Clock = std::chrono::steady_clock;

  double timeout_ms_ = -1.0;
  bool has_timeout_ = false;
  bool armed_ = false;
  bool watched_ = false;  // A deadline or token exists; fast-path gate.
  Clock::time_point deadline_{};
  CancellationToken cancel_;
  size_t max_index_pairs_ = 0;
  size_t max_posting_list_ = 0;
  size_t max_candidates_per_iteration_ = 0;
  size_t max_verifications_ = 0;
  // Shared so guard copies (RunGuard is a value carried in
  // HeraOptions) observe one fired-once latch.
  std::shared_ptr<BudgetObserver> observer_;
  std::shared_ptr<std::atomic<bool>> observer_fired_;
};

/// \brief Strided interrupt probe for tight loops: checks the clock
/// only every 1024 ticks, and never again once stopped.
class GuardTicker {
 public:
  explicit GuardTicker(const RunGuard& guard)
      : guard_(guard), enabled_(guard.active()) {}

  /// Returns true when the guarded loop should stop.
  bool Tick() {
    if (!enabled_) return false;
    if (stopped_) return true;
    if ((++ops_ & 1023u) != 0) return false;
    stopped_ = guard_.Interrupted();
    return stopped_;
  }

  /// Batched form for hoisted checks: advances the op counter by `n`
  /// (one call per record, weighted by the work the record covers) and
  /// consults the clock when a 1024-op boundary is crossed — the same
  /// effective cadence as n scalar Tick()s, without putting the guard
  /// in the innermost loop.
  bool Tick(size_t n) {
    if (!enabled_) return false;
    if (stopped_) return true;
    const size_t before = ops_ >> 10;
    ops_ += n;
    if ((ops_ >> 10) == before) return false;
    stopped_ = guard_.Interrupted();
    return stopped_;
  }

  bool stopped() const { return stopped_; }

 private:
  const RunGuard& guard_;
  bool enabled_;
  bool stopped_ = false;
  size_t ops_ = 0;
};

}  // namespace hera

#endif  // HERA_COMMON_RUN_GUARD_H_
