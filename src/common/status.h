// Status: lightweight error propagation without exceptions.
//
// The library follows the Google C++ style guide (no exceptions); every
// fallible operation returns a Status or StatusOr<T>.

#ifndef HERA_COMMON_STATUS_H_
#define HERA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace hera {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kIOError = 7,
  kUnimplemented = 8,
  kDeadlineExceeded = 9,
  kCancelled = 10,
};

/// Returns a stable human-readable name for a code ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail.
///
/// A Status is either OK (the default) or carries a code and a message.
/// Cheap to copy in the OK case; error details live in a heap string.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, mirroring absl::Status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates an error Status from the enclosing function.
#define HERA_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::hera::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

}  // namespace hera

#endif  // HERA_COMMON_STATUS_H_
