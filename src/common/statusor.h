// StatusOr<T>: a Status or a value of type T.

#ifndef HERA_COMMON_STATUSOR_H_
#define HERA_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace hera {

/// \brief Holds either a value of type T or an error Status.
///
/// Accessing value() on an error StatusOr aborts in debug builds
/// (assert); callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  /// Implicit conversion from an error Status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  /// Implicit conversion from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a StatusOr expression to `lhs`, or returns its
/// error Status from the enclosing function.
#define HERA_ASSIGN_OR_RETURN(lhs, expr)        \
  auto HERA_CONCAT_(_statusor_, __LINE__) = (expr);   \
  if (!HERA_CONCAT_(_statusor_, __LINE__).ok())       \
    return HERA_CONCAT_(_statusor_, __LINE__).status(); \
  lhs = std::move(HERA_CONCAT_(_statusor_, __LINE__)).value()

#define HERA_CONCAT_INNER_(a, b) a##b
#define HERA_CONCAT_(a, b) HERA_CONCAT_INNER_(a, b)

}  // namespace hera

#endif  // HERA_COMMON_STATUSOR_H_
