#include "common/string_util.h"

#include <cctype>

namespace hera {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool LooksNumeric(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return false;
  size_t i = 0;
  if (s[i] == '+' || s[i] == '-') ++i;
  bool digits = false, dot = false;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digits = true;
    } else if (c == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digits;
}

std::string ReplaceAll(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

}  // namespace hera
