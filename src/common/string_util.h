// Small string helpers shared across the library.

#ifndef HERA_COMMON_STRING_UTIL_H_
#define HERA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace hera {

/// Splits `s` on `delim`; empty tokens are kept so CSV columns align.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// ASCII uppercase copy.
std::string ToUpper(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if the whole string parses as a decimal number (int or float),
/// optionally signed. Used for type sniffing in the value model.
bool LooksNumeric(std::string_view s);

/// Replaces every occurrence of `from` with `to`.
std::string ReplaceAll(std::string s, std::string_view from, std::string_view to);

}  // namespace hera

#endif  // HERA_COMMON_STRING_UTIL_H_
