// Monotonic stopwatch shared by the engine's stats timings, the
// observability layer (obs::ScopedTimer, tracer spans), and the
// benchmark harnesses. Steady-clock based: immune to wall-clock
// adjustments, so durations are safe to diff and accumulate.

#ifndef HERA_COMMON_TIMER_H_
#define HERA_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace hera {

/// \brief Stopwatch over std::chrono::steady_clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_).count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hera

#endif  // HERA_COMMON_TIMER_H_
