// Disjoint-set (union-find) with path compression and union by size.
//
// The paper (Section III-B2) maintains super-record ids with a
// union-find structure: merging records Ri and Rj performs
// k = union(i, j) and find(i) afterwards yields the rid of the super
// record that absorbed ri.

#ifndef HERA_COMMON_UNION_FIND_H_
#define HERA_COMMON_UNION_FIND_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

namespace hera {

/// \brief Disjoint-set forest over dense integer ids [0, n).
///
/// Unlike the classic structure, Union(a, b) lets the caller choose the
/// surviving representative (the paper writes "assume 1 = union(1, 6)"),
/// which matters because the surviving rid keys the value-pair index.
class UnionFind {
 public:
  UnionFind() = default;

  /// Creates n singleton sets {0}, {1}, ..., {n-1}.
  explicit UnionFind(size_t n) { Reset(n); }

  /// Discards all state and re-creates n singleton sets.
  void Reset(size_t n) {
    parent_.resize(n);
    std::iota(parent_.begin(), parent_.end(), 0);
    size_.assign(n, 1);
    num_sets_ = n;
  }

  /// Representative of x's set, with path compression.
  uint32_t Find(uint32_t x) {
    assert(x < parent_.size());
    uint32_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      uint32_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Merges the sets of a and b; the representative of `a` survives.
  /// Returns the surviving representative.
  uint32_t Union(uint32_t a, uint32_t b) {
    uint32_t ra = Find(a), rb = Find(b);
    if (ra == rb) return ra;
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --num_sets_;
    return ra;
  }

  /// True if a and b are in the same set.
  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  /// Number of elements in x's set.
  size_t SetSize(uint32_t x) { return size_[Find(x)]; }

  /// Number of disjoint sets.
  size_t NumSets() const { return num_sets_; }

  /// Total number of elements.
  size_t Size() const { return parent_.size(); }

 private:
  std::vector<uint32_t> parent_;
  std::vector<size_t> size_;
  size_t num_sets_ = 0;
};

}  // namespace hera

#endif  // HERA_COMMON_UNION_FIND_H_
