#include "core/engine.h"

#include <cassert>
#include <unordered_map>

#include "common/timer.h"
#include "core/verifier.h"
#include "index/bounds.h"

namespace hera {

ResolutionEngine::ResolutionEngine(const HeraOptions& options,
                                   ValueSimilarityPtr simv)
    : options_(options),
      simv_(std::move(simv)),
      predictor_(options.vote_prior_p, options.vote_rho) {
  assert(simv_ != nullptr);
  if (options_.use_prefix_filter_join) {
    joiner_ = std::make_unique<PrefixFilterJoin>();
  } else {
    joiner_ = std::make_unique<NestedLoopJoin>();
  }
}

void ResolutionEngine::AddRecords(const std::vector<Record>& records) {
  size_t new_total = uf_.Size() + records.size();
  // UnionFind::Reset would lose state; grow by re-adding. UnionFind has
  // no grow API, so rebuild preserving existing assignments.
  UnionFind grown(new_total);
  for (uint32_t r = 0; r < uf_.Size(); ++r) {
    grown.Union(uf_.Find(r), r);
  }
  uf_ = std::move(grown);
  for (const Record& r : records) {
    assert(r.id() < new_total);
    active_.emplace(r.id(), SuperRecord::FromRecord(r));
  }
}

std::vector<LabeledValue> ResolutionEngine::ValuesOf(const SuperRecord& sr) const {
  std::vector<LabeledValue> values;
  for (uint32_t f = 0; f < sr.num_fields(); ++f) {
    for (uint32_t v = 0; v < sr.field(f).size(); ++v) {
      values.push_back({ValueLabel{sr.rid(), f, v}, sr.field(f).value(v).value});
    }
  }
  return values;
}

size_t ResolutionEngine::IndexNewRecords() {
  Timer timer;
  std::vector<LabeledValue> fresh, existing;
  for (const auto& [rid, sr] : active_) {
    auto values = ValuesOf(sr);
    auto* dest = rid >= indexed_watermark_ ? &fresh : &existing;
    dest->insert(dest->end(), values.begin(), values.end());
  }
  size_t before = index_.size();
  index_.AddPairs(joiner_->Join(fresh, *simv_, options_.xi));
  if (!existing.empty()) {
    index_.AddPairs(joiner_->JoinAB(fresh, existing, *simv_, options_.xi));
  }
  indexed_watermark_ = static_cast<uint32_t>(uf_.Size());
  stats_.index_size = index_.size();
  stats_.index_build_ms += timer.ElapsedMillis();
  return index_.size() - before;
}

void ResolutionEngine::IndexPrecomputed(const std::vector<ValuePair>& pairs) {
  Timer timer;
  index_.AddPairs(pairs);
  indexed_watermark_ = static_cast<uint32_t>(uf_.Size());
  stats_.index_size = index_.size();
  stats_.index_build_ms += timer.ElapsedMillis();
}

void ResolutionEngine::IterateToFixpoint() {
  Timer total_timer;
  InstanceBasedVerifier verifier(
      options_.enable_schema_voting ? &predictor_ : nullptr);

  bool merged_something = true;
  // Dirty tracking: after the first pass, a group whose two records
  // were both untouched by merges cannot decide differently than it
  // already did (its pairs and the field counts are unchanged), so
  // only groups touching a recently merged record are re-examined.
  bool first_pass = true;
  std::unordered_set<uint32_t> dirty;

  while (merged_something && stats_.iterations < options_.max_iterations) {
    merged_something = false;
    ++stats_.iterations;

    // Snapshot the (rid1, rid2) groups. Following the paper's
    // iteration semantics (Fig 8), each record participates in at most
    // one merge per pass; groups touching a record merged earlier in
    // the pass are deferred to the next iteration, where the index
    // groups have been combined (Proposition 3 guarantees no similar
    // value pair is lost).
    std::vector<std::pair<uint32_t, uint32_t>> groups;
    index_.ForEachGroup([&](uint32_t r1, uint32_t r2,
                            const std::vector<IndexedPair>& pairs) {
      (void)pairs;
      if (first_pass || dirty.count(r1) || dirty.count(r2)) {
        groups.emplace_back(r1, r2);
      }
    });
    first_pass = false;
    dirty.clear();
    std::unordered_map<uint32_t, bool> merged_this_pass;

    for (auto [g1, g2] : groups) {
      if (merged_this_pass[g1] || merged_this_pass[g2]) continue;
      uint32_t i = uf_.Find(g1), j = uf_.Find(g2);
      if (i == j) continue;  // Already merged (earlier pass).
      if (i > j) std::swap(i, j);
      auto it_i = active_.find(i);
      auto it_j = active_.find(j);
      assert(it_i != active_.end() && it_j != active_.end());

      std::vector<IndexedPair> pairs = index_.PairsFor(i, j);
      if (pairs.empty()) continue;  // Deleted by an earlier merge.

      // Candidate generation: bound the similarity (Algorithm 1).
      BoundResult bounds =
          ComputeBounds(pairs, it_i->second.num_fields(),
                        it_j->second.num_fields(), options_.tight_bounds);
      std::vector<FieldMatch> matching;
      if (bounds.upper < options_.delta) {
        ++stats_.pruned_by_bound;
        continue;
      }
      if (bounds.upper == bounds.lower) {
        // Exact: similarity known without verification (the R' set).
        if (bounds.upper < options_.delta) continue;
        ++stats_.direct_merges;
        matching.reserve(bounds.refined.size());
        for (const IndexedPair& p : bounds.refined) {
          matching.push_back({p.a.fid, p.b.fid, p.sim});
          if (options_.enable_schema_voting) {
            // R' matchings are exact field matchings (Definition 4) and
            // carry the same — in fact stronger — evidence as verified
            // candidates, so they vote too. (Extension of Algorithm 2,
            // which only feeds verified candidates into the vote.)
            predictor_.AddPrediction(
                it_i->second.field(p.a.fid).value(p.a.vid).origin,
                it_j->second.field(p.b.fid).value(p.b.vid).origin);
          }
        }
      } else {
        // Verification (Section IV).
        ++stats_.candidates;
        ++stats_.comparisons;
        VerifyResult vr = verifier.Verify(it_i->second, it_j->second, pairs);
        if (vr.simplified_nodes > 0) {
          simplified_nodes_sum_ += static_cast<double>(vr.simplified_nodes);
          ++simplified_nodes_count_;
        }
        if (vr.sim < options_.delta) continue;
        matching = std::move(vr.matching);
        if (options_.enable_schema_voting) {
          for (const auto& [attr_a, attr_b] : vr.predictions) {
            predictor_.AddPrediction(attr_a, attr_b);
          }
        }
      }

      // Merge (Section III-B2): the smaller rid survives.
      uint32_t new_rid = uf_.Union(i, j);
      assert(new_rid == i);
      std::vector<std::pair<ValueLabel, ValueLabel>> remap;
      SuperRecord merged = SuperRecord::Merge(it_i->second, it_j->second,
                                              matching, new_rid, &remap);
      index_.ApplyMerge(i, j, new_rid, remap);
      active_.erase(j);
      active_[new_rid] = std::move(merged);
      merged_this_pass[i] = merged_this_pass[j] = true;
      dirty.insert(new_rid);
      ++stats_.merges;
      merged_something = true;
    }
  }

  stats_.avg_simplified_nodes =
      simplified_nodes_count_ == 0
          ? 0.0
          : simplified_nodes_sum_ / static_cast<double>(simplified_nodes_count_);
  stats_.decided_schema_matchings = predictor_.DecidedMatchings().size();
  stats_.total_ms += total_timer.ElapsedMillis();
}

std::vector<uint32_t> ResolutionEngine::Labels() {
  std::vector<uint32_t> labels(uf_.Size());
  for (uint32_t r = 0; r < labels.size(); ++r) labels[r] = uf_.Find(r);
  return labels;
}

}  // namespace hera
