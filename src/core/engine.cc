#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/verifier.h"
#include "index/bounds.h"
#include "obs/metrics.h"
#include "parallel/parallel_for.h"
#include "sim/kernel.h"

namespace hera {

ResolutionEngine::ResolutionEngine(const HeraOptions& options,
                                   ValueSimilarityPtr simv)
    : options_(options),
      simv_(std::move(simv)),
      guard_(options.guard),
      predictor_(options.vote_prior_p, options.vote_rho) {
  assert(simv_ != nullptr);
  // Apply the SIMD tier before any kernel can run. Process-global by
  // design (see sim/kernel_dispatch.h); purely a speed knob, so one
  // engine re-applying it under another is harmless.
  SetActiveKernelDispatch(options_.kernel_dispatch);
  if (options_.use_prefix_filter_join) {
    // Index at the metric's own gram size (q = 2 for non-gram metrics)
    // so q != 2 gram metrics get the exact filters + encoded kernels
    // instead of silently verifying on the string path.
    const int metric_q = GramMetricSize(simv_->Name());
    auto pf = std::make_unique<PrefixFilterJoin>(metric_q > 0 ? metric_q : 2);
    token_cache_ = std::make_shared<TokenCache>(pf->q());
    pf->SetTokenCache(token_cache_);
    pf->SetEncodedKernels(options_.use_encoded_kernels);
    pf->SetIndexBackend(options_.index_backend, options_.flat_pipeline_depth);
    joiner_ = std::move(pf);
  } else {
    joiner_ = std::make_unique<NestedLoopJoin>();
  }
  if (options_.enable_pair_sim_cache) {
    pair_cache_ = std::make_shared<PairSimCache>(
        simv_->Name(), options_.pair_sim_cache_capacity);
    joiner_->SetPairSimCache(pair_cache_);
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    joiner_->SetExecutor(pool_.get());
  }
  index_.SetBackend(options_.index_backend, options_.flat_pipeline_depth);
  index_.SetCeilings(guard_.max_index_pairs(), guard_.max_posting_list());
#ifndef HERA_DISABLE_OBS
  // A timeline interval implies report collection: the samples land in
  // the report's timeline section.
  if (options_.collect_report || options_.timeline_interval_ms > 0) {
    trace_ = std::make_shared<obs::RunTrace>(options_.timeline_capacity);
    obs::MetricsRegistry& m = trace_->metrics();
    // 1us .. ~4.2s in x4 steps.
    h_verify_us_ = m.GetHistogram("verify.latency_us",
                                  obs::Histogram::ExponentialBounds(1.0, 4.0, 12));
    h_group_pairs_ = m.GetHistogram(
        "candidate.group_pairs", obs::Histogram::ExponentialBounds(1.0, 4.0, 8));
    h_km_nodes_ = m.GetHistogram("verify.simplified_nodes",
                                 obs::Histogram::ExponentialBounds(2.0, 2.0, 8));
    h_km_matrix_ = m.GetHistogram("verify.km_matrix_n",
                                  obs::Histogram::ExponentialBounds(1.0, 2.0, 8));
    h_posting_len_ = m.GetHistogram(
        "index.posting_list_len", obs::Histogram::ExponentialBounds(1.0, 4.0, 10));
    h_index_build_us_ = m.GetHistogram(
        "index.build_us", obs::Histogram::ExponentialBounds(16.0, 4.0, 12));
    h_iteration_us_ = m.GetHistogram(
        "iteration.duration_us", obs::Histogram::ExponentialBounds(16.0, 4.0, 12));
    h_worker_busy_us_ = m.GetHistogram(
        "parallel.worker_busy_us", obs::Histogram::ExponentialBounds(16.0, 4.0, 12));
    // Gauges land in the RunReport, so the thread count a run used is
    // recorded alongside its timings.
    m.GetGauge("parallel.num_threads")
        ->Set(static_cast<double>(pool_ != nullptr ? pool_->size() : 1));
    // Atomic mirrors for the sampler thread: stats_ itself is
    // controller-thread-only.
    c_merges_ = m.GetCounter("engine.merges");
    c_verified_groups_ = m.GetCounter("engine.verified_groups");
    // Progressive-mode quality family; stays at zero for
    // non-progressive runs (docs/observability.md).
    c_frontier_groups_ = m.GetCounter("quality.frontier_groups");
    c_frontier_verified_ = m.GetCounter("quality.frontier_verified");
    c_frontier_deferred_ = m.GetCounter("quality.frontier_deferred");
    // The backend and its pipeline depth land in the report as gauges,
    // so a recorded run says which probe path produced its timings.
    m.GetGauge("index.backend_flat")
        ->Set(options_.index_backend == IndexBackend::kFlat ? 1.0 : 0.0);
    m.GetGauge("flat.prefetch_depth")
        ->Set(static_cast<double>(options_.flat_pipeline_depth));
    c_flat_probes_ = m.GetCounter("flat.probes_batched");
    c_flat_rehashes_ = m.GetCounter("flat.rehashes");
    // Which kernel tier actually ran (0 = scalar, 1 = sse4, 2 = avx2)
    // — the resolved tier, not the requested one, so a clamped-down
    // run is visible in its report. The kernel.* counters carry this
    // run's deltas of the process-global totals.
    m.GetGauge("kernel.dispatch_tier")
        ->Set(static_cast<double>(
            KernelDispatchGaugeValue(ActiveKernelDispatch())));
    kernel_counters_base_ = KernelCountersNow();
    joiner_->SetCollectWorkerSpans(true);
    trace_->SetTimelineIntervalMs(
        static_cast<double>(options_.timeline_interval_ms));
    if (options_.timeline_interval_ms > 0) {
      obs::TimelineSampler::Options sopts;
      sopts.interval_ms = static_cast<double>(options_.timeline_interval_ms);
      obs::RunTrace* trace = trace_.get();
      sampler_ = std::make_unique<obs::TimelineSampler>(
          sopts, [trace] { return trace->NowMs(); }, &trace_->timeline());
      // Every probe is a relaxed atomic load or an internally-locked
      // cache counter — read-only with respect to resolution state.
      obs::Counter* c_merges = c_merges_;
      sampler_->AddProbe("merges",
                         [c_merges] { return static_cast<double>(c_merges->value()); });
      obs::Counter* c_verified = c_verified_groups_;
      sampler_->AddProbe("verified_groups", [c_verified] {
        return static_cast<double>(c_verified->value());
      });
      obs::Counter* c_emitted = m.GetCounter("simjoin.emitted");
      sampler_->AddProbe("pairs_emitted", [c_emitted] {
        return static_cast<double>(c_emitted->value());
      });
      obs::Gauge* g_index = m.GetGauge("index.size");
      sampler_->AddProbe("index_size", [g_index] { return g_index->value(); });
      obs::Counter* c_flat = c_flat_probes_;
      sampler_->AddProbe("flat_probes_batched", [c_flat] {
        return static_cast<double>(c_flat->value());
      });
      if (token_cache_) {
        std::shared_ptr<TokenCache> tc = token_cache_;
        sampler_->AddProbe("token_cache_entries", [tc] {
          return static_cast<double>(tc->stats().entries);
        });
      }
      if (pair_cache_) {
        std::shared_ptr<PairSimCache> pc = pair_cache_;
        sampler_->AddProbe("pair_sim_cache_entries", [pc] {
          return static_cast<double>(pc->stats().entries);
        });
      }
      if (options_.progressive) {
        // Paired with the `merges` track above this samples the
        // recall-vs-verified-pairs curve: merges (recall proxy, and
        // exact recall once labels are scored) as a function of
        // verification spend.
        obs::Counter* c_fv = c_frontier_verified_;
        sampler_->AddProbe("frontier_verified", [c_fv] {
          return static_cast<double>(c_fv->value());
        });
      }
    }
  }
#endif
}

void ResolutionEngine::AddRecords(const std::vector<Record>& records) {
  size_t new_total = uf_.Size() + records.size();
  // UnionFind::Reset would lose state; grow by re-adding. UnionFind has
  // no grow API, so rebuild preserving existing assignments.
  UnionFind grown(new_total);
  for (uint32_t r = 0; r < uf_.Size(); ++r) {
    grown.Union(uf_.Find(r), r);
  }
  uf_ = std::move(grown);
  for (const Record& r : records) {
    assert(r.id() < new_total);
    active_.emplace(r.id(), SuperRecord::FromRecord(r));
  }
}

void ResolutionEngine::ArmGuard() {
  guard_.Arm();
  // The verification budget, like the deadline, is granted afresh per
  // run: a resumed or incremental round may spend max_verifications()
  // again from zero.
  budget_spent_ = 0;
  // Idempotent across incremental rounds: the sampler keeps running
  // between Resolve calls and Start() is a no-op while it does.
  if (sampler_ != nullptr) sampler_->Start();
  stats_.outcome = RunOutcome::kCompleted;
  // A restored run carries its shed counters across the resume; the
  // degradation they represent is permanent (the shed pairs are gone),
  // so the fresh outcome must keep reflecting it.
  if (stats_.shed_index_pairs > 0 || stats_.shed_posting_entries > 0) {
    RaiseOutcome(RunOutcome::kDegraded);
  }
}

void ResolutionEngine::RaiseOutcome(RunOutcome outcome) {
  if (static_cast<int>(outcome) > static_cast<int>(stats_.outcome)) {
    stats_.outcome = outcome;
  }
}

RunOutcome ResolutionEngine::TruncationOutcome() const {
  return guard_.Cancelled() ? RunOutcome::kTruncatedCancelled
                            : RunOutcome::kTruncatedDeadline;
}

void ResolutionEngine::StopTimelineSampler() {
  if (sampler_ != nullptr) sampler_->Stop();
}

void ResolutionEngine::NoteJoinReport(const JoinReport& report,
                                      double join_start_ms) {
  if (trace_) {
    obs::MetricsRegistry& m = trace_->metrics();
    m.GetCounter("simjoin.candidates")->Inc(report.candidates);
    m.GetCounter("simjoin.verified")->Inc(report.verified);
    m.GetCounter("simjoin.emitted")->Inc(report.emitted);
    m.GetCounter("simjoin.pruned_prefix")->Inc(report.pruned_prefix);
    m.GetCounter("simjoin.pruned_length")->Inc(report.pruned_length);
    m.GetCounter("simjoin.pruned_positional")->Inc(report.pruned_positional);
    m.GetCounter("simjoin.pruned_suffix")->Inc(report.pruned_suffix);
    if (report.flat_probes_batched > 0) {
      c_flat_probes_->Inc(report.flat_probes_batched);
    }
    if (report.flat_rehashes > 0) c_flat_rehashes_->Inc(report.flat_rehashes);
    if (h_worker_busy_us_ != nullptr) {
      for (double us : report.worker_busy_us) h_worker_busy_us_->Observe(us);
    }
    // Rebase the join's call-relative chunk spans onto the tracer
    // clock. Recorded post-hoc on the controller thread — workers
    // never touch the tracer.
    for (const JoinReport::WorkerSpan& ws : report.worker_spans) {
      trace_->AddWorkerSpan({ws.phase, ws.worker, ws.chunk,
                             join_start_ms + ws.start_us / 1000.0,
                             ws.dur_us / 1000.0,
                             trace_->tracer().iteration()});
    }
  }
  if (report.shed_candidates > 0) {
    stats_.shed_join_candidates += report.shed_candidates;
    if (trace_) {
      trace_->tracer().Event("shed.candidates", "join", report.shed_candidates);
    }
  }
  if (report.truncated) {
    stats_.join_truncated = true;
    RaiseOutcome(TruncationOutcome());
    if (trace_) {
      trace_->tracer().Event("join.truncated",
                             guard_.Cancelled() ? "cancelled" : "deadline");
    }
  }
  if (report.shed_posting_entries > 0) {
    join_shed_posting_ += report.shed_posting_entries;
    RaiseOutcome(RunOutcome::kDegraded);
    if (trace_) {
      trace_->tracer().Event("shed.posting", "join", report.shed_posting_entries);
    }
  }
}

void ResolutionEngine::AddPairsGuarded(std::vector<ValuePair> pairs) {
  if (guard_.max_index_pairs() > 0 || guard_.max_posting_list() > 0) {
    std::sort(pairs.begin(), pairs.end(),
              [](const ValuePair& a, const ValuePair& b) { return a.sim > b.sim; });
  }
  const size_t idx_shed_before = index_.shed_pairs();
  const size_t idx_posting_before = index_.shed_posting_entries();
  index_.AddPairs(pairs);
  stats_.shed_index_pairs = index_.shed_pairs();
  stats_.shed_posting_entries =
      join_shed_posting_ + index_.shed_posting_entries();
  if (stats_.shed_index_pairs > 0 || stats_.shed_posting_entries > 0) {
    RaiseOutcome(RunOutcome::kDegraded);
  }
  if (trace_) {
    if (index_.shed_pairs() > idx_shed_before) {
      trace_->tracer().Event("shed.index_pairs", "ceiling",
                             index_.shed_pairs() - idx_shed_before);
    }
    if (index_.shed_posting_entries() > idx_posting_before) {
      trace_->tracer().Event("shed.posting", "index",
                             index_.shed_posting_entries() - idx_posting_before);
    }
  }
}

std::vector<LabeledValue> ResolutionEngine::ValuesOf(const SuperRecord& sr) const {
  std::vector<LabeledValue> values;
  for (uint32_t f = 0; f < sr.num_fields(); ++f) {
    for (uint32_t v = 0; v < sr.field(f).size(); ++v) {
      values.push_back({ValueLabel{sr.rid(), f, v}, sr.field(f).value(v).value});
    }
  }
  return values;
}

void ResolutionEngine::SyncTokenCacheMetrics() {
  if (!trace_ || !token_cache_) return;
  // Cache totals are cumulative; bring the counters up to date rather
  // than double counting across rounds.
  TokenCache::Stats s = token_cache_->stats();
  obs::Counter* interned = trace_->metrics().GetCounter("tokens.interned");
  if (s.misses > interned->value()) interned->Inc(s.misses - interned->value());
  obs::Counter* hits = trace_->metrics().GetCounter("tokens.cache_hits");
  if (s.hits > hits->value()) hits->Inc(s.hits - hits->value());
}

void ResolutionEngine::SyncPairCacheMetrics() {
  if (!trace_ || !pair_cache_) return;
  PairSimCache::Stats s = pair_cache_->stats();
  obs::Counter* computed = trace_->metrics().GetCounter("pairsim.computed");
  if (s.misses > computed->value()) computed->Inc(s.misses - computed->value());
  obs::Counter* hits = trace_->metrics().GetCounter("pairsim.cache_hits");
  if (s.hits > hits->value()) hits->Inc(s.hits - hits->value());
}

void ResolutionEngine::SyncKernelMetrics() {
  if (!trace_) return;
  // The kernel counters are process-global (hot loops cannot afford
  // per-engine indirection); publish this engine's delta against the
  // construction-time baseline, catching the counters up rather than
  // double counting across rounds.
  KernelCounterSnapshot now = KernelCountersNow();
  obs::Counter* simd = trace_->metrics().GetCounter("kernel.simd_intersections");
  uint64_t simd_delta = now.simd_intersections - kernel_counters_base_.simd_intersections;
  if (simd_delta > simd->value()) simd->Inc(simd_delta - simd->value());
  obs::Counter* myers = trace_->metrics().GetCounter("kernel.myers_calls");
  uint64_t myers_delta = now.myers_calls - kernel_counters_base_.myers_calls;
  if (myers_delta > myers->value()) myers->Inc(myers_delta - myers->value());
}

void ResolutionEngine::HarvestIndexMetrics() {
  if (!trace_) return;
  trace_->metrics().GetGauge("index.size")->Set(static_cast<double>(index_.size()));
  // Snapshot the posting-length distribution (one observation per live
  // posting list per indexing round).
  index_.ForEachPostingLength([this](uint32_t rid, size_t len) {
    (void)rid;
    h_posting_len_->Observe(static_cast<double>(len));
  });
}

StatusOr<size_t> ResolutionEngine::IndexNewRecords() {
  // ScopedTimer flushes on every exit path, including injected
  // failures, so index_build_ms now also covers aborted builds.
  obs::ScopedTimer timer(&stats_.index_build_ms, h_index_build_us_);
  auto span = obs::StartSpan(trace_.get(), "index.build");
  HERA_FAILPOINT("index.build");
  size_t before = index_.size();
  if (guard_.Interrupted()) {
    // Out of budget before the join even starts: leave the index as is
    // (records are marked indexed so a later round won't re-join them
    // against a half-processed watermark).
    RaiseOutcome(TruncationOutcome());
    stats_.join_truncated = true;
    if (trace_) {
      trace_->tracer().Event("join.truncated",
                             guard_.Cancelled() ? "cancelled" : "deadline");
    }
    indexed_watermark_ = static_cast<uint32_t>(uf_.Size());
    stats_.index_size = index_.size();
    loop_needs_reset_ = true;
    if (ckpt_ != nullptr) {
      HERA_RETURN_NOT_OK(ckpt_->WriteSnapshot(ExportState()));
    }
    return size_t{0};
  }
  std::vector<LabeledValue> fresh, existing;
  for (const auto& [rid, sr] : active_) {
    auto values = ValuesOf(sr);
    auto* dest = rid >= indexed_watermark_ ? &fresh : &existing;
    dest->insert(dest->end(), values.begin(), values.end());
  }
  std::vector<ValuePair> joined;
  JoinReport report;
  {
    auto join_span = obs::StartSpan(trace_.get(), "join.self");
    double join_t0 = trace_ ? trace_->tracer().ElapsedMs() : 0.0;
    HERA_RETURN_NOT_OK(
        joiner_->Join(fresh, *simv_, options_.xi, guard_, &joined, &report));
    join_span.End();
    NoteJoinReport(report, join_t0);
  }
  AddPairsGuarded(std::move(joined));
  if (!existing.empty() && !guard_.Interrupted()) {
    auto join_span = obs::StartSpan(trace_.get(), "join.ab");
    double join_t0 = trace_ ? trace_->tracer().ElapsedMs() : 0.0;
    HERA_RETURN_NOT_OK(joiner_->JoinAB(fresh, existing, *simv_, options_.xi,
                                       guard_, &joined, &report));
    join_span.End();
    NoteJoinReport(report, join_t0);
    AddPairsGuarded(std::move(joined));
  }
  indexed_watermark_ = static_cast<uint32_t>(uf_.Size());
  stats_.index_size = index_.size();
  HarvestIndexMetrics();
  SyncTokenCacheMetrics();
  SyncPairCacheMetrics();
  SyncKernelMetrics();
  // New pairs invalidate any carried loop state: the next fixpoint loop
  // must rescan every group.
  loop_needs_reset_ = true;
  if (ckpt_ != nullptr) {
    HERA_RETURN_NOT_OK(ckpt_->WriteSnapshot(ExportState()));
  }
  return index_.size() - before;
}

Status ResolutionEngine::IndexPrecomputed(const std::vector<ValuePair>& pairs) {
  obs::ScopedTimer timer(&stats_.index_build_ms, h_index_build_us_);
  auto span = obs::StartSpan(trace_.get(), "index.build");
  HERA_FAILPOINT("index.build");
  AddPairsGuarded(pairs);
  indexed_watermark_ = static_cast<uint32_t>(uf_.Size());
  stats_.index_size = index_.size();
  HarvestIndexMetrics();
  loop_needs_reset_ = true;
  if (ckpt_ != nullptr) {
    HERA_RETURN_NOT_OK(ckpt_->WriteSnapshot(ExportState()));
  }
  return Status::OK();
}

Status ResolutionEngine::IterateToFixpoint() {
  obs::ScopedTimer total_timer(&stats_.total_ms);
  auto resolve_span = obs::StartSpan(trace_.get(), "resolve");
  InstanceBasedVerifier verifier(
      options_.enable_schema_voting ? &predictor_ : nullptr);

  // Dirty tracking: after the first pass, a group whose two records
  // were both untouched by merges cannot decide differently than it
  // already did (its pairs and the field counts are unchanged), so
  // only groups touching a recently merged record are re-examined.
  // The first-pass flag, dirty set, and deferral queue (groups pushed
  // past the candidate ceiling, owed an examination regardless of
  // dirtiness) are members so a truncated loop can be checkpointed and
  // resumed exactly where it stopped; see their declaration.
  if (loop_needs_reset_) {
    loop_first_pass_ = true;
    loop_dirty_.clear();
    loop_deferred_.clear();
    loop_needs_reset_ = false;
  }
  // Set when the loop stops before the fixpoint (guard or iteration
  // cap): the carried loop state stays live for a resumed run.
  bool truncated_break = false;

  while (loop_first_pass_ || !loop_dirty_.empty() || !loop_deferred_.empty()) {
    // Safe points: state is always a valid labeling between passes, so
    // deadline expiry / cancellation stops here and the caller gets
    // the current partial result.
    if (guard_.Interrupted()) {
      RaiseOutcome(TruncationOutcome());
      if (trace_) {
        trace_->tracer().Event("truncated",
                               guard_.Cancelled() ? "cancelled" : "deadline");
      }
      truncated_break = true;
      break;
    }
    if (stats_.iterations >= options_.max_iterations) {
      HERA_LOG(Warning) << "IterateToFixpoint stopped at max_iterations="
                        << options_.max_iterations
                        << " before reaching a fixpoint; labeling is valid "
                           "but further merges may have been possible";
      RaiseOutcome(RunOutcome::kIterationCap);
      if (trace_) {
        trace_->tracer().Event("iteration_cap", "", options_.max_iterations);
      }
      truncated_break = true;
      break;
    }
    // An iteration boundary is the durable unit: snapshot when due,
    // then log the pass about to run as one WAL entry at its end.
    if (ckpt_ != nullptr && ckpt_->SnapshotDue(stats_.iterations)) {
      // Fold the loop time so far into total_ms so the persisted
      // elapsed time is accurate — a resumed run stitches its timeline
      // onto index_build_ms + total_ms from the snapshot.
      total_timer.Lap();
      HERA_RETURN_NOT_OK(ckpt_->WriteSnapshot(ExportState()));
    }
    // Until this pass completes (including its WAL append), the carried
    // loop state is mid-mutation; a failure here forces a full rescan.
    loop_needs_reset_ = true;
    ++stats_.iterations;
    const HeraStats pass_before = stats_;
    const double simplified_sum_before = simplified_nodes_sum_;
    const size_t simplified_count_before = simplified_nodes_count_;
    persist::WalEntry wal_entry;
    Timer pass_timer;
    auto pass_span = obs::StartSpan(trace_.get(), "iteration");
    if (trace_) {
      trace_->tracer().SetIteration(static_cast<int64_t>(stats_.iterations));
    }

    // Snapshot the (rid1, rid2) groups. Following the paper's
    // iteration semantics (Fig 8), each record participates in at most
    // one merge per pass; groups touching a record merged earlier in
    // the pass are deferred to the next iteration, where the index
    // groups have been combined (Proposition 3 guarantees no similar
    // value pair is lost).
    std::vector<std::pair<uint32_t, uint32_t>> groups;
    std::set<std::pair<uint32_t, uint32_t>> listed;
    index_.ForEachGroup([&](uint32_t r1, uint32_t r2,
                            const std::vector<IndexedPair>& pairs) {
      (void)pairs;
      if (loop_first_pass_ || loop_dirty_.count(r1) || loop_dirty_.count(r2)) {
        if (listed.emplace(r1, r2).second) groups.emplace_back(r1, r2);
      }
    });
    // Re-queue the carried deferrals (their rids may no longer be
    // dirty; they are owed an examination regardless).
    for (const auto& g : loop_deferred_) {
      if (listed.insert(g).second) groups.push_back(g);
    }
    loop_deferred_.clear();
    loop_first_pass_ = false;
    loop_dirty_.clear();

    // Candidate ceiling: examine at most the cap this pass and carry
    // the tail into the next one (deferral, not loss). Progress is
    // guaranteed: a no-merge pass consumes `cap` queued groups.
    const size_t cap = guard_.max_candidates_per_iteration();
    if (cap > 0 && groups.size() > cap) {
      loop_deferred_.assign(groups.begin() + cap, groups.end());
      stats_.deferred_candidate_groups += loop_deferred_.size();
      if (trace_) {
        trace_->tracer().Event("defer.candidates", "ceiling",
                               loop_deferred_.size());
      }
      groups.resize(cap);
    }

    std::unordered_map<uint32_t, bool> merged_this_pass;

    // Phase A (speculative, parallel): with a pool installed, every
    // group's pair lookup, bound computation, and KM verification runs
    // across the workers against the pass-start state. Groups whose
    // state a merge later invalidates simply discard their plan and
    // recompute serially in Phase B, so the merge sequence stays
    // byte-identical to a serial run (see docs/performance.md).
    struct GroupPlan {
      uint32_t i = 0, j = 0;  // Pass-start roots, i < j.
      bool same_root = false;
      bool pairs_loaded = false;  // pairs came from the batched preload.
      bool loaded = false;    // pairs (and bounds, if any) computed.
      bool verified = false;  // vr holds a speculative KM result.
      std::vector<IndexedPair> pairs;
      BoundResult bounds;
      VerifyResult vr;
      double verify_us = 0.0;
    };
    std::vector<GroupPlan> plans;
    const bool flat_index = options_.index_backend == IndexBackend::kFlat;
    const bool parallel_phase_a =
        pool_ != nullptr && pool_->size() > 1 && groups.size() > 1;
    // Progressive mode needs every group's similarity upper bound
    // before Phase B starts (the frontier is ordered by it), so it
    // forces plan-building even on the serial ordered path.
    if ((parallel_phase_a || flat_index || options_.progressive) &&
        !groups.empty()) {
      // Roots are resolved serially: Find path-compresses.
      plans.resize(groups.size());
      for (size_t k = 0; k < groups.size(); ++k) {
        uint32_t i = uf_.Find(groups[k].first);
        uint32_t j = uf_.Find(groups[k].second);
        if (i > j) std::swap(i, j);
        plans[k].i = i;
        plans[k].j = j;
        plans[k].same_root = i == j;
      }
      if (flat_index) {
        // Preload every live group's pairs in one batched sweep over
        // the index — the pass's range lookups become a single
        // prefetch-pipelined probe storm against pass-start state
        // instead of |groups| pointer-chasing lookups scattered through
        // the pass. Phase B's freshness checks below decide, group by
        // group, whether the preloaded pairs are still adoptable.
        std::vector<std::pair<uint32_t, uint32_t>> live;
        std::vector<size_t> live_at;
        live.reserve(groups.size());
        live_at.reserve(groups.size());
        for (size_t k = 0; k < groups.size(); ++k) {
          if (plans[k].same_root) continue;
          if (!active_.count(plans[k].i) || !active_.count(plans[k].j)) continue;
          live.emplace_back(plans[k].i, plans[k].j);
          live_at.push_back(k);
        }
        std::vector<std::vector<IndexedPair>> preloaded;
        index_.PairsForBatch(live, &preloaded);
        for (size_t n = 0; n < live_at.size(); ++n) {
          plans[live_at[n]].pairs = std::move(preloaded[n]);
          plans[live_at[n]].pairs_loaded = true;
        }
      }
    }
    if (parallel_phase_a) {
      std::atomic<bool> stop{false};
      const double phase_a_t0 = trace_ ? trace_->tracer().ElapsedMs() : 0.0;
      ParallelRunStats pstats = ParallelChunks(
          pool_.get(), groups.size(),
          DefaultGrain(groups.size(), pool_->size()),
          [&](size_t /*chunk*/, size_t begin, size_t end, size_t /*worker*/) {
            for (size_t k = begin; k < end; ++k) {
              if (stop.load(std::memory_order_relaxed)) return;
              GroupPlan& plan = plans[k];
              if (plan.same_root) continue;
              auto it_i = active_.find(plan.i);
              auto it_j = active_.find(plan.j);
              if (it_i == active_.end() || it_j == active_.end()) continue;
              if (!plan.pairs_loaded) plan.pairs = index_.PairsFor(plan.i, plan.j);
              if (plan.pairs.empty()) {
                plan.loaded = true;
                continue;
              }
              plan.bounds = ComputeBounds(plan.pairs, it_i->second.num_fields(),
                                          it_j->second.num_fields(),
                                          options_.tight_bounds);
              plan.loaded = true;
              if (plan.bounds.upper < options_.delta) continue;
              if (plan.bounds.upper == plan.bounds.lower) continue;
              if (guard_.Interrupted()) {
                stop.store(true, std::memory_order_relaxed);
                return;
              }
              Timer verify_timer;
              plan.vr = verifier.Verify(it_i->second, it_j->second, plan.pairs);
              plan.verify_us = verify_timer.ElapsedMicros();
              plan.verified = true;
            }
          },
          /*record_spans=*/trace_ != nullptr);
      if (h_worker_busy_us_ != nullptr) {
        for (double us : pstats.busy_us) h_worker_busy_us_->Observe(us);
      }
      if (trace_) {
        for (const ChunkSpan& cs : pstats.chunk_spans) {
          trace_->AddWorkerSpan({"verify.phase_a", cs.worker, cs.chunk,
                                 phase_a_t0 + cs.start_us / 1000.0,
                                 cs.dur_us / 1000.0,
                                 trace_->tracer().iteration()});
        }
      }
    } else if ((flat_index || options_.progressive) && !plans.empty()) {
      // Serial path: finish the plans inline — bounds only;
      // verification stays in Phase B against the live predictor
      // state. Under the flat backend the pairs were batch-preloaded
      // above; the serial ordered progressive path loads them here
      // (the same PairsFor lookups Phase B would otherwise issue).
      for (GroupPlan& plan : plans) {
        if (plan.same_root) continue;
        if (!plan.pairs_loaded) {
          if (!active_.count(plan.i) || !active_.count(plan.j)) continue;
          plan.pairs = index_.PairsFor(plan.i, plan.j);
          plan.pairs_loaded = true;
        }
        if (plan.pairs.empty()) {
          plan.loaded = true;
          continue;
        }
        auto it_i = active_.find(plan.i);
        auto it_j = active_.find(plan.j);
        assert(it_i != active_.end() && it_j != active_.end());
        plan.bounds = ComputeBounds(plan.pairs, it_i->second.num_fields(),
                                    it_j->second.num_fields(),
                                    options_.tight_bounds);
        plan.loaded = true;
      }
    }

    // Speculative KM results are valid only while the predictor's
    // decided-matchings set still equals its pass-start snapshot:
    // Verify() consults IsDecided, and votes recorded earlier in this
    // pass can flip it mid-pass (exactly as in a serial run). The
    // num_predictions() delta is the cheap gate; the set compare runs
    // only when votes actually arrived since the last check.
    const bool voting = options_.enable_schema_voting;
    std::vector<std::pair<AttrRef, AttrRef>> decided_at_start;
    if (!plans.empty() && voting) {
      decided_at_start = predictor_.DecidedMatchings();
    }
    size_t preds_checked = predictor_.num_predictions();
    bool spec_valid = true;
    auto speculation_valid = [&]() {
      if (!voting) return true;
      if (!spec_valid) return false;
      size_t now = predictor_.num_predictions();
      if (now != preds_checked) {
        preds_checked = now;
        spec_valid = predictor_.DecidedMatchings() == decided_at_start;
      }
      return spec_valid;
    };

    // Best-first frontier (progressive mode): when the run is governed
    // — a verification budget, deadline, or cancellation token could
    // cut it short — Phase B walks its verification-needing groups in
    // descending similarity-upper-bound order, so whatever a cut
    // leaves unverified is the least promising work. Groups the bounds
    // decide for free (prune, direct merge, empty, dead) go first in
    // canonical order: they cost no budget, and their merges can only
    // sharpen later decisions. Ungoverned progressive passes keep pure
    // canonical order — that is what makes an unbudgeted progressive
    // run byte-identical (labels and merge_sequence) to the default.
    const bool frontier_active =
        options_.progressive &&
        (guard_.max_verifications() > 0 || guard_.watched());
    std::vector<size_t> order;
    if (frontier_active && !plans.empty()) {
      std::vector<size_t> free_list, verify_list;
      free_list.reserve(groups.size());
      for (size_t k = 0; k < groups.size(); ++k) {
        const GroupPlan& p = plans[k];
        const bool needs_verify = p.loaded && !p.same_root &&
                                  !p.pairs.empty() &&
                                  p.bounds.upper >= options_.delta &&
                                  p.bounds.upper != p.bounds.lower;
        (needs_verify ? verify_list : free_list).push_back(k);
      }
      std::sort(verify_list.begin(), verify_list.end(),
                [&](size_t a, size_t b) {
                  const double ua = plans[a].bounds.upper;
                  const double ub = plans[b].bounds.upper;
                  if (ua != ub) return ua > ub;
                  return a < b;  // Canonical order breaks ties.
                });
      // A frontier capacity bounds the reordering: only the top-C
      // groups jump the queue; the tail reverts to canonical order
      // behind them.
      if (options_.frontier_capacity > 0 &&
          verify_list.size() > options_.frontier_capacity) {
        std::sort(verify_list.begin() +
                      static_cast<std::ptrdiff_t>(options_.frontier_capacity),
                  verify_list.end());
      }
      stats_.frontier_groups += verify_list.size();
      if (c_frontier_groups_ != nullptr) {
        c_frontier_groups_->Inc(verify_list.size());
      }
      order = std::move(free_list);
      order.insert(order.end(), verify_list.begin(), verify_list.end());
    } else {
      order.resize(groups.size());
      for (size_t k = 0; k < order.size(); ++k) order[k] = k;
    }

    // First budget/guard cut this pass (null = none): names the cause
    // for the observer, trace, and outcome.
    const char* cut_reason = nullptr;
    bool cut_is_budget = false;

    // Phase B (serial): replay the paper's loop in frontier order
    // (canonical unless progressive governance reordered it above),
    // adopting each speculative plan when its inputs are still
    // pass-start fresh and recomputing inline otherwise. Merges, votes,
    // stats, and failpoints happen only here.
    for (size_t ok = 0; ok < order.size(); ++ok) {
      const size_t gk = order[ok];
      auto [g1, g2] = groups[gk];
      if (merged_this_pass[g1] || merged_this_pass[g2]) continue;
      uint32_t i = uf_.Find(g1), j = uf_.Find(g2);
      if (i == j) continue;  // Already merged (earlier pass).
      if (i > j) std::swap(i, j);
      auto it_i = active_.find(i);
      auto it_j = active_.find(j);
      assert(it_i != active_.end() && it_j != active_.end());

      // A plan is adoptable only if the group's state is untouched
      // since pass start: same roots, and neither root in a merge this
      // pass (a stale deferred key can re-root without tripping the
      // merged_this_pass check on g1/g2 above).
      GroupPlan* plan = plans.empty() ? nullptr : &plans[gk];
      const bool fresh = plan != nullptr && plan->loaded && plan->i == i &&
                         plan->j == j && !merged_this_pass[i] &&
                         !merged_this_pass[j];
      std::vector<IndexedPair> local_pairs;
      if (!fresh) local_pairs = index_.PairsFor(i, j);
      const std::vector<IndexedPair>& pairs = fresh ? plan->pairs : local_pairs;
      if (pairs.empty()) continue;  // Deleted by an earlier merge.
      if (h_group_pairs_ != nullptr) {
        h_group_pairs_->Observe(static_cast<double>(pairs.size()));
      }

      // Candidate generation: bound the similarity (Algorithm 1).
      BoundResult local_bounds;
      if (!fresh) {
        local_bounds =
            ComputeBounds(pairs, it_i->second.num_fields(),
                          it_j->second.num_fields(), options_.tight_bounds);
      }
      const BoundResult& bounds = fresh ? plan->bounds : local_bounds;
      std::vector<FieldMatch> matching;
      // Predictions recorded by this group, captured for the WAL so
      // replay can re-vote them without re-verifying. Predictions are
      // only ever recorded on paths that end in a merge, so logging
      // them per merge loses nothing.
      std::vector<std::pair<AttrRef, AttrRef>> wal_preds;
      if (bounds.upper < options_.delta) {
        ++stats_.pruned_by_bound;
        continue;
      }
      if (bounds.upper == bounds.lower) {
        // Exact: similarity known without verification (the R' set).
        if (bounds.upper < options_.delta) continue;
        ++stats_.direct_merges;
        matching.reserve(bounds.refined.size());
        for (const IndexedPair& p : bounds.refined) {
          matching.push_back({p.a.fid, p.b.fid, p.sim});
          if (options_.enable_schema_voting) {
            // R' matchings are exact field matchings (Definition 4) and
            // carry the same — in fact stronger — evidence as verified
            // candidates, so they vote too. (Extension of Algorithm 2,
            // which only feeds verified candidates into the vote.)
            const AttrRef& origin_a =
                it_i->second.field(p.a.fid).value(p.a.vid).origin;
            const AttrRef& origin_b =
                it_j->second.field(p.b.fid).value(p.b.vid).origin;
            predictor_.AddPrediction(origin_a, origin_b);
            if (ckpt_ != nullptr) wal_preds.emplace_back(origin_a, origin_b);
          }
        }
      } else {
        // Verification (Section IV). A spent verification budget — or,
        // in progressive mode, a guard trip — defers the group
        // unverified into the checkpointable queue instead of paying
        // for it: the orderly frontier drain. Bound-decided groups
        // above still resolve (they are free); only budgeted work
        // stops. Non-progressive runs keep the historical behavior for
        // deadline/cancel (stop at the next pass boundary).
        const bool budget_out = BudgetExhausted();
        if (budget_out || (frontier_active && guard_.Interrupted())) {
          loop_deferred_.push_back(groups[gk]);
          ++stats_.budget_deferred_groups;
          if (c_frontier_deferred_ != nullptr) c_frontier_deferred_->Inc();
          if (cut_reason == nullptr) {
            cut_is_budget = budget_out;
            cut_reason = budget_out           ? "budget"
                         : guard_.Cancelled() ? "cancelled"
                                              : "deadline";
            guard_.NotifyBudgetCut(cut_reason);
            if (trace_) trace_->tracer().Event("frontier.cut", cut_reason);
          }
          continue;
        }
        HERA_FAILPOINT("verify.km");
        ++stats_.candidates;
        ++stats_.comparisons;
        ++budget_spent_;
        if (c_verified_groups_ != nullptr) c_verified_groups_->Inc();
        if (options_.progressive && c_frontier_verified_ != nullptr) {
          c_frontier_verified_->Inc();
        }
        VerifyResult vr;
        if (fresh && plan->verified && speculation_valid()) {
          // Adopt the speculative KM result computed in Phase A.
          vr = std::move(plan->vr);
          if (h_verify_us_ != nullptr) {
            h_verify_us_->Observe(plan->verify_us);
            if (vr.simplified_nodes > 0) {
              h_km_nodes_->Observe(static_cast<double>(vr.simplified_nodes));
            }
            if (vr.km_size > 0) {
              h_km_matrix_->Observe(static_cast<double>(vr.km_size));
            }
          }
        } else if (h_verify_us_ != nullptr) {
          obs::ScopedTimer verify_timer(nullptr, h_verify_us_);
          vr = verifier.Verify(it_i->second, it_j->second, pairs);
          verify_timer.Stop();
          if (vr.simplified_nodes > 0) {
            h_km_nodes_->Observe(static_cast<double>(vr.simplified_nodes));
          }
          if (vr.km_size > 0) {
            h_km_matrix_->Observe(static_cast<double>(vr.km_size));
          }
        } else {
          vr = verifier.Verify(it_i->second, it_j->second, pairs);
        }
        if (vr.simplified_nodes > 0) {
          simplified_nodes_sum_ += static_cast<double>(vr.simplified_nodes);
          ++simplified_nodes_count_;
        }
        if (vr.sim < options_.delta) continue;
        matching = std::move(vr.matching);
        if (options_.enable_schema_voting) {
          for (const auto& [attr_a, attr_b] : vr.predictions) {
            predictor_.AddPrediction(attr_a, attr_b);
          }
          if (ckpt_ != nullptr) wal_preds = std::move(vr.predictions);
        }
      }

      // Merge (Section III-B2): the smaller rid survives. The
      // failpoint sits before the first mutation, so an injected
      // failure leaves the engine fully consistent.
      HERA_FAILPOINT("engine.merge");
      if (ckpt_ != nullptr) {
        persist::WalMerge wm;
        wm.i = i;
        wm.j = j;
        wm.matching = matching;
        wm.predictions = std::move(wal_preds);
        wal_entry.merges.push_back(std::move(wm));
      }
      uint32_t new_rid = uf_.Union(i, j);
      assert(new_rid == i);
      std::vector<std::pair<ValueLabel, ValueLabel>> remap;
      SuperRecord merged = SuperRecord::Merge(it_i->second, it_j->second,
                                              matching, new_rid, &remap);
      index_.ApplyMerge(i, j, new_rid, remap);
      active_.erase(j);
      active_[new_rid] = std::move(merged);
      merged_this_pass[i] = merged_this_pass[j] = true;
      loop_dirty_.insert(new_rid);
      ++stats_.merges;
      if (c_merges_ != nullptr) c_merges_->Inc();
      stats_.merge_sequence.emplace_back(i, j);
    }

    pass_span.End();
    if (trace_) {
      obs::RunTrace::IterationRow row;
      row.iteration = stats_.iterations;
      row.groups = groups.size();
      row.pruned = stats_.pruned_by_bound - pass_before.pruned_by_bound;
      row.direct = stats_.direct_merges - pass_before.direct_merges;
      row.verified = stats_.candidates - pass_before.candidates;
      row.merges = stats_.merges - pass_before.merges;
      row.deferred =
          stats_.deferred_candidate_groups - pass_before.deferred_candidate_groups;
      row.ms = pass_timer.ElapsedMillis();
      row.t_ms = trace_->NowMs();
      trace_->AddIteration(row);
      h_iteration_us_->Observe(row.ms * 1000.0);
    }
    if (ckpt_ != nullptr) {
      wal_entry.iteration = stats_.iterations;
      wal_entry.pruned = stats_.pruned_by_bound - pass_before.pruned_by_bound;
      wal_entry.direct = stats_.direct_merges - pass_before.direct_merges;
      wal_entry.candidates = stats_.candidates - pass_before.candidates;
      wal_entry.comparisons = stats_.comparisons - pass_before.comparisons;
      wal_entry.deferred_groups = stats_.deferred_candidate_groups -
                                  pass_before.deferred_candidate_groups;
      wal_entry.simplified_sum = simplified_nodes_sum_ - simplified_sum_before;
      wal_entry.simplified_count =
          simplified_nodes_count_ - simplified_count_before;
      wal_entry.frontier_groups =
          stats_.frontier_groups - pass_before.frontier_groups;
      wal_entry.budget_deferred =
          stats_.budget_deferred_groups - pass_before.budget_deferred_groups;
      wal_entry.deferred_after = loop_deferred_;
      HERA_RETURN_NOT_OK(ckpt_->AppendWal(std::move(wal_entry)));
    }
    // Pass (and its WAL record) complete: the loop state is a valid
    // iteration boundary again.
    loop_needs_reset_ = false;
    if (cut_reason != nullptr) {
      // Budget/guard cut mid-pass: the pass is complete and durably
      // logged (its deferred groups ride in deferred_after), so stop
      // at this iteration boundary with a truncated outcome. The
      // final snapshot below makes the cut resumable; a resumed run
      // drains the deferred queue and converges to the same labels as
      // an uninterrupted one.
      RaiseOutcome(cut_is_budget ? RunOutcome::kTruncatedBudget
                                 : TruncationOutcome());
      if (trace_) trace_->tracer().Event("truncated", cut_reason);
      truncated_break = true;
      break;
    }
  }

  // A clean fixpoint exit invalidates the loop state on purpose: a
  // later direct IterateToFixpoint call rescans everything (the
  // historical contract incremental rounds rely on). Truncated exits
  // keep it live so a resumed run continues exactly where this one
  // stopped.
  if (!truncated_break) loop_needs_reset_ = true;

  if (trace_) {
    trace_->tracer().SetIteration(-1);
    // PairsFor calls are cumulative across rounds; bring the counter up
    // to date rather than double counting.
    obs::Counter* probes = trace_->metrics().GetCounter("index.probes");
    uint64_t seen = index_.probe_count();
    if (seen > probes->value()) probes->Inc(seen - probes->value());
    // Same for the index's flat side-table traffic; a seen-marker delta
    // because join reports Inc the same counters directly.
    const uint64_t fp = index_.flat_batched_probes();
    if (fp > flat_index_probes_seen_) {
      c_flat_probes_->Inc(fp - flat_index_probes_seen_);
      flat_index_probes_seen_ = fp;
    }
    const uint64_t fr = index_.flat_rehashes();
    if (fr > flat_index_rehashes_seen_) {
      c_flat_rehashes_->Inc(fr - flat_index_rehashes_seen_);
      flat_index_rehashes_seen_ = fr;
    }
    SyncKernelMetrics();
  }

  stats_.avg_simplified_nodes =
      simplified_nodes_count_ == 0
          ? 0.0
          : simplified_nodes_sum_ / static_cast<double>(simplified_nodes_count_);
  stats_.decided_schema_matchings = predictor_.DecidedMatchings().size();

  // Final snapshot: every exit (fixpoint, cap, guard truncation) leaves
  // the directory resumable from exactly this state. Stop (not Lap) the
  // run timer first so the persisted elapsed time equals the reported
  // stats.total_ms exactly — a resumed timeline continues from
  // index_build_ms + total_ms, and the two must agree.
  if (ckpt_ != nullptr) {
    total_timer.Stop();
    HERA_RETURN_NOT_OK(ckpt_->WriteSnapshot(ExportState()));
  }
  return Status::OK();
}

std::vector<uint32_t> ResolutionEngine::Labels() {
  std::vector<uint32_t> labels(uf_.Size());
  for (uint32_t r = 0; r < labels.size(); ++r) labels[r] = uf_.Find(r);
  return labels;
}

persist::EngineState ResolutionEngine::ExportState() {
  persist::EngineState s;
  s.num_records = uf_.Size();
  s.labels = Labels();
  s.super_records.reserve(active_.size());
  for (const auto& [rid, sr] : active_) {
    (void)rid;
    s.super_records.push_back(sr);
  }
  s.index_pairs = index_.Dump();
  s.index_next_pid = index_.next_pid();
  s.index_probe_count = index_.probe_count();
  s.index_shed_pairs = index_.shed_pairs();
  s.index_shed_posting = index_.shed_posting_entries();
  s.votes = predictor_.ExportVotes();
  s.num_predictions = predictor_.num_predictions();
  s.stats = stats_;
  s.indexed_watermark = indexed_watermark_;
  s.join_shed_posting = join_shed_posting_;
  s.simplified_nodes_sum = simplified_nodes_sum_;
  s.simplified_nodes_count = simplified_nodes_count_;
  if (!loop_needs_reset_) {
    s.loop_first_pass = loop_first_pass_;
    s.loop_dirty.assign(loop_dirty_.begin(), loop_dirty_.end());
    std::sort(s.loop_dirty.begin(), s.loop_dirty.end());
    s.loop_deferred = loop_deferred_;
  }
  // Else: the carried loop state is stale (fixpoint reached, or new
  // records were indexed); export a fresh rescan-everything loop, which
  // is exactly what the next IterateToFixpoint would start with.
  return s;
}

void ResolutionEngine::RestoreState(const persist::EngineState& state) {
  UnionFind restored(state.num_records);
  for (uint32_t r = 0; r < state.labels.size(); ++r) {
    restored.Union(state.labels[r], r);
  }
  uf_ = std::move(restored);
  active_.clear();
  for (const SuperRecord& sr : state.super_records) {
    active_.emplace(sr.rid(), sr);
  }
  index_.RestoreState(state.index_pairs, state.index_next_pid,
                      static_cast<size_t>(state.index_shed_pairs),
                      static_cast<size_t>(state.index_shed_posting),
                      state.index_probe_count);
  predictor_.RestoreVotes(state.votes,
                          static_cast<size_t>(state.num_predictions));
  stats_ = state.stats;
  // Stitch the resumed run's observability clock onto the pre-crash
  // one: the restored stats carry the milliseconds already spent, so
  // timeline samples and iteration rows continue a monotone series
  // across the resume. Tracer spans stay process-relative by design.
  if (trace_) {
    trace_->SetTimeBaseMs(stats_.index_build_ms + stats_.total_ms);
  }
  // Keep the seen-markers <= the index's counters after the restore
  // (restore-time inserts may have rehashed).
  flat_index_probes_seen_ = index_.flat_batched_probes();
  flat_index_rehashes_seen_ = index_.flat_rehashes();
  indexed_watermark_ = state.indexed_watermark;
  join_shed_posting_ = static_cast<size_t>(state.join_shed_posting);
  simplified_nodes_sum_ = state.simplified_nodes_sum;
  simplified_nodes_count_ = static_cast<size_t>(state.simplified_nodes_count);
  loop_first_pass_ = state.loop_first_pass;
  loop_dirty_.clear();
  loop_dirty_.insert(state.loop_dirty.begin(), state.loop_dirty.end());
  loop_deferred_ = state.loop_deferred;
  loop_needs_reset_ = false;
}

Status ResolutionEngine::ReplayWalEntry(const persist::WalEntry& entry) {
  if (entry.iteration != stats_.iterations + 1) {
    return Status::Internal(
        "WAL entry out of sequence: expected iteration " +
        std::to_string(stats_.iterations + 1) + ", got " +
        std::to_string(entry.iteration));
  }
  ++stats_.iterations;
  loop_first_pass_ = false;
  loop_dirty_.clear();
  for (const persist::WalMerge& m : entry.merges) {
    auto it_i = active_.find(m.i);
    auto it_j = active_.find(m.j);
    if (it_i == active_.end() || it_j == active_.end()) {
      return Status::Internal("WAL replay: merge of " + std::to_string(m.i) +
                              " and " + std::to_string(m.j) +
                              " references a dead record; state mismatch");
    }
    uint32_t new_rid = uf_.Union(m.i, m.j);
    if (new_rid != m.i) {
      return Status::Internal("WAL replay: union of " + std::to_string(m.i) +
                              " and " + std::to_string(m.j) +
                              " kept rid " + std::to_string(new_rid) +
                              "; state mismatch");
    }
    std::vector<std::pair<ValueLabel, ValueLabel>> remap;
    SuperRecord merged = SuperRecord::Merge(it_i->second, it_j->second,
                                            m.matching, new_rid, &remap);
    index_.ApplyMerge(m.i, m.j, new_rid, remap);
    active_.erase(m.j);
    active_[new_rid] = std::move(merged);
    for (const auto& [attr_a, attr_b] : m.predictions) {
      predictor_.AddPrediction(attr_a, attr_b);
    }
    loop_dirty_.insert(new_rid);
    ++stats_.merges;
    if (c_merges_ != nullptr) c_merges_->Inc();
    stats_.merge_sequence.emplace_back(m.i, m.j);
  }
  stats_.pruned_by_bound += static_cast<size_t>(entry.pruned);
  stats_.direct_merges += static_cast<size_t>(entry.direct);
  stats_.candidates += static_cast<size_t>(entry.candidates);
  if (c_verified_groups_ != nullptr) c_verified_groups_->Inc(entry.candidates);
  stats_.frontier_groups += static_cast<size_t>(entry.frontier_groups);
  stats_.budget_deferred_groups += static_cast<size_t>(entry.budget_deferred);
  if (c_frontier_groups_ != nullptr) {
    c_frontier_groups_->Inc(entry.frontier_groups);
  }
  if (c_frontier_deferred_ != nullptr) {
    c_frontier_deferred_->Inc(entry.budget_deferred);
  }
  if (options_.progressive && c_frontier_verified_ != nullptr) {
    c_frontier_verified_->Inc(entry.candidates);
  }
  stats_.comparisons += static_cast<size_t>(entry.comparisons);
  stats_.deferred_candidate_groups +=
      static_cast<size_t>(entry.deferred_groups);
  simplified_nodes_sum_ += entry.simplified_sum;
  simplified_nodes_count_ += static_cast<size_t>(entry.simplified_count);
  stats_.avg_simplified_nodes =
      simplified_nodes_count_ == 0
          ? 0.0
          : simplified_nodes_sum_ / static_cast<double>(simplified_nodes_count_);
  stats_.decided_schema_matchings = predictor_.DecidedMatchings().size();
  loop_deferred_ = entry.deferred_after;
  loop_needs_reset_ = false;
  return Status::OK();
}

}  // namespace hera
