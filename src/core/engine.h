// ResolutionEngine: the stateful core shared by batch HERA (Hera::Run)
// and incremental resolution (IncrementalHera). Owns the super
// records, the union-find over record ids, the value-pair index, and
// the schema-matching predictor, and runs the compare-and-merge loop
// (Algorithm 2's body) to fixpoint.
//
// Runs are governed by the RunGuard in HeraOptions: the engine arms it
// at run start (ArmGuard) and honors its deadline, cancellation token,
// and resource ceilings — degrading (shedding weakest index pairs,
// deferring candidate groups) or stopping at an iteration boundary
// with a valid partial labeling, never dying. stats().outcome reports
// how the run ended. Fallible steps return Status so fault injection
// (common/failpoint.h) can prove every error path propagates cleanly.

#ifndef HERA_CORE_ENGINE_H_
#define HERA_CORE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/run_guard.h"
#include "common/statusor.h"
#include "common/union_find.h"
#include "core/options.h"
#include "index/value_pair_index.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "persist/checkpoint.h"
#include "record/record.h"
#include "record/super_record.h"
#include "schema/majority_vote.h"
#include "sim/pair_cache.h"
#include "sim/similarity.h"
#include "simjoin/similarity_join.h"
#include "text/token_cache.h"

namespace hera {

/// \brief Stateful compare-and-merge resolver.
///
/// Usage (batch): AddRecords(all) -> ArmGuard() -> IndexNewRecords() ->
/// IterateToFixpoint() -> Labels(). Incremental callers interleave
/// further AddRecords/IndexNewRecords/IterateToFixpoint rounds; the
/// index, merges, and vote state persist across rounds. After a Status
/// failure (only possible via fault injection) the engine state is
/// consistent and a later IterateToFixpoint resumes correctly.
class ResolutionEngine {
 public:
  /// `simv` must be the resolved metric (never null).
  ResolutionEngine(const HeraOptions& options, ValueSimilarityPtr simv);

  /// Lifts records into singleton super records. Record ids must be
  /// dense and continue from NumRecords().
  void AddRecords(const std::vector<Record>& records);

  /// Starts the guard's clock and resets stats().outcome for a fresh
  /// run. Call once per run (per Resolve round, for incremental use);
  /// a no-deadline guard makes this a no-op reset.
  void ArmGuard();

  /// Joins the values of every record not yet indexed against the
  /// current live values (and among themselves) and inserts the
  /// resulting pairs. Returns the number of pairs added. Skips or
  /// truncates the join once the guard interrupts, and sheds pairs
  /// beyond its ceilings (weakest first); fails only via fault
  /// injection.
  StatusOr<size_t> IndexNewRecords();

  /// Seeds the index from precomputed join output instead of running
  /// the join (offline index construction). Marks every current record
  /// as indexed. Honors the guard's index ceilings.
  Status IndexPrecomputed(const std::vector<ValuePair>& pairs);

  /// Runs compare-and-merge passes until no merge happens, the
  /// options' iteration cap, or the guard interrupts — always leaving
  /// a valid labeling; stats().outcome says which. Accumulates stats.
  /// Fails only via fault injection, with the engine left consistent.
  Status IterateToFixpoint();

  /// Entity label per record id (the rid of its super record).
  std::vector<uint32_t> Labels();

  /// Live super records, keyed by rid.
  const std::map<uint32_t, SuperRecord>& active() const { return active_; }

  /// Moves the super records out (invalidates the engine's view; call
  /// last).
  std::map<uint32_t, SuperRecord> TakeSuperRecords() { return std::move(active_); }

  const HeraStats& stats() const { return stats_; }
  size_t NumRecords() const { return uf_.Size(); }
  const SchemaMatchingPredictor& predictor() const { return predictor_; }
  const RunGuard& guard() const { return guard_; }

  /// The run's observability context, or nullptr when
  /// options.collect_report is off (or HERA_OBS was compiled out).
  /// Lives as long as the engine; spans all incremental rounds.
  obs::RunTrace* trace() { return trace_.get(); }
  const obs::RunTrace* trace() const { return trace_.get(); }

  /// Stops the background timeline sampler (taking one final edge
  /// sample); no-op when none is running. Hera::Run calls this before
  /// building the report; incremental callers may leave it running
  /// across rounds. The sampler only observes — stopping or never
  /// starting it cannot change labels or merge_sequence.
  void StopTimelineSampler();

  /// The run's timeline sampler, or nullptr when
  /// options.timeline_interval_ms is 0 (or HERA_OBS was compiled out).
  obs::TimelineSampler* timeline_sampler() { return sampler_.get(); }

  /// Installs a checkpoint manager (borrowed; the caller keeps it alive
  /// for the engine's lifetime, nullptr detaches). With one installed,
  /// the engine snapshots after indexing, every checkpoint_every
  /// iterations, and at every IterateToFixpoint exit, and appends one
  /// WAL entry per completed pass.
  void SetCheckpointManager(persist::CheckpointManager* ckpt) { ckpt_ = ckpt; }

  /// Serializes the complete engine state at the current iteration
  /// boundary. Non-const only because union-find lookups path-compress.
  persist::EngineState ExportState();

  /// Replaces the engine state with a decoded snapshot. The options the
  /// engine was constructed with must fingerprint-match the snapshot's
  /// (the checkpoint layer enforces this).
  void RestoreState(const persist::EngineState& state);

  /// Re-applies one logged pass on top of the restored state — merges,
  /// votes, and counters exactly as the original pass, with no
  /// re-verification (so consumed failpoints cannot re-trip). Entries
  /// must be replayed in sequence order.
  Status ReplayWalEntry(const persist::WalEntry& entry);

 private:
  /// All (label, value) pairs of one super record.
  std::vector<LabeledValue> ValuesOf(const SuperRecord& sr) const;

  /// Keeps the most severe outcome seen this run.
  void RaiseOutcome(RunOutcome outcome);

  /// kTruncatedCancelled or kTruncatedDeadline per the guard's state.
  RunOutcome TruncationOutcome() const;

  /// Folds a guarded-join report into stats/outcome. `join_start_ms`
  /// is the tracer time at which the join call began; the report's
  /// join-relative worker spans are rebased onto it.
  void NoteJoinReport(const JoinReport& report, double join_start_ms);

  /// Inserts join output under the guard's index ceilings: sorts
  /// strongest-first when a ceiling is set so the weakest pairs are
  /// the ones shed, then refreshes shed counters and outcome.
  void AddPairsGuarded(std::vector<ValuePair> pairs);

  /// Snapshots index size/posting-length metrics into the trace
  /// (no-op when tracing is off).
  void HarvestIndexMetrics();

  /// Brings the tokens.interned / tokens.cache_hits counters up to the
  /// token cache's cumulative totals (no-op without trace or cache).
  void SyncTokenCacheMetrics();

  /// Same for the pairsim.computed / pairsim.cache_hits counters of
  /// the verified-pair similarity cache.
  void SyncPairCacheMetrics();

  /// Publishes this run's kernel.simd_intersections / kernel.myers_calls
  /// deltas from the process-global kernel counters
  /// (sim/kernel_dispatch.h), against the baseline captured at engine
  /// construction.
  void SyncKernelMetrics();

  HeraOptions options_;
  ValueSimilarityPtr simv_;
  std::unique_ptr<SimilarityJoin> joiner_;
  RunGuard guard_;

  /// Worker pool for the parallel phases (null when num_threads <= 1);
  /// shared with the joiner. All engine state mutation stays on the
  /// controller thread — workers only read.
  std::unique_ptr<ThreadPool> pool_;
  /// Interned q-gram sets shared across join calls and incremental
  /// rounds (only installed for the prefix-filter joiner).
  std::shared_ptr<TokenCache> token_cache_;
  /// Verified pair similarities shared across join calls, fixpoint
  /// rounds, and incremental batches (null when disabled).
  std::shared_ptr<PairSimCache> pair_cache_;

  UnionFind uf_;
  std::map<uint32_t, SuperRecord> active_;
  ValuePairIndex index_;
  SchemaMatchingPredictor predictor_;
  HeraStats stats_;

  /// Records with ids >= indexed_watermark_ have not been joined yet.
  uint32_t indexed_watermark_ = 0;

  /// Posting entries shed inside guarded joins (the index's own shed
  /// counters are tracked separately and summed into stats_).
  size_t join_shed_posting_ = 0;

  /// Verifier invocations since the last ArmGuard, charged against
  /// guard().max_verifications(). Reset by ArmGuard (the budget is
  /// per-run, like a deadline) and never persisted, so a resumed run
  /// starts with a fresh budget and WAL replay costs nothing.
  size_t budget_spent_ = 0;

  /// True when the verification budget is configured and spent.
  bool BudgetExhausted() const {
    return guard_.max_verifications() > 0 &&
           budget_spent_ >= guard_.max_verifications();
  }

  double simplified_nodes_sum_ = 0.0;
  size_t simplified_nodes_count_ = 0;

  /// Durable checkpointing (borrowed; null = disabled).
  persist::CheckpointManager* ckpt_ = nullptr;

  /// Fixpoint-loop state, hoisted out of IterateToFixpoint so a guard
  /// truncation can be checkpointed and resumed mid-fixpoint. While
  /// `loop_needs_reset_` is set the three fields are stale and the next
  /// IterateToFixpoint starts a fresh rescan-everything loop; a guard
  /// or iteration-cap break leaves it clear, meaning the fields carry
  /// exactly the work an uninterrupted run would do next.
  bool loop_needs_reset_ = true;
  bool loop_first_pass_ = true;
  std::unordered_set<uint32_t> loop_dirty_;
  std::vector<std::pair<uint32_t, uint32_t>> loop_deferred_;

  /// Observability (null when disabled). The histogram/counter
  /// pointers are registered once in the constructor so hot-path
  /// updates skip the registry lock.
  std::shared_ptr<obs::RunTrace> trace_;
  obs::Histogram* h_verify_us_ = nullptr;      ///< Per-group verify latency.
  obs::Histogram* h_group_pairs_ = nullptr;    ///< Index entries per group.
  obs::Histogram* h_km_nodes_ = nullptr;       ///< |X'|+|Y'| fed to KM.
  obs::Histogram* h_km_matrix_ = nullptr;      ///< KM matrix side length.
  obs::Histogram* h_posting_len_ = nullptr;    ///< Index posting lengths.
  obs::Histogram* h_index_build_us_ = nullptr; ///< Per-round build time.
  obs::Histogram* h_iteration_us_ = nullptr;   ///< Per-pass duration.
  obs::Histogram* h_worker_busy_us_ = nullptr; ///< Per-worker busy time.
  /// Atomic mirrors of stats_ fields the sampler thread may not read
  /// directly (stats_ is controller-thread-only). Incremented at the
  /// same sites as their stats_ counterparts, including WAL replay.
  obs::Counter* c_merges_ = nullptr;
  obs::Counter* c_verified_groups_ = nullptr;
  /// Progressive-mode quality family (quality.frontier_*): groups that
  /// entered best-first ordering, groups verified under it, and groups
  /// deferred unverified at a budget/guard cut. Together with the
  /// sampled `merges` track they yield the recall-vs-verified-pairs
  /// curve (merges found per verification spent).
  obs::Counter* c_frontier_groups_ = nullptr;
  obs::Counter* c_frontier_verified_ = nullptr;
  obs::Counter* c_frontier_deferred_ = nullptr;
  /// Flat-backend traffic (flat.probes_batched / flat.rehashes). Join
  /// reports Inc these directly; the value-pair index's cumulative
  /// totals are folded in via the seen-markers below.
  obs::Counter* c_flat_probes_ = nullptr;
  obs::Counter* c_flat_rehashes_ = nullptr;
  uint64_t flat_index_probes_seen_ = 0;
  uint64_t flat_index_rehashes_seen_ = 0;
  /// Process-global kernel counter values at engine construction; the
  /// kernel.* report counters carry this engine's deltas only.
  KernelCounterSnapshot kernel_counters_base_;

  /// Background timeline sampler (null unless timeline_interval_ms is
  /// set). Declared after trace_: its probes and clock read through
  /// trace_ and the caches, so it must be destroyed first.
  std::unique_ptr<obs::TimelineSampler> sampler_;
};

}  // namespace hera

#endif  // HERA_CORE_ENGINE_H_
