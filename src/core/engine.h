// ResolutionEngine: the stateful core shared by batch HERA (Hera::Run)
// and incremental resolution (IncrementalHera). Owns the super
// records, the union-find over record ids, the value-pair index, and
// the schema-matching predictor, and runs the compare-and-merge loop
// (Algorithm 2's body) to fixpoint.

#ifndef HERA_CORE_ENGINE_H_
#define HERA_CORE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/union_find.h"
#include "core/options.h"
#include "index/value_pair_index.h"
#include "record/record.h"
#include "record/super_record.h"
#include "schema/majority_vote.h"
#include "sim/similarity.h"
#include "simjoin/similarity_join.h"

namespace hera {

/// \brief Stateful compare-and-merge resolver.
///
/// Usage (batch): AddRecords(all) -> IndexNewRecords() ->
/// IterateToFixpoint() -> Labels(). Incremental callers interleave
/// further AddRecords/IndexNewRecords/IterateToFixpoint rounds; the
/// index, merges, and vote state persist across rounds.
class ResolutionEngine {
 public:
  /// `simv` must be the resolved metric (never null).
  ResolutionEngine(const HeraOptions& options, ValueSimilarityPtr simv);

  /// Lifts records into singleton super records. Record ids must be
  /// dense and continue from NumRecords().
  void AddRecords(const std::vector<Record>& records);

  /// Joins the values of every record not yet indexed against the
  /// current live values (and among themselves) and inserts the
  /// resulting pairs. Returns the number of pairs added.
  size_t IndexNewRecords();

  /// Seeds the index from precomputed join output instead of running
  /// the join (offline index construction). Marks every current record
  /// as indexed.
  void IndexPrecomputed(const std::vector<ValuePair>& pairs);

  /// Runs compare-and-merge passes until no merge happens (or the
  /// options' iteration cap). Accumulates stats.
  void IterateToFixpoint();

  /// Entity label per record id (the rid of its super record).
  std::vector<uint32_t> Labels();

  /// Live super records, keyed by rid.
  const std::map<uint32_t, SuperRecord>& active() const { return active_; }

  /// Moves the super records out (invalidates the engine's view; call
  /// last).
  std::map<uint32_t, SuperRecord> TakeSuperRecords() { return std::move(active_); }

  const HeraStats& stats() const { return stats_; }
  size_t NumRecords() const { return uf_.Size(); }
  const SchemaMatchingPredictor& predictor() const { return predictor_; }

 private:
  /// All (label, value) pairs of one super record.
  std::vector<LabeledValue> ValuesOf(const SuperRecord& sr) const;

  HeraOptions options_;
  ValueSimilarityPtr simv_;
  std::unique_ptr<SimilarityJoin> joiner_;

  UnionFind uf_;
  std::map<uint32_t, SuperRecord> active_;
  ValuePairIndex index_;
  SchemaMatchingPredictor predictor_;
  HeraStats stats_;

  /// Records with ids >= indexed_watermark_ have not been joined yet.
  uint32_t indexed_watermark_ = 0;

  double simplified_nodes_sum_ = 0.0;
  size_t simplified_nodes_count_ = 0;
};

}  // namespace hera

#endif  // HERA_CORE_ENGINE_H_
