#include "core/explain.h"

#include <cstdio>

#include "core/verifier.h"
#include "index/value_pair_index.h"
#include "simjoin/similarity_join.h"

namespace hera {

std::string PairExplanation::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "Sim = %.3f (%zu matched fields / min %zu)",
                sim, matches.size(), denominator);
  std::string out = buf;
  for (const MatchedField& m : matches) {
    std::snprintf(buf, sizeof(buf), "\n  %-18s ~ %-18s %.3f  '%s' ~ '%s'",
                  m.attr_a.c_str(), m.attr_b.c_str(), m.sim, m.value_a.c_str(),
                  m.value_b.c_str());
    out += buf;
  }
  return out;
}

PairExplanation ExplainPair(const SchemaCatalog& schemas, const SuperRecord& a,
                            const SuperRecord& b, const ValueSimilarity& simv,
                            double xi) {
  PairExplanation out;
  out.denominator = std::min(a.num_fields(), b.num_fields());
  if (out.denominator == 0) return out;

  // Build this pair's similar value pairs the direct way (no standing
  // index needed for a one-off explanation), then reuse the verifier.
  std::vector<LabeledValue> values;
  for (const SuperRecord* sr : {&a, &b}) {
    for (uint32_t f = 0; f < sr->num_fields(); ++f) {
      for (uint32_t v = 0; v < sr->field(f).size(); ++v) {
        values.push_back(
            {ValueLabel{sr->rid(), f, v}, sr->field(f).value(v).value});
      }
    }
  }
  ValuePairIndex index;
  index.Build(NestedLoopJoin().Join(values, simv, xi));
  std::vector<IndexedPair> pairs = index.PairsFor(a.rid(), b.rid());
  // PairsFor normalizes rid order; the verifier expects `a` to be the
  // smaller rid's record.
  const SuperRecord& left = a.rid() < b.rid() ? a : b;
  const SuperRecord& right = a.rid() < b.rid() ? b : a;
  VerifyResult vr = InstanceBasedVerifier().Verify(left, right, pairs);
  out.sim = vr.sim;

  // Recover the best value pair behind each matched field pair.
  for (const FieldMatch& m : vr.matching) {
    MatchedField mf;
    mf.sim = m.sim;
    // Find the top index pair for this field pair.
    for (const IndexedPair& p : pairs) {
      if (p.a.fid == m.field_a && p.b.fid == m.field_b) {
        const FieldValue& fa = left.field(p.a.fid).value(p.a.vid);
        const FieldValue& fb = right.field(p.b.fid).value(p.b.vid);
        mf.attr_a = schemas.AttrName(fa.origin);
        mf.attr_b = schemas.AttrName(fb.origin);
        mf.value_a = fa.value.ToString();
        mf.value_b = fb.value.ToString();
        break;  // Pairs are similarity-descending: first is the best.
      }
    }
    out.matches.push_back(std::move(mf));
  }
  return out;
}

}  // namespace hera
