// Pair explanation: why does (or doesn't) HERA consider two records
// the same entity? Renders the field matching, per-field similarities,
// and attribute names — the debugging surface for threshold tuning and
// error analysis.

#ifndef HERA_CORE_EXPLAIN_H_
#define HERA_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "record/dataset.h"
#include "record/super_record.h"
#include "sim/similarity.h"

namespace hera {

/// One matched field pair in an explanation.
struct MatchedField {
  std::string attr_a;   ///< Source attribute name (best value's origin).
  std::string attr_b;
  std::string value_a;  ///< The best-matching value pair.
  std::string value_b;
  double sim = 0.0;     ///< Field similarity.
};

/// The full explanation of one record pair comparison.
struct PairExplanation {
  double sim = 0.0;            ///< Sim(R_i, R_j) per Definition 5.
  size_t denominator = 0;      ///< min(|R_i|, |R_j|).
  std::vector<MatchedField> matches;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// \brief Explains the comparison of two super records (or base
/// records lifted via SuperRecord::FromRecord) under `simv` at value
/// threshold `xi`. The schema catalog supplies attribute names.
PairExplanation ExplainPair(const SchemaCatalog& schemas, const SuperRecord& a,
                            const SuperRecord& b, const ValueSimilarity& simv,
                            double xi);

}  // namespace hera

#endif  // HERA_CORE_EXPLAIN_H_
