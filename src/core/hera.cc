#include "core/hera.h"

#include "core/engine.h"
#include "persist/checkpoint.h"
#include "sim/kernel.h"
#include "sim/metrics.h"

namespace hera {

namespace {

/// Validates options and resolves the configured metric; shared with
/// IncrementalHera.
StatusOr<ValueSimilarityPtr> ResolveMetric(const HeraOptions& options) {
  HERA_RETURN_NOT_OK(ValidateOptions(options));
  ValueSimilarityPtr simv = options.similarity;
  if (!simv) {
    simv = MakeSimilarity(options.metric);
    if (!simv) {
      return Status::InvalidArgument("unknown similarity metric: " +
                                     options.metric);
    }
  }
  return simv;
}

/// Fills `result` from the finished engine (labels, stats, super
/// records, and — when collection was on — the run report).
void FinishResult(ResolutionEngine* engine, HeraResult* result) {
  result->entity_of = engine->Labels();
  result->stats = engine->stats();
  // Stop the timeline sampler (taking one final edge sample) before
  // snapshotting the trace, so the report's timeline covers the whole
  // run and no sampler thread races the report build.
  engine->StopTimelineSampler();
  if (engine->trace() != nullptr) {
    result->report =
        obs::BuildRunReport(*engine->trace(), engine->stats(),
                            RunOutcomeToString(engine->stats().outcome));
  }
  result->super_records = engine->TakeSuperRecords();
}

/// Checkpoint identity for a batch run over `dataset`.
persist::CheckpointManager::Config BatchCheckpointConfig(
    const HeraOptions& options, const Dataset& dataset) {
  persist::CheckpointManager::Config config;
  config.dir = options.checkpoint_dir;
  config.checkpoint_every = options.checkpoint_every;
  config.kind = persist::RunKind::kBatch;
  config.options_fp = persist::FingerprintOptions(options);
  config.corpus_fp = persist::FingerprintDataset(dataset);
  return config;
}

}  // namespace

StatusOr<HeraResult> Hera::Run(const Dataset& dataset) const {
  HERA_RETURN_NOT_OK(dataset.Validate());
  HERA_ASSIGN_OR_RETURN(ValueSimilarityPtr simv, ResolveMetric(options_));

  ResolutionEngine engine(options_, std::move(simv));
  std::unique_ptr<persist::CheckpointManager> ckpt;
  if (!options_.checkpoint_dir.empty()) {
    HERA_ASSIGN_OR_RETURN(
        ckpt, persist::CheckpointManager::Open(
                  BatchCheckpointConfig(options_, dataset), engine.trace()));
    engine.SetCheckpointManager(ckpt.get());
  }
  engine.AddRecords(dataset.records());
  engine.ArmGuard();
  HERA_RETURN_NOT_OK(engine.IndexNewRecords().status());
  HERA_RETURN_NOT_OK(engine.IterateToFixpoint());

  HeraResult result;
  FinishResult(&engine, &result);
  return result;
}

StatusOr<HeraResult> Hera::RunWithPairs(
    const Dataset& dataset, const std::vector<ValuePair>& pairs) const {
  HERA_RETURN_NOT_OK(dataset.Validate());
  HERA_ASSIGN_OR_RETURN(ValueSimilarityPtr simv, ResolveMetric(options_));

  ResolutionEngine engine(options_, std::move(simv));
  std::unique_ptr<persist::CheckpointManager> ckpt;
  if (!options_.checkpoint_dir.empty()) {
    HERA_ASSIGN_OR_RETURN(
        ckpt, persist::CheckpointManager::Open(
                  BatchCheckpointConfig(options_, dataset), engine.trace()));
    engine.SetCheckpointManager(ckpt.get());
  }
  engine.AddRecords(dataset.records());
  engine.ArmGuard();
  HERA_RETURN_NOT_OK(engine.IndexPrecomputed(pairs));
  HERA_RETURN_NOT_OK(engine.IterateToFixpoint());

  HeraResult result;
  FinishResult(&engine, &result);
  return result;
}

StatusOr<HeraResult> Hera::Resume(const Dataset& dataset) const {
  HERA_RETURN_NOT_OK(dataset.Validate());
  HERA_ASSIGN_OR_RETURN(ValueSimilarityPtr simv, ResolveMetric(options_));
  if (options_.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "Resume requires options.checkpoint_dir to be set");
  }
  const persist::CheckpointManager::Config config =
      BatchCheckpointConfig(options_, dataset);

  ResolutionEngine engine(options_, std::move(simv));
  // Recover before opening for write: NotFound must reach the caller
  // untouched so it can fall back to a fresh Run.
  HERA_ASSIGN_OR_RETURN(
      persist::CheckpointManager::Recovered recovered,
      persist::CheckpointManager::Recover(config, engine.trace()));
  engine.RestoreState(recovered.state);
  engine.ArmGuard();
  for (const persist::WalEntry& entry : recovered.wal) {
    HERA_RETURN_NOT_OK(engine.ReplayWalEntry(entry));
  }

  HERA_ASSIGN_OR_RETURN(std::unique_ptr<persist::CheckpointManager> ckpt,
                        persist::CheckpointManager::Open(config, engine.trace()));
  engine.SetCheckpointManager(ckpt.get());
  // Re-snapshot the recovered state as a fresh epoch: recovery never
  // appends after a (possibly torn) WAL tail.
  HERA_RETURN_NOT_OK(ckpt->WriteSnapshot(engine.ExportState()));
  HERA_RETURN_NOT_OK(engine.IterateToFixpoint());

  HeraResult result;
  FinishResult(&engine, &result);
  return result;
}

StatusOr<std::vector<ValuePair>> ComputeSimilarValuePairs(
    const Dataset& dataset, const HeraOptions& options) {
  HERA_RETURN_NOT_OK(dataset.Validate());
  HERA_ASSIGN_OR_RETURN(ValueSimilarityPtr simv, ResolveMetric(options));
  std::vector<LabeledValue> values;
  for (const Record& r : dataset.records()) {
    SuperRecord sr = SuperRecord::FromRecord(r);
    for (uint32_t f = 0; f < sr.num_fields(); ++f) {
      for (uint32_t v = 0; v < sr.field(f).size(); ++v) {
        values.push_back(
            {ValueLabel{sr.rid(), f, v}, sr.field(f).value(v).value});
      }
    }
  }
  std::vector<ValuePair> pairs;
  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }
  if (options.use_prefix_filter_join) {
    // Same gram-size derivation as ResolutionEngine: q != 2 gram
    // metrics index and verify at their own q.
    const int metric_q = GramMetricSize(simv->Name());
    PrefixFilterJoin join(metric_q > 0 ? metric_q : 2);
    join.SetExecutor(pool.get());
    join.SetEncodedKernels(options.use_encoded_kernels);
    join.SetIndexBackend(options.index_backend, options.flat_pipeline_depth);
    if (options.enable_pair_sim_cache) {
      join.SetPairSimCache(std::make_shared<PairSimCache>(
          simv->Name(), options.pair_sim_cache_capacity));
    }
    HERA_RETURN_NOT_OK(join.Join(values, *simv, options.xi, RunGuard(), &pairs));
  } else {
    NestedLoopJoin join;
    join.SetExecutor(pool.get());
    if (options.enable_pair_sim_cache) {
      join.SetPairSimCache(std::make_shared<PairSimCache>(
          simv->Name(), options.pair_sim_cache_capacity));
    }
    HERA_RETURN_NOT_OK(join.Join(values, *simv, options.xi, RunGuard(), &pairs));
  }
  return pairs;
}

}  // namespace hera
