#include "core/hera.h"

#include "core/engine.h"
#include "sim/metrics.h"

namespace hera {

namespace {

/// Resolves the configured metric; shared with IncrementalHera.
StatusOr<ValueSimilarityPtr> ResolveMetric(const HeraOptions& options) {
  ValueSimilarityPtr simv = options.similarity;
  if (!simv) {
    simv = MakeSimilarity(options.metric);
    if (!simv) {
      return Status::InvalidArgument("unknown similarity metric: " +
                                     options.metric);
    }
  }
  if (options.xi < 0.0 || options.xi > 1.0 || options.delta < 0.0 ||
      options.delta > 1.0) {
    return Status::InvalidArgument("thresholds must lie in [0, 1]");
  }
  return simv;
}

}  // namespace

StatusOr<HeraResult> Hera::Run(const Dataset& dataset) const {
  HERA_RETURN_NOT_OK(dataset.Validate());
  HERA_ASSIGN_OR_RETURN(ValueSimilarityPtr simv, ResolveMetric(options_));

  ResolutionEngine engine(options_, std::move(simv));
  engine.AddRecords(dataset.records());
  engine.IndexNewRecords();
  engine.IterateToFixpoint();

  HeraResult result;
  result.entity_of = engine.Labels();
  result.stats = engine.stats();
  result.super_records = engine.TakeSuperRecords();
  return result;
}

StatusOr<HeraResult> Hera::RunWithPairs(
    const Dataset& dataset, const std::vector<ValuePair>& pairs) const {
  HERA_RETURN_NOT_OK(dataset.Validate());
  HERA_ASSIGN_OR_RETURN(ValueSimilarityPtr simv, ResolveMetric(options_));

  ResolutionEngine engine(options_, std::move(simv));
  engine.AddRecords(dataset.records());
  engine.IndexPrecomputed(pairs);
  engine.IterateToFixpoint();

  HeraResult result;
  result.entity_of = engine.Labels();
  result.stats = engine.stats();
  result.super_records = engine.TakeSuperRecords();
  return result;
}

StatusOr<std::vector<ValuePair>> ComputeSimilarValuePairs(
    const Dataset& dataset, const HeraOptions& options) {
  HERA_RETURN_NOT_OK(dataset.Validate());
  HERA_ASSIGN_OR_RETURN(ValueSimilarityPtr simv, ResolveMetric(options));
  std::vector<LabeledValue> values;
  for (const Record& r : dataset.records()) {
    SuperRecord sr = SuperRecord::FromRecord(r);
    for (uint32_t f = 0; f < sr.num_fields(); ++f) {
      for (uint32_t v = 0; v < sr.field(f).size(); ++v) {
        values.push_back(
            {ValueLabel{sr.rid(), f, v}, sr.field(f).value(v).value});
      }
    }
  }
  if (options.use_prefix_filter_join) {
    return PrefixFilterJoin().Join(values, *simv, options.xi);
  }
  return NestedLoopJoin().Join(values, *simv, options.xi);
}

}  // namespace hera
