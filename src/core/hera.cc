#include "core/hera.h"

#include "core/engine.h"
#include "sim/metrics.h"

namespace hera {

namespace {

/// Validates options and resolves the configured metric; shared with
/// IncrementalHera.
StatusOr<ValueSimilarityPtr> ResolveMetric(const HeraOptions& options) {
  HERA_RETURN_NOT_OK(ValidateOptions(options));
  ValueSimilarityPtr simv = options.similarity;
  if (!simv) {
    simv = MakeSimilarity(options.metric);
    if (!simv) {
      return Status::InvalidArgument("unknown similarity metric: " +
                                     options.metric);
    }
  }
  return simv;
}

/// Fills `result` from the finished engine (labels, stats, super
/// records, and — when collection was on — the run report).
void FinishResult(ResolutionEngine* engine, HeraResult* result) {
  result->entity_of = engine->Labels();
  result->stats = engine->stats();
  if (engine->trace() != nullptr) {
    result->report =
        obs::BuildRunReport(*engine->trace(), engine->stats(),
                            RunOutcomeToString(engine->stats().outcome));
  }
  result->super_records = engine->TakeSuperRecords();
}

}  // namespace

StatusOr<HeraResult> Hera::Run(const Dataset& dataset) const {
  HERA_RETURN_NOT_OK(dataset.Validate());
  HERA_ASSIGN_OR_RETURN(ValueSimilarityPtr simv, ResolveMetric(options_));

  ResolutionEngine engine(options_, std::move(simv));
  engine.AddRecords(dataset.records());
  engine.ArmGuard();
  HERA_RETURN_NOT_OK(engine.IndexNewRecords().status());
  HERA_RETURN_NOT_OK(engine.IterateToFixpoint());

  HeraResult result;
  FinishResult(&engine, &result);
  return result;
}

StatusOr<HeraResult> Hera::RunWithPairs(
    const Dataset& dataset, const std::vector<ValuePair>& pairs) const {
  HERA_RETURN_NOT_OK(dataset.Validate());
  HERA_ASSIGN_OR_RETURN(ValueSimilarityPtr simv, ResolveMetric(options_));

  ResolutionEngine engine(options_, std::move(simv));
  engine.AddRecords(dataset.records());
  engine.ArmGuard();
  HERA_RETURN_NOT_OK(engine.IndexPrecomputed(pairs));
  HERA_RETURN_NOT_OK(engine.IterateToFixpoint());

  HeraResult result;
  FinishResult(&engine, &result);
  return result;
}

StatusOr<std::vector<ValuePair>> ComputeSimilarValuePairs(
    const Dataset& dataset, const HeraOptions& options) {
  HERA_RETURN_NOT_OK(dataset.Validate());
  HERA_ASSIGN_OR_RETURN(ValueSimilarityPtr simv, ResolveMetric(options));
  std::vector<LabeledValue> values;
  for (const Record& r : dataset.records()) {
    SuperRecord sr = SuperRecord::FromRecord(r);
    for (uint32_t f = 0; f < sr.num_fields(); ++f) {
      for (uint32_t v = 0; v < sr.field(f).size(); ++v) {
        values.push_back(
            {ValueLabel{sr.rid(), f, v}, sr.field(f).value(v).value});
      }
    }
  }
  std::vector<ValuePair> pairs;
  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }
  if (options.use_prefix_filter_join) {
    PrefixFilterJoin join;
    join.SetExecutor(pool.get());
    HERA_RETURN_NOT_OK(join.Join(values, *simv, options.xi, RunGuard(), &pairs));
  } else {
    NestedLoopJoin join;
    join.SetExecutor(pool.get());
    HERA_RETURN_NOT_OK(join.Join(values, *simv, options.xi, RunGuard(), &pairs));
  }
  return pairs;
}

}  // namespace hera
