// HERA — Heterogeneous Entity Resolution Algorithm (Algorithm 2).
//
// Usage:
//   HeraOptions opts;
//   opts.xi = 0.5;
//   opts.delta = 0.5;
//   HeraResult result = Hera(opts).Run(dataset);
//   // result.entity_of[r] is the entity label of record r.

#ifndef HERA_CORE_HERA_H_
#define HERA_CORE_HERA_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/statusor.h"
#include "core/options.h"
#include "obs/report.h"
#include "record/dataset.h"
#include "record/super_record.h"
#include "simjoin/similarity_join.h"

namespace hera {

/// Result of one HERA run.
struct HeraResult {
  /// Entity label per input record (the rid of its final super record).
  /// Two records share a label iff HERA resolved them to one entity.
  std::vector<uint32_t> entity_of;

  /// Final super records, keyed by rid. Every input record is a member
  /// of exactly one.
  std::map<uint32_t, SuperRecord> super_records;

  /// Counters and timings (Table II / Figures 10, 12 inputs), plus
  /// `stats.outcome`: completed, or how the run was truncated/degraded
  /// by the options' RunGuard (docs/operational_limits.md).
  HeraStats stats;

  /// Machine-readable run record: phase timings, per-iteration counter
  /// rows, metric snapshot, governance events. Only filled when
  /// options.collect_report was set (report.empty() otherwise); see
  /// docs/observability.md for the JSON schema.
  obs::RunReport report;
};

/// \brief The iterative compare-and-merge entity resolver.
class Hera {
 public:
  explicit Hera(HeraOptions options) : options_(std::move(options)) {}

  /// Resolves `dataset`. Fails if the dataset is inconsistent or an
  /// option is out of range / the metric name unknown (see
  /// ValidateOptions). Under a RunGuard deadline/cancellation the call
  /// still returns ok() with a valid partial labeling and
  /// stats.outcome reporting the truncation.
  StatusOr<HeraResult> Run(const Dataset& dataset) const;

  /// Like Run but skips the similarity join, building the index from
  /// `pairs` (obtained via ComputeSimilarValuePairs with the same xi
  /// and metric). The paper builds the index offline; this is the
  /// online entry point — threshold sweeps at fixed xi reuse one join.
  StatusOr<HeraResult> RunWithPairs(const Dataset& dataset,
                                    const std::vector<ValuePair>& pairs) const;

  /// Resumes a killed or truncated checkpointed run of `dataset` from
  /// options.checkpoint_dir: loads the newest good snapshot, replays
  /// the write-ahead log, and continues to fixpoint — producing the
  /// byte-identical merge sequence and labels the uninterrupted run
  /// would have. `dataset` must be the same record set the checkpoint
  /// was written for (enforced by fingerprint: FailedPrecondition on
  /// mismatch, as with changed options). NotFound when the directory
  /// holds no snapshot yet — callers typically fall back to Run. The
  /// guard, thread count, and iteration cap may differ from the
  /// original run. See docs/file_format.md.
  StatusOr<HeraResult> Resume(const Dataset& dataset) const;

  const HeraOptions& options() const { return options_; }

 private:
  HeraOptions options_;
};

/// Runs the offline similarity self-join over every value of `dataset`
/// at options.xi with options' metric and join strategy — the index
/// construction input (Definition 7). Labels are
/// (record id, field position among the record's non-null values, 0),
/// matching SuperRecord::FromRecord.
StatusOr<std::vector<ValuePair>> ComputeSimilarValuePairs(
    const Dataset& dataset, const HeraOptions& options);

}  // namespace hera

#endif  // HERA_CORE_HERA_H_
