#include "core/incremental.h"

#include "sim/metrics.h"

namespace hera {

namespace {

/// Checkpoint identity for an incremental run. The corpus fingerprint
/// covers only the schema catalog: the record stream is open-ended, so
/// the records themselves are part of the checkpointed state, not of
/// its identity.
persist::CheckpointManager::Config IncrementalCheckpointConfig(
    const HeraOptions& options, const SchemaCatalog& schemas) {
  persist::CheckpointManager::Config config;
  config.dir = options.checkpoint_dir;
  config.checkpoint_every = options.checkpoint_every;
  config.kind = persist::RunKind::kIncremental;
  config.options_fp = persist::FingerprintOptions(options);
  config.corpus_fp = persist::FingerprintSchemas(schemas);
  return config;
}

}  // namespace

IncrementalHera::IncrementalHera(const HeraOptions& options,
                                 SchemaCatalog schemas, ValueSimilarityPtr simv)
    : options_(options),
      schemas_(std::move(schemas)),
      engine_(std::make_unique<ResolutionEngine>(options, std::move(simv))) {}

StatusOr<std::unique_ptr<IncrementalHera>> IncrementalHera::Create(
    const HeraOptions& options, SchemaCatalog schemas) {
  HERA_RETURN_NOT_OK(ValidateOptions(options));
  ValueSimilarityPtr simv = options.similarity;
  if (!simv) {
    simv = MakeSimilarity(options.metric);
    if (!simv) {
      return Status::InvalidArgument("unknown similarity metric: " +
                                     options.metric);
    }
  }
  std::unique_ptr<IncrementalHera> inc(
      new IncrementalHera(options, std::move(schemas), std::move(simv)));
  if (!options.checkpoint_dir.empty()) {
    HERA_ASSIGN_OR_RETURN(
        inc->ckpt_, persist::CheckpointManager::Open(
                        IncrementalCheckpointConfig(options, inc->schemas_),
                        inc->engine_->trace()));
    inc->engine_->SetCheckpointManager(inc->ckpt_.get());
  }
  return inc;
}

StatusOr<std::unique_ptr<IncrementalHera>> IncrementalHera::Restore(
    const HeraOptions& options, SchemaCatalog schemas) {
  HERA_RETURN_NOT_OK(ValidateOptions(options));
  if (options.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "Restore requires options.checkpoint_dir to be set");
  }
  ValueSimilarityPtr simv = options.similarity;
  if (!simv) {
    simv = MakeSimilarity(options.metric);
    if (!simv) {
      return Status::InvalidArgument("unknown similarity metric: " +
                                     options.metric);
    }
  }
  std::unique_ptr<IncrementalHera> inc(
      new IncrementalHera(options, std::move(schemas), std::move(simv)));
  const persist::CheckpointManager::Config config =
      IncrementalCheckpointConfig(options, inc->schemas_);
  HERA_ASSIGN_OR_RETURN(
      persist::CheckpointManager::Recovered recovered,
      persist::CheckpointManager::Recover(config, inc->engine_->trace()));
  inc->engine_->RestoreState(recovered.state);
  for (const persist::WalEntry& entry : recovered.wal) {
    HERA_RETURN_NOT_OK(inc->engine_->ReplayWalEntry(entry));
  }
  inc->next_id_ = static_cast<uint32_t>(inc->engine_->NumRecords());
  HERA_ASSIGN_OR_RETURN(inc->ckpt_,
                        persist::CheckpointManager::Open(
                            config, inc->engine_->trace()));
  inc->engine_->SetCheckpointManager(inc->ckpt_.get());
  // Re-snapshot the recovered state as a fresh epoch: recovery never
  // appends after a (possibly torn) WAL tail.
  HERA_RETURN_NOT_OK(inc->ckpt_->WriteSnapshot(inc->engine_->ExportState()));
  inc->restored_ = true;
  return inc;
}

StatusOr<uint32_t> IncrementalHera::AddRecord(uint32_t schema_id,
                                              std::vector<Value> values) {
  if (schema_id >= schemas_.size()) {
    return Status::InvalidArgument("unknown schema id " +
                                   std::to_string(schema_id));
  }
  if (values.size() != schemas_.Get(schema_id).size()) {
    return Status::InvalidArgument(
        "record arity " + std::to_string(values.size()) +
        " does not match schema arity " +
        std::to_string(schemas_.Get(schema_id).size()));
  }
  uint32_t id = next_id_++;
  pending_.emplace_back(id, schema_id, std::move(values));
  return id;
}

StatusOr<size_t> IncrementalHera::Resolve() {
  // A freshly restored engine may hold a mid-fixpoint loop that must
  // continue even with nothing new pending.
  const bool continue_restored = restored_;
  restored_ = false;
  if (pending_.empty() && !resume_needed_ && !continue_restored) {
    return size_t{0};
  }
  size_t processed = pending_.size();
  const bool had_pending = !pending_.empty();
  if (had_pending) {
    engine_->AddRecords(pending_);
    pending_.clear();
  }
  obs::RunTrace* trace = engine_->trace();
  auto round_span = obs::StartSpan(trace, "incremental.round");
  if (trace != nullptr) {
    trace->metrics().GetCounter("incremental.rounds")->Inc();
    trace->metrics().GetCounter("incremental.records")->Inc(processed);
    trace->tracer().Event("incremental.round", "", processed);
  }
  // Everything below may fail via fault injection; resume_needed_ makes
  // the next Resolve retry from the engine's (consistent) state even
  // with nothing new pending.
  resume_needed_ = true;
  engine_->ArmGuard();
  // A pure continuation of a restored round skips re-indexing: the
  // records were all indexed before the crash, and IndexNewRecords
  // would discard the restored mid-fixpoint loop state. New records
  // force a normal (re-index + full rescan) round, which subsumes the
  // continuation.
  if (had_pending || !continue_restored) {
    HERA_RETURN_NOT_OK(engine_->IndexNewRecords().status());
  }
  HERA_RETURN_NOT_OK(engine_->IterateToFixpoint());
  resume_needed_ = false;
  return processed;
}

obs::RunReport IncrementalHera::Report() const {
  const obs::RunTrace* trace = engine_->trace();
  if (trace == nullptr) return obs::RunReport{};
  return obs::BuildRunReport(*trace, engine_->stats(),
                             RunOutcomeToString(engine_->stats().outcome));
}

std::vector<uint32_t> IncrementalHera::Labels() {
  std::vector<uint32_t> labels = engine_->Labels();
  // Pending records are singletons under their future ids.
  for (const Record& r : pending_) {
    if (r.id() >= labels.size()) labels.resize(r.id() + 1);
    labels[r.id()] = r.id();
  }
  return labels;
}

}  // namespace hera
