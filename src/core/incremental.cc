#include "core/incremental.h"

#include "sim/metrics.h"

namespace hera {

IncrementalHera::IncrementalHera(const HeraOptions& options,
                                 SchemaCatalog schemas, ValueSimilarityPtr simv)
    : options_(options),
      schemas_(std::move(schemas)),
      engine_(std::make_unique<ResolutionEngine>(options, std::move(simv))) {}

StatusOr<std::unique_ptr<IncrementalHera>> IncrementalHera::Create(
    const HeraOptions& options, SchemaCatalog schemas) {
  HERA_RETURN_NOT_OK(ValidateOptions(options));
  ValueSimilarityPtr simv = options.similarity;
  if (!simv) {
    simv = MakeSimilarity(options.metric);
    if (!simv) {
      return Status::InvalidArgument("unknown similarity metric: " +
                                     options.metric);
    }
  }
  return std::unique_ptr<IncrementalHera>(
      new IncrementalHera(options, std::move(schemas), std::move(simv)));
}

StatusOr<uint32_t> IncrementalHera::AddRecord(uint32_t schema_id,
                                              std::vector<Value> values) {
  if (schema_id >= schemas_.size()) {
    return Status::InvalidArgument("unknown schema id " +
                                   std::to_string(schema_id));
  }
  if (values.size() != schemas_.Get(schema_id).size()) {
    return Status::InvalidArgument(
        "record arity " + std::to_string(values.size()) +
        " does not match schema arity " +
        std::to_string(schemas_.Get(schema_id).size()));
  }
  uint32_t id = next_id_++;
  pending_.emplace_back(id, schema_id, std::move(values));
  return id;
}

StatusOr<size_t> IncrementalHera::Resolve() {
  if (pending_.empty() && !resume_needed_) return size_t{0};
  size_t processed = pending_.size();
  if (!pending_.empty()) {
    engine_->AddRecords(pending_);
    pending_.clear();
  }
  obs::RunTrace* trace = engine_->trace();
  auto round_span = obs::StartSpan(trace, "incremental.round");
  if (trace != nullptr) {
    trace->metrics().GetCounter("incremental.rounds")->Inc();
    trace->metrics().GetCounter("incremental.records")->Inc(processed);
    trace->tracer().Event("incremental.round", "", processed);
  }
  // Everything below may fail via fault injection; resume_needed_ makes
  // the next Resolve retry from the engine's (consistent) state even
  // with nothing new pending.
  resume_needed_ = true;
  engine_->ArmGuard();
  HERA_RETURN_NOT_OK(engine_->IndexNewRecords().status());
  HERA_RETURN_NOT_OK(engine_->IterateToFixpoint());
  resume_needed_ = false;
  return processed;
}

obs::RunReport IncrementalHera::Report() const {
  const obs::RunTrace* trace = engine_->trace();
  if (trace == nullptr) return obs::RunReport{};
  return obs::BuildRunReport(*trace, engine_->stats(),
                             RunOutcomeToString(engine_->stats().outcome));
}

std::vector<uint32_t> IncrementalHera::Labels() {
  std::vector<uint32_t> labels = engine_->Labels();
  // Pending records are singletons under their future ids.
  for (const Record& r : pending_) {
    if (r.id() >= labels.size()) labels.resize(r.id() + 1);
    labels[r.id()] = r.id();
  }
  return labels;
}

}  // namespace hera
