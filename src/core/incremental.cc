#include "core/incremental.h"

#include "sim/metrics.h"

namespace hera {

IncrementalHera::IncrementalHera(const HeraOptions& options,
                                 SchemaCatalog schemas, ValueSimilarityPtr simv)
    : options_(options),
      schemas_(std::move(schemas)),
      engine_(std::make_unique<ResolutionEngine>(options, std::move(simv))) {}

StatusOr<std::unique_ptr<IncrementalHera>> IncrementalHera::Create(
    const HeraOptions& options, SchemaCatalog schemas) {
  ValueSimilarityPtr simv = options.similarity;
  if (!simv) {
    simv = MakeSimilarity(options.metric);
    if (!simv) {
      return Status::InvalidArgument("unknown similarity metric: " +
                                     options.metric);
    }
  }
  if (options.xi < 0.0 || options.xi > 1.0 || options.delta < 0.0 ||
      options.delta > 1.0) {
    return Status::InvalidArgument("thresholds must lie in [0, 1]");
  }
  return std::unique_ptr<IncrementalHera>(
      new IncrementalHera(options, std::move(schemas), std::move(simv)));
}

StatusOr<uint32_t> IncrementalHera::AddRecord(uint32_t schema_id,
                                              std::vector<Value> values) {
  if (schema_id >= schemas_.size()) {
    return Status::InvalidArgument("unknown schema id " +
                                   std::to_string(schema_id));
  }
  if (values.size() != schemas_.Get(schema_id).size()) {
    return Status::InvalidArgument(
        "record arity " + std::to_string(values.size()) +
        " does not match schema arity " +
        std::to_string(schemas_.Get(schema_id).size()));
  }
  uint32_t id = next_id_++;
  pending_.emplace_back(id, schema_id, std::move(values));
  return id;
}

size_t IncrementalHera::Resolve() {
  if (pending_.empty()) return 0;
  size_t processed = pending_.size();
  engine_->AddRecords(pending_);
  pending_.clear();
  engine_->IndexNewRecords();
  engine_->IterateToFixpoint();
  return processed;
}

std::vector<uint32_t> IncrementalHera::Labels() {
  std::vector<uint32_t> labels = engine_->Labels();
  // Pending records are singletons under their future ids.
  for (const Record& r : pending_) {
    if (r.id() >= labels.size()) labels.resize(r.id() + 1);
    labels[r.id()] = r.id();
  }
  return labels;
}

}  // namespace hera
