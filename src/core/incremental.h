// Incremental entity resolution: feed records as they arrive instead
// of re-running HERA from scratch. New records are joined only against
// the live value set (PrefixFilterJoin::JoinAB), their pairs are
// inserted into the standing index, and compare-and-merge resumes from
// the current fixpoint — merges, index state, and schema-matching
// votes all persist across batches.
//
//   IncrementalHera inc(opts, schemas);
//   inc.AddRecord(schema_id, values);
//   ...
//   inc.Resolve();                  // Process everything pending.
//   inc.Labels();                   // Current entity labels.
//
// Resolving batch-by-batch yields the same fixpoint condition as batch
// HERA (no pair with Sim >= delta remains unmerged), though the merge
// *order* — and therefore, in rare tie cases, the exact clustering —
// can differ, exactly as it can between two batch runs with different
// record orders.

#ifndef HERA_CORE_INCREMENTAL_H_
#define HERA_CORE_INCREMENTAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/statusor.h"
#include "core/engine.h"
#include "core/options.h"
#include "obs/report.h"
#include "record/dataset.h"

namespace hera {

/// \brief Streaming wrapper around ResolutionEngine.
class IncrementalHera {
 public:
  /// Fails on an invalid metric/threshold configuration. When
  /// options.checkpoint_dir is set, every Resolve round checkpoints
  /// into it (see docs/file_format.md) and a killed process can be
  /// reconstructed with Restore().
  static StatusOr<std::unique_ptr<IncrementalHera>> Create(
      const HeraOptions& options, SchemaCatalog schemas);

  /// Reconstructs a checkpointed IncrementalHera from
  /// options.checkpoint_dir: newest good snapshot + WAL replay. The
  /// first Resolve() after Restore continues the interrupted round
  /// exactly — already-applied merges are never re-applied and consumed
  /// failpoints never re-trip — so a round truncated by a RunGuard
  /// deadline finishes with the same merge sequence the uninterrupted
  /// round would have produced. `schemas` must match the checkpointed
  /// catalog (FailedPrecondition otherwise); NotFound when the
  /// directory has no snapshot. Records still pending (never indexed)
  /// at the crash were not checkpointed and must be re-added.
  static StatusOr<std::unique_ptr<IncrementalHera>> Restore(
      const HeraOptions& options, SchemaCatalog schemas);

  /// Queues one record; returns its id. The record is invisible to
  /// Labels() until the next Resolve().
  StatusOr<uint32_t> AddRecord(uint32_t schema_id, std::vector<Value> values);

  /// Indexes all queued records and re-runs compare-and-merge to
  /// fixpoint. No-op when nothing is pending. Returns the number of
  /// records processed. Each round is its own governed run: the
  /// options' RunGuard is re-armed (fresh deadline budget) and
  /// stats().outcome reports how the round ended. Fails only via fault
  /// injection; after a failure the engine is consistent and the next
  /// Resolve continues from where it stopped.
  StatusOr<size_t> Resolve();

  /// Entity label per record id (records still pending keep their own
  /// id as a singleton label).
  std::vector<uint32_t> Labels();

  /// Live super records.
  const std::map<uint32_t, SuperRecord>& super_records() const {
    return engine_->active();
  }

  const HeraStats& stats() const { return engine_->stats(); }
  const SchemaCatalog& schemas() const { return schemas_; }
  size_t NumRecords() const { return next_id_; }
  size_t NumPending() const { return pending_.size(); }

  /// Snapshot of the observability state accumulated over every round
  /// so far. Empty unless options.collect_report was set; can be
  /// called between Resolve rounds.
  obs::RunReport Report() const;

 private:
  IncrementalHera(const HeraOptions& options, SchemaCatalog schemas,
                  ValueSimilarityPtr simv);

  HeraOptions options_;
  SchemaCatalog schemas_;
  std::unique_ptr<ResolutionEngine> engine_;
  /// Durable checkpointing; null unless options.checkpoint_dir is set.
  std::unique_ptr<persist::CheckpointManager> ckpt_;
  std::vector<Record> pending_;
  uint32_t next_id_ = 0;
  /// A previous Resolve failed after consuming its batch (fault
  /// injection); the next Resolve retries even with nothing pending.
  bool resume_needed_ = false;
  /// Fresh from Restore(): the next Resolve must continue the restored
  /// fixpoint loop (and must not re-index, which would discard it).
  bool restored_ = false;
};

}  // namespace hera

#endif  // HERA_CORE_INCREMENTAL_H_
