#include "core/options.h"

namespace hera {

Status ValidateOptions(const HeraOptions& options) {
  if (options.xi < 0.0 || options.xi > 1.0) {
    return Status::InvalidArgument("xi must lie in [0, 1], got " +
                                   std::to_string(options.xi));
  }
  if (options.delta < 0.0 || options.delta > 1.0) {
    return Status::InvalidArgument("delta must lie in [0, 1], got " +
                                   std::to_string(options.delta));
  }
  if (options.vote_prior_p <= 0.5 || options.vote_prior_p > 1.0) {
    return Status::InvalidArgument(
        "vote_prior_p must lie in (0.5, 1] (Theorem 2 needs a "
        "better-than-chance prior), got " +
        std::to_string(options.vote_prior_p));
  }
  if (options.vote_rho <= 0.0) {
    return Status::InvalidArgument("vote_rho must be > 0, got " +
                                   std::to_string(options.vote_rho));
  }
  if (options.flat_pipeline_depth < 1 ||
      options.flat_pipeline_depth > FlatTable::kMaxPipelineDepth) {
    return Status::InvalidArgument(
        "flat_pipeline_depth must lie in [1, " +
        std::to_string(FlatTable::kMaxPipelineDepth) + "], got " +
        std::to_string(options.flat_pipeline_depth));
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be > 0");
  }
  if (!options.checkpoint_dir.empty() && options.checkpoint_every == 0) {
    return Status::InvalidArgument(
        "checkpoint_every must be > 0 when checkpoint_dir is set");
  }
  return Status::OK();
}

const char* RunOutcomeToString(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kCompleted:
      return "completed";
    case RunOutcome::kDegraded:
      return "degraded";
    case RunOutcome::kIterationCap:
      return "iteration_cap";
    case RunOutcome::kTruncatedBudget:
      return "truncated_budget";
    case RunOutcome::kTruncatedDeadline:
      return "truncated_deadline";
    case RunOutcome::kTruncatedCancelled:
      return "truncated_cancelled";
  }
  return "unknown";
}

bool RunOutcomeFromString(const std::string& name, RunOutcome* out) {
  for (RunOutcome o :
       {RunOutcome::kCompleted, RunOutcome::kDegraded, RunOutcome::kIterationCap,
        RunOutcome::kTruncatedBudget, RunOutcome::kTruncatedDeadline,
        RunOutcome::kTruncatedCancelled}) {
    if (name == RunOutcomeToString(o)) {
      *out = o;
      return true;
    }
  }
  return false;
}

}  // namespace hera
