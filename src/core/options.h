// Configuration and run statistics for HERA.

#ifndef HERA_CORE_OPTIONS_H_
#define HERA_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/run_guard.h"
#include "common/status.h"
#include "index/flat_table.h"
#include "sim/kernel_dispatch.h"
#include "sim/similarity.h"

namespace hera {

/// \brief Tuning knobs for the HERA algorithm (Algorithm 2).
struct HeraOptions {
  /// Value/field similarity threshold ξ (Definitions 4, 7).
  double xi = 0.5;

  /// Record similarity threshold δ (Definition 5 / stop condition).
  double delta = 0.5;

  /// Value similarity metric by registry name (see MakeSimilarity).
  /// Ignored when `similarity` is set. The paper's default is Jaccard
  /// over 2-grams.
  std::string metric = "jaccard_q2";

  /// Explicit black-box metric; overrides `metric` when non-null.
  ValueSimilarityPtr similarity;

  /// Index construction via the prefix-filter join (true) or the
  /// nested-loop oracle (false; the paper's slow baseline).
  bool use_prefix_filter_join = true;

  /// Verify join candidates on the integer-encoded gram sets
  /// (sim/kernel.h) with threshold-driven early exit, and arm the
  /// PPJoin+-style positional/suffix filters where they are exact.
  /// Kernel scores are bit-equal to the string path, so this is purely
  /// a speed knob: labels, merge_sequence, and snapshots are identical
  /// either way. Off restores the pre-kernel verification path (A/B
  /// comparisons). See docs/performance.md.
  bool use_encoded_kernels = true;

  /// SIMD tier for the similarity kernels (sim/kernel_dispatch.h):
  /// kAuto picks the best tier the CPU supports (AVX2 > SSE4 >
  /// scalar), honoring the HERA_KERNEL_DISPATCH environment override;
  /// a named tier clamps down to what the CPU can run. Applied
  /// process-globally at engine construction. Purely a speed knob:
  /// every tier computes bit-identical scores, so labels and
  /// merge_sequence never change with it (and it is deliberately
  /// excluded from checkpoint fingerprints — a snapshot written on an
  /// AVX2 box resumes identically on a scalar one). See
  /// docs/performance.md ("SIMD kernel tier").
  KernelDispatch kernel_dispatch = KernelDispatch::kAuto;

  /// Memoize verified value-pair similarities across joins, fixpoint
  /// rounds, and incremental batches (sim/pair_cache.h). Scores are a
  /// pure function of the two value texts, so results are unchanged;
  /// only repeated metric work is saved. Pays off for non-kernel
  /// metrics (edit, jaro_winkler, monge_elkan); kernel-eligible
  /// metrics bypass it.
  bool enable_pair_sim_cache = true;

  /// PairSimCache entry ceiling (0 = unlimited); at the ceiling the
  /// cache degrades to a pass-through. ~48 bytes + key text per entry.
  size_t pair_sim_cache_capacity = 1u << 20;

  /// Hash backend for candidate generation and index-side pid lookups
  /// (index/flat_table.h): kOrdered keeps the node-based std
  /// containers; kFlat routes the join's gram dictionary and posting
  /// table plus the value-pair index's pid side table through a flat
  /// open-addressing table with batched, prefetch-pipelined probes.
  /// Purely a speed knob: labels, merge_sequence, and snapshots are
  /// byte-identical either way, at every thread count. See
  /// docs/performance.md ("Flat index backend").
  IndexBackend index_backend = IndexBackend::kOrdered;

  /// In-flight probes per batched flat-table lookup (ignored under
  /// kOrdered). Must lie in [1, FlatTable::kMaxPipelineDepth]. 8 covers
  /// DRAM latency on typical cores; raise toward 16–32 for very large
  /// indexes, lower toward 1–4 when the table fits in L2.
  size_t flat_pipeline_depth = FlatTable::kDefaultPipelineDepth;

  /// Enables the schema-based method (Section IV-B): majority voting
  /// over field-match predictions, with decided matchings forced into
  /// later field matching sets.
  bool enable_schema_voting = true;

  /// Theorem 2 prior p = Pr(single prediction correct); in (0.5, 1].
  double vote_prior_p = 0.8;

  /// Error-probability threshold ρ: decide a matching when
  /// UP_error < ρ.
  double vote_rho = 0.6;

  /// Candidate-generation bound mode: false reproduces the paper's
  /// Algorithm 1 (upper bound over the left record's fields only);
  /// true uses the tighter two-sided bound, which resolves more pairs
  /// without verification (faster, but starves the KM/voting paths the
  /// paper's m̄ statistics measure). See index/bounds.h.
  bool tight_bounds = false;

  /// Safety cap on compare-and-merge iterations.
  size_t max_iterations = 1000;

  /// Worker threads for the data-parallel phases: similarity-join
  /// probing, tokenization, and KM verification. 0 or 1 runs fully
  /// serial (the default; no pool is created and nothing changes).
  /// Results are deterministic for any value: completed runs produce
  /// byte-identical pair lists, merge sequences, and clusters at every
  /// thread count (see docs/performance.md). Merge application and
  /// vote updates always stay on the controller thread.
  size_t num_threads = 0;

  /// Run governance: deadline, cancellation token, resource ceilings.
  /// The default guard imposes nothing (and costs nothing). See
  /// docs/operational_limits.md.
  RunGuard guard;

  /// Collect a structured RunReport (per-phase spans, per-iteration
  /// counters, histograms, governance events) on HeraResult::report.
  /// Off by default: the disabled path is a handful of null-pointer
  /// checks, so Fig 12-style timings stay honest. Ignored when the
  /// library is built with -DHERA_OBS=OFF. See docs/observability.md.
  bool collect_report = false;

  /// Tick period of the background timeline sampler, which snapshots
  /// process RSS/CPU and the run's counters (merges, emitted pairs,
  /// cache occupancy) into RunReport::timeline. 0 (the default)
  /// disables the sampler thread entirely. Implies report collection
  /// when set. Sampling is read-only over atomics — labels and
  /// merge_sequence are byte-identical with it on or off. Ignored
  /// under -DHERA_OBS=OFF.
  size_t timeline_interval_ms = 0;

  /// Ring capacity of the timeline (oldest samples overwritten beyond
  /// it; RunReport::timeline.dropped counts the loss).
  size_t timeline_capacity = 4096;

  /// Directory for durable checkpoints (snapshots + write-ahead log).
  /// Empty (the default) disables checkpointing entirely. When set, a
  /// snapshot is written after indexing, every `checkpoint_every`
  /// iterations, and at run end (including guard truncation), with one
  /// WAL entry fsync'd per completed pass in between — a killed run
  /// resumes via Hera::Resume / IncrementalHera::Restore and produces
  /// byte-identical clusters. See docs/file_format.md.
  std::string checkpoint_dir;

  /// Snapshot cadence in compare-and-merge iterations; must be > 0
  /// when checkpoint_dir is set. Passes between snapshots cost one
  /// WAL fsync each.
  size_t checkpoint_every = 8;

  /// Progressive (budget-aware) execution. When the run is governed —
  /// a deadline, cancellation token, or verification budget
  /// (RunGuard::WithMaxVerifications) is set — each pass verifies its
  /// candidate groups best-first: ordered by descending similarity
  /// upper bound (the exact OverlapUpperBound machinery of the
  /// verification path) instead of canonical index order, so work shed
  /// at the cut is the *least promising* work. On a cut, unverified
  /// groups drain into the checkpointable deferred queue and the run
  /// ends with a truncated outcome + final snapshot; `--resume` picks
  /// them up and converges to the same labels as an uninterrupted run.
  /// Ungoverned progressive runs keep canonical order — labels and
  /// merge_sequence stay byte-identical to progressive=false at every
  /// thread count and index backend. See docs/operational_limits.md
  /// ("Progressive mode").
  bool progressive = false;

  /// Ceiling on the best-first frontier per pass (0 = unbounded):
  /// only the `frontier_capacity` highest-upper-bound groups are
  /// reordered ahead; the rest keep canonical order behind them. Caps
  /// the O(V log V) ordering cost on huge passes; with a budget far
  /// below capacity, quality is unchanged.
  size_t frontier_capacity = 0;
};

/// Checks option ranges: xi, delta in [0, 1]; vote_prior_p in
/// (0.5, 1]; vote_rho > 0; max_iterations > 0. The metric name is
/// checked separately at resolution time. Run/RunWithPairs/
/// IncrementalHera::Create call this and refuse to start on violation.
Status ValidateOptions(const HeraOptions& options);

/// \brief How a run ended, in increasing severity. A single outcome is
/// reported: when several conditions co-occur (e.g. pairs were shed
/// *and* the deadline expired) the most severe wins; the shed counters
/// in HeraStats carry the details either way.
enum class RunOutcome {
  kCompleted = 0,          ///< Fixpoint reached, nothing shed.
  kDegraded,               ///< Ceiling breached; load was shed.
  kIterationCap,           ///< max_iterations hit while still merging.
  kTruncatedBudget,        ///< Verification budget spent; partial result.
  kTruncatedDeadline,      ///< Deadline expired; partial result.
  kTruncatedCancelled,     ///< Cancelled via token; partial result.
};

/// Stable name for an outcome ("completed", "truncated_deadline"...).
const char* RunOutcomeToString(RunOutcome outcome);

/// Inverse of RunOutcomeToString. Returns false (and leaves `out`
/// untouched) on an unrecognized name. Every name RunOutcomeToString
/// emits round-trips.
bool RunOutcomeFromString(const std::string& name, RunOutcome* out);

/// \brief Counters and timings filled in by one HERA run; these are the
/// quantities reported in the paper's Table II and Figures 10/12.
struct HeraStats {
  size_t index_size = 0;          ///< |S|: value pairs in the index at build.
  size_t iterations = 0;          ///< k: compare-and-merge passes.
  size_t comparisons = 0;         ///< Verifier invocations (Fig 10).
  size_t candidates = 0;          ///< Pairs sent to verification in total.
  size_t direct_merges = 0;       ///< |R'|: resolved by Up == Low.
  size_t pruned_by_bound = 0;     ///< Groups discarded because Up < δ.
  size_t merges = 0;              ///< Total merge operations.
  size_t decided_schema_matchings = 0;  ///< Promoted by majority vote.
  double avg_simplified_nodes = 0.0;    ///< m̄: mean |X'|+|Y'| fed to KM.
  /// Offline index construction (similarity join + sort), accumulated
  /// across incremental rounds.
  double index_build_ms = 0.0;
  /// Online resolution time (candidate generation + verification +
  /// merging), excluding the offline index build — the quantity the
  /// paper's Fig 12 reports ("the index could be built off-line").
  double total_ms = 0.0;

  /// How the run ended (most severe condition observed; for
  /// incremental resolution, of the latest Resolve round).
  RunOutcome outcome = RunOutcome::kCompleted;
  /// Value pairs dropped by the max_index_pairs ceiling.
  size_t shed_index_pairs = 0;
  /// Posting-list entries dropped by the max_posting_list ceiling
  /// (join token postings + per-record index lists).
  size_t shed_posting_entries = 0;
  /// Candidate groups pushed to a later iteration by the
  /// max_candidates_per_iteration ceiling. Deferred groups are
  /// re-examined, so deferral alone does not change the fixpoint —
  /// only ending the run with deferrals still pending degrades it.
  size_t deferred_candidate_groups = 0;
  /// True when the similarity join stopped early (deadline/cancel) and
  /// the index is missing pairs the full join would have found.
  bool join_truncated = false;
  /// Join candidates generated but dropped unverified at a guard trip
  /// boundary (exact at the trip: candidates == verified +
  /// shed_join_candidates for truncated joins).
  size_t shed_join_candidates = 0;
  /// Candidate groups that entered best-first frontier ordering
  /// (progressive mode with governance active), cumulative over
  /// passes.
  size_t frontier_groups = 0;
  /// Groups deferred unverified because the verification budget ran
  /// out or the guard tripped mid-pass in progressive mode. Deferred
  /// groups persist in the checkpoint and are re-examined on resume.
  size_t budget_deferred_groups = 0;

  /// Every merge in application order, as (surviving rid, absorbed
  /// rid); accumulates across incremental rounds. The determinism
  /// guarantee is stated over this sequence: for completed runs it is
  /// identical at every num_threads setting.
  std::vector<std::pair<uint32_t, uint32_t>> merge_sequence;
};

}  // namespace hera

#endif  // HERA_CORE_OPTIONS_H_
