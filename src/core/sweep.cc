#include "core/sweep.h"

#include <cassert>

namespace hera {

StatusOr<std::vector<SweepPoint>> SweepDelta(
    const Dataset& dataset, const HeraOptions& base_options,
    const std::vector<double>& deltas) {
  if (!dataset.has_ground_truth()) {
    return Status::FailedPrecondition("SweepDelta needs ground truth");
  }
  if (deltas.empty()) {
    return Status::InvalidArgument("empty delta grid");
  }
  // One offline join serves the whole sweep (xi and metric are fixed).
  HERA_ASSIGN_OR_RETURN(std::vector<ValuePair> pairs,
                        ComputeSimilarValuePairs(dataset, base_options));
  std::vector<SweepPoint> points;
  points.reserve(deltas.size());
  for (double delta : deltas) {
    HeraOptions opts = base_options;
    opts.delta = delta;
    auto result = Hera(opts).RunWithPairs(dataset, pairs);
    if (!result.ok()) return result.status();
    SweepPoint p;
    p.delta = delta;
    p.metrics = EvaluatePairs(result->entity_of, dataset.entity_of());
    p.stats = result->stats;
    points.push_back(p);
  }
  return points;
}

const SweepPoint& BestByF1(const std::vector<SweepPoint>& points) {
  assert(!points.empty());
  const SweepPoint* best = &points.front();
  for (const SweepPoint& p : points) {
    if (p.metrics.f1 > best->metrics.f1) best = &p;
  }
  return *best;
}

}  // namespace hera
