// Threshold sweeping: run HERA across a grid of record thresholds and
// score each run — the tuning loop behind Fig 9/11 and the natural way
// to pick delta for a new dataset with a labeled sample.

#ifndef HERA_CORE_SWEEP_H_
#define HERA_CORE_SWEEP_H_

#include <vector>

#include "common/statusor.h"
#include "core/hera.h"
#include "eval/metrics.h"

namespace hera {

/// One sweep point.
struct SweepPoint {
  double delta = 0.0;
  PairMetrics metrics;
  HeraStats stats;
};

/// Runs HERA at every delta in `deltas` (other options from
/// `base_options`) and scores against the dataset's ground truth.
/// Fails if the dataset lacks ground truth or an option is invalid.
StatusOr<std::vector<SweepPoint>> SweepDelta(const Dataset& dataset,
                                             const HeraOptions& base_options,
                                             const std::vector<double>& deltas);

/// The sweep point with the highest F1 (first on ties). `points` must
/// be non-empty.
const SweepPoint& BestByF1(const std::vector<SweepPoint>& points);

}  // namespace hera

#endif  // HERA_CORE_SWEEP_H_
