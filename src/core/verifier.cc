#include "core/verifier.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "matching/bipartite.h"

namespace hera {

namespace {

/// Attribute origins of the best value pair behind a refined field pair.
std::pair<AttrRef, AttrRef> OriginsOf(const SuperRecord& a, const SuperRecord& b,
                                      const IndexedPair& p) {
  return {a.field(p.a.fid).value(p.a.vid).origin,
          b.field(p.b.fid).value(p.b.vid).origin};
}

}  // namespace

VerifyResult InstanceBasedVerifier::Verify(
    const SuperRecord& a, const SuperRecord& b,
    const std::vector<IndexedPair>& pairs) const {
  VerifyResult result;
  if (pairs.empty()) return result;
  assert(a.num_fields() > 0 && b.num_fields() > 0);

  // Refined field set V': max-similarity value pair per field pair
  // (input sorted descending, first wins).
  std::vector<IndexedPair> refined;
  {
    std::unordered_set<uint64_t> seen;
    seen.reserve(pairs.size());
    for (const IndexedPair& p : pairs) {
      uint64_t fkey = (static_cast<uint64_t>(p.a.fid) << 32) | p.b.fid;
      if (seen.insert(fkey).second) refined.push_back(p);
    }
  }

  // Forced pairs: decided schema matchings go straight into F
  // (Section IV-B: "in the later comparisons we can directly include
  // corresponding field pair into the field matching set"). Processed
  // in descending similarity; one-to-one is enforced greedily.
  std::unordered_set<uint32_t> used_a, used_b;
  double total = 0.0;
  std::vector<IndexedPair> remaining;
  for (const IndexedPair& p : refined) {
    bool forced = false;
    if (predictor_ != nullptr && !used_a.count(p.a.fid) && !used_b.count(p.b.fid)) {
      auto [origin_a, origin_b] = OriginsOf(a, b, p);
      forced = predictor_->IsDecided(origin_a, origin_b);
    }
    if (forced) {
      used_a.insert(p.a.fid);
      used_b.insert(p.b.fid);
      result.matching.push_back({p.a.fid, p.b.fid, p.sim});
      auto [origin_a, origin_b] = OriginsOf(a, b, p);
      result.predictions.emplace_back(origin_a, origin_b);
      total += p.sim;
      ++result.forced_pairs;
    } else {
      remaining.push_back(p);
    }
  }

  // Remaining similar field pairs -> maximum-weight bipartite matching
  // (Definition 8), with graph simplification + Kuhn–Munkres inside.
  std::vector<WeightedEdge> edges;
  edges.reserve(remaining.size());
  for (const IndexedPair& p : remaining) {
    if (used_a.count(p.a.fid) || used_b.count(p.b.fid)) continue;
    edges.push_back({p.a.fid, p.b.fid, p.sim});
  }
  MatchingResult solved = SolveFieldMatching(edges);
  result.simplified_nodes = solved.simplified_nodes;
  result.km_size = solved.km_size;
  // Field-pair ids uniquely identify the refined pair behind each
  // matched edge; index them once instead of rescanning `remaining`
  // per edge.
  std::unordered_map<uint64_t, const IndexedPair*> by_fields;
  by_fields.reserve(remaining.size());
  for (const IndexedPair& p : remaining) {
    uint64_t fkey = (static_cast<uint64_t>(p.a.fid) << 32) | p.b.fid;
    by_fields.emplace(fkey, &p);
  }
  for (const WeightedEdge& e : solved.matching) {
    result.matching.push_back({e.left, e.right, e.weight});
    total += e.weight;
    uint64_t fkey = (static_cast<uint64_t>(e.left) << 32) | e.right;
    auto it = by_fields.find(fkey);
    if (it != by_fields.end()) {
      auto [origin_a, origin_b] = OriginsOf(a, b, *it->second);
      result.predictions.emplace_back(origin_a, origin_b);
    }
  }

  result.sim = total / static_cast<double>(
                           std::min(a.num_fields(), b.num_fields()));
  return result;
}

}  // namespace hera
