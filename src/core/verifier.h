// Instance-based verification (Section IV-A): compute Sim(R_i, R_j)
// and the field matching set from the record pair's index entries,
// optionally short-circuiting fields whose attributes were already
// decided by the schema-based method.

#ifndef HERA_CORE_VERIFIER_H_
#define HERA_CORE_VERIFIER_H_

#include <utility>
#include <vector>

#include "index/value_pair_index.h"
#include "record/super_record.h"
#include "schema/majority_vote.h"
#include "sim/similarity.h"

namespace hera {

/// Output of one verification.
struct VerifyResult {
  /// Sim(R_i, R_j) per Definition 5.
  double sim = 0.0;
  /// The field matching set F(i, j); field_a indexes the record with
  /// the smaller rid (the index group's left side).
  std::vector<FieldMatch> matching;
  /// |X'| + |Y'| of the simplified bipartite graph solved by KM
  /// (0 when everything was forced/mapped); aggregated into m̄.
  size_t simplified_nodes = 0;
  /// KM cost-matrix side length for this verification (0 when KM was
  /// skipped entirely); histogrammed as verify.km_matrix_n.
  size_t km_size = 0;
  /// Schema-matching predictions implied by `matching`: the attribute
  /// origins of each matched field pair's best value pair.
  std::vector<std::pair<AttrRef, AttrRef>> predictions;
  /// Matched pairs that were forced by decided schema matchings.
  size_t forced_pairs = 0;
};

/// \brief Computes record similarity via refined field set + bipartite
/// maximum-weight matching.
class InstanceBasedVerifier {
 public:
  /// \param predictor optional decided-schema-matching source; may be
  ///        nullptr (pure instance-based mode).
  explicit InstanceBasedVerifier(const SchemaMatchingPredictor* predictor = nullptr)
      : predictor_(predictor) {}

  /// \param a the record with the smaller rid, \param b the larger.
  /// \param pairs the index entries for (a.rid, b.rid), descending
  ///        similarity (ValuePairIndex::PairsFor output).
  VerifyResult Verify(const SuperRecord& a, const SuperRecord& b,
                      const std::vector<IndexedPair>& pairs) const;

 private:
  const SchemaMatchingPredictor* predictor_;
};

}  // namespace hera

#endif  // HERA_CORE_VERIFIER_H_
