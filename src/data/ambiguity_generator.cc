#include "data/ambiguity_generator.h"

#include <string>
#include <utility>
#include <vector>

#include "common/random.h"

namespace hera {

namespace {

/// A distinctive token: long enough that two independently drawn cores
/// share almost no 2-grams, so cross-entity similarity stays far below
/// xi and the corpus does not collapse into one cluster.
std::string DistinctCore(Rng& rng, size_t len = 24) {
  std::string t;
  t.reserve(len);
  for (size_t c = 0; c < len; ++c) {
    t += static_cast<char>('a' + rng.Uniform(26));
  }
  return t;
}

}  // namespace

Dataset GenerateAmbiguousDataset(const AmbiguityGeneratorConfig& config) {
  Dataset ds;
  Rng rng(config.seed * 0x9e3779b97f4a7c15ULL + 1);
  const uint32_t sa = ds.schemas().Register(Schema("SrcA", {"x", "y"}));
  const uint32_t sb = ds.schemas().Register(Schema("SrcB", {"u", "v"}));
  std::vector<uint32_t> truth;
  uint32_t next_entity = 0;

  // Decoys first: low record ids put them at the head of the canonical
  // group order, which is exactly where a blind budget burns first.
  // The pair shares only a prefix of its core, so both similarities sit
  // in [xi, 1): the two fields of the first record still both prefer
  // the partner's first field (ambiguous bounds, upper >= delta), but
  // the achievable one-to-one matching stays below delta — verification
  // runs and correctly concludes non-match. Ground truth: distinct
  // entities.
  for (size_t d = 0; d < config.num_decoys; ++d) {
    std::string core = DistinctCore(rng);
    std::string half = core.substr(0, 14);
    ds.AddRecord(sa, {Value(core + " one two"), Value(core + " one tw")});
    truth.push_back(next_entity++);
    ds.AddRecord(sb, {Value(half + " one two"),
                      Value("decoy" + std::to_string(d) + " zz")});
    truth.push_back(next_entity++);
  }

  // True entities: three records each, built from one distinct core
  // and two truncations of it (typo = core minus one char, clip = core
  // minus two):
  //   A = {core, typo}   B = {core, junk}   C = {typo, clip}
  // A-B: both A fields best-match B's core field (the multiple field),
  // so upper > lower and the merge costs a KM verification. B-C shares
  // only one similar pair (B's junk matches nothing), so its upper
  // bound is below delta and the group prunes for free — no shortcut
  // merge for the frontier to exploit. A-C is skipped this pass once
  // A-B merges, and the next pass verifies the merged super-record
  // against C: C's typo again matches two fields (core and typo) while
  // clip keeps the achievable one-to-one matching comfortably above
  // delta — the second verification, one pass later, concluding in a
  // merge.
  for (size_t e = 0; e < config.num_entities; ++e) {
    std::string core = DistinctCore(rng) + " alpha";
    std::string typo = core.substr(0, core.size() - 1);
    std::string clip = core.substr(0, core.size() - 2);
    const uint32_t entity = next_entity++;
    ds.AddRecord(sa, {Value(core), Value(typo)});
    truth.push_back(entity);
    ds.AddRecord(sb, {Value(core), Value(DistinctCore(rng) + " beta")});
    truth.push_back(entity);
    ds.AddRecord(sb, {Value(typo), Value(clip)});
    truth.push_back(entity);
  }

  ds.entity_of() = std::move(truth);
  return ds;
}

}  // namespace hera
