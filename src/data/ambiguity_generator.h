// Generator for matching-ambiguous datasets: records engineered so
// candidate groups land in the bound band lower < delta <= upper and
// must go through KM verification (Section IV) instead of the bound
// shortcuts. The publication/movie corpora resolve almost entirely via
// exact bounds, which starves any harness that wants to budget, order,
// or profile the verification path — this corpus is that workload.

#ifndef HERA_DATA_AMBIGUITY_GENERATOR_H_
#define HERA_DATA_AMBIGUITY_GENERATOR_H_

#include <cstddef>
#include <cstdint>

#include "record/dataset.h"

namespace hera {

struct AmbiguityGeneratorConfig {
  /// True entities. Each contributes three records across two schemas
  /// whose pairwise field graphs contain a "multiple field" (one field
  /// similar to two fields of the partner), so every merge on the way
  /// to the entity costs a KM verification — two per entity, spread
  /// over two compare-and-merge passes via in-pass deferral.
  size_t num_entities = 50;

  /// Decoy record pairs: verification-shaped work that does not pay
  /// off. A decoy pair's bounds straddle delta (so it must be
  /// verified) but its one-to-one matching lands below delta (so the
  /// verification concludes non-match). Decoys carry *lower* upper
  /// bounds than true groups and are emitted at low record ids: a
  /// blind (canonical-order) budget spends on them first, a best-first
  /// frontier correctly postpones them.
  size_t num_decoys = 0;

  uint64_t seed = 1;
};

/// Generates the corpus with ground truth on Dataset::entity_of.
/// Deterministic in the config. Intended for xi = 0.5, delta = 0.5
/// (the engine defaults).
Dataset GenerateAmbiguousDataset(const AmbiguityGeneratorConfig& config);

}  // namespace hera

#endif  // HERA_DATA_AMBIGUITY_GENERATOR_H_
