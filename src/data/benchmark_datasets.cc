#include "data/benchmark_datasets.h"

#include <algorithm>
#include <cassert>

#include "data/movie_generator.h"

namespace hera {

namespace {

/// Removes one attribute (by name) from a profile; trimming is how the
/// benchmark datasets land on Table I's distinct-attribute counts.
void DropAttr(SourceProfile* profile, const std::string& attr) {
  auto it = std::find_if(profile->attrs.begin(), profile->attrs.end(),
                         [&](const auto& a) { return a.first == attr; });
  assert(it != profile->attrs.end());
  profile->attrs.erase(it);
}

}  // namespace

BenchmarkDatasetSpec SpecFor(BenchmarkDataset which) {
  // n and #entities follow the paper's Table I exactly.
  switch (which) {
    case BenchmarkDataset::kDm1:
      return {"Dm1", 1000, 121, 101};
    case BenchmarkDataset::kDm2:
      return {"Dm2", 2000, 277, 102};
    case BenchmarkDataset::kDm3:
      return {"Dm3", 3000, 361, 103};
    case BenchmarkDataset::kDm4:
      return {"Dm4", 4000, 533, 104};
  }
  assert(false && "unknown dataset");
  return {};
}

Dataset BuildBenchmarkDataset(BenchmarkDataset which) {
  BenchmarkDatasetSpec spec = SpecFor(which);
  MovieGeneratorConfig config;
  config.num_records = spec.num_records;
  config.num_entities = spec.num_entities;
  config.seed = spec.seed;
  std::vector<SourceProfile> profiles = StandardMovieProfiles();
  // Vary the distinct attribute count across datasets as in Table I
  // (16 / 22 / 23 / 21): Dm1 gets three profiles with trimmed
  // attribute lists; the others use all four profiles with small
  // per-dataset trims.
  switch (which) {
    case BenchmarkDataset::kDm1:
      profiles.resize(3);                     // imdb, dbpedia, catalog.
      DropAttr(&profiles[0], "tagline");
      DropAttr(&profiles[1], "composer");
      DropAttr(&profiles[2], "release_date");
      // Concepts: imdb 9 + dbpedia {language,writer,studio,producer}
      // + catalog {gross,awards,editor} = 16.
      break;
    case BenchmarkDataset::kDm2:
      DropAttr(&profiles[3], "franchise");    // 22 concepts.
      break;
    case BenchmarkDataset::kDm3:
      break;                                  // All 23 concepts.
    case BenchmarkDataset::kDm4:
      DropAttr(&profiles[3], "franchise");
      DropAttr(&profiles[3], "cinematographer");  // 21 concepts.
      break;
  }
  config.profiles = std::move(profiles);
  return GenerateMovieDataset(config);
}

ExchangeResult BuildHomogeneousProjection(BenchmarkDataset which, bool small) {
  Dataset source = BuildBenchmarkDataset(which);
  double fraction = small ? 1.0 / 3.0 : 2.0 / 3.0;
  uint64_t seed = SpecFor(which).seed * 7919 + (small ? 1 : 2);
  return ExchangeToTargetSchema(source, fraction, seed);
}

std::vector<BenchmarkDataset> AllBenchmarkDatasets() {
  return {BenchmarkDataset::kDm1, BenchmarkDataset::kDm2,
          BenchmarkDataset::kDm3, BenchmarkDataset::kDm4};
}

}  // namespace hera
