// The four benchmark datasets D_m1..D_m4 (Table I) and their
// homogeneous projections D_m*-S / D_m*-L (Section VI-A), built with
// the generator substitution documented in DESIGN.md §3.

#ifndef HERA_DATA_BENCHMARK_DATASETS_H_
#define HERA_DATA_BENCHMARK_DATASETS_H_

#include <string>
#include <vector>

#include "data/data_exchange.h"
#include "record/dataset.h"

namespace hera {

/// Which of the paper's datasets to build.
enum class BenchmarkDataset { kDm1 = 1, kDm2 = 2, kDm3 = 3, kDm4 = 4 };

/// Table I parameters of one dataset.
struct BenchmarkDatasetSpec {
  std::string name;
  size_t num_records = 0;
  size_t num_entities = 0;
  uint64_t seed = 0;
};

/// The paper's Table I row for `which` (n and #entities match the
/// paper exactly; the distinct-attribute count comes out of the chosen
/// source profiles).
BenchmarkDatasetSpec SpecFor(BenchmarkDataset which);

/// Builds D_m1..D_m4. Deterministic.
Dataset BuildBenchmarkDataset(BenchmarkDataset which);

/// Builds the homogeneous projection: fraction 1/3 for `-S`, 2/3 for
/// `-L` (paper: A/3 and 2A/3 randomly chosen distinct attributes).
ExchangeResult BuildHomogeneousProjection(BenchmarkDataset which, bool small);

/// All four dataset ids, in order.
std::vector<BenchmarkDataset> AllBenchmarkDatasets();

}  // namespace hera

#endif  // HERA_DATA_BENCHMARK_DATASETS_H_
