#include "data/corpus_model.h"

#include "sim/metrics.h"

namespace hera {

std::shared_ptr<const TfIdfModel> BuildTfIdfModel(const Dataset& dataset) {
  auto model = std::make_shared<TfIdfModel>();
  for (const Record& r : dataset.records()) {
    for (const Value& v : r.values()) {
      if (!v.is_null()) model->AddDocument(v.ToString());
    }
  }
  model->Freeze();
  return model;
}

ValueSimilarityPtr MakeSoftTfIdfFor(const Dataset& dataset, double theta) {
  return std::make_shared<SoftTfIdfSimilarity>(BuildTfIdfModel(dataset), theta);
}

}  // namespace hera
