// Corpus-level model builders: the bridge between a Dataset and the
// corpus-dependent similarity metrics (Soft TF-IDF).

#ifndef HERA_DATA_CORPUS_MODEL_H_
#define HERA_DATA_CORPUS_MODEL_H_

#include <memory>

#include "record/dataset.h"
#include "sim/similarity.h"
#include "text/tfidf.h"

namespace hera {

/// Builds a frozen TF-IDF model over every non-null value of the
/// dataset (one value == one document).
std::shared_ptr<const TfIdfModel> BuildTfIdfModel(const Dataset& dataset);

/// Convenience: a Soft TF-IDF metric backed by the dataset's corpus
/// model (paper: "other string similarity functions, such as Soft
/// TF-IDF ... could be served as alternatives").
ValueSimilarityPtr MakeSoftTfIdfFor(const Dataset& dataset, double theta = 0.9);

}  // namespace hera

#endif  // HERA_DATA_CORPUS_MODEL_H_
