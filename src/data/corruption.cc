#include "data/corruption.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/string_util.h"

namespace hera {

namespace {

/// One random character-level edit: substitute, delete, insert, or
/// transpose. No-op on empty strings.
std::string ApplyTypo(std::string s, Rng* rng) {
  if (s.empty()) return s;
  const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz";
  size_t pos = rng->Uniform(s.size());
  switch (rng->Uniform(4)) {
    case 0:  // Substitute.
      s[pos] = kAlpha[rng->Uniform(26)];
      break;
    case 1:  // Delete.
      s.erase(pos, 1);
      break;
    case 2:  // Insert.
      s.insert(pos, 1, kAlpha[rng->Uniform(26)]);
      break;
    case 3:  // Transpose with the next character.
      if (pos + 1 < s.size()) std::swap(s[pos], s[pos + 1]);
      break;
  }
  return s;
}

}  // namespace

std::string CorruptString(const std::string& s, Rng* rng,
                          const CorruptionOptions& opts) {
  std::string out = s;

  if (rng->Bernoulli(opts.abbreviate_prob)) {
    // Abbreviate the first token: "John Smith" -> "J. Smith".
    size_t space = out.find(' ');
    if (space != std::string::npos && space >= 2) {
      out = out.substr(0, 1) + "." + out.substr(space);
    }
  }

  if (rng->Bernoulli(opts.drop_token_prob)) {
    std::vector<std::string> tokens = Split(out, ' ');
    if (tokens.size() >= 3) {
      tokens.erase(tokens.begin() + static_cast<long>(rng->Uniform(tokens.size())));
      out = Join(tokens, " ");
    }
  }

  if (rng->Bernoulli(opts.typo_prob)) {
    size_t edits = 1 + rng->Uniform(2);
    for (size_t i = 0; i < edits; ++i) out = ApplyTypo(std::move(out), rng);
  }

  if (rng->Bernoulli(opts.case_flip_prob)) {
    out = rng->Bernoulli(0.5) ? ToLower(out) : ToUpper(out);
  }

  return out;
}

Value CorruptValue(const Value& v, Rng* rng, const CorruptionOptions& opts) {
  switch (v.type()) {
    case ValueType::kNull:
      return v;
    case ValueType::kString:
      return Value(CorruptString(v.AsString(), rng, opts));
    case ValueType::kNumber: {
      double d = v.AsNumber();
      if (rng->Bernoulli(opts.numeric_jitter_prob)) {
        // +-1 absolute or ~1% relative, whichever is larger.
        double mag = std::max(1.0, std::fabs(d) * 0.01);
        d += (rng->Bernoulli(0.5) ? 1.0 : -1.0) * mag;
        d = std::round(d);
      }
      return Value(d);
    }
  }
  return v;
}

}  // namespace hera
