// Corruption model: the controlled noise injected when one entity is
// rendered into several source records. Emulates the typographical and
// formatting variation of real heterogeneous sources (IMDB vs DBPedia
// in the paper's D_movies): typos, abbreviations, dropped tokens, case
// and punctuation drift, numeric jitter.

#ifndef HERA_DATA_CORRUPTION_H_
#define HERA_DATA_CORRUPTION_H_

#include <string>

#include "common/random.h"
#include "sim/value.h"

namespace hera {

/// Per-operation probabilities. Defaults give "mild" noise: most
/// values survive with >= 0.5 Jaccard similarity to the original.
struct CorruptionOptions {
  double typo_prob = 0.25;        ///< Apply 1-2 character edits.
  double abbreviate_prob = 0.10;  ///< "John Smith" -> "J. Smith".
  double drop_token_prob = 0.08;  ///< Drop one word of a multi-word value.
  double case_flip_prob = 0.15;   ///< Toggle case of the whole value.
  double numeric_jitter_prob = 0.15;  ///< Numbers: +-1 relative ~1%.
};

/// \brief Applies the corruption model to one string.
std::string CorruptString(const std::string& s, Rng* rng,
                          const CorruptionOptions& opts = {});

/// \brief Applies the model to a typed value: strings via
/// CorruptString, numbers via jitter, nulls unchanged.
Value CorruptValue(const Value& v, Rng* rng, const CorruptionOptions& opts = {});

}  // namespace hera

#endif  // HERA_DATA_CORRUPTION_H_
