#include "data/csv.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace hera {

namespace {

/// Hard per-line cap. Legitimate records are far smaller; a line this
/// long means a corrupt or hostile file (e.g. an unterminated quote
/// swallowing the rest of the file into one getline).
constexpr size_t kMaxLineBytes = 4u << 20;  // 4 MiB

}  // namespace

std::string EscapeCsvField(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::vector<std::string> ParseCsvLine(const std::string& line,
                                      bool* unterminated) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  if (unterminated != nullptr) *unterminated = in_quotes;
  return fields;
}

Status WriteDataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "#hera-dataset v1\n";
  for (uint32_t s = 0; s < dataset.schemas().size(); ++s) {
    const Schema& schema = dataset.schemas().Get(s);
    out << "#schema " << s << " " << schema.name() << " ";
    for (size_t i = 0; i < schema.size(); ++i) {
      if (i > 0) out << ",";
      out << EscapeCsvField(schema.attribute(i));
    }
    out << "\n";
  }
  for (const auto& [ref, concept_id] : dataset.canonical_attr()) {
    out << "#concept " << ref.schema_id << " " << ref.attr_index << " "
        << concept_id << "\n";
  }
  if (dataset.has_ground_truth()) out << "#truth 1\n";
  for (const Record& r : dataset.records()) {
    out << r.schema_id() << ",";
    if (dataset.has_ground_truth()) {
      out << dataset.entity_of()[r.id()];
    } else {
      out << "-";
    }
    for (const Value& v : r.values()) {
      out << "," << EscapeCsvField(v.is_null() ? "" : v.ToString());
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<Dataset> ReadDataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  HERA_FAILPOINT("csv.read");
  Dataset ds;
  bool has_truth = false;
  std::string line;
  size_t lineno = 0;
  bool saw_header = false;
  size_t num_records = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.size() > kMaxLineBytes) {
      return Status::InvalidArgument(
          "line " + std::to_string(lineno) + " exceeds " +
          std::to_string(kMaxLineBytes) +
          " bytes (corrupt file or unterminated quote?)");
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (StartsWith(line, "#hera-dataset")) {
        if (saw_header) {
          return Status::InvalidArgument("duplicate #hera-dataset header "
                                         "at line " +
                                         std::to_string(lineno));
        }
        saw_header = true;
      } else if (StartsWith(line, "#schema ")) {
        if (num_records > 0) {
          return Status::InvalidArgument(
              "#schema after data records at line " + std::to_string(lineno));
        }
        std::istringstream ss(line.substr(8));
        uint32_t id;
        std::string name, attrs_csv;
        if (!(ss >> id >> name)) {
          return Status::InvalidArgument("malformed #schema line at line " +
                                         std::to_string(lineno));
        }
        std::getline(ss, attrs_csv);
        attrs_csv = std::string(Trim(attrs_csv));
        bool unterminated = false;
        std::vector<std::string> attrs = ParseCsvLine(attrs_csv, &unterminated);
        if (unterminated) {
          return Status::InvalidArgument(
              "unterminated quote in #schema attributes at line " +
              std::to_string(lineno));
        }
        if (id < ds.schemas().size()) {
          return Status::InvalidArgument("duplicate #schema id " +
                                         std::to_string(id) + " at line " +
                                         std::to_string(lineno));
        }
        uint32_t got = ds.schemas().Register(Schema(name, attrs));
        if (got != id) {
          return Status::InvalidArgument(
              "schema ids must be dense and in order (line " +
              std::to_string(lineno) + ")");
        }
      } else if (StartsWith(line, "#concept ")) {
        std::istringstream ss(line.substr(9));
        uint32_t schema_id, attr_index, concept_id;
        if (!(ss >> schema_id >> attr_index >> concept_id)) {
          return Status::InvalidArgument("bad #concept line at line " +
                                         std::to_string(lineno));
        }
        ds.canonical_attr()[AttrRef{schema_id, attr_index}] = concept_id;
      } else if (StartsWith(line, "#truth")) {
        if (has_truth) {
          return Status::InvalidArgument("duplicate #truth header at line " +
                                         std::to_string(lineno));
        }
        if (num_records > 0) {
          return Status::InvalidArgument(
              "#truth after data records at line " + std::to_string(lineno) +
              " (earlier records have no entity id)");
        }
        has_truth = true;
      }
      continue;
    }
    if (!saw_header) {
      return Status::InvalidArgument("missing #hera-dataset header");
    }
    HERA_FAILPOINT("csv.record");
    bool unterminated = false;
    std::vector<std::string> fields = ParseCsvLine(line, &unterminated);
    if (unterminated) {
      return Status::InvalidArgument("unterminated quote at line " +
                                     std::to_string(lineno));
    }
    if (fields.size() < 2) {
      return Status::InvalidArgument("short record at line " +
                                     std::to_string(lineno));
    }
    uint32_t schema_id = 0;
    auto [p, ec] = std::from_chars(fields[0].data(),
                                   fields[0].data() + fields[0].size(), schema_id);
    if (ec != std::errc() || p != fields[0].data() + fields[0].size()) {
      return Status::InvalidArgument("bad schema id at line " +
                                     std::to_string(lineno));
    }
    if (schema_id >= ds.schemas().size()) {
      return Status::InvalidArgument("unknown schema id at line " +
                                     std::to_string(lineno));
    }
    size_t expect = ds.schemas().Get(schema_id).size();
    if (fields.size() != expect + 2) {
      return Status::InvalidArgument(
          "record arity mismatch at line " + std::to_string(lineno) +
          ": schema " + std::to_string(schema_id) + " expects " +
          std::to_string(expect) + " values, line has " +
          std::to_string(fields.size() - 2));
    }
    std::vector<Value> values;
    values.reserve(expect);
    for (size_t i = 2; i < fields.size(); ++i) {
      // Numeric-looking fields come back as numbers: the file format
      // does not store types, so parsing is the round-trip convention.
      values.push_back(Value::Parse(fields[i], /*sniff_numbers=*/true));
    }
    ds.AddRecord(schema_id, std::move(values));
    ++num_records;
    if (has_truth) {
      uint32_t entity = 0;
      auto [p2, ec2] = std::from_chars(fields[1].data(),
                                       fields[1].data() + fields[1].size(), entity);
      if (ec2 != std::errc() || p2 != fields[1].data() + fields[1].size()) {
        return Status::InvalidArgument("bad entity id at line " +
                                       std::to_string(lineno));
      }
      ds.entity_of().push_back(entity);
    }
  }
  HERA_RETURN_NOT_OK(ds.Validate());
  return ds;
}

}  // namespace hera
