// Reading and writing heterogeneous datasets as a flat text file.
//
// Format (one file per dataset):
//   #hera-dataset v1
//   #schema <id> <name> <attr1>,<attr2>,...
//   #concept <schema_id> <attr_index> <concept_id>   (canonical map, optional)
//   #truth 1            (present iff ground truth is stored)
//   <schema_id>,<entity_id|->,<v1>,<v2>,...
//
// Fields use standard CSV quoting (quotes doubled, fields containing
// comma/quote/newline wrapped in quotes). Empty field == null value.

#ifndef HERA_DATA_CSV_H_
#define HERA_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "record/dataset.h"

namespace hera {

/// Writes `dataset` to `path`. Overwrites.
Status WriteDataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by WriteDataset. Hardened against malformed
/// input: unterminated quotes, ragged rows, out-of-range schema ids,
/// duplicate #truth/#schema headers, and oversized lines all yield a
/// descriptive InvalidArgument carrying the line number — never a
/// crash. Unknown #directives are skipped for forward compatibility.
StatusOr<Dataset> ReadDataset(const std::string& path);

/// Splits one CSV line into unquoted fields. Exposed for tests. If
/// `unterminated` is non-null it reports whether the line ended inside
/// an open quote (the parse is still returned, best-effort).
std::vector<std::string> ParseCsvLine(const std::string& line,
                                      bool* unterminated = nullptr);

/// Quotes a field if needed. Exposed for tests.
std::string EscapeCsvField(const std::string& field);

}  // namespace hera

#endif  // HERA_DATA_CSV_H_
