#include "data/data_exchange.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <set>

#include "common/random.h"

namespace hera {

ExchangeResult ExchangeToTargetSchema(const Dataset& source, double fraction,
                                      uint64_t seed) {
  assert(!source.canonical_attr().empty() &&
         "data exchange needs the canonical attribute map");
  ExchangeResult out;

  // Distinct concepts, and a representative attribute name for each
  // (the first source attribute encountered, for readable schemas).
  std::set<uint32_t> concept_set;
  std::map<uint32_t, std::string> concept_name;
  for (const auto& [ref, concept_id] : source.canonical_attr()) {
    concept_set.insert(concept_id);
    concept_name.emplace(concept_id, source.schemas().AttrName(ref));
  }
  std::vector<uint32_t> concepts(concept_set.begin(), concept_set.end());

  // Random subset of round(fraction * |A|) concepts, anchor always in.
  size_t want = static_cast<size_t>(
      std::lround(fraction * static_cast<double>(concepts.size())));
  want = std::clamp<size_t>(want, 1, concepts.size());
  Rng rng(seed);
  rng.Shuffle(&concepts);
  std::vector<uint32_t> chosen;
  const uint32_t kAnchor = 0;
  bool have_anchor = false;
  for (uint32_t c : concepts) {
    if (chosen.size() == want) break;
    if (c == kAnchor) have_anchor = true;
    chosen.push_back(c);
  }
  if (!have_anchor && concept_set.count(kAnchor)) {
    chosen.back() = kAnchor;  // Swap the anchor in.
  }
  std::sort(chosen.begin(), chosen.end());
  out.target_concepts = chosen;

  // Target schema + tgds.
  std::map<uint32_t, uint32_t> target_pos;  // concept_id -> target attr index
  std::vector<std::string> target_attrs;
  for (uint32_t c : chosen) {
    target_pos[c] = static_cast<uint32_t>(target_attrs.size());
    target_attrs.push_back(concept_name[c]);
  }
  uint32_t target_schema =
      out.dataset.schemas().Register(Schema("target", target_attrs));
  for (uint32_t i = 0; i < chosen.size(); ++i) {
    out.dataset.canonical_attr()[AttrRef{target_schema, i}] = chosen[i];
  }
  for (const auto& [ref, concept_id] : source.canonical_attr()) {
    auto it = target_pos.find(concept_id);
    if (it != target_pos.end()) out.tgds.push_back({ref, it->second});
  }

  // Apply the tgds: one target record per source record.
  // Per-schema copy plan for O(1) per attribute.
  std::map<uint32_t, std::vector<std::pair<uint32_t, uint32_t>>> plan;
  for (const CopyTgd& tgd : out.tgds) {
    plan[tgd.source.schema_id].emplace_back(tgd.source.attr_index,
                                            tgd.target_attr);
  }
  for (const Record& r : source.records()) {
    std::vector<Value> values(target_attrs.size());  // Nulls by default.
    auto it = plan.find(r.schema_id());
    if (it != plan.end()) {
      for (auto [src_attr, dst_attr] : it->second) {
        values[dst_attr] = r.value(src_attr);
      }
    }
    out.dataset.AddRecord(target_schema, std::move(values));
  }
  out.dataset.entity_of() = source.entity_of();
  return out;
}

}  // namespace hera
