// Data exchange: materializes records under a user-defined target
// schema from a heterogeneous dataset, following the paper's
// experimental setup (Section VI-A): the target schema is a randomly
// chosen fraction of the distinct attribute concepts, schema matchings
// are attribute-level tgds (source attribute -> target attribute copy
// rules), and every source record is converted to one target record
// with nulls where its schema lacks a mapped attribute.
//
// This builds the paper's homogeneous `-S` (|A|/3 concepts) and `-L`
// (2|A|/3 concepts) datasets on which the baselines run.

#ifndef HERA_DATA_DATA_EXCHANGE_H_
#define HERA_DATA_DATA_EXCHANGE_H_

#include <cstdint>
#include <vector>

#include "record/dataset.h"

namespace hera {

/// One copy tgd: source attribute -> target attribute position.
struct CopyTgd {
  AttrRef source;
  uint32_t target_attr = 0;
};

/// Output of ExchangeToTargetSchema.
struct ExchangeResult {
  /// Homogeneous dataset: one schema, one record per source record
  /// (same order), ground truth carried over.
  Dataset dataset;
  /// Concept id behind each target attribute.
  std::vector<uint32_t> target_concepts;
  /// The tgds that were applied.
  std::vector<CopyTgd> tgds;
};

/// \brief Projects `source` onto a random target schema containing
/// round(fraction * #distinct concepts) concepts.
///
/// The anchor concept_id 0 (the name/title-like attribute) is always
/// included: a target schema with no identifying attribute makes every
/// downstream ER method degenerate, and the paper's randomly chosen
/// target schemas evidently retained one. Requires a non-empty
/// canonical attribute map. Deterministic given `seed`.
ExchangeResult ExchangeToTargetSchema(const Dataset& source, double fraction,
                                      uint64_t seed);

}  // namespace hera

#endif  // HERA_DATA_DATA_EXCHANGE_H_
