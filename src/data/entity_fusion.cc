#include "data/entity_fusion.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <string>
#include <unordered_map>

namespace hera {

const char* ConflictPolicyToString(ConflictPolicy policy) {
  switch (policy) {
    case ConflictPolicy::kMostFrequent:
      return "most_frequent";
    case ConflictPolicy::kLongest:
      return "longest";
    case ConflictPolicy::kFirst:
      return "first";
  }
  return "?";
}

namespace {

/// Picks one value from the candidates per the policy. `candidates`
/// is in member-record order and non-empty.
Value ResolveConflict(const std::vector<Value>& candidates,
                      ConflictPolicy policy) {
  switch (policy) {
    case ConflictPolicy::kFirst:
      return candidates.front();
    case ConflictPolicy::kLongest: {
      const Value* best = &candidates.front();
      size_t best_len = best->ToString().size();
      for (const Value& v : candidates) {
        size_t len = v.ToString().size();
        if (len > best_len) {
          best = &v;
          best_len = len;
        }
      }
      return *best;
    }
    case ConflictPolicy::kMostFrequent: {
      // O(n^2) exact-equality counting; candidate lists are tiny.
      const Value* best = &candidates.front();
      size_t best_count = 0;
      for (size_t i = 0; i < candidates.size(); ++i) {
        size_t count = 0;
        for (const Value& other : candidates) {
          if (candidates[i] == other) ++count;
        }
        if (count > best_count) {
          best_count = count;
          best = &candidates[i];
        }
      }
      return *best;
    }
  }
  return candidates.front();
}

}  // namespace

std::vector<uint32_t> AllConcepts(const Dataset& source) {
  std::set<uint32_t> concepts;
  for (const auto& [ref, concept_id] : source.canonical_attr()) {
    (void)ref;
    concepts.insert(concept_id);
  }
  return {concepts.begin(), concepts.end()};
}

FusionResult FuseEntities(const Dataset& source,
                          const std::map<uint32_t, SuperRecord>& super_records,
                          const std::vector<uint32_t>& target_concepts,
                          const FusionOptions& options) {
  assert(!source.canonical_attr().empty() &&
         "fusion needs the canonical attribute map");
  FusionResult out;

  // Target schema: one attribute per requested concept, named by a
  // representative source attribute.
  std::map<uint32_t, std::string> concept_name;
  for (const auto& [ref, concept_id] : source.canonical_attr()) {
    concept_name.emplace(concept_id, source.schemas().AttrName(ref));
  }
  std::vector<std::string> attr_names;
  std::map<uint32_t, uint32_t> pos_of_concept;
  for (uint32_t c : target_concepts) {
    auto it = concept_name.find(c);
    assert(it != concept_name.end() && "unknown target concept");
    pos_of_concept[c] = static_cast<uint32_t>(attr_names.size());
    attr_names.push_back(it->second);
  }
  uint32_t target_schema =
      out.dataset.schemas().Register(Schema("fused", attr_names));
  for (uint32_t i = 0; i < target_concepts.size(); ++i) {
    out.dataset.canonical_attr()[AttrRef{target_schema, i}] =
        target_concepts[i];
  }

  const bool has_truth = source.has_ground_truth();
  for (const auto& [rid, sr] : super_records) {
    // Collect value candidates per target position from the member
    // base records (origin attributes give exact concept provenance).
    std::vector<std::vector<Value>> candidates(target_concepts.size());
    std::unordered_map<uint32_t, size_t> truth_votes;
    for (uint32_t member : sr.members()) {
      const Record& r = source.record(member);
      for (uint32_t a = 0; a < r.size(); ++a) {
        if (r.value(a).is_null()) continue;
        auto cit = source.canonical_attr().find(AttrRef{r.schema_id(), a});
        if (cit == source.canonical_attr().end()) continue;
        auto pit = pos_of_concept.find(cit->second);
        if (pit == pos_of_concept.end()) continue;
        candidates[pit->second].push_back(r.value(a));
      }
      if (has_truth) ++truth_votes[source.entity_of()[member]];
    }

    std::vector<Value> values(target_concepts.size());
    for (size_t p = 0; p < candidates.size(); ++p) {
      if (!candidates[p].empty()) {
        values[p] = ResolveConflict(candidates[p], options.policy);
      }
    }
    uint32_t fused_id = out.dataset.AddRecord(target_schema, std::move(values));
    out.fused_of[rid] = fused_id;

    if (has_truth) {
      uint32_t majority = 0;
      size_t best = 0;
      for (const auto& [entity, count] : truth_votes) {
        if (count > best) {
          best = count;
          majority = entity;
        }
      }
      out.dataset.entity_of().push_back(majority);
      if (truth_votes.size() > 1) out.contaminated.push_back(fused_id);
    }
  }
  return out;
}

}  // namespace hera
