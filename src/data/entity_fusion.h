// Entity fusion: the final data-exchange step of the paper's framework
// (Fig 1-(d)). Once HERA has resolved which records describe one
// entity, data exchange can join *records of the same entity* — the
// "ideal exchange" the paper contrasts with key-equality joins — and
// emit one consolidated record per entity under the target schema.
//
// Conflicts (an entity with several distinct values for one concept)
// are resolved by a pluggable policy.

#ifndef HERA_DATA_ENTITY_FUSION_H_
#define HERA_DATA_ENTITY_FUSION_H_

#include <cstdint>
#include <map>
#include <vector>

#include "record/dataset.h"
#include "record/super_record.h"

namespace hera {

/// How conflicting values for one target attribute are resolved.
enum class ConflictPolicy {
  kMostFrequent,  ///< Majority value (exact equality); ties -> first seen.
  kLongest,       ///< Longest rendering (most informative variant).
  kFirst,         ///< First non-null in member-record order.
};

const char* ConflictPolicyToString(ConflictPolicy policy);

/// Options for FuseEntities.
struct FusionOptions {
  ConflictPolicy policy = ConflictPolicy::kMostFrequent;
};

/// Output of FuseEntities.
struct FusionResult {
  /// One record per resolved entity under the target schema, ground
  /// truth carried over when derivable (every member of a fused record
  /// shares one truth entity; mixed clusters get the majority entity).
  Dataset dataset;
  /// Super-record rid -> fused record id.
  std::map<uint32_t, uint32_t> fused_of;
  /// Fused records whose members span >1 ground-truth entity (ER
  /// errors surfacing as fusion conflicts); empty without ground truth.
  std::vector<uint32_t> contaminated;
};

/// \brief Fuses resolved entities into target-schema records.
///
/// `super_records` is HeraResult::super_records (or
/// IncrementalHera::super_records()). `source` must carry the
/// canonical attribute map (it defines which source attributes feed
/// which target attribute). `target_concepts` selects and orders the
/// target schema's attributes; every concept must appear in the
/// canonical map.
FusionResult FuseEntities(const Dataset& source,
                          const std::map<uint32_t, SuperRecord>& super_records,
                          const std::vector<uint32_t>& target_concepts,
                          const FusionOptions& options = {});

/// All distinct concepts of `source`'s canonical map, ascending — the
/// "full schema" default target.
std::vector<uint32_t> AllConcepts(const Dataset& source);

}  // namespace hera

#endif  // HERA_DATA_ENTITY_FUSION_H_
