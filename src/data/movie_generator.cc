#include "data/movie_generator.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdio>

#include "common/string_util.h"

namespace hera {

namespace {

// ---- Word pools -----------------------------------------------------

const char* const kFirstNames[] = {
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Christopher",
    "Lisa", "Daniel", "Nancy", "Matthew", "Betty", "Anthony", "Margaret",
    "Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly", "Paul",
    "Emily", "Andrew", "Donna", "Joshua", "Michelle", "Kenneth", "Carol",
    "Kevin", "Amanda", "Brian", "Dorothy", "George", "Melissa", "Timothy",
    "Deborah", "Ronald", "Stephanie", "Edward", "Rebecca", "Jason", "Sharon",
    "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob", "Kathleen", "Gary", "Amy",
};

const char* const kLastNames[] = {
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
    "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
    "Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
    "Kim", "Cox", "Ward", "Richardson",
};

const char* const kTitleWords[] = {
    "Shadow",   "Empire",  "Return",  "Night",    "Dawn",     "Silent",
    "Crimson",  "Golden",  "Lost",    "Hidden",   "Eternal",  "Broken",
    "Rising",   "Falling", "Last",    "First",    "Dark",     "Bright",
    "Winter",   "Summer",  "Autumn",  "Spring",   "River",    "Mountain",
    "Ocean",    "Desert",  "Forest",  "City",     "Kingdom",  "Republic",
    "Dynasty",  "Legacy",  "Promise", "Secret",   "Mystery",  "Journey",
    "Voyage",   "Quest",   "Escape",  "Pursuit",  "Revenge",  "Redemption",
    "Betrayal", "Honor",   "Glory",   "Destiny",  "Fortune",  "Fate",
    "Storm",    "Thunder", "Lightning", "Rain",   "Snow",     "Fire",
    "Ice",      "Stone",   "Iron",    "Steel",    "Silver",   "Diamond",
    "Crystal",  "Phantom", "Ghost",   "Spirit",   "Soul",     "Heart",
    "Mind",     "Dream",   "Memory",  "Echo",     "Whisper",  "Scream",
    "Song",     "Dance",   "Symphony", "Requiem", "Ballad",   "Anthem",
    "Crown",    "Throne",  "Sword",   "Shield",   "Arrow",    "Blade",
    "Wolf",     "Raven",   "Falcon",  "Tiger",    "Dragon",   "Serpent",
    "Lion",     "Eagle",   "Hawk",    "Fox",      "Bear",     "Panther",
    "Horizon",  "Frontier", "Boundary", "Threshold", "Gateway", "Passage",
    "Labyrinth", "Paradox", "Enigma",  "Cipher",   "Oracle",  "Prophecy",
    "Covenant", "Testament", "Chronicle", "Saga",  "Legend",  "Myth",
    "Twilight", "Midnight", "Daybreak", "Eclipse", "Solstice", "Equinox",
};

const char* const kGenres[] = {
    "Drama", "Comedy", "Action", "Thriller", "Horror", "Romance", "Sci-Fi",
    "Fantasy", "Documentary", "Animation", "Crime", "Western", "Musical",
    "Mystery", "Adventure", "War", "Biography", "History", "Sport", "Noir",
    "Family", "Superhero", "Disaster", "Satire",
};

const char* const kCountries[] = {
    "USA", "UK", "France", "Germany", "Italy", "Spain", "Japan", "China",
    "India", "Brazil", "Canada", "Australia", "Mexico", "Russia", "Sweden",
    "Norway", "Denmark", "Poland", "Netherlands", "South Korea", "Ireland",
    "Argentina", "Chile", "Portugal", "Greece", "Turkey", "Egypt", "Israel",
    "Thailand", "Vietnam", "Indonesia", "Philippines", "New Zealand",
    "South Africa", "Nigeria", "Morocco", "Finland", "Iceland", "Austria",
    "Belgium",
};

const char* const kLanguages[] = {
    "English", "French", "German", "Italian", "Spanish", "Japanese",
    "Mandarin", "Hindi", "Portuguese", "Russian", "Swedish", "Korean",
    "Polish", "Dutch", "Danish", "Norwegian", "Finnish", "Greek", "Turkish",
    "Arabic", "Hebrew", "Thai", "Vietnamese", "Tagalog", "Cantonese",
    "Bengali", "Tamil", "Urdu", "Czech", "Hungarian",
};

const char* const kStudios[] = {
    "Paramount Pictures", "Universal Studios", "Warner Bros", "Columbia",
    "Metro Goldwyn", "United Artists", "Lionsgate Films", "Focus Features",
    "Miramax", "New Line Cinema", "Orion Pictures", "Castle Rock",
    "Summit Entertainment", "Legendary Pictures", "Amblin Entertainment",
    "Working Title", "StudioCanal", "Gaumont", "Toho Studios", "Shaw Brothers",
    "Riverlight Media Group", "Ironwood Productions", "Bluegate Features",
    "Stonebridge Entertainment", "Northbank Cinema", "Redhollow Studios",
    "Silverlake Filmworks", "Eastgate Productions", "Oakfield Pictures",
    "Greymont Media", "Harborview Films", "Westwind Entertainment",
    "Copperfield Studios", "Brightwater Productions", "Thornhill Cinema",
    "Maplewood Features", "Clearbrook Media", "Ashford Filmworks",
    "Pinecrest Entertainment", "Duskmoor Productions", "Larkspur Studios",
    "Wolfram Media Group", "Kestrel Features", "Saltmarsh Cinema",
    "Hollowpine Films", "Briarcliff Entertainment", "Tidewater Studios",
    "Emberlight Productions", "Foxglove Media", "Windmere Features",
    "Cinderpeak Films", "Moonharbor Studios", "Galehurst Productions",
    "Rookwood Entertainment", "Sablegate Media", "Quillshore Features",
    "Vantage Point Cinema", "Drift Canyon Films", "Lanternbay Studios",
    "Corvid Ridge Productions",
};

const char* const kKeywords[] = {
    "love", "war", "betrayal", "family", "revenge", "friendship", "power",
    "justice", "survival", "identity", "loyalty", "sacrifice", "greed",
    "redemption", "freedom", "destiny", "courage", "obsession", "ambition",
    "jealousy", "honor", "madness", "faith", "corruption", "exile",
    "memory", "isolation", "rebellion", "duty", "forgiveness", "truth",
    "deception", "legacy", "innocence", "fate", "pride", "grief", "hope",
    "vengeance", "secrets",
};

template <size_t N>
std::string Pick(Rng* rng, const char* const (&pool)[N]) {
  return pool[rng->Uniform(N)];
}

std::string PersonName(Rng* rng) {
  return Pick(rng, kFirstNames) + " " + Pick(rng, kLastNames);
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

/// One synthesized movie entity: a value per concept_id.
struct MovieEntity {
  std::array<Value, kNumMovieConcepts> concept_value;
};

MovieEntity SynthesizeEntity(Rng* rng) {
  MovieEntity e;
  // Title: 2-4 pool words.
  std::string first_title_word;
  {
    size_t words = 2 + rng->Uniform(3);
    std::string title;
    for (size_t i = 0; i < words; ++i) {
      if (i > 0) title += " ";
      std::string w = Pick(rng, kTitleWords);
      if (i == 0) first_title_word = w;
      title += w;
    }
    e.concept_value[kTitle] = Value(title);
  }
  // The release "year" is rendered as a full ISO date, as DBPedia and
  // most catalogs store it. Bare 4-digit years are pathological for
  // q-gram similarity: any two same-decade years share half their
  // bigrams and would flood the index with spurious pairs.
  int year = 1920 + static_cast<int>(rng->Uniform(104));
  {
    char date[16];
    std::snprintf(date, sizeof(date), "%04d-%02d-%02d", year,
                  static_cast<int>(1 + rng->Uniform(12)),
                  static_cast<int>(1 + rng->Uniform(28)));
    e.concept_value[kYear] = Value(std::string(date));
  }
  // People frequently hold several roles on one film (director who
  // writes or produces, director acting in their own movie). These
  // correlations matter: they create fields of one entity whose values
  // are similar across *different* attributes — the "multiple field"
  // case that exercises HERA's bound divergence, bipartite matching,
  // and schema voting.
  std::string director = PersonName(rng);
  e.concept_value[kDirector] = Value(director);
  {
    size_t n = 2 + rng->Uniform(2);
    std::string cast;
    bool director_acts = rng->Bernoulli(0.4);
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) cast += ", ";
      cast += (i == 0 && director_acts) ? director : PersonName(rng);
    }
    e.concept_value[kCast] = Value(cast);
  }
  {
    // Multi-label genres (2-3), as real catalogs tag them; single
    // labels would make every same-genre record pair a value match.
    std::string genre = Pick(rng, kGenres);
    size_t extra = 1 + rng->Uniform(2);
    for (size_t i = 0; i < extra; ++i) genre += "/" + Pick(rng, kGenres);
    e.concept_value[kGenre] = Value(genre);
  }
  {
    std::string country = Pick(rng, kCountries);
    if (rng->Bernoulli(0.35)) country += " / " + Pick(rng, kCountries);
    e.concept_value[kCountry] = Value(country);
  }
  e.concept_value[kLanguage] = Value(Pick(rng, kLanguages));
  e.concept_value[kRuntime] = Value(static_cast<double>(75 + rng->Uniform(126)));
  e.concept_value[kWriter] =
      Value(rng->Bernoulli(0.35) ? director : PersonName(rng));
  e.concept_value[kStudio] = Value(Pick(rng, kStudios));
  e.concept_value[kRating] =
      Value(FormatDouble(1.0 + rng->UniformDouble() * 8.9, 1));
  e.concept_value[kGross] = Value(
      static_cast<double>((1 + rng->Uniform(9999)) * 100000ull));
  e.concept_value[kBudget] = Value(
      static_cast<double>((1 + rng->Uniform(2999)) * 100000ull));
  e.concept_value[kReviewCount] =
      Value(static_cast<double>(10 + rng->Uniform(4991)));
  {
    std::string kw = Pick(rng, kKeywords);
    kw += " " + Pick(rng, kKeywords);
    if (rng->Bernoulli(0.5)) kw += " " + Pick(rng, kKeywords);
    e.concept_value[kPlotKeywords] = Value(kw);
  }
  {
    // Tagline: 4-6 words of promotional copy; distinctive free text.
    std::string tagline = "the";
    size_t words = 3 + rng->Uniform(3);
    for (size_t i = 0; i < words; ++i) {
      tagline += " ";
      tagline += rng->Bernoulli(0.5) ? Pick(rng, kKeywords)
                                     : ToLower(Pick(rng, kTitleWords));
    }
    e.concept_value[kTagline] = Value(tagline);
  }
  {
    char premiere[16];
    std::snprintf(premiere, sizeof(premiere), "%04d-%02d-%02d", year,
                  static_cast<int>(1 + rng->Uniform(12)),
                  static_cast<int>(1 + rng->Uniform(28)));
    e.concept_value[kReleaseDate] = Value(std::string(premiere));
  }
  e.concept_value[kProducer] =
      Value(rng->Bernoulli(0.25) ? director : PersonName(rng));
  e.concept_value[kComposer] = Value(PersonName(rng));
  e.concept_value[kCinematographer] = Value(PersonName(rng));
  e.concept_value[kEditor] = Value(PersonName(rng));
  // Compact awards notation ("7W-25N"); the verbose "7 wins 25
  // nominations" template makes every awards pair gram-similar.
  e.concept_value[kAwards] =
      Value(std::to_string(rng->Uniform(12)) + "W-" +
            std::to_string(rng->Uniform(30)) + "N");
  // The franchise carries the movie's leading title word ("Shadow
  // Saga" for "Shadow Empire") — partially similar to the title, as
  // franchise names are in reality.
  e.concept_value[kFranchise] =
      Value(first_title_word + std::string(" ") +
            (rng->Bernoulli(0.5) ? "Saga" : "Trilogy"));
  return e;
}

}  // namespace

std::vector<SourceProfile> StandardMovieProfiles() {
  return {
      {"imdb",
       {{"title", kTitle},
        {"year", kYear},
        {"director", kDirector},
        {"cast", kCast},
        {"genre", kGenre},
        {"runtime", kRuntime},
        {"country", kCountry},
        {"rating", kRating},
        {"budget", kBudget},
        {"tagline", kTagline}}},
      {"dbpedia",
       {{"name", kTitle},
        {"releaseYear", kYear},
        {"directedBy", kDirector},
        {"starring", kCast},
        {"category", kGenre},
        {"country", kCountry},
        {"runtime", kRuntime},
        {"language", kLanguage},
        {"writer", kWriter},
        {"studio", kStudio},
        {"producer", kProducer},
        {"composer", kComposer}}},
      {"catalog",
       {{"movie_title", kTitle},
        {"release_year", kYear},
        {"helmer", kDirector},
        {"lead_actors", kCast},
        {"genre_tags", kGenre},
        {"origin_country", kCountry},
        {"distributor", kStudio},
        {"gross", kGross},
        {"awards", kAwards},
        {"editor", kEditor},
        {"release_date", kReleaseDate}}},
      {"reviews",
       {{"film", kTitle},
        {"yr", kYear},
        {"director_name", kDirector},
        {"stars", kCast},
        {"runtime_minutes", kRuntime},
        {"country", kCountry},
        {"score", kRating},
        {"review_count", kReviewCount},
        {"keywords", kPlotKeywords},
        {"cinematographer", kCinematographer},
        {"franchise", kFranchise}}},
  };
}

Dataset GenerateMovieDataset(const MovieGeneratorConfig& config) {
  assert(config.num_entities >= 1);
  assert(config.num_records >= config.num_entities);
  Rng rng(config.seed);
  Dataset ds;

  std::vector<SourceProfile> profiles =
      config.profiles.empty() ? StandardMovieProfiles() : config.profiles;

  // Register schemas and the canonical attribute map.
  std::vector<uint32_t> schema_ids;
  for (const SourceProfile& p : profiles) {
    std::vector<std::string> names;
    names.reserve(p.attrs.size());
    for (const auto& [attr, concept_id] : p.attrs) {
      (void)concept_id;
      names.push_back(attr);
    }
    uint32_t sid = ds.schemas().Register(Schema(p.name, std::move(names)));
    schema_ids.push_back(sid);
    for (uint32_t i = 0; i < p.attrs.size(); ++i) {
      ds.canonical_attr()[AttrRef{sid, i}] = p.attrs[i].second;
    }
  }

  // Synthesize entities.
  std::vector<MovieEntity> entities;
  entities.reserve(config.num_entities);
  for (size_t i = 0; i < config.num_entities; ++i) {
    entities.push_back(SynthesizeEntity(&rng));
  }

  // Assign records to entities: one guaranteed record each, remainder
  // skewed (popular movies appear in more sources).
  std::vector<uint32_t> record_entity;
  record_entity.reserve(config.num_records);
  for (size_t e = 0; e < config.num_entities; ++e) {
    record_entity.push_back(static_cast<uint32_t>(e));
  }
  for (size_t r = config.num_entities; r < config.num_records; ++r) {
    record_entity.push_back(static_cast<uint32_t>(
        rng.Zipf(config.num_entities, config.entity_skew)));
  }
  rng.Shuffle(&record_entity);

  // Emit records through randomly chosen profiles.
  for (uint32_t entity : record_entity) {
    size_t pi = rng.Uniform(profiles.size());
    const SourceProfile& profile = profiles[pi];
    std::vector<Value> values;
    values.reserve(profile.attrs.size());
    for (const auto& [attr, concept_id] : profile.attrs) {
      (void)attr;
      if (rng.Bernoulli(config.null_prob)) {
        values.emplace_back();  // Null.
        continue;
      }
      values.push_back(
          CorruptValue(entities[entity].concept_value[concept_id], &rng,
                       config.corruption));
    }
    ds.AddRecord(schema_ids[pi], std::move(values));
    ds.entity_of().push_back(entity);
  }
  return ds;
}

}  // namespace hera
