// Synthetic heterogeneous movie dataset generator.
//
// Substitute for the paper's D_movies (IMDB ∪ DBPedia profiles, not
// redistributable): movie entities are synthesized from built-in word
// pools and rendered through several *source profiles* — schemas with
// different attribute names and different attribute subsets — with the
// corruption model applied per value. This reproduces the two
// phenomena HERA targets: description difference (records of one
// entity through profiles with small attribute overlap) and
// heterogeneous schema (per-profile attribute renaming). Fully
// deterministic given the seed.

#ifndef HERA_DATA_MOVIE_GENERATOR_H_
#define HERA_DATA_MOVIE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "data/corruption.h"
#include "record/dataset.h"

namespace hera {

/// Canonical movie attribute concepts. Each source profile exposes a
/// subset under its own names; Dataset::canonical_attr records the
/// correspondence (the paper's manually-curated attribute
/// distinctness).
enum MovieConcept : uint32_t {
  kTitle = 0,
  kYear,
  kDirector,
  kCast,
  kGenre,
  kCountry,
  kLanguage,
  kRuntime,
  kWriter,
  kStudio,
  kRating,
  kGross,
  kBudget,
  kReviewCount,
  kPlotKeywords,
  kTagline,
  kReleaseDate,
  kProducer,
  kComposer,
  kCinematographer,
  kEditor,
  kAwards,
  kFranchise,
  kNumMovieConcepts,
};

/// One source schema: (attribute name, concept_id) pairs.
struct SourceProfile {
  std::string name;
  std::vector<std::pair<std::string, uint32_t>> attrs;
};

/// The four built-in profiles (IMDB-like, DBPedia-like, catalog,
/// review site). Callers may trim `attrs` to vary the distinct
/// attribute count per dataset.
std::vector<SourceProfile> StandardMovieProfiles();

/// Generator parameters.
struct MovieGeneratorConfig {
  size_t num_records = 1000;
  size_t num_entities = 121;
  uint64_t seed = 1;
  /// Source profiles to emit through; defaults to all four standard
  /// profiles when empty.
  std::vector<SourceProfile> profiles;
  CorruptionOptions corruption;
  /// Probability that an attribute value is missing in a record.
  double null_prob = 0.08;
  /// Skew of the records-per-entity distribution (Zipf exponent).
  /// Mild by default: heavy skew makes a few huge entities dominate
  /// the index quadratically.
  double entity_skew = 0.3;
};

/// \brief Generates a heterogeneous Dataset with ground truth and the
/// canonical attribute map filled in.
Dataset GenerateMovieDataset(const MovieGeneratorConfig& config);

}  // namespace hera

#endif  // HERA_DATA_MOVIE_GENERATOR_H_
