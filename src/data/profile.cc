#include "data/profile.h"

#include <cstdio>
#include <map>
#include <set>
#include <string>

namespace hera {

DatasetProfile ProfileDataset(const Dataset& dataset) {
  DatasetProfile out;
  // (schema, attr) -> accumulators.
  struct Acc {
    size_t records = 0;
    size_t present = 0;
    size_t numeric = 0;
    size_t length_sum = 0;
    std::set<std::string> distinct;
  };
  std::map<std::pair<uint32_t, uint32_t>, Acc> accs;
  for (uint32_t s = 0; s < dataset.schemas().size(); ++s) {
    for (uint32_t a = 0; a < dataset.schemas().Get(s).size(); ++a) {
      accs[{s, a}];  // Materialize even if no records use the schema.
    }
  }
  for (const Record& r : dataset.records()) {
    for (uint32_t a = 0; a < r.size(); ++a) {
      Acc& acc = accs[{r.schema_id(), a}];
      ++acc.records;
      ++out.total_values;
      const Value& v = r.value(a);
      if (v.is_null()) {
        ++out.total_nulls;
        continue;
      }
      ++acc.present;
      if (v.is_number()) ++acc.numeric;
      std::string rendered = v.ToString();
      acc.length_sum += rendered.size();
      acc.distinct.insert(std::move(rendered));
    }
  }

  for (auto& [key, acc] : accs) {
    AttributeProfile p;
    p.schema_id = key.first;
    p.attr_index = key.second;
    p.attr_name = dataset.schemas().AttrName({key.first, key.second});
    p.num_records = acc.records;
    p.num_present = acc.present;
    p.num_distinct = acc.distinct.size();
    p.num_numeric = acc.numeric;
    p.avg_length = acc.present == 0 ? 0.0
                                    : static_cast<double>(acc.length_sum) /
                                          static_cast<double>(acc.present);
    p.null_rate = acc.records == 0
                      ? 0.0
                      : 1.0 - static_cast<double>(acc.present) /
                                  static_cast<double>(acc.records);
    p.distinct_ratio = acc.present == 0
                           ? 0.0
                           : static_cast<double>(p.num_distinct) /
                                 static_cast<double>(acc.present);
    p.low_cardinality = acc.present >= 20 && p.distinct_ratio < 0.05;
    out.attributes.push_back(std::move(p));
  }
  return out;
}

std::string DatasetProfile::ToString() const {
  std::string out =
      "schema/attribute            present  nulls%  distinct  ratio  avg_len\n";
  char buf[160];
  for (const AttributeProfile& p : attributes) {
    std::snprintf(buf, sizeof(buf), "%2u/%-24s %7zu  %5.1f%%  %8zu  %5.2f  %7.1f%s\n",
                  p.schema_id, p.attr_name.c_str(), p.num_present,
                  100.0 * p.null_rate, p.num_distinct, p.distinct_ratio,
                  p.avg_length, p.low_cardinality ? "  [low-cardinality]" : "");
    out += buf;
  }
  return out;
}

}  // namespace hera
