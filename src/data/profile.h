// Dataset profiling: per-attribute statistics (null rate, distinct
// ratio, value lengths, inferred type) used for threshold selection
// and by `hera_cli stats`. Low-cardinality attributes are flagged —
// they inflate the value-pair index without adding matching evidence.

#ifndef HERA_DATA_PROFILE_H_
#define HERA_DATA_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "record/dataset.h"

namespace hera {

/// Statistics of one attribute of one schema.
struct AttributeProfile {
  uint32_t schema_id = 0;
  uint32_t attr_index = 0;
  std::string attr_name;

  size_t num_records = 0;    ///< Records under this schema.
  size_t num_present = 0;    ///< Non-null values.
  size_t num_distinct = 0;   ///< Distinct non-null values (exact).
  size_t num_numeric = 0;    ///< Values of numeric type.
  double avg_length = 0.0;   ///< Mean rendering length of present values.
  double null_rate = 0.0;    ///< 1 - present/records.
  double distinct_ratio = 0.0;  ///< distinct / present (1 = key-like).

  /// True when the attribute's cardinality is so low that most value
  /// pairs collide (distinct_ratio < 0.05 with >= 20 values) — such
  /// attributes dominate the similarity index without discriminating.
  bool low_cardinality = false;
};

/// Whole-dataset profile.
struct DatasetProfile {
  std::vector<AttributeProfile> attributes;
  size_t total_values = 0;
  size_t total_nulls = 0;

  /// Multi-line table rendering.
  std::string ToString() const;
};

/// Profiles every attribute of every schema.
DatasetProfile ProfileDataset(const Dataset& dataset);

}  // namespace hera

#endif  // HERA_DATA_PROFILE_H_
