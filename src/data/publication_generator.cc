#include "data/publication_generator.h"

#include <array>
#include <cassert>
#include <cstdio>

namespace hera {

namespace {

const char* const kTopicWords[] = {
    "Scalable",      "Efficient",    "Distributed", "Adaptive",   "Robust",
    "Incremental",   "Parallel",     "Approximate", "Declarative", "Streaming",
    "Transactional", "Probabilistic", "Learned",    "Federated",  "Secure",
    "Indexing",      "Querying",     "Sampling",    "Caching",    "Sharding",
    "Partitioning",  "Compression",  "Encryption",  "Replication", "Recovery",
    "Optimization",  "Estimation",   "Resolution",  "Integration", "Cleaning",
    "Discovery",     "Matching",     "Clustering",  "Ranking",    "Profiling",
    "Provenance",    "Versioning",   "Summarization", "Deduplication",
    "Materialization",
};

const char* const kDomainWords[] = {
    "Databases",  "Graphs",      "Streams",    "Workloads",   "Transactions",
    "Joins",      "Indexes",     "Schemas",    "Records",     "Entities",
    "Keys",       "Views",       "Caches",     "Logs",        "Snapshots",
    "Tables",     "Queries",     "Tuples",     "Partitions",  "Clusters",
    "Pipelines",  "Catalogs",    "Workflows",  "Embeddings",  "Sketches",
};

const char* const kAuthorFirst[] = {
    "Wei", "Ming", "Hiroshi", "Anna", "Peter", "Rajeev", "Elena", "Carlos",
    "Ingrid", "Tomas", "Yuki", "Priya", "Lars", "Sofia", "Dmitri", "Chen",
    "Fatima", "Marco", "Nadia", "Oleg", "Aisha", "Bjorn", "Clara", "Diego",
    "Emre", "Freya", "Gustav", "Hana", "Igor", "Jana", "Kenji", "Leila",
    "Mateo", "Nora", "Otto", "Paulo", "Qing", "Rosa", "Stefan", "Tara",
};

const char* const kAuthorLast[] = {
    "Zhang", "Tanaka", "Kowalski", "Fernandez", "Olsen", "Gupta", "Petrov",
    "Silva", "Novak", "Larsson", "Yamamoto", "Patel", "Berg", "Rossi",
    "Ivanov", "Liu", "Haddad", "Bianchi", "Popov", "Khan", "Nilsson",
    "Weber", "Moreau", "Svensson", "Dubois", "Keller", "Costa", "Virtanen",
    "Horvath", "Nagy", "Sato", "Lindgren", "Fischer", "Janssen", "Andersen",
    "Papadopoulos", "Okafor", "Eriksson", "Vasquez", "Mancini",
};

/// (full name, abbreviation) venue pairs — abbreviation is the
/// source-systematic variant.
struct Venue {
  const char* full;
  const char* abbrev;
};
const Venue kVenues[] = {
    {"Proceedings of the VLDB Endowment", "PVLDB"},
    {"International Conference on Management of Data", "SIGMOD"},
    {"International Conference on Data Engineering", "ICDE"},
    {"International Conference on Very Large Data Bases", "VLDB"},
    {"Conference on Innovative Data Systems Research", "CIDR"},
    {"International Conference on Extending Database Technology", "EDBT"},
    {"ACM Transactions on Database Systems", "TODS"},
    {"IEEE Transactions on Knowledge and Data Engineering", "TKDE"},
    {"Journal of Machine Learning Research", "JMLR"},
    {"Symposium on Principles of Database Systems", "PODS"},
    {"Conference on Information and Knowledge Management", "CIKM"},
    {"International World Wide Web Conference", "WWW"},
    {"Knowledge Discovery and Data Mining", "KDD"},
    {"International Semantic Web Conference", "ISWC"},
    {"Symposium on Cloud Computing", "SoCC"},
    {"USENIX Annual Technical Conference", "USENIX ATC"},
};

const char* const kPublishers[] = {
    "ACM Press", "IEEE Computer Society", "Springer", "Elsevier",
    "Morgan Kaufmann", "VLDB Endowment", "USENIX Association",
    "Cambridge University Press", "MIT Press", "Now Publishers",
    "IOS Press", "World Scientific",
};

template <size_t N>
const char* Pick(Rng* rng, const char* const (&pool)[N]) {
  return pool[rng->Uniform(N)];
}

std::string AuthorName(Rng* rng) {
  return std::string(Pick(rng, kAuthorFirst)) + " " + Pick(rng, kAuthorLast);
}

struct PubEntity {
  std::array<Value, kNumPublicationConcepts> concept_value;
  size_t venue_index = 0;
};

PubEntity SynthesizeEntity(Rng* rng) {
  PubEntity e;
  // Title: "Scalable Matching of Streams over Graphs"-style.
  {
    std::string title = Pick(rng, kTopicWords);
    title += " ";
    title += Pick(rng, kTopicWords);
    title += " of ";
    title += Pick(rng, kDomainWords);
    if (rng->Bernoulli(0.5)) {
      title += " over ";
      title += Pick(rng, kDomainWords);
    }
    e.concept_value[kPubTitle] = Value(title);
  }
  {
    size_t n = 2 + rng->Uniform(3);
    std::string authors;
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) authors += ", ";
      authors += AuthorName(rng);
    }
    e.concept_value[kPubAuthors] = Value(authors);
  }
  e.venue_index = rng->Uniform(std::size(kVenues));
  e.concept_value[kPubVenue] = Value(std::string(kVenues[e.venue_index].full));
  int year = 1995 + static_cast<int>(rng->Uniform(30));
  e.concept_value[kPubYear] = Value(static_cast<double>(year));
  {
    int start = 1 + static_cast<int>(rng->Uniform(2000));
    int len = 8 + static_cast<int>(rng->Uniform(18));
    e.concept_value[kPubPages] =
        Value(std::to_string(start) + "--" + std::to_string(start + len));
  }
  e.concept_value[kPubVolume] =
      Value("vol " + std::to_string(1 + rng->Uniform(48)) + " no " +
            std::to_string(1 + rng->Uniform(12)));
  e.concept_value[kPubPublisher] = Value(std::string(Pick(rng, kPublishers)));
  {
    std::string kw;
    for (int i = 0; i < 3; ++i) {
      if (i > 0) kw += " ";
      std::string w = i % 2 ? std::string(Pick(rng, kDomainWords))
                            : std::string(Pick(rng, kTopicWords));
      for (char& c : w) c = static_cast<char>(std::tolower(c));
      kw += w;
    }
    e.concept_value[kPubAbstractKeywords] = Value(kw);
  }
  {
    char doi[40];
    std::snprintf(doi, sizeof(doi), "10.%04u/j%05u.%04u",
                  static_cast<unsigned>(1000 + rng->Uniform(9000)),
                  static_cast<unsigned>(rng->Uniform(100000)),
                  static_cast<unsigned>(rng->Uniform(10000)));
    e.concept_value[kPubDoi] = Value(std::string(doi));
  }
  e.concept_value[kPubCitations] =
      Value(static_cast<double>(rng->Uniform(2500)));
  return e;
}

}  // namespace

std::vector<SourceProfile> StandardPublicationProfiles() {
  return {
      {"dblp",
       {{"title", kPubTitle},
        {"authors", kPubAuthors},
        {"venue", kPubVenue},
        {"year", kPubYear},
        {"pages", kPubPages},
        {"ee", kPubDoi}}},
      {"acm",
       {{"paper_title", kPubTitle},
        {"author_list", kPubAuthors},
        {"published_in", kPubVenue},
        {"yr", kPubYear},
        {"vol_no", kPubVolume},
        {"publisher", kPubPublisher},
        {"doi", kPubDoi}}},
      {"scholar",
       {{"name", kPubTitle},
        {"by", kPubAuthors},
        {"where", kPubVenue},
        {"when", kPubYear},
        {"keywords", kPubAbstractKeywords},
        {"cited_by", kPubCitations}}},
  };
}

Dataset GeneratePublicationDataset(const PublicationGeneratorConfig& config) {
  assert(config.num_entities >= 1);
  assert(config.num_records >= config.num_entities);
  Rng rng(config.seed);
  Dataset ds;

  std::vector<SourceProfile> profiles = config.profiles.empty()
                                            ? StandardPublicationProfiles()
                                            : config.profiles;
  std::vector<uint32_t> schema_ids;
  for (const SourceProfile& p : profiles) {
    std::vector<std::string> names;
    names.reserve(p.attrs.size());
    for (const auto& [attr, concept_id] : p.attrs) {
      (void)concept_id;
      names.push_back(attr);
    }
    uint32_t sid = ds.schemas().Register(Schema(p.name, std::move(names)));
    schema_ids.push_back(sid);
    for (uint32_t i = 0; i < p.attrs.size(); ++i) {
      ds.canonical_attr()[AttrRef{sid, i}] = p.attrs[i].second;
    }
  }

  std::vector<PubEntity> entities;
  entities.reserve(config.num_entities);
  for (size_t i = 0; i < config.num_entities; ++i) {
    entities.push_back(SynthesizeEntity(&rng));
  }

  std::vector<uint32_t> record_entity;
  record_entity.reserve(config.num_records);
  for (size_t e = 0; e < config.num_entities; ++e) {
    record_entity.push_back(static_cast<uint32_t>(e));
  }
  for (size_t r = config.num_entities; r < config.num_records; ++r) {
    record_entity.push_back(static_cast<uint32_t>(
        rng.Zipf(config.num_entities, config.entity_skew)));
  }
  rng.Shuffle(&record_entity);

  for (uint32_t entity : record_entity) {
    size_t pi = rng.Uniform(profiles.size());
    const SourceProfile& profile = profiles[pi];
    std::vector<Value> values;
    values.reserve(profile.attrs.size());
    for (const auto& [attr, concept_id] : profile.attrs) {
      (void)attr;
      if (rng.Bernoulli(config.null_prob)) {
        values.emplace_back();
        continue;
      }
      Value v = entities[entity].concept_value[concept_id];
      // Source-systematic venue abbreviation (not random noise): some
      // sources store "PVLDB", others the full proceedings name.
      if (concept_id == kPubVenue && rng.Bernoulli(config.venue_abbrev_prob)) {
        v = Value(std::string(kVenues[entities[entity].venue_index].abbrev));
      }
      values.push_back(CorruptValue(v, &rng, config.corruption));
    }
    ds.AddRecord(schema_ids[pi], std::move(values));
    ds.entity_of().push_back(entity);
  }
  return ds;
}

}  // namespace hera
