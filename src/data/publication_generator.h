// Synthetic heterogeneous bibliographic dataset generator — a second
// evaluation domain (DBLP/ACM/Scholar-style citation records), the
// classic ER benchmark family. Exercises the same phenomena as the
// movie generator (description difference, heterogeneous schema) with
// different value shapes: long author lists, venue abbreviations,
// page ranges, volume/number fields.

#ifndef HERA_DATA_PUBLICATION_GENERATOR_H_
#define HERA_DATA_PUBLICATION_GENERATOR_H_

#include <cstdint>

#include "data/corruption.h"
#include "data/movie_generator.h"  // SourceProfile.
#include "record/dataset.h"

namespace hera {

/// Canonical publication attribute concepts.
enum PublicationConcept : uint32_t {
  kPubTitle = 0,
  kPubAuthors,
  kPubVenue,
  kPubYear,
  kPubPages,
  kPubVolume,
  kPubPublisher,
  kPubAbstractKeywords,
  kPubDoi,
  kPubCitations,
  kNumPublicationConcepts,
};

/// The built-in source profiles (dblp-like, acm-like, scholar-like).
std::vector<SourceProfile> StandardPublicationProfiles();

/// Generator parameters (mirrors MovieGeneratorConfig).
struct PublicationGeneratorConfig {
  size_t num_records = 600;
  size_t num_entities = 100;
  uint64_t seed = 1;
  std::vector<SourceProfile> profiles;  ///< Defaults to all three.
  CorruptionOptions corruption;
  double null_prob = 0.08;
  double entity_skew = 0.3;
  /// Probability that a profile renders the venue abbreviated
  /// ("PVLDB" vs "Proceedings of the VLDB Endowment") — a
  /// source-systematic variation, not random corruption.
  double venue_abbrev_prob = 0.5;
};

/// Generates a heterogeneous publication Dataset with ground truth and
/// canonical attribute map.
Dataset GeneratePublicationDataset(const PublicationGeneratorConfig& config);

}  // namespace hera

#endif  // HERA_DATA_PUBLICATION_GENERATOR_H_
