#include "eval/cluster_metrics.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

namespace hera {

namespace {

uint64_t Choose2(uint64_t n) { return n * (n - 1) / 2; }

/// Contingency counts between two labelings.
struct Contingency {
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> joint;
  std::unordered_map<uint32_t, uint64_t> pred_sizes;
  std::unordered_map<uint32_t, uint64_t> truth_sizes;
  size_t n = 0;
};

Contingency BuildContingency(const std::vector<uint32_t>& predicted,
                             const std::vector<uint32_t>& truth) {
  assert(predicted.size() == truth.size());
  Contingency c;
  c.n = predicted.size();
  for (size_t i = 0; i < predicted.size(); ++i) {
    ++c.joint[{predicted[i], truth[i]}];
    ++c.pred_sizes[predicted[i]];
    ++c.truth_sizes[truth[i]];
  }
  return c;
}

}  // namespace

double AdjustedRandIndex(const std::vector<uint32_t>& predicted,
                         const std::vector<uint32_t>& truth) {
  Contingency c = BuildContingency(predicted, truth);
  if (c.n < 2) return 1.0;
  double sum_joint = 0.0, sum_pred = 0.0, sum_truth = 0.0;
  for (const auto& [key, count] : c.joint) {
    (void)key;
    sum_joint += static_cast<double>(Choose2(count));
  }
  for (const auto& [label, count] : c.pred_sizes) {
    (void)label;
    sum_pred += static_cast<double>(Choose2(count));
  }
  for (const auto& [label, count] : c.truth_sizes) {
    (void)label;
    sum_truth += static_cast<double>(Choose2(count));
  }
  double total = static_cast<double>(Choose2(c.n));
  double expected = sum_pred * sum_truth / total;
  double max_index = 0.5 * (sum_pred + sum_truth);
  if (max_index == expected) return 1.0;  // Degenerate: single cluster both.
  return (sum_joint - expected) / (max_index - expected);
}

double ClosestClusterF1(const std::vector<uint32_t>& predicted,
                        const std::vector<uint32_t>& truth) {
  Contingency c = BuildContingency(predicted, truth);
  if (c.n == 0) return 1.0;
  // For each truth cluster, find the predicted cluster with the
  // largest overlap and score F1 of that match.
  std::unordered_map<uint32_t, std::pair<uint32_t, uint64_t>> best;  // truth -> (pred, overlap)
  for (const auto& [key, count] : c.joint) {
    auto [pred, tr] = key;
    auto it = best.find(tr);
    if (it == best.end() || count > it->second.second) {
      best[tr] = {pred, count};
    }
  }
  double weighted = 0.0;
  for (const auto& [tr, match] : best) {
    auto [pred, overlap] = match;
    double precision =
        static_cast<double>(overlap) / static_cast<double>(c.pred_sizes[pred]);
    double recall =
        static_cast<double>(overlap) / static_cast<double>(c.truth_sizes[tr]);
    double f1 = precision + recall == 0.0
                    ? 0.0
                    : 2.0 * precision * recall / (precision + recall);
    weighted += f1 * static_cast<double>(c.truth_sizes[tr]);
  }
  return weighted / static_cast<double>(c.n);
}

std::vector<EntityOutcome> PerEntityBreakdown(
    const std::vector<uint32_t>& predicted,
    const std::vector<uint32_t>& truth) {
  Contingency c = BuildContingency(predicted, truth);
  // truth cluster -> (pred cluster -> overlap).
  std::unordered_map<uint32_t, std::unordered_map<uint32_t, uint64_t>> frag;
  for (const auto& [key, count] : c.joint) {
    frag[key.second][key.first] = count;
  }
  std::vector<EntityOutcome> out;
  out.reserve(frag.size());
  for (const auto& [entity, fragments] : frag) {
    EntityOutcome o;
    o.entity = entity;
    o.size = c.truth_sizes[entity];
    o.num_fragments = fragments.size();
    uint32_t biggest_pred = 0;
    uint64_t biggest = 0;
    for (const auto& [pred, count] : fragments) {
      if (count > biggest) {
        biggest = count;
        biggest_pred = pred;
      }
    }
    // Pure iff the predicted cluster holding the largest fragment has
    // no records from other entities.
    o.pure = c.pred_sizes[biggest_pred] == biggest;
    out.push_back(o);
  }
  std::sort(out.begin(), out.end(),
            [](const EntityOutcome& a, const EntityOutcome& b) {
              return a.entity < b.entity;
            });
  return out;
}

BreakdownSummary SummarizeBreakdown(const std::vector<EntityOutcome>& outcomes) {
  BreakdownSummary s;
  for (const EntityOutcome& o : outcomes) {
    if (o.num_fragments == 1 && o.pure) {
      ++s.exact;
    } else if (o.num_fragments > 1) {
      ++s.split;
    } else {
      ++s.contaminated;
    }
  }
  return s;
}

}  // namespace hera
