// Cluster-level evaluation complements the pairwise scores in
// metrics.h: Adjusted Rand Index, closest-cluster F1, cluster-count
// statistics, and a per-entity error breakdown used by the examples to
// explain *which* entities an algorithm splits or over-merges.

#ifndef HERA_EVAL_CLUSTER_METRICS_H_
#define HERA_EVAL_CLUSTER_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hera {

/// Adjusted Rand Index in [-1, 1]; 1 = identical partitions, ~0 =
/// random agreement.
double AdjustedRandIndex(const std::vector<uint32_t>& predicted,
                         const std::vector<uint32_t>& truth);

/// \brief Closest-cluster F1: every truth cluster is matched to the
/// predicted cluster with the largest overlap; per-cluster F1 values
/// are averaged weighted by cluster size.
double ClosestClusterF1(const std::vector<uint32_t>& predicted,
                        const std::vector<uint32_t>& truth);

/// How a single ground-truth entity fared.
struct EntityOutcome {
  uint32_t entity = 0;
  size_t size = 0;            ///< Records of this entity.
  size_t num_fragments = 0;   ///< Predicted clusters it is split over.
  bool pure = false;          ///< Its largest fragment contains no foreign record.
};

/// Per-entity breakdown of a prediction (splits and contaminations).
std::vector<EntityOutcome> PerEntityBreakdown(
    const std::vector<uint32_t>& predicted, const std::vector<uint32_t>& truth);

/// Summary of a breakdown: entities fully recovered as one pure
/// cluster / split into fragments / merged with foreign records.
struct BreakdownSummary {
  size_t exact = 0;        ///< One fragment, pure.
  size_t split = 0;        ///< More than one fragment.
  size_t contaminated = 0; ///< Largest fragment impure.
};
BreakdownSummary SummarizeBreakdown(const std::vector<EntityOutcome>& outcomes);

}  // namespace hera

#endif  // HERA_EVAL_CLUSTER_METRICS_H_
