#include "eval/metrics.h"

#include <cassert>
#include <unordered_map>

namespace hera {

namespace {

uint64_t PairsOf(uint64_t n) { return n * (n - 1) / 2; }

}  // namespace

uint64_t CountIntraPairs(const std::vector<uint32_t>& labels) {
  std::unordered_map<uint32_t, uint64_t> sizes;
  for (uint32_t l : labels) ++sizes[l];
  uint64_t pairs = 0;
  for (const auto& [label, count] : sizes) {
    (void)label;
    pairs += PairsOf(count);
  }
  return pairs;
}

PairMetrics EvaluatePairs(const std::vector<uint32_t>& predicted,
                          const std::vector<uint32_t>& truth) {
  assert(predicted.size() == truth.size());
  PairMetrics m;
  m.predicted_pairs = CountIntraPairs(predicted);
  m.truth_pairs = CountIntraPairs(truth);

  // TP: group by the (predicted, truth) label pair.
  std::unordered_map<uint64_t, uint64_t> joint;
  for (size_t i = 0; i < predicted.size(); ++i) {
    uint64_t key = (static_cast<uint64_t>(predicted[i]) << 32) | truth[i];
    ++joint[key];
  }
  for (const auto& [key, count] : joint) {
    (void)key;
    m.true_positives += PairsOf(count);
  }

  m.precision = m.predicted_pairs == 0
                    ? 1.0
                    : static_cast<double>(m.true_positives) /
                          static_cast<double>(m.predicted_pairs);
  m.recall = m.truth_pairs == 0 ? 1.0
                                : static_cast<double>(m.true_positives) /
                                      static_cast<double>(m.truth_pairs);
  m.f1 = (m.precision + m.recall) == 0.0
             ? 0.0
             : 2.0 * m.precision * m.recall / (m.precision + m.recall);
  return m;
}

}  // namespace hera
