// Pairwise evaluation of ER output against ground truth (the paper's
// Measure paragraph): precision = correct predicted pairs / predicted
// pairs, recall = correct predicted pairs / ground-truth pairs,
// F1 = harmonic mean.

#ifndef HERA_EVAL_METRICS_H_
#define HERA_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hera {

/// Pairwise confusion counts and derived scores.
struct PairMetrics {
  uint64_t true_positives = 0;   ///< Pairs together in both clusterings.
  uint64_t predicted_pairs = 0;  ///< Pairs together in the prediction.
  uint64_t truth_pairs = 0;      ///< Pairs together in the ground truth.

  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// \brief Scores a predicted clustering against ground truth.
///
/// Both vectors assign a cluster label to each record (same length);
/// label values are arbitrary. Counting is O(n) over label groups, not
/// O(n^2) over pairs.
PairMetrics EvaluatePairs(const std::vector<uint32_t>& predicted,
                          const std::vector<uint32_t>& truth);

/// Number of unordered intra-cluster pairs induced by a labeling.
uint64_t CountIntraPairs(const std::vector<uint32_t>& labels);

}  // namespace hera

#endif  // HERA_EVAL_METRICS_H_
