#include "index/bounds.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

namespace hera {

BoundResult ComputeBounds(const std::vector<IndexedPair>& pairs,
                          size_t num_fields_i, size_t num_fields_j,
                          bool tight) {
  BoundResult result;
  if (pairs.empty()) return result;
  const double denom =
      static_cast<double>(std::min(num_fields_i, num_fields_j));
  assert(denom > 0.0);

  // ---- Step 1: refined field set V' — max-sim value pair per field
  // pair. Input is sorted by descending sim, so the first pair seen for
  // a (fid_a, fid_b) combination is the maximum.
  std::unordered_set<uint64_t> seen_field_pair;
  seen_field_pair.reserve(pairs.size());
  for (const IndexedPair& p : pairs) {
    uint64_t fkey = (static_cast<uint64_t>(p.a.fid) << 32) | p.b.fid;
    if (seen_field_pair.insert(fkey).second) result.refined.push_back(p);
  }

  // ---- Step 2: upper bound — Algorithm 1 keeps, for each field of
  // the left record, the covering pair of maximum similarity (flagU is
  // keyed on (rid1, fid1)); the matching assigns each left field at
  // most one pair of at most that similarity, so the sum bounds the
  // optimum. First occurrence per fid is the max (descending sort).
  // In tight mode the same sum over the right side also bounds the
  // optimum and the smaller of the two is used.
  double up_left = 0.0, up_right = 0.0;
  std::unordered_set<uint32_t> seen_left, seen_right;
  std::unordered_map<uint32_t, int> cover_left, cover_right;
  for (const IndexedPair& p : result.refined) {
    if (seen_left.insert(p.a.fid).second) up_left += p.sim;
    if (seen_right.insert(p.b.fid).second) up_right += p.sim;
    ++cover_left[p.a.fid];
    ++cover_right[p.b.fid];
  }
  result.upper = (tight ? std::min(up_left, up_right) : up_left) / denom;

  // ---- Step 3: lower bound — greedy one-to-one matching in
  // descending similarity (always an achievable matching).
  double greedy = 0.0;
  std::unordered_set<uint32_t> used_left, used_right;
  for (const IndexedPair& p : result.refined) {
    if (used_left.count(p.a.fid) || used_right.count(p.b.fid)) continue;
    used_left.insert(p.a.fid);
    used_right.insert(p.b.fid);
    greedy += p.sim;
  }
  result.lower = greedy / denom;

  // ---- Exactness: no multiple field on either side.
  result.exact = true;
  for (const auto& [fid, cnt] : cover_left) {
    (void)fid;
    if (cnt > 1) {
      result.exact = false;
      break;
    }
  }
  if (result.exact) {
    for (const auto& [fid, cnt] : cover_right) {
      (void)fid;
      if (cnt > 1) {
        result.exact = false;
        break;
      }
    }
  }
  // With no multiple field, V' is one-to-one, so greedy == upper.
  assert(!result.exact || result.upper == result.lower);
  return result;
}

}  // namespace hera
