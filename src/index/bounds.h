// Record-similarity bounds for candidate generation (Algorithm 1,
// Equations 3–4, Fig 5).
//
// Given the index pairs of a record pair (R_i, R_j):
//   1. Refined field set V'_ij — per field pair, keep the value pair
//      with maximum similarity (== the field similarity, Definition 3).
//   2. Upper bound: for each field of R_i, the max-similarity pair
//      covering it (Algorithm 1 keys flagU on (rid1, fid1)); the true
//      matching assigns each field at most one pair of at most that
//      similarity. We additionally take the same sum over R_j's fields
//      and use the smaller — still a valid upper bound, strictly
//      tighter.
//   3. Lower bound: weight of the greedy one-to-one matching over V'
//      in descending similarity. (Deviation from the paper's literal
//      "min-similarity pair per multiple field" construction, which is
//      not a valid lower bound when several multiple fields share a
//      partner; the greedy matching is always achievable, so
//      Low <= Sim <= Up holds unconditionally.)
//
// When no field is covered by more than one pair in V' (no "multiple
// field"), V' is itself the optimal matching and Up == Low == Sim: the
// pair can be resolved without running Kuhn–Munkres.

#ifndef HERA_INDEX_BOUNDS_H_
#define HERA_INDEX_BOUNDS_H_

#include <vector>

#include "index/value_pair_index.h"

namespace hera {

/// Output of ComputeBounds.
struct BoundResult {
  double upper = 0.0;
  double lower = 0.0;
  /// V'_ij: one entry per similar field pair, carrying the field
  /// similarity; input order (descending similarity) is preserved.
  std::vector<IndexedPair> refined;
  /// True when no multiple field exists: upper == lower == Sim(R_i,R_j)
  /// and the matching is exactly `refined`.
  bool exact = false;
};

/// \brief Computes Up/Low (Eq. 3–4) from the index pairs of one record
/// pair.
///
/// `pairs` must all belong to the same (rid1, rid2) group, sorted by
/// descending similarity (as returned by ValuePairIndex::PairsFor).
/// `num_fields_i` / `num_fields_j` are |R_i| and |R_j| — the field
/// counts of the two super records (the min normalizes the bounds).
///
/// `tight` selects the upper bound: false (default) reproduces
/// Algorithm 1 exactly — the sum of per-field maxima over the *left*
/// record only (flagU is keyed on (rid1, fid1)); true additionally
/// bounds by the right side's sum and takes the smaller, a strictly
/// tighter and still sound bound that resolves more pairs without
/// verification (ablation: HeraOptions::tight_bounds).
BoundResult ComputeBounds(const std::vector<IndexedPair>& pairs,
                          size_t num_fields_i, size_t num_fields_j,
                          bool tight = false);

}  // namespace hera

#endif  // HERA_INDEX_BOUNDS_H_
