#include "index/flat_table.h"

#include <algorithm>
#include <utility>

namespace hera {

namespace {

constexpr size_t kMinCapacity = 16;

/// Max load factor 3/4: grow when size * 4 > capacity * 3.
bool OverLoaded(size_t size, size_t capacity) {
  return size * 4 > capacity * 3;
}

size_t NextPow2(size_t n) {
  size_t p = kMinCapacity;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* IndexBackendToString(IndexBackend backend) {
  switch (backend) {
    case IndexBackend::kOrdered:
      return "ordered";
    case IndexBackend::kFlat:
      return "flat";
  }
  return "ordered";
}

bool IndexBackendFromString(const std::string& name, IndexBackend* out) {
  if (name == "ordered") {
    *out = IndexBackend::kOrdered;
    return true;
  }
  if (name == "flat") {
    *out = IndexBackend::kFlat;
    return true;
  }
  return false;
}

FlatTable::FlatTable(size_t capacity_hint, size_t pipeline_depth)
    : depth_(std::min(std::max<size_t>(pipeline_depth, 1), kMaxPipelineDepth)) {
  if (capacity_hint > 0) Reserve(capacity_hint);
}

size_t FlatTable::ProbeFrom(Key key, size_t bucket) const {
  size_t b = bucket;
  while (keys_[b] != kEmptyKey && keys_[b] != key) {
    b = (b + 1) & mask_;
  }
  return b;
}

FlatTable::Value* FlatTable::Find(Key key) {
  assert(key != kEmptyKey);
  if (keys_.empty()) return nullptr;
  size_t b = ProbeFrom(key, Bucket(key));
  return keys_[b] == key ? &vals_[b] : nullptr;
}

const FlatTable::Value* FlatTable::Find(Key key) const {
  assert(key != kEmptyKey);
  if (keys_.empty()) return nullptr;
  size_t b = ProbeFrom(key, Bucket(key));
  return keys_[b] == key ? &vals_[b] : nullptr;
}

FlatTable::Value* FlatTable::FindOrInsert(Key key, Value init) {
  assert(key != kEmptyKey);
  EnsureSpace();
  size_t b = ProbeFrom(key, Bucket(key));
  if (keys_[b] != key) {
    keys_[b] = key;
    vals_[b] = init;
    ++size_;
  }
  return &vals_[b];
}

bool FlatTable::Erase(Key key) {
  assert(key != kEmptyKey);
  if (keys_.empty()) return false;
  size_t b = ProbeFrom(key, Bucket(key));
  if (keys_[b] != key) return false;
  // Backward-shift deletion: close the hole by sliding every cluster
  // element whose home bucket lies at or before the hole, so no
  // tombstone is ever needed and probe chains stay minimal.
  size_t hole = b;
  size_t i = (hole + 1) & mask_;
  while (keys_[i] != kEmptyKey) {
    const size_t home = Bucket(keys_[i]);
    if (((i - home) & mask_) >= ((i - hole) & mask_)) {
      keys_[hole] = keys_[i];
      vals_[hole] = vals_[i];
      hole = i;
    }
    i = (i + 1) & mask_;
  }
  keys_[hole] = kEmptyKey;
  --size_;
  return true;
}

void FlatTable::Clear() {
  std::fill(keys_.begin(), keys_.end(), kEmptyKey);
  size_ = 0;
}

void FlatTable::Reserve(size_t n) {
  // Smallest power-of-two capacity holding n entries under max load.
  size_t need = kMinCapacity;
  while (OverLoaded(n, need)) need <<= 1;
  if (need > keys_.size()) Rehash(NextPow2(need));
}

void FlatTable::Rehash(size_t new_capacity) {
  assert((new_capacity & (new_capacity - 1)) == 0);
  std::vector<Key> old_keys = std::move(keys_);
  std::vector<Value> old_vals = std::move(vals_);
  keys_.assign(new_capacity, kEmptyKey);
  vals_.assign(new_capacity, 0);
  mask_ = new_capacity - 1;
  if (!old_keys.empty()) ++rehashes_;
  for (size_t b = 0; b < old_keys.size(); ++b) {
    if (old_keys[b] == kEmptyKey) continue;
    size_t nb = ProbeFrom(old_keys[b], Bucket(old_keys[b]));
    keys_[nb] = old_keys[b];
    vals_[nb] = old_vals[b];
  }
}

void FlatTable::EnsureSpace() {
  if (keys_.empty()) {
    Rehash(kMinCapacity);
  } else if (OverLoaded(size_ + 1, keys_.size())) {
    Rehash(keys_.size() * 2);
  }
}

void FlatTable::FindBatch(std::span<const Key> keys, std::span<Value*> out) {
  assert(keys.size() == out.size());
  batched_probes_.Inc(keys.size());
  if (keys_.empty()) {
    std::fill(out.begin(), out.end(), nullptr);
    return;
  }
  const size_t n = keys.size();
  const size_t depth = std::min(depth_, n);
  size_t start[kMaxPipelineDepth];
  size_t issued = 0;
  for (; issued < depth; ++issued) {
    const size_t b = Bucket(keys[issued]);
    start[issued % depth] = b;
    HERA_PREFETCH_READ(&keys_[b]);
    HERA_PREFETCH_READ(&vals_[b]);
  }
  for (size_t done = 0; done < n; ++done) {
    // Complete probe `done` (its line was prefetched `depth` steps
    // ago), then refill the pipeline slot it vacated.
    const size_t b = ProbeFrom(keys[done], start[done % depth]);
    out[done] = keys_[b] == keys[done] ? &vals_[b] : nullptr;
    if (issued < n) {
      const size_t nb = Bucket(keys[issued]);
      start[issued % depth] = nb;
      HERA_PREFETCH_READ(&keys_[nb]);
      HERA_PREFETCH_READ(&vals_[nb]);
      ++issued;
    }
  }
}

void FlatTable::FindBatch(std::span<const Key> keys,
                          std::span<const Value*> out) const {
  assert(keys.size() == out.size());
  batched_probes_.Inc(keys.size());
  if (keys_.empty()) {
    std::fill(out.begin(), out.end(), nullptr);
    return;
  }
  const size_t n = keys.size();
  const size_t depth = std::min(depth_, n);
  size_t start[kMaxPipelineDepth];
  size_t issued = 0;
  for (; issued < depth; ++issued) {
    const size_t b = Bucket(keys[issued]);
    start[issued % depth] = b;
    HERA_PREFETCH_READ(&keys_[b]);
    HERA_PREFETCH_READ(&vals_[b]);
  }
  for (size_t done = 0; done < n; ++done) {
    const size_t b = ProbeFrom(keys[done], start[done % depth]);
    out[done] = keys_[b] == keys[done] ? &vals_[b] : nullptr;
    if (issued < n) {
      const size_t nb = Bucket(keys[issued]);
      start[issued % depth] = nb;
      HERA_PREFETCH_READ(&keys_[nb]);
      HERA_PREFETCH_READ(&vals_[nb]);
      ++issued;
    }
  }
}

void FlatTable::FindOrInsertBatch(std::span<const Key> keys, Value init,
                                  std::span<Value*> out) {
  assert(keys.size() == out.size());
  batched_probes_.Inc(keys.size());
  // Worst case every key is new: reserving up front means no rehash
  // mid-batch, so earlier out pointers survive later inserts.
  Reserve(size_ + keys.size());
  const size_t n = keys.size();
  const size_t depth = std::min(depth_, n);
  size_t start[kMaxPipelineDepth];
  size_t issued = 0;
  for (; issued < depth; ++issued) {
    const size_t b = Bucket(keys[issued]);
    start[issued % depth] = b;
    HERA_PREFETCH_WRITE(&keys_[b]);
    HERA_PREFETCH_WRITE(&vals_[b]);
  }
  for (size_t done = 0; done < n; ++done) {
    const Key key = keys[done];
    assert(key != kEmptyKey);
    const size_t b = ProbeFrom(key, start[done % depth]);
    if (keys_[b] != key) {
      keys_[b] = key;
      vals_[b] = init;
      ++size_;
    }
    out[done] = &vals_[b];
    if (issued < n) {
      const size_t nb = Bucket(keys[issued]);
      start[issued % depth] = nb;
      HERA_PREFETCH_WRITE(&keys_[nb]);
      HERA_PREFETCH_WRITE(&vals_[nb]);
      ++issued;
    }
  }
}

}  // namespace hera
