// Flat open-addressing hash table with a batched, software-prefetch
// pipelined probe API (the DRAMHiT recipe): power-of-two capacity,
// linear probing, tombstone-free backward-shift deletion, uint64 keys
// and values. The batched entry points issue a small ring of in-flight
// probes and prefetch each probe's bucket line `pipeline_depth` steps
// before it is walked, hiding DRAM latency behind useful work — which
// is what makes candidate generation (a pure probe storm) run at
// memory bandwidth instead of memory latency.
//
// The table is a *backend*, selected by HeraOptions::index_backend:
// everything stored through it (gram ids, posting slots, pid slots) is
// exact, so switching backends changes probe cost only — never which
// pairs a join emits or which merges the engine applies.

#ifndef HERA_INDEX_FLAT_TABLE_H_
#define HERA_INDEX_FLAT_TABLE_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

// Software prefetch, compiled out under -DHERA_NO_PREFETCH (or on
// compilers without __builtin_prefetch). The batched API stays correct
// either way — prefetch is a hint, never a semantic.
#if !defined(HERA_NO_PREFETCH) && (defined(__GNUC__) || defined(__clang__))
#define HERA_PREFETCH_READ(addr) __builtin_prefetch((addr), 0, 1)
#define HERA_PREFETCH_WRITE(addr) __builtin_prefetch((addr), 1, 1)
#else
#define HERA_PREFETCH_READ(addr) ((void)sizeof(addr))
#define HERA_PREFETCH_WRITE(addr) ((void)sizeof(addr))
#endif

namespace hera {

/// Hash-structure backend for candidate generation and index-side pid
/// lookups: the ordered/node-based containers the paper's pseudocode
/// implies, or the flat batched table. A speed knob only — labels and
/// merge_sequence are byte-identical under either (see
/// docs/performance.md).
enum class IndexBackend {
  kOrdered = 0,  ///< std::map / std::unordered_map (the original path).
  kFlat = 1,     ///< FlatTable with prefetch-pipelined batch probes.
};

/// Stable name for a backend ("ordered" / "flat").
const char* IndexBackendToString(IndexBackend backend);

/// Inverse of IndexBackendToString. Returns false (and leaves `out`
/// untouched) on an unrecognized name.
bool IndexBackendFromString(const std::string& name, IndexBackend* out);

/// \brief Open-addressing uint64 -> uint64 hash table with batched,
/// prefetch-pipelined lookups.
///
/// Not thread-safe for mutation. Concurrent const probes (Find /
/// const FindBatch) are safe against each other; the batched-probe
/// counter is a relaxed atomic for exactly that case.
class FlatTable {
 public:
  using Key = uint64_t;
  using Value = uint64_t;

  /// Reserved empty-bucket marker; never insertable as a key.
  static constexpr Key kEmptyKey = ~0ull;
  /// In-flight probes per batch unless configured otherwise. Deep
  /// enough to cover DRAM latency at one cache-line walk per probe.
  static constexpr size_t kDefaultPipelineDepth = 8;
  /// Ring-buffer bound on the pipeline depth.
  static constexpr size_t kMaxPipelineDepth = 64;

  explicit FlatTable(size_t capacity_hint = 0,
                     size_t pipeline_depth = kDefaultPipelineDepth);

  FlatTable(FlatTable&&) noexcept = default;
  FlatTable& operator=(FlatTable&&) noexcept = default;

  /// Pointer to the value stored under `key`, or nullptr. Valid until
  /// the next rehashing mutation (FindOrInsert / Reserve / Erase).
  Value* Find(Key key);
  const Value* Find(Key key) const;

  /// Pointer to the value under `key`, inserting `init` first if the
  /// key is absent. May rehash (invalidating previous pointers).
  Value* FindOrInsert(Key key, Value init);

  /// Removes `key` via backward-shift deletion (the table never holds
  /// tombstones, so probe distances cannot rot over a delete-heavy
  /// workload). Returns false if the key was absent.
  bool Erase(Key key);

  /// Drops every entry, keeping the allocated capacity.
  void Clear();

  /// Grows capacity so `n` entries fit without rehashing.
  void Reserve(size_t n);

  /// Batched lookup: out[i] points at the value of keys[i] (nullptr if
  /// absent). Probes run through the prefetch pipeline — bucket lines
  /// are prefetched `pipeline_depth` probes ahead of their walk.
  /// keys.size() must equal out.size().
  void FindBatch(std::span<const Key> keys, std::span<Value*> out);
  void FindBatch(std::span<const Key> keys, std::span<const Value*> out) const;

  /// Batched find-or-insert through the same pipeline. Capacity for
  /// the worst case (every key new) is reserved up front, so the out
  /// pointers stay valid for the whole batch even as it inserts.
  /// Duplicate keys within one batch resolve to one slot, first
  /// occurrence inserting — encounter order, exactly like a scalar
  /// loop.
  void FindOrInsertBatch(std::span<const Key> keys, Value init,
                         std::span<Value*> out);

  /// Visits every (key, value) entry in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t b = 0; b < keys_.size(); ++b) {
      if (keys_[b] != kEmptyKey) fn(keys_[b], vals_[b]);
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return keys_.size(); }
  size_t pipeline_depth() const { return depth_; }

  /// Keys probed through the batched entry points (obs counter feed).
  uint64_t batched_probes() const {
    return batched_probes_.load(std::memory_order_relaxed);
  }
  /// Capacity doublings since construction.
  uint64_t rehashes() const { return rehashes_; }

 private:
  /// splitmix64 finalizer: full-avalanche mix so dense ids and packed
  /// grams spread over the power-of-two bucket space.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  size_t Bucket(Key key) const { return Mix(key) & mask_; }

  /// Linear probe starting at `bucket`; returns the key's slot or the
  /// first empty slot (insertion point).
  size_t ProbeFrom(Key key, size_t bucket) const;

  /// Grows to `new_capacity` buckets (a power of two) and reinserts.
  void Rehash(size_t new_capacity);
  /// Ensures one more insert stays under the max load factor.
  void EnsureSpace();

  // Movable relaxed counter so the defaulted moves stay available; the
  // atomic exists only because concurrent const FindBatch calls (join
  // workers probing a frozen posting table) both bump it.
  struct RelaxedCounter {
    RelaxedCounter() = default;
    RelaxedCounter(RelaxedCounter&& o) noexcept
        : v(o.v.load(std::memory_order_relaxed)) {}
    RelaxedCounter& operator=(RelaxedCounter&& o) noexcept {
      v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
    void Inc(uint64_t d) const { v.fetch_add(d, std::memory_order_relaxed); }
    uint64_t load(std::memory_order order) const { return v.load(order); }
    mutable std::atomic<uint64_t> v{0};
  };

  std::vector<Key> keys_;
  std::vector<Value> vals_;
  size_t mask_ = 0;  // capacity() - 1 when allocated.
  size_t size_ = 0;
  size_t depth_ = kDefaultPipelineDepth;
  RelaxedCounter batched_probes_;
  uint64_t rehashes_ = 0;
};

}  // namespace hera

#endif  // HERA_INDEX_FLAT_TABLE_H_
