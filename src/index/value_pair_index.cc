#include "index/value_pair_index.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace hera {

void ValuePairIndex::SetBackend(IndexBackend backend, size_t pipeline_depth) {
  assert(pairs_.empty() && "SetBackend must run before any pairs are added");
  backend_ = backend;
  by_pid_flat_ = FlatTable(0, pipeline_depth);
  key_slab_.clear();
  free_slots_.clear();
}

void ValuePairIndex::Build(const std::vector<ValuePair>& pairs) {
  pairs_.clear();
  by_pid_.clear();
  by_pid_flat_.Clear();
  key_slab_.clear();
  free_slots_.clear();
  touching_.clear();
  next_pid_ = 0;
  shed_pairs_ = 0;
  shed_posting_entries_ = 0;
  AddPairs(pairs);
}

void ValuePairIndex::AddPairs(const std::vector<ValuePair>& pairs) {
  for (const ValuePair& p : pairs) {
    ValueLabel a = p.a, b = p.b;
    assert(a.rid != b.rid);
    if (a.rid > b.rid) std::swap(a, b);
    if (max_pairs_ > 0 && pairs_.size() >= max_pairs_) {
      ++shed_pairs_;
      continue;
    }
    if (max_per_record_ > 0) {
      auto over = [&](uint32_t rid) {
        auto it = touching_.find(rid);
        return it != touching_.end() && it->second.size() >= max_per_record_;
      };
      if (over(a.rid) || over(b.rid)) {
        ++shed_posting_entries_;
        continue;
      }
    }
    Insert(next_pid_++, a, b, p.sim);
  }
}

void ValuePairIndex::Insert(uint64_t pid, ValueLabel a, ValueLabel b, double sim) {
  Key key{a.rid, b.rid, -sim, pid};
  pairs_.emplace(key, Entry{a, b, sim});
  if (backend_ == IndexBackend::kFlat) {
    uint64_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      key_slab_[slot] = key;
    } else {
      slot = key_slab_.size();
      key_slab_.push_back(key);
    }
    *by_pid_flat_.FindOrInsert(pid, slot) = slot;
  } else {
    by_pid_.emplace(pid, key);
  }
  touching_[a.rid].insert(pid);
  touching_[b.rid].insert(pid);
}

void ValuePairIndex::Erase(uint64_t pid) {
  Key key = KeyOf(pid);
  auto pit = pairs_.find(key);
  assert(pit != pairs_.end());
  touching_[pit->second.a.rid].erase(pid);
  touching_[pit->second.b.rid].erase(pid);
  pairs_.erase(pit);
  if (backend_ == IndexBackend::kFlat) {
    const uint64_t* slot = by_pid_flat_.Find(pid);
    assert(slot != nullptr);
    free_slots_.push_back(*slot);
    by_pid_flat_.Erase(pid);
  } else {
    by_pid_.erase(pid);
  }
}

ValuePairIndex::Key ValuePairIndex::KeyOf(uint64_t pid) const {
  if (backend_ == IndexBackend::kFlat) {
    const uint64_t* slot = by_pid_flat_.Find(pid);
    assert(slot != nullptr);
    return key_slab_[*slot];
  }
  return by_pid_.at(pid);
}

std::vector<IndexedPair> ValuePairIndex::PairsFor(uint32_t i, uint32_t j) const {
  probe_count_.Inc();
  if (i > j) std::swap(i, j);
  std::vector<IndexedPair> out;
  Key lo{i, j, -2.0, 0};  // Similarities are in [0,1]; -2 precedes all.
  for (auto it = pairs_.lower_bound(lo);
       it != pairs_.end() && it->first.rid1 == i && it->first.rid2 == j; ++it) {
    out.push_back({it->first.pid, it->second.a, it->second.b, it->second.sim});
  }
  return out;
}

void ValuePairIndex::PairsForBatch(
    const std::vector<std::pair<uint32_t, uint32_t>>& groups,
    std::vector<std::vector<IndexedPair>>* out) const {
  probe_count_.Inc(groups.size());
  out->clear();
  out->resize(groups.size());
  for (size_t k = 0; k < groups.size(); ++k) {
    uint32_t i = groups[k].first, j = groups[k].second;
    if (i > j) std::swap(i, j);
    Key lo{i, j, -2.0, 0};
    std::vector<IndexedPair>& dst = (*out)[k];
    for (auto it = pairs_.lower_bound(lo);
         it != pairs_.end() && it->first.rid1 == i && it->first.rid2 == j;
         ++it) {
      dst.push_back({it->first.pid, it->second.a, it->second.b, it->second.sim});
    }
  }
}

void ValuePairIndex::ForEachGroup(
    const std::function<void(uint32_t, uint32_t, const std::vector<IndexedPair>&)>&
        fn) const {
  std::vector<IndexedPair> group;
  uint32_t cur1 = 0, cur2 = 0;
  bool open = false;
  for (const auto& [key, entry] : pairs_) {
    if (!open || key.rid1 != cur1 || key.rid2 != cur2) {
      if (open) fn(cur1, cur2, group);
      group.clear();
      cur1 = key.rid1;
      cur2 = key.rid2;
      open = true;
    }
    group.push_back({key.pid, entry.a, entry.b, entry.sim});
  }
  if (open) fn(cur1, cur2, group);
}

void ValuePairIndex::ApplyMerge(
    uint32_t rid_i, uint32_t rid_j, uint32_t new_rid,
    const std::vector<std::pair<ValueLabel, ValueLabel>>& remap) {
  assert(new_rid == rid_i || new_rid == rid_j);
  std::map<ValueLabel, ValueLabel> relabel(remap.begin(), remap.end());

  // Snapshot affected pids: everything touching either input record.
  std::vector<uint64_t> affected;
  for (uint32_t rid : {rid_i, rid_j}) {
    auto it = touching_.find(rid);
    if (it == touching_.end()) continue;
    affected.insert(affected.end(), it->second.begin(), it->second.end());
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()), affected.end());

  // Snapshot the keys too, before any Erase/Insert mutates the side
  // table: under the flat backend this is one pipelined FindBatch over
  // every affected pid instead of |affected| dependent scalar lookups.
  std::vector<Key> keys(affected.size());
  if (backend_ == IndexBackend::kFlat) {
    std::vector<const uint64_t*> slots(affected.size());
    by_pid_flat_.FindBatch(affected, slots);
    for (size_t k = 0; k < affected.size(); ++k) {
      assert(slots[k] != nullptr);
      keys[k] = key_slab_[*slots[k]];
    }
  } else {
    for (size_t k = 0; k < affected.size(); ++k) {
      keys[k] = by_pid_.at(affected[k]);
    }
  }

  for (size_t k = 0; k < affected.size(); ++k) {
    const uint64_t pid = affected[k];
    Entry entry = pairs_.at(keys[k]);
    auto rewrite = [&](ValueLabel& label) {
      if (label.rid != rid_i && label.rid != rid_j) return;
      auto it = relabel.find(label);
      assert(it != relabel.end() && "merge remap must cover every indexed value");
      label = it->second;
    };
    rewrite(entry.a);
    rewrite(entry.b);
    Erase(pid);
    if (entry.a.rid == entry.b.rid) continue;  // Became intra-record: delete.
    if (entry.a.rid > entry.b.rid) std::swap(entry.a, entry.b);
    Insert(pid, entry.a, entry.b, entry.sim);
  }
  // The absorbed rid no longer owns any pairs.
  touching_.erase(new_rid == rid_i ? rid_j : rid_i);
}

void ValuePairIndex::ForEachPostingLength(
    const std::function<void(uint32_t rid, size_t len)>& fn) const {
  for (const auto& [rid, pids] : touching_) {
    if (!pids.empty()) fn(rid, pids.size());
  }
}

std::vector<IndexedPair> ValuePairIndex::Dump() const {
  std::vector<IndexedPair> out;
  out.reserve(pairs_.size());
  for (const auto& [key, entry] : pairs_) {
    out.push_back({key.pid, entry.a, entry.b, entry.sim});
  }
  return out;
}

void ValuePairIndex::RestoreState(const std::vector<IndexedPair>& pairs,
                                  uint64_t next_pid, size_t shed_pairs,
                                  size_t shed_posting_entries,
                                  uint64_t probe_count) {
  pairs_.clear();
  by_pid_.clear();
  by_pid_flat_.Clear();
  key_slab_.clear();
  free_slots_.clear();
  touching_.clear();
  for (const IndexedPair& p : pairs) {
    assert(p.a.rid < p.b.rid);
    Insert(p.pid, p.a, p.b, p.sim);
  }
  next_pid_ = next_pid;
  shed_pairs_ = shed_pairs;
  shed_posting_entries_ = shed_posting_entries;
  probe_count_.Store(probe_count);
}

bool ValuePairIndex::CheckInvariants() const {
  const size_t side_size = backend_ == IndexBackend::kFlat
                               ? by_pid_flat_.size()
                               : by_pid_.size();
  if (side_size != pairs_.size()) return false;
  if (backend_ == IndexBackend::kFlat) {
    // Every live slot plus every free slot accounts for the slab.
    if (by_pid_flat_.size() + free_slots_.size() != key_slab_.size()) {
      return false;
    }
  } else {
    if (by_pid_flat_.size() != 0 || !key_slab_.empty()) return false;
  }
  for (const auto& [key, entry] : pairs_) {
    if (entry.a.rid >= entry.b.rid) return false;
    if (key.rid1 != entry.a.rid || key.rid2 != entry.b.rid) return false;
    if (key.neg_sim != -entry.sim) return false;
    Key k2;
    if (backend_ == IndexBackend::kFlat) {
      const uint64_t* slot = by_pid_flat_.Find(key.pid);
      if (slot == nullptr || *slot >= key_slab_.size()) return false;
      k2 = key_slab_[*slot];
    } else {
      auto it = by_pid_.find(key.pid);
      if (it == by_pid_.end()) return false;
      k2 = it->second;
    }
    if (k2.rid1 != key.rid1 || k2.rid2 != key.rid2 ||
        k2.neg_sim != key.neg_sim || k2.pid != key.pid) {
      return false;
    }
    auto ta = touching_.find(entry.a.rid);
    auto tb = touching_.find(entry.b.rid);
    if (ta == touching_.end() || !ta->second.count(key.pid)) return false;
    if (tb == touching_.end() || !tb->second.count(key.pid)) return false;
  }
  return true;
}

}  // namespace hera
