// The value-pair index of Section III (Definition 6).
//
// Stores every similar value pair (simv >= ξ, different records),
// labeled ((rid1,fid1,vid1),(rid2,fid2,vid2)) with rid1 < rid2, ordered
// by (rid1 asc, rid2 asc, sim desc) — exactly the paper's sort. The
// backing container is an ordered map keyed by (rid1, rid2, -sim, pid),
// which provides the paper's binary-search range lookups
// (binary_search_l / binary_search_r collapse to lower_bound) and the
// O(|V̂_ij| log |V|) merge maintenance of Proposition 4.

#ifndef HERA_INDEX_VALUE_PAIR_INDEX_H_
#define HERA_INDEX_VALUE_PAIR_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "simjoin/similarity_join.h"

namespace hera {

/// One index entry: pid (stable identity), the two labels, similarity.
struct IndexedPair {
  uint64_t pid = 0;
  ValueLabel a;  // a.rid < b.rid invariant.
  ValueLabel b;
  double sim = 0.0;
};

/// \brief Sorted value-pair index with merge maintenance.
class ValuePairIndex {
 public:
  ValuePairIndex() = default;

  // The atomic probe counter deletes the implicit moves; the index is
  // only ever moved between runs, never concurrently with probes.
  ValuePairIndex(ValuePairIndex&& other) noexcept { *this = std::move(other); }
  ValuePairIndex& operator=(ValuePairIndex&& other) noexcept {
    pairs_ = std::move(other.pairs_);
    by_pid_ = std::move(other.by_pid_);
    touching_ = std::move(other.touching_);
    next_pid_ = other.next_pid_;
    max_pairs_ = other.max_pairs_;
    max_per_record_ = other.max_per_record_;
    shed_pairs_ = other.shed_pairs_;
    shed_posting_entries_ = other.shed_posting_entries_;
    probe_count_.store(other.probe_count_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

  /// Installs resource ceilings (0 = unlimited): `max_pairs` caps the
  /// total pair count, `max_per_record` caps one record's posting list
  /// (pairs touching it). AddPairs rejects pairs beyond a ceiling and
  /// counts them as shed — feed pairs strongest-first so the weakest
  /// are what gets dropped. Merge maintenance is exempt: relabeling an
  /// existing pair never sheds it.
  void SetCeilings(size_t max_pairs, size_t max_per_record) {
    max_pairs_ = max_pairs;
    max_per_record_ = max_per_record;
  }

  /// Pairs rejected by the max_pairs ceiling.
  size_t shed_pairs() const { return shed_pairs_; }
  /// Pairs rejected by the per-record posting-list ceiling.
  size_t shed_posting_entries() const { return shed_posting_entries_; }

  /// Ingests join output. Each pair is normalized so a.rid < b.rid and
  /// assigned a pid. Replaces any previous contents.
  void Build(const std::vector<ValuePair>& pairs);

  /// Adds further pairs to an existing index (fresh pids); used by
  /// incremental resolution when new records arrive. Honors the
  /// ceilings (see SetCeilings).
  void AddPairs(const std::vector<ValuePair>& pairs);

  /// Number of value pairs currently stored (the |S| of Table II at
  /// build time).
  size_t size() const { return by_pid_.size(); }

  /// All pairs for the record pair (i, j), descending similarity.
  /// Order of i and j does not matter.
  std::vector<IndexedPair> PairsFor(uint32_t i, uint32_t j) const;

  /// Visits every non-empty (rid1, rid2) group in index order; `pairs`
  /// is sorted by descending similarity. Candidate generation is one
  /// pass over this (Proposition 2).
  void ForEachGroup(
      const std::function<void(uint32_t rid1, uint32_t rid2,
                               const std::vector<IndexedPair>& pairs)>& fn) const;

  /// Applies the merge of records `rid_i` and `rid_j` into `new_rid`
  /// (Section III-B2): deletes pairs that became intra-record, rewrites
  /// labels per `remap` (from SuperRecord::Merge), and restores sort
  /// order. `new_rid` must be `rid_i` or `rid_j`.
  void ApplyMerge(uint32_t rid_i, uint32_t rid_j, uint32_t new_rid,
                  const std::vector<std::pair<ValueLabel, ValueLabel>>& remap);

  /// Visits every live record's posting-list length (pairs touching
  /// it); feeds the observability layer's posting-length histogram.
  void ForEachPostingLength(
      const std::function<void(uint32_t rid, size_t len)>& fn) const;

  /// PairsFor lookups served since construction (probe traffic; never
  /// reset by Build).
  size_t probe_count() const {
    return probe_count_.load(std::memory_order_relaxed);
  }

  /// All pairs in index order (for tests / checkpoint export).
  std::vector<IndexedPair> Dump() const;

  /// Next pid AddPairs would assign (checkpoint export).
  uint64_t next_pid() const { return next_pid_; }

  /// Replaces the contents with checkpointed pairs, preserving each
  /// pair's pid exactly — pid is the sort tie-breaker for
  /// equal-similarity pairs, so fresh pids could reorder candidate
  /// groups and break the byte-identical-resume guarantee. Ceilings are
  /// not consulted (the pairs already passed them when first added);
  /// the shed/probe counters are restored verbatim.
  void RestoreState(const std::vector<IndexedPair>& pairs, uint64_t next_pid,
                    size_t shed_pairs, size_t shed_posting_entries,
                    uint64_t probe_count);

  /// Verifies invariants (a.rid < b.rid, ordering, secondary indexes
  /// consistent). Returns false and stops at the first violation.
  bool CheckInvariants() const;

 private:
  struct Key {
    uint32_t rid1;
    uint32_t rid2;
    double neg_sim;  // Ascending neg_sim == descending sim.
    uint64_t pid;    // Tie-breaker; keeps keys unique.

    bool operator<(const Key& o) const {
      if (rid1 != o.rid1) return rid1 < o.rid1;
      if (rid2 != o.rid2) return rid2 < o.rid2;
      if (neg_sim != o.neg_sim) return neg_sim < o.neg_sim;
      return pid < o.pid;
    }
  };

  struct Entry {
    ValueLabel a;
    ValueLabel b;
    double sim;
  };

  void Insert(uint64_t pid, ValueLabel a, ValueLabel b, double sim);
  void Erase(uint64_t pid);

  std::map<Key, Entry> pairs_;
  std::unordered_map<uint64_t, Key> by_pid_;
  // rid -> pids of pairs touching that record; drives ApplyMerge.
  std::unordered_map<uint32_t, std::unordered_set<uint64_t>> touching_;
  uint64_t next_pid_ = 0;

  size_t max_pairs_ = 0;
  size_t max_per_record_ = 0;
  size_t shed_pairs_ = 0;
  size_t shed_posting_entries_ = 0;
  /// Atomic because PairsFor is probed concurrently by the engine's
  /// parallel verification phase (everything else on the index stays
  /// controller-thread only).
  mutable std::atomic<uint64_t> probe_count_{0};
};

}  // namespace hera

#endif  // HERA_INDEX_VALUE_PAIR_INDEX_H_
