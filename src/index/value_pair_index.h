// The value-pair index of Section III (Definition 6).
//
// Stores every similar value pair (simv >= ξ, different records),
// labeled ((rid1,fid1,vid1),(rid2,fid2,vid2)) with rid1 < rid2, ordered
// by (rid1 asc, rid2 asc, sim desc) — exactly the paper's sort. The
// backing container is an ordered map keyed by (rid1, rid2, -sim, pid),
// which provides the paper's binary-search range lookups
// (binary_search_l / binary_search_r collapse to lower_bound) and the
// O(|V̂_ij| log |V|) merge maintenance of Proposition 4.

#ifndef HERA_INDEX_VALUE_PAIR_INDEX_H_
#define HERA_INDEX_VALUE_PAIR_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "index/flat_table.h"
#include "simjoin/similarity_join.h"

namespace hera {

/// Relaxed atomic counter with value-copying moves, so classes holding
/// one keep their defaulted move operations (a raw std::atomic deletes
/// them, which historically forced a hand-written field-by-field move
/// that every new member had to be added to — an easy-to-drift list).
class MovableAtomicCounter {
 public:
  MovableAtomicCounter() = default;
  MovableAtomicCounter(MovableAtomicCounter&& other) noexcept
      : v_(other.v_.load(std::memory_order_relaxed)) {}
  MovableAtomicCounter& operator=(MovableAtomicCounter&& other) noexcept {
    v_.store(other.v_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
    return *this;
  }

  void Inc(uint64_t delta = 1) const {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Store(uint64_t value) const {
    v_.store(value, std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  /// Mutable so logically-const probe paths can count traffic.
  mutable std::atomic<uint64_t> v_{0};
};

/// One index entry: pid (stable identity), the two labels, similarity.
struct IndexedPair {
  uint64_t pid = 0;
  ValueLabel a;  // a.rid < b.rid invariant.
  ValueLabel b;
  double sim = 0.0;
};

/// \brief Sorted value-pair index with merge maintenance.
class ValuePairIndex {
 public:
  ValuePairIndex() = default;

  // The probe counter is a MovableAtomicCounter precisely so these can
  // stay defaulted: a hand-written member list here silently dropped
  // fields as they were added. The index is only ever moved between
  // runs, never concurrently with probes.
  ValuePairIndex(ValuePairIndex&&) noexcept = default;
  ValuePairIndex& operator=(ValuePairIndex&&) noexcept = default;

  /// Selects the pid-lookup backend. kFlat mirrors the pid -> key map
  /// into a flat open-addressing side table whose merge-maintenance
  /// lookups batch through the prefetch pipeline (`pipeline_depth`
  /// probes in flight). Contents and iteration order are identical
  /// either way — a speed knob only. Must be called while the index is
  /// empty (the engine sets it at construction).
  void SetBackend(IndexBackend backend,
                  size_t pipeline_depth = FlatTable::kDefaultPipelineDepth);
  IndexBackend backend() const { return backend_; }

  /// Installs resource ceilings (0 = unlimited): `max_pairs` caps the
  /// total pair count, `max_per_record` caps one record's posting list
  /// (pairs touching it). AddPairs rejects pairs beyond a ceiling and
  /// counts them as shed — feed pairs strongest-first so the weakest
  /// are what gets dropped. Merge maintenance is exempt: relabeling an
  /// existing pair never sheds it.
  void SetCeilings(size_t max_pairs, size_t max_per_record) {
    max_pairs_ = max_pairs;
    max_per_record_ = max_per_record;
  }

  /// Pairs rejected by the max_pairs ceiling.
  size_t shed_pairs() const { return shed_pairs_; }
  /// Pairs rejected by the per-record posting-list ceiling.
  size_t shed_posting_entries() const { return shed_posting_entries_; }

  /// Ingests join output. Each pair is normalized so a.rid < b.rid and
  /// assigned a pid. Replaces any previous contents.
  void Build(const std::vector<ValuePair>& pairs);

  /// Adds further pairs to an existing index (fresh pids); used by
  /// incremental resolution when new records arrive. Honors the
  /// ceilings (see SetCeilings).
  void AddPairs(const std::vector<ValuePair>& pairs);

  /// Number of value pairs currently stored (the |S| of Table II at
  /// build time).
  size_t size() const { return pairs_.size(); }

  /// All pairs for the record pair (i, j), descending similarity.
  /// Order of i and j does not matter.
  std::vector<IndexedPair> PairsFor(uint32_t i, uint32_t j) const;

  /// Batched PairsFor: the paper's binary_search_l/r range lookup for
  /// every (i, j) group in `groups`, written to (*out)[k] in group
  /// order ((*out) is resized and overwritten). Counts one probe per
  /// group, exactly like scalar PairsFor calls. The engine preloads a
  /// pass's candidate groups through this in one sweep when the flat
  /// backend is selected.
  void PairsForBatch(const std::vector<std::pair<uint32_t, uint32_t>>& groups,
                     std::vector<std::vector<IndexedPair>>* out) const;

  /// Visits every non-empty (rid1, rid2) group in index order; `pairs`
  /// is sorted by descending similarity. Candidate generation is one
  /// pass over this (Proposition 2).
  void ForEachGroup(
      const std::function<void(uint32_t rid1, uint32_t rid2,
                               const std::vector<IndexedPair>& pairs)>& fn) const;

  /// Applies the merge of records `rid_i` and `rid_j` into `new_rid`
  /// (Section III-B2): deletes pairs that became intra-record, rewrites
  /// labels per `remap` (from SuperRecord::Merge), and restores sort
  /// order. `new_rid` must be `rid_i` or `rid_j`.
  void ApplyMerge(uint32_t rid_i, uint32_t rid_j, uint32_t new_rid,
                  const std::vector<std::pair<ValueLabel, ValueLabel>>& remap);

  /// Visits every live record's posting-list length (pairs touching
  /// it); feeds the observability layer's posting-length histogram.
  void ForEachPostingLength(
      const std::function<void(uint32_t rid, size_t len)>& fn) const;

  /// PairsFor lookups served since construction (probe traffic; never
  /// reset by Build).
  size_t probe_count() const { return probe_count_.value(); }

  /// Flat side-table traffic for the obs layer (0 under ordered).
  uint64_t flat_batched_probes() const { return by_pid_flat_.batched_probes(); }
  uint64_t flat_rehashes() const { return by_pid_flat_.rehashes(); }

  /// All pairs in index order (for tests / checkpoint export).
  std::vector<IndexedPair> Dump() const;

  /// Next pid AddPairs would assign (checkpoint export).
  uint64_t next_pid() const { return next_pid_; }

  /// Replaces the contents with checkpointed pairs, preserving each
  /// pair's pid exactly — pid is the sort tie-breaker for
  /// equal-similarity pairs, so fresh pids could reorder candidate
  /// groups and break the byte-identical-resume guarantee. Ceilings are
  /// not consulted (the pairs already passed them when first added);
  /// the shed/probe counters are restored verbatim.
  void RestoreState(const std::vector<IndexedPair>& pairs, uint64_t next_pid,
                    size_t shed_pairs, size_t shed_posting_entries,
                    uint64_t probe_count);

  /// Verifies invariants (a.rid < b.rid, ordering, secondary indexes
  /// consistent). Returns false and stops at the first violation.
  bool CheckInvariants() const;

 private:
  struct Key {
    uint32_t rid1;
    uint32_t rid2;
    double neg_sim;  // Ascending neg_sim == descending sim.
    uint64_t pid;    // Tie-breaker; keeps keys unique.

    bool operator<(const Key& o) const {
      if (rid1 != o.rid1) return rid1 < o.rid1;
      if (rid2 != o.rid2) return rid2 < o.rid2;
      if (neg_sim != o.neg_sim) return neg_sim < o.neg_sim;
      return pid < o.pid;
    }
  };

  struct Entry {
    ValueLabel a;
    ValueLabel b;
    double sim;
  };

  void Insert(uint64_t pid, ValueLabel a, ValueLabel b, double sim);
  void Erase(uint64_t pid);
  /// pid -> sort key, served by whichever backend is live.
  Key KeyOf(uint64_t pid) const;

  std::map<Key, Entry> pairs_;
  IndexBackend backend_ = IndexBackend::kOrdered;
  /// Ordered backend's pid -> key map (empty under kFlat).
  std::unordered_map<uint64_t, Key> by_pid_;
  /// Flat backend: pid -> slot into key_slab_ (Key is 24 bytes, so the
  /// uint64-valued table indirects through a slab; freed slots are
  /// recycled). Both empty under kOrdered.
  FlatTable by_pid_flat_;
  std::vector<Key> key_slab_;
  std::vector<uint64_t> free_slots_;
  // rid -> pids of pairs touching that record; drives ApplyMerge.
  std::unordered_map<uint32_t, std::unordered_set<uint64_t>> touching_;
  uint64_t next_pid_ = 0;

  size_t max_pairs_ = 0;
  size_t max_per_record_ = 0;
  size_t shed_pairs_ = 0;
  size_t shed_posting_entries_ = 0;
  /// Atomic (relaxed) because PairsFor is probed concurrently by the
  /// engine's parallel verification phase (everything else on the
  /// index stays controller-thread only).
  MovableAtomicCounter probe_count_;
};

}  // namespace hera

#endif  // HERA_INDEX_VALUE_PAIR_INDEX_H_
