#include "matching/bipartite.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>
#include <vector>

namespace hera {

std::vector<uint32_t> KuhnMunkres(const std::vector<std::vector<double>>& w) {
  const size_t n = w.size();
  if (n == 0) return {};
  for (const auto& row : w) {
    assert(row.size() == n && "KuhnMunkres requires a square matrix");
    (void)row;
  }
  // Maximize by minimizing (max_weight - w). Potentials-based Hungarian
  // algorithm, O(n^3), 1-based internal arrays.
  double max_w = 0.0;
  for (const auto& row : w) {
    for (double x : row) max_w = std::max(max_w, x);
  }
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<size_t> p(n + 1, 0), way(n + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      size_t i0 = p[j0], j1 = 0;
      double delta = kInf;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        double cur = (max_w - w[i0 - 1][j - 1]) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }
  // p[j] = row matched to column j; invert to row -> column.
  std::vector<uint32_t> match(n, 0);
  for (size_t j = 1; j <= n; ++j) match[p[j] - 1] = static_cast<uint32_t>(j - 1);
  return match;
}

namespace {

/// Deduplicates parallel edges, keeping the maximum weight.
std::vector<WeightedEdge> DedupEdges(const std::vector<WeightedEdge>& edges) {
  std::unordered_map<uint64_t, WeightedEdge> best;
  best.reserve(edges.size());
  for (const WeightedEdge& e : edges) {
    uint64_t key = (static_cast<uint64_t>(e.left) << 32) | e.right;
    auto [it, inserted] = best.emplace(key, e);
    if (!inserted && e.weight > it->second.weight) it->second = e;
  }
  std::vector<WeightedEdge> out;
  out.reserve(best.size());
  for (auto& [key, e] : best) {
    (void)key;
    out.push_back(e);
  }
  // Deterministic order for reproducible KM tie-breaking.
  std::sort(out.begin(), out.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
    if (a.left != b.left) return a.left < b.left;
    return a.right < b.right;
  });
  return out;
}

}  // namespace

MatchingResult SolveFieldMatching(const std::vector<WeightedEdge>& raw_edges) {
  MatchingResult result;
  std::vector<WeightedEdge> edges = DedupEdges(raw_edges);
  if (edges.empty()) return result;

  // Degrees over the deduplicated graph.
  std::unordered_map<uint32_t, int> deg_left, deg_right;
  for (const WeightedEdge& e : edges) {
    ++deg_left[e.left];
    ++deg_right[e.right];
  }

  // Graph simplification: an edge whose endpoints both have degree 1
  // cannot conflict with anything; it belongs to an optimal matching
  // (Theorem 1) and is removed before KM.
  std::vector<WeightedEdge> remaining;
  for (const WeightedEdge& e : edges) {
    if (deg_left[e.left] == 1 && deg_right[e.right] == 1) {
      result.matching.push_back(e);
      result.total_weight += e.weight;
      ++result.mapped_edges;
    } else {
      remaining.push_back(e);
    }
  }

  if (remaining.empty()) return result;

  // Compact node ids of the simplified graph G'.
  std::unordered_map<uint32_t, uint32_t> lid, rid;
  std::vector<uint32_t> left_of, right_of;
  for (const WeightedEdge& e : remaining) {
    if (lid.emplace(e.left, static_cast<uint32_t>(left_of.size())).second) {
      left_of.push_back(e.left);
    }
    if (rid.emplace(e.right, static_cast<uint32_t>(right_of.size())).second) {
      right_of.push_back(e.right);
    }
  }
  result.simplified_nodes = left_of.size() + right_of.size();

  // Dummy-padded square weight matrix (missing edges weight 0).
  const size_t n = std::max(left_of.size(), right_of.size());
  result.km_size = n;
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (const WeightedEdge& e : remaining) {
    w[lid[e.left]][rid[e.right]] = e.weight;
  }

  std::vector<uint32_t> match = KuhnMunkres(w);
  for (size_t i = 0; i < left_of.size(); ++i) {
    uint32_t j = match[i];
    if (j >= right_of.size()) continue;      // Dummy column.
    if (w[i][j] <= 0.0) continue;            // Padding zero, not a real edge.
    result.matching.push_back({left_of[i], right_of[j], w[i][j]});
    result.total_weight += w[i][j];
  }
  return result;
}

MatchingResult GreedyMatching(const std::vector<WeightedEdge>& raw_edges) {
  MatchingResult result;
  std::vector<WeightedEdge> edges = DedupEdges(raw_edges);
  std::stable_sort(edges.begin(), edges.end(),
                   [](const WeightedEdge& a, const WeightedEdge& b) {
                     return a.weight > b.weight;
                   });
  std::unordered_map<uint32_t, bool> used_left, used_right;
  for (const WeightedEdge& e : edges) {
    if (used_left[e.left] || used_right[e.right]) continue;
    used_left[e.left] = used_right[e.right] = true;
    result.matching.push_back(e);
    result.total_weight += e.weight;
  }
  return result;
}

}  // namespace hera
