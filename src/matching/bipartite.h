// The field matching problem (Definition 8): maximum-weight one-to-one
// matching between the fields of two records, built from the similar
// field pairs, with the paper's graph simplification (Theorem 1).

#ifndef HERA_MATCHING_BIPARTITE_H_
#define HERA_MATCHING_BIPARTITE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hera {

/// One weighted edge of the bipartite field graph; `left`/`right` are
/// field ids of the two records.
struct WeightedEdge {
  uint32_t left = 0;
  uint32_t right = 0;
  double weight = 0.0;
};

/// Result of solving the field matching problem.
struct MatchingResult {
  /// Selected edges (one-to-one), including simplified-away mapped
  /// edges; this is the field matching set F(i, j).
  std::vector<WeightedEdge> matching;
  /// Total weight of `matching`.
  double total_weight = 0.0;
  /// Number of graph nodes remaining after simplification (both sides);
  /// the paper's per-pair m̄ statistic aggregates this.
  size_t simplified_nodes = 0;
  /// Edges removed by simplification (degree-1/degree-1 "mapped edges").
  size_t mapped_edges = 0;
  /// Side length n of the dummy-padded square matrix KM actually
  /// solved (0 when simplification resolved everything and KM was
  /// skipped); the observability layer histograms this.
  size_t km_size = 0;
};

/// \brief Solves the field matching problem on `edges`.
///
/// Steps: (1) graph simplification — every edge whose two endpoints
/// both have degree 1 is taken into the solution directly (Theorem 1:
/// such edges are part of some optimum and removing them preserves
/// optimality); (2) Kuhn–Munkres maximum-weight matching on the
/// remaining graph, padded with zero-weight dummy nodes to a square
/// cost matrix. Edge weights must be >= 0; zero-weight assignments to
/// dummies are dropped from the output.
MatchingResult SolveFieldMatching(const std::vector<WeightedEdge>& edges);

/// \brief Plain Kuhn–Munkres (Hungarian algorithm), O(n^3), on a dense
/// weight matrix `w[i][j]` (n x n). Returns for each left node i the
/// matched right node. Exposed for tests and micro-benchmarks.
std::vector<uint32_t> KuhnMunkres(const std::vector<std::vector<double>>& w);

/// \brief Greedy descending-weight matching; lower-bound baseline used
/// in tests to sanity-check KM (KM weight >= greedy weight).
MatchingResult GreedyMatching(const std::vector<WeightedEdge>& edges);

}  // namespace hera

#endif  // HERA_MATCHING_BIPARTITE_H_
