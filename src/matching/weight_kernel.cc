#include "matching/weight_kernel.h"

#include <algorithm>
#include <cstdlib>

#include "text/normalize.h"

namespace hera {

namespace {

/// Memo ceiling, matching the per-metric token caches: a pathological
/// value universe degrades to pass-through, never unbounded growth.
constexpr size_t kMaxMemoEntries = 1u << 18;

/// Gram length parsed from a "<kind>_q<N>" (or hybrid-wrapped) metric
/// name; 0 when the name carries no _q suffix.
int ParseQ(const std::string& name) {
  size_t pos = name.rfind("_q");
  if (pos == std::string::npos) return 0;
  return std::atoi(name.c_str() + pos + 2);
}

}  // namespace

BestPairScorer::BestPairScorer(const ValueSimilarity& simv, bool use_kernel)
    : simv_(simv), dict_(std::max(1, ParseQ(simv.Name()))) {
  const std::string name = simv.Name();
  if (use_kernel && GramMetricKind(name, ParseQ(name), &kind_)) {
    kernel_ = true;
    hybrid_ = name.rfind("hybrid(", 0) == 0;
    // Empty dictionary: every gram is "unknown" and gets a fresh id on
    // the fly. Ids are insertion-ordered instead of frequency-ordered —
    // irrelevant here, the kernels only need the encoding injective.
    dict_.Freeze();
  }
}

const std::vector<uint32_t>& BestPairScorer::Encoded(
    const Value& v, std::vector<uint32_t>* scratch) {
  std::string text = Normalize(v.ToString());
  auto it = encoded_.find(text);
  if (it != encoded_.end()) return it->second;
  if (encoded_.size() >= kMaxMemoEntries) {
    *scratch = dict_.Encode(text);
    return *scratch;
  }
  // Memoized entries have stable addresses (node-based map): the
  // reference survives rehashes triggered by later insertions.
  return encoded_.emplace(std::move(text), dict_.Encode(text)).first->second;
}

double BestPairScorer::BestAtLeast(const Value& a, const std::vector<Value>& b,
                                   double floor) {
  double best = 0.0;
  if (a.is_null()) return best;
  const std::vector<uint32_t>* ia = nullptr;
  for (const Value& vb : b) {
    if (vb.is_null()) continue;
    if (kernel_ && !(hybrid_ && a.is_number() && vb.is_number())) {
      if (ia == nullptr) ia = &Encoded(a, &scratch_a_);
      double s = SetSimilarityBounded(kind_, *ia, Encoded(vb, &scratch_b_),
                                      std::max(floor, best));
      if (s != kBelowThreshold && s > best) best = s;
    } else {
      best = std::max(best, simv_.Compute(a, vb));
    }
  }
  return best;
}

double BestPairScorer::BestAtLeast(const std::vector<Value>& a,
                                   const std::vector<Value>& b, double floor) {
  double best = 0.0;
  for (const Value& va : a) {
    best = std::max(best, BestAtLeast(va, b, std::max(floor, best)));
  }
  return best;
}

}  // namespace hera
