#include "matching/weight_kernel.h"

#include <algorithm>
#include <cstdlib>

#include "sim/string_metrics.h"
#include "text/normalize.h"

namespace hera {

namespace {

/// Memo ceiling, matching the per-metric token caches: a pathological
/// value universe degrades to pass-through, never unbounded growth.
constexpr size_t kMaxMemoEntries = 1u << 18;

/// Gram length parsed from a "<kind>_q<N>" (or hybrid-wrapped) metric
/// name; 0 when the name carries no _q suffix.
int ParseQ(const std::string& name) {
  size_t pos = name.rfind("_q");
  if (pos == std::string::npos) return 0;
  return std::atoi(name.c_str() + pos + 2);
}

}  // namespace

BestPairScorer::BestPairScorer(const ValueSimilarity& simv, bool use_kernel)
    : simv_(simv), dict_(std::max(1, ParseQ(simv.Name()))) {
  const std::string name = simv.Name();
  if (use_kernel && GramMetricKind(name, ParseQ(name), &kind_)) {
    kernel_ = true;
    hybrid_ = name.rfind("hybrid(", 0) == 0;
    // Empty dictionary: every gram is "unknown" and gets a fresh id on
    // the fly. Ids are insertion-ordered instead of frequency-ordered —
    // irrelevant here, the kernels only need the encoding injective.
    dict_.Freeze();
  } else if (use_kernel && (name == "edit" || name == "hybrid(edit)")) {
    // The bounded edit path is exact the same way the set kernels are:
    // NormalizedLevenshteinAtLeast returns the bit-equal score whenever
    // it reaches the floor (sim/string_metrics.h).
    edit_ = true;
    hybrid_ = name == "hybrid(edit)";
  }
}

const std::vector<uint32_t>& BestPairScorer::Encoded(
    const Value& v, std::vector<std::vector<uint32_t>>* overflow) {
  std::string text = Normalize(v.ToString());
  auto it = encoded_.find(text);
  if (it != encoded_.end()) return it->second;
  if (encoded_.size() >= kMaxMemoEntries) {
    // The caller reserved one slot per value, so this push never
    // reallocates out from under an earlier reference.
    overflow->push_back(dict_.Encode(text));
    return overflow->back();
  }
  // Memoized entries have stable addresses (node-based map): the
  // reference survives rehashes triggered by later insertions.
  return encoded_.emplace(std::move(text), dict_.Encode(text)).first->second;
}

void BestPairScorer::EncodeSide(const std::vector<Value>& b) {
  eb_.clear();
  eb_overflow_.clear();
  eb_.reserve(b.size());
  eb_overflow_.reserve(b.size());
  for (const Value& vb : b) {
    eb_.push_back(vb.is_null() ? nullptr : &Encoded(vb, &eb_overflow_));
  }
}

double BestPairScorer::KernelRow(const Value& va, const std::vector<Value>& b,
                                 double floor) {
  if (va.is_null()) return 0.0;
  if (hybrid_ && va.is_number()) {
    // Mixed row: number/number cells belong to the numeric metric,
    // everything else to the kernel. Rare enough that per-cell tier
    // resolution is fine.
    double best = 0.0;
    for (size_t j = 0; j < b.size(); ++j) {
      const Value& vb = b[j];
      if (vb.is_null()) continue;
      if (vb.is_number()) {
        best = std::max(best, simv_.Compute(va, vb));
      } else {
        row_overflow_.clear();
        row_overflow_.reserve(1);
        double s = SetSimilarityBounded(kind_, Encoded(va, &row_overflow_),
                                        *eb_[j], std::max(floor, best));
        if (s != kBelowThreshold && s > best) best = s;
      }
    }
    return best;
  }
  row_overflow_.clear();
  row_overflow_.reserve(1);
  const std::vector<uint32_t>& ia = Encoded(va, &row_overflow_);
  return BestSetSimilarityBounded(kind_, ia, eb_, floor);
}

void BestPairScorer::NormalizeSide(const std::vector<Value>& b) {
  btext_.resize(b.size());
  btext_null_.resize(b.size());
  for (size_t j = 0; j < b.size(); ++j) {
    btext_null_[j] = b[j].is_null() ? 1 : 0;
    btext_[j] = btext_null_[j] ? std::string() : Normalize(b[j].ToString());
  }
}

double BestPairScorer::EditRow(const Value& va, const std::vector<Value>& b,
                               double floor) {
  if (va.is_null()) return 0.0;
  const std::string na = Normalize(va.ToString());
  double best = 0.0;
  for (size_t j = 0; j < b.size(); ++j) {
    if (btext_null_[j]) continue;
    const Value& vb = b[j];
    if (hybrid_ && va.is_number() && vb.is_number()) {
      best = std::max(best, simv_.Compute(va, vb));
      continue;
    }
    // Exact when >= the ratcheted floor, else 0.0 — either way the max
    // over the row is preserved through the caller's floor gate.
    best = std::max(best, NormalizedLevenshteinAtLeastNormalized(
                              na, btext_[j], std::max(floor, best)));
  }
  return best;
}

double BestPairScorer::BestAtLeast(const Value& a, const std::vector<Value>& b,
                                   double floor) {
  if (a.is_null()) return 0.0;
  if (kernel_) {
    EncodeSide(b);
    return KernelRow(a, b, floor);
  }
  if (edit_) {
    NormalizeSide(b);
    return EditRow(a, b, floor);
  }
  double best = 0.0;
  for (const Value& vb : b) {
    if (vb.is_null()) continue;
    best = std::max(best, simv_.Compute(a, vb));
  }
  return best;
}

double BestPairScorer::BestAtLeast(const std::vector<Value>& a,
                                   const std::vector<Value>& b, double floor) {
  double best = 0.0;
  if (kernel_) {
    // Batched: encode the b side once for the whole matrix, then score
    // row by row with the floor ratcheting upward.
    EncodeSide(b);
    for (const Value& va : a) {
      best = std::max(best, KernelRow(va, b, std::max(floor, best)));
    }
    return best;
  }
  if (edit_) {
    NormalizeSide(b);
    for (const Value& va : a) {
      best = std::max(best, EditRow(va, b, std::max(floor, best)));
    }
    return best;
  }
  for (const Value& va : a) {
    if (va.is_null()) continue;
    for (const Value& vb : b) {
      if (vb.is_null()) continue;
      best = std::max(best, simv_.Compute(va, vb));
    }
  }
  return best;
}

}  // namespace hera
