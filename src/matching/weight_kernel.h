// Per-cell bounded weight computation for dense best-pair loops.
//
// The verifier's KM weight matrix (core/verifier.cc + bipartite.cc) is
// assembled from join-verified pair similarities and never recomputes a
// metric — the kernel acceleration for that path lives in the join
// (simjoin/similarity_join.cc). The loops that DO score every cell of a
// dense value matrix are the record/cluster similarity functions of the
// baselines: best value-pair similarity per attribute
// (baselines/homogeneous.cc) or per value of the smaller record
// (blocking/token_blocking.cc). BestPairScorer runs those loops on the
// integer kernels (sim/kernel.h) with per-cell upper-bound skipping: a
// cell that provably cannot reach the caller's floor — the running
// best, or ξ — is abandoned mid-merge and never fully computed.
//
// Matrix calls are batched: the b side is encoded once per call (one
// memo lookup per value instead of one per cell) and every row runs
// through BestSetSimilarityBounded, which resolves the SIMD dispatch
// tier once and scores the whole row against it. Edit-family metrics
// ("edit", "hybrid(edit)") get the analogous treatment: the b side is
// normalized once, then each cell runs the banded Myers kernel through
// NormalizedLevenshteinAtLeastNormalized with the running best as the
// floor, so hopeless cells bail on the length/histogram pre-filters
// without paying any DP.
//
// Exactness contract: BestAtLeast returns the exact (bit-equal to a
// simv.Compute loop) maximum whenever that maximum is >= floor; when
// every cell is below floor the return value is < floor but not
// necessarily the true maximum. A caller that consumes the result only
// through a `best >= floor` gate — which is what every dense loop here
// does, per Definition 5's ξ cutoff — therefore observes identical
// scores, sums, and labels with the scorer on or off.

#ifndef HERA_MATCHING_WEIGHT_KERNEL_H_
#define HERA_MATCHING_WEIGHT_KERNEL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "sim/kernel.h"
#include "sim/similarity.h"
#include "sim/value.h"
#include "text/qgram.h"

namespace hera {

/// \brief Best value-pair similarity with per-cell threshold skipping.
///
/// Detects the set-overlap metric family from `simv.Name()`
/// (GramMetricKind); eligible metrics score string cells via
/// SetSimilarityBounded on memoized dictionary encodings. Edit-family
/// metrics score cells via the banded Myers kernel with length and
/// histogram pre-filters. Everything else (non-kernel metrics,
/// number/number cells under a hybrid metric) falls back to
/// simv.Compute. Not thread-safe: one scorer per resolution loop, like
/// the metric token caches.
class BestPairScorer {
 public:
  /// `use_kernel = false` forces the simv.Compute path for every cell
  /// (A/B toggle; results are bit-equal either way).
  explicit BestPairScorer(const ValueSimilarity& simv, bool use_kernel = true);

  /// Max over cells (a_i, b_j) of simv.Compute, exact when >= floor
  /// (see the contract above). Null values score 0, as in the metrics.
  double BestAtLeast(const std::vector<Value>& a, const std::vector<Value>& b,
                     double floor);

  /// One-row version: max over simv.Compute(a, b_j).
  double BestAtLeast(const Value& a, const std::vector<Value>& b, double floor);

  /// True when the metric was recognized and cells use the set kernel.
  bool kernel_active() const { return kernel_; }

  /// True when cells use the bounded edit-distance kernel.
  bool edit_active() const { return edit_; }

 private:
  /// Encoded gram set of Normalize(v.ToString()), memoized by text
  /// (content-addressed, so cluster merges never invalidate). Beyond
  /// the memo ceiling the encoding lands in `*overflow` instead — the
  /// caller reserves one slot per value up front, so the returned
  /// references stay stable for the whole batch.
  const std::vector<uint32_t>& Encoded(const Value& v,
                                       std::vector<std::vector<uint32_t>>* overflow);

  /// Builds the batched b-side view into eb_/eb_overflow_: one encoded
  /// set pointer per value, nullptr for nulls.
  void EncodeSide(const std::vector<Value>& b);

  /// Best kernel-scored row of the matrix: a against the pre-encoded b
  /// side, floor-ratcheted. Falls back per cell for hybrid
  /// number/number pairs.
  double KernelRow(const Value& va, const std::vector<Value>& b, double floor);

  /// Best edit-scored row against the pre-normalized b side.
  double EditRow(const Value& va, const std::vector<Value>& b, double floor);

  /// Pre-normalizes the b side into btext_/btext_null_.
  void NormalizeSide(const std::vector<Value>& b);

  const ValueSimilarity& simv_;
  bool kernel_ = false;
  bool edit_ = false;
  bool hybrid_ = false;  // Number/number cells route to simv.Compute.
  SetSimKind kind_ = SetSimKind::kJaccard;
  QgramDictionary dict_;
  std::unordered_map<std::string, std::vector<uint32_t>> encoded_;
  // Batch views, reused across calls to avoid per-row allocation. The
  // overflow vector backs encodings past the memo ceiling; EncodeSide
  // reserves capacity for the whole side so pointers into it never
  // move.
  std::vector<const std::vector<uint32_t>*> eb_;
  std::vector<std::vector<uint32_t>> eb_overflow_;
  std::vector<std::vector<uint32_t>> row_overflow_;
  std::vector<std::string> btext_;
  std::vector<char> btext_null_;
};

}  // namespace hera

#endif  // HERA_MATCHING_WEIGHT_KERNEL_H_
