// Per-cell bounded weight computation for dense best-pair loops.
//
// The verifier's KM weight matrix (core/verifier.cc + bipartite.cc) is
// assembled from join-verified pair similarities and never recomputes a
// metric — the kernel acceleration for that path lives in the join
// (simjoin/similarity_join.cc). The loops that DO score every cell of a
// dense value matrix are the record/cluster similarity functions of the
// baselines: best value-pair similarity per attribute
// (baselines/homogeneous.cc) or per value of the smaller record
// (blocking/token_blocking.cc). BestPairScorer runs those loops on the
// integer kernels (sim/kernel.h) with per-cell upper-bound skipping: a
// cell that provably cannot reach the caller's floor — the running
// best, or ξ — is abandoned mid-merge and never fully computed.
//
// Exactness contract: BestAtLeast returns the exact (bit-equal to a
// simv.Compute loop) maximum whenever that maximum is >= floor; when
// every cell is below floor the return value is < floor but not
// necessarily the true maximum. A caller that consumes the result only
// through a `best >= floor` gate — which is what every dense loop here
// does, per Definition 5's ξ cutoff — therefore observes identical
// scores, sums, and labels with the scorer on or off.

#ifndef HERA_MATCHING_WEIGHT_KERNEL_H_
#define HERA_MATCHING_WEIGHT_KERNEL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "sim/kernel.h"
#include "sim/similarity.h"
#include "sim/value.h"
#include "text/qgram.h"

namespace hera {

/// \brief Best value-pair similarity with per-cell threshold skipping.
///
/// Detects the set-overlap metric family from `simv.Name()`
/// (GramMetricKind); eligible metrics score string cells via
/// SetSimilarityBounded on memoized dictionary encodings, everything
/// else (non-kernel metrics, number/number cells under a hybrid
/// metric) falls back to simv.Compute. Not thread-safe: one scorer per
/// resolution loop, like the metric token caches.
class BestPairScorer {
 public:
  /// `use_kernel = false` forces the simv.Compute path for every cell
  /// (A/B toggle; results are bit-equal either way).
  explicit BestPairScorer(const ValueSimilarity& simv, bool use_kernel = true);

  /// Max over cells (a_i, b_j) of simv.Compute, exact when >= floor
  /// (see the contract above). Null values score 0, as in the metrics.
  double BestAtLeast(const std::vector<Value>& a, const std::vector<Value>& b,
                     double floor);

  /// One-row version: max over simv.Compute(a, b_j).
  double BestAtLeast(const Value& a, const std::vector<Value>& b, double floor);

  /// True when the metric was recognized and cells use the kernel.
  bool kernel_active() const { return kernel_; }

 private:
  /// Encoded gram set of Normalize(v.ToString()), memoized by text
  /// (content-addressed, so cluster merges never invalidate). Beyond
  /// the memo ceiling the encoding lands in `*scratch` instead; the
  /// two sides of a cell use distinct scratch slots so the returned
  /// references never alias.
  const std::vector<uint32_t>& Encoded(const Value& v,
                                       std::vector<uint32_t>* scratch);

  const ValueSimilarity& simv_;
  bool kernel_ = false;
  bool hybrid_ = false;  // Number/number cells route to simv.Compute.
  SetSimKind kind_ = SetSimKind::kJaccard;
  QgramDictionary dict_;
  std::unordered_map<std::string, std::vector<uint32_t>> encoded_;
  std::vector<uint32_t> scratch_a_, scratch_b_;
};

}  // namespace hera

#endif  // HERA_MATCHING_WEIGHT_KERNEL_H_
