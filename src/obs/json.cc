#include "obs/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace hera {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  Scope& top = stack_.back();
  if (top == Scope::kArray || top == Scope::kObject) out_ += ',';
  if (top == Scope::kArrayFirst) top = Scope::kArray;
  if (top == Scope::kObjectFirst) top = Scope::kObject;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Scope::kObjectFirst);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!stack_.empty());
  out_ += '}';
  stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Scope::kArrayFirst);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!stack_.empty());
  out_ += ']';
  stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  if (!std::isfinite(value)) return Null();
  BeforeValue();
  char buf[32];
  // %.17g round-trips every double; integral values print without the
  // exponent/point so common cases stay readable ("3" not "3.0000...").
  if (value == static_cast<int64_t>(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", value);
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

}  // namespace obs
}  // namespace hera
