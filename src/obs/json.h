// Minimal streaming JSON writer for the observability exporters.
//
// Emits one compact JSON document with automatic comma placement.
// Doubles are NaN/inf-safe: non-finite values serialize as null, so a
// report is always parseable regardless of what the run computed.
// This is a writer only — HERA never parses JSON.

#ifndef HERA_OBS_JSON_H_
#define HERA_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hera {
namespace obs {

/// Escapes `s` for use inside a JSON string literal (quotes excluded).
std::string JsonEscape(std::string_view s);

/// \brief Stack-based JSON document builder.
///
///   JsonWriter w;
///   w.BeginObject().Key("n").Int(3).Key("xs").BeginArray()
///       .Number(1.5).Null().EndArray().EndObject();
///   w.str();  // {"n":3,"xs":[1.5,null]}
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; the next call must write its value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  /// Finite doubles print with up to 17 significant digits (shortest
  /// round-trip form via %.17g then trimmed); NaN/inf become null.
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The document so far. Valid JSON once every scope is closed.
  const std::string& str() const { return out_; }

 private:
  /// Writes the separator a value needs in the current scope.
  void BeforeValue();

  enum class Scope : uint8_t { kObjectFirst, kObject, kArrayFirst, kArray };
  std::string out_;
  std::vector<Scope> stack_;
  bool pending_key_ = false;
};

}  // namespace obs
}  // namespace hera

#endif  // HERA_OBS_JSON_H_
