#include "obs/json_reader.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace hera {
namespace obs {

namespace {

constexpr int kMaxDepth = 256;

/// Cursor over the input with position-tagged errors.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    HERA_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        return ParseLiteral("true", [out] {
          out->kind = JsonValue::Kind::kBool;
          out->bool_value = true;
        });
      case 'f':
        return ParseLiteral("false", [out] {
          out->kind = JsonValue::Kind::kBool;
          out->bool_value = false;
        });
      case 'n':
        return ParseLiteral("null",
                            [out] { out->kind = JsonValue::Kind::kNull; });
      default:
        return ParseNumber(out);
    }
  }

  template <typename Fn>
  Status ParseLiteral(const char* word, Fn&& apply) {
    size_t len = std::strlen(word);
    if (text_.substr(pos_, len) != word) {
      return Error(std::string("expected '") + word + "'");
    }
    pos_ += len;
    apply();
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [this] {
      size_t n = 0;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) return Error("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) return Error("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) return Error("digits required in exponent");
    }
    std::string token(text_.substr(start, pos_ - start));
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = std::strtod(token.c_str(), nullptr);
    return Status::OK();
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else return Error("invalid \\u escape digit");
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          HERA_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require a following \uDC00-\uDFFF.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              uint32_t lo = 0;
              HERA_RETURN_NOT_OK(ParseHex4(&lo));
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return Error("unpaired high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWs();
      std::string key;
      HERA_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWs();
      JsonValue value;
      HERA_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return Status::OK();
    for (;;) {
      SkipWs();
      JsonValue value;
      HERA_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->items.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::FindPath(std::string_view dotted_path) const {
  const JsonValue* cur = this;
  size_t start = 0;
  while (cur != nullptr && start <= dotted_path.size()) {
    size_t dot = dotted_path.find('.', start);
    std::string_view hop = dot == std::string_view::npos
                               ? dotted_path.substr(start)
                               : dotted_path.substr(start, dot - start);
    cur = cur->Find(hop);
    if (dot == std::string_view::npos) return cur;
    start = dot + 1;
  }
  return nullptr;
}

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace obs
}  // namespace hera
