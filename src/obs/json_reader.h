// Minimal recursive-descent JSON parser.
//
// The observability layer historically only wrote JSON; the trace and
// report exporters now need in-repo round-trip tests and tooling
// (schema assertions on trace.json, bench comparisons), so this adds
// the read side. It parses the full JSON grammar — objects, arrays,
// strings with escapes (incl. \uXXXX to UTF-8), numbers, booleans,
// null — with a nesting-depth limit, and rejects trailing garbage.
// It is written for correctness and small size, not speed; nothing on
// a resolution hot path parses JSON.

#ifndef HERA_OBS_JSON_READER_H_
#define HERA_OBS_JSON_READER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/statusor.h"

namespace hera {
namespace obs {

/// \brief One parsed JSON value (a tree; object member order is
/// preserved as written).
class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                              ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;    ///< kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// The member named `key`, or nullptr (also when not an object).
  /// First match wins on (invalid but parseable) duplicate keys.
  const JsonValue* Find(std::string_view key) const;

  /// Dotted-path lookup through nested objects ("stats.total_ms");
  /// nullptr when any hop is missing or not an object.
  const JsonValue* FindPath(std::string_view dotted_path) const;
};

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected). InvalidArgument with position info on malformed
/// input or nesting deeper than 256 levels.
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace obs
}  // namespace hera

#endif  // HERA_OBS_JSON_READER_H_
