#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

namespace hera {
namespace obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end() &&
         "histogram bounds must be strictly ascending");
}

void Histogram::Observe(double v) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // std::atomic<double>::fetch_add needs C++20 floating-point atomics;
  // stay portable with a CAS loop (contention here is negligible).
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 size_t n) {
  assert(start > 0.0 && factor > 1.0);
  std::vector<double> bounds;
  bounds.reserve(n);
  double b = start;
  for (size_t i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

void MetricsRegistry::ForEachCounter(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) fn(name, *c);
}

void MetricsRegistry::ForEachGauge(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, g] : gauges_) fn(name, *g);
}

void MetricsRegistry::ForEachHistogram(
    const std::function<void(const std::string&, const Histogram&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, h] : histograms_) fn(name, *h);
}

}  // namespace obs
}  // namespace hera
