// Thread-safe metrics primitives: counters, gauges, and fixed-bucket
// histograms, owned by a MetricsRegistry keyed by name.
//
// Registration (Get*) takes a lock and returns a pointer that stays
// valid for the registry's lifetime; updates (Inc/Set/Observe) are
// lock-free, so hot paths cache the pointer once and update freely
// from any thread. Names use dotted lower_snake segments
// ("verify.latency_us"); exporters rewrite them per target format.
//
// These primitives only exist while a run collects a report
// (HeraOptions::collect_report); see docs/observability.md.

#ifndef HERA_OBS_METRICS_H_
#define HERA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.h"

namespace hera {
namespace obs {

/// \brief Monotonic counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram (Prometheus-style cumulative export).
///
/// Buckets are defined by ascending upper bounds; an implicit +inf
/// bucket catches the tail. Observation finds the first bound >= v
/// (bucket counts here are *per-bucket*, not cumulative — the
/// exporters cumulate where a format requires it).
class Histogram {
 public:
  /// `bounds` must be strictly ascending; may be empty (then every
  /// observation lands in the +inf bucket).
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  /// bounds().size() + 1 buckets; bucket i covers
  /// (bounds[i-1], bounds[i]], the last covers (bounds.back(), +inf).
  const std::vector<double>& bounds() const { return bounds_; }
  size_t num_buckets() const { return buckets_.size(); }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// n bounds start, start*factor, start*factor^2, ... — the default
  /// shape for latency and size distributions.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               size_t n);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief Thread-safe name -> metric map. Metrics live as long as the
/// registry; re-registering a name returns the existing instance
/// (histogram bounds from the first registration win).
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  /// Snapshot iteration in name order (for exporters). The callbacks
  /// must not re-enter the registry.
  void ForEachCounter(
      const std::function<void(const std::string&, const Counter&)>& fn) const;
  void ForEachGauge(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void ForEachHistogram(
      const std::function<void(const std::string&, const Histogram&)>& fn) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// \brief RAII timing: on destruction (or Stop()), adds the elapsed
/// milliseconds to `*acc_ms` and observes the elapsed *microseconds*
/// into `hist_us`. Either sink may be null. Keeps the cumulative-ms
/// fields of HeraStats and the obs histograms in lockstep from a
/// single clock read.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* acc_ms, Histogram* hist_us = nullptr)
      : acc_ms_(acc_ms), hist_us_(hist_us) {}
  ~ScopedTimer() { Stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Flushes the elapsed time into the cumulative-ms sink and restarts
  /// the stopwatch, so the accumulator is accurate at an intermediate
  /// export point (e.g. a checkpoint snapshot) without double-counting
  /// when the timer later stops. The histogram only sees the final
  /// Stop()'s remainder, so per-phase duration samples are unaffected
  /// unless Lap() is used on a histogram-backed timer.
  void Lap() {
    if (stopped_) return;
    if (acc_ms_ != nullptr) *acc_ms_ += timer_.ElapsedMicros() / 1000.0;
    timer_.Restart();
  }

  /// Flushes the elapsed time into the sinks; idempotent.
  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    double us = timer_.ElapsedMicros();
    if (acc_ms_ != nullptr) *acc_ms_ += us / 1000.0;
    if (hist_us_ != nullptr) hist_us_->Observe(us);
  }

 private:
  Timer timer_;
  double* acc_ms_;
  Histogram* hist_us_;
  bool stopped_ = false;
};

}  // namespace obs
}  // namespace hera

#endif  // HERA_OBS_METRICS_H_
