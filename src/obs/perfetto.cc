#include "obs/perfetto.h"

#include <algorithm>
#include <cstdint>
#include <map>

#include "obs/json.h"

namespace hera {
namespace obs {

namespace {

constexpr int kPid = 1;
constexpr int kControllerTid = 1;
constexpr int kWorkerTidBase = 2;  // Worker w renders as tid 2 + w.

void WriteMetadata(JsonWriter& w, const char* name, int tid,
                   const std::string& value) {
  w.BeginObject()
      .Key("ph").String("M")
      .Key("pid").Int(kPid)
      .Key("tid").Int(tid)
      .Key("name").String(name)
      .Key("args").BeginObject().Key("name").String(value).EndObject()
      .EndObject();
}

}  // namespace

std::string ExportChromeTrace(const RunReport& report) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();

  // Thread/process metadata so Perfetto shows named tracks.
  WriteMetadata(w, "process_name", kControllerTid, "hera");
  WriteMetadata(w, "thread_name", kControllerTid, "controller");
  size_t max_worker = 0;
  bool any_worker = false;
  for (const WorkerSpanRecord& s : report.worker_spans) {
    max_worker = std::max(max_worker, s.worker);
    any_worker = true;
  }
  if (any_worker) {
    for (size_t worker = 0; worker <= max_worker; ++worker) {
      WriteMetadata(w, "thread_name",
                    kWorkerTidBase + static_cast<int>(worker),
                    "worker-" + std::to_string(worker));
    }
  }

  // Iteration rows by number, so "iteration" spans can carry the
  // pass's counter deltas as args (quality-over-time in the UI).
  std::map<uint64_t, const RunTrace::IterationRow*> rows;
  for (const RunTrace::IterationRow& row : report.iterations) {
    rows[row.iteration] = &row;
  }

  // Controller spans: ph "X" complete events, process-relative tracer
  // clock, milliseconds -> microseconds.
  for (const SpanRecord& s : report.spans) {
    w.BeginObject()
        .Key("ph").String("X")
        .Key("pid").Int(kPid)
        .Key("tid").Int(kControllerTid)
        .Key("cat").String("phase")
        .Key("name").String(s.name)
        .Key("ts").Number(s.start_ms * 1000.0)
        .Key("dur").Number(s.dur_ms * 1000.0)
        .Key("args").BeginObject()
        .Key("depth").Int(s.depth)
        .Key("iteration").Int(s.iteration);
    if (s.name == "iteration" && s.iteration >= 0) {
      auto it = rows.find(static_cast<uint64_t>(s.iteration));
      if (it != rows.end()) {
        const RunTrace::IterationRow& row = *it->second;
        w.Key("groups").UInt(row.groups)
            .Key("pruned").UInt(row.pruned)
            .Key("direct").UInt(row.direct)
            .Key("verified").UInt(row.verified)
            .Key("merges").UInt(row.merges)
            .Key("deferred").UInt(row.deferred);
      }
    }
    w.EndObject().EndObject();
  }

  // Worker spans: one track per pool worker.
  for (const WorkerSpanRecord& s : report.worker_spans) {
    w.BeginObject()
        .Key("ph").String("X")
        .Key("pid").Int(kPid)
        .Key("tid").Int(kWorkerTidBase + static_cast<int>(s.worker))
        .Key("cat").String("worker")
        .Key("name").String(s.name)
        .Key("ts").Number(s.start_ms * 1000.0)
        .Key("dur").Number(s.dur_ms * 1000.0)
        .Key("args").BeginObject()
        .Key("chunk").UInt(s.chunk)
        .Key("iteration").Int(s.iteration)
        .EndObject()
        .EndObject();
  }

  // Structured events (failpoint trips, checkpoint snapshots, sheds,
  // WAL/recovery) as process-scoped instants.
  for (const TraceEvent& e : report.events) {
    w.BeginObject()
        .Key("ph").String("i")
        .Key("s").String("p")
        .Key("pid").Int(kPid)
        .Key("tid").Int(kControllerTid)
        .Key("cat").String("event")
        .Key("name").String(e.kind)
        .Key("ts").Number(e.t_ms * 1000.0)
        .Key("args").BeginObject()
        .Key("detail").String(e.detail)
        .Key("value").UInt(e.value)
        .Key("iteration").Int(e.iteration)
        .EndObject()
        .EndObject();
  }

  // Timeline samples as counter tracks: one "C" event per column per
  // sample. Stitched clock; a resumed run's counters continue where
  // the pre-crash process left off.
  const auto& tl = report.timeline;
  auto counter = [&w](const std::string& name, double ts_us, double value) {
    w.BeginObject()
        .Key("ph").String("C")
        .Key("pid").Int(kPid)
        .Key("tid").Int(kControllerTid)
        .Key("cat").String("timeline")
        .Key("name").String(name)
        .Key("ts").Number(ts_us)
        .Key("args").BeginObject().Key("value").Number(value).EndObject()
        .EndObject();
  };
  for (const TimelineSample& s : tl.samples) {
    double ts_us = s.t_ms * 1000.0;
    counter("rss_bytes", ts_us, s.rss_bytes);
    counter("cpu_user_ms", ts_us, s.cpu_user_ms);
    counter("cpu_sys_ms", ts_us, s.cpu_sys_ms);
    size_t n = std::min(tl.columns.size(), s.values.size());
    for (size_t i = 0; i < n; ++i) {
      counter(tl.columns[i], ts_us, s.values[i]);
    }
  }

  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace obs
}  // namespace hera
