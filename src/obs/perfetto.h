// Chrome-trace / Perfetto JSON export of a RunReport.
//
// ExportChromeTrace serializes the report's spans, worker spans,
// structured events, and timeline into the Chrome trace event format
// (the JSON flavor Perfetto's ui.perfetto.dev and chrome://tracing
// both load):
//
//   pid 1 / tid 1          controller thread: tracer spans as "X"
//                          (complete) events; "iteration" spans carry
//                          the matching IterationRow's counter deltas
//                          as args.
//   pid 1 / tid 2+w        pool worker w: per-chunk worker spans.
//   instant events ("i")   every TraceEvent — failpoint trips,
//                          checkpoint snapshots (kind
//                          "persist.snapshot", value = epoch), sheds,
//                          WAL/recovery events.
//   counter events ("C")   one per timeline sample per column, so the
//                          sampled series render as counter tracks.
//
// Timestamps are microseconds (the format's unit) on the stitched run
// clock for instants/counters and the process-relative tracer clock
// for spans; see docs/observability.md for the resume semantics.

#ifndef HERA_OBS_PERFETTO_H_
#define HERA_OBS_PERFETTO_H_

#include <string>

#include "obs/report.h"

namespace hera {
namespace obs {

/// Serializes `report` as a Chrome trace JSON document
/// ({"displayTimeUnit":"ms","traceEvents":[...]}). An empty() report
/// yields a valid document whose traceEvents hold only thread/process
/// metadata.
std::string ExportChromeTrace(const RunReport& report);

}  // namespace obs
}  // namespace hera

#endif  // HERA_OBS_PERFETTO_H_
