#include "obs/report.h"

#include <cmath>
#include <cstdio>

#include "obs/json.h"

namespace hera {
namespace obs {

namespace {

/// "verify.latency_us" -> "hera_verify_latency_us" (Prometheus charset).
std::string PromName(const std::string& name) {
  std::string out = "hera_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return std::isnan(v) ? "NaN" : (v > 0 ? "+Inf" : "-Inf");
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Escapes a Prometheus label value: backslash, double-quote, and
/// newline must be backslash-escaped inside the quoted value.
std::string PromEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void WriteStatsFields(JsonWriter& w, const HeraStats& s,
                      const char* outcome_name) {
  w.Key("outcome").String(outcome_name);
  w.Key("index_size").UInt(s.index_size);
  w.Key("iterations").UInt(s.iterations);
  w.Key("comparisons").UInt(s.comparisons);
  w.Key("candidates").UInt(s.candidates);
  w.Key("direct_merges").UInt(s.direct_merges);
  w.Key("pruned_by_bound").UInt(s.pruned_by_bound);
  w.Key("merges").UInt(s.merges);
  w.Key("decided_schema_matchings").UInt(s.decided_schema_matchings);
  w.Key("avg_simplified_nodes").Number(s.avg_simplified_nodes);
  w.Key("index_build_ms").Number(s.index_build_ms);
  w.Key("total_ms").Number(s.total_ms);
  w.Key("shed_index_pairs").UInt(s.shed_index_pairs);
  w.Key("shed_posting_entries").UInt(s.shed_posting_entries);
  w.Key("deferred_candidate_groups").UInt(s.deferred_candidate_groups);
  w.Key("join_truncated").Bool(s.join_truncated);
}

}  // namespace

RunReport BuildRunReport(const RunTrace& trace, const HeraStats& stats,
                         const char* outcome_name) {
  RunReport r;
  r.collected = true;
  r.outcome = outcome_name;
  r.stats = stats;
  for (const auto& [name, stat] : trace.tracer().PhaseStats()) {
    r.phases.push_back({name, stat.count, stat.total_ms, stat.max_ms});
  }
  r.spans = trace.tracer().spans();
  r.worker_spans = trace.worker_spans();
  r.dropped_worker_spans = trace.dropped_worker_spans();
  r.iterations = trace.iterations();
  r.timeline.interval_ms = trace.timeline_interval_ms();
  r.timeline.columns = trace.timeline().columns();
  r.timeline.samples = trace.timeline().Samples();
  r.timeline.dropped = trace.timeline().dropped();
  trace.metrics().ForEachCounter(
      [&](const std::string& name, const Counter& c) {
        r.counters[name] = c.value();
      });
  trace.metrics().ForEachGauge([&](const std::string& name, const Gauge& g) {
    r.gauges[name] = g.value();
  });
  trace.metrics().ForEachHistogram(
      [&](const std::string& name, const Histogram& h) {
        RunReport::HistogramData d;
        d.name = name;
        d.bounds = h.bounds();
        d.counts.reserve(h.num_buckets());
        for (size_t i = 0; i < h.num_buckets(); ++i) {
          d.counts.push_back(h.bucket_count(i));
        }
        d.count = h.count();
        d.sum = h.sum();
        r.histograms.push_back(std::move(d));
      });
  r.events = trace.tracer().events();
  r.dropped_events = trace.tracer().dropped_events();
  return r;
}

std::string HeraStatsToJson(const HeraStats& stats, const char* outcome_name) {
  JsonWriter w;
  w.BeginObject();
  WriteStatsFields(w, stats, outcome_name);
  w.EndObject();
  return w.str();
}

std::string RunReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(kReportSchemaVersion);
  w.Key("collected").Bool(collected);
  w.Key("outcome").String(outcome);
  w.Key("stats").BeginObject();
  WriteStatsFields(w, stats, outcome.empty() ? "unknown" : outcome.c_str());
  w.EndObject();

  w.Key("phases").BeginArray();
  for (const Phase& p : phases) {
    w.BeginObject()
        .Key("name").String(p.name)
        .Key("count").UInt(p.count)
        .Key("total_ms").Number(p.total_ms)
        .Key("max_ms").Number(p.max_ms)
        .EndObject();
  }
  w.EndArray();

  w.Key("spans").BeginArray();
  for (const SpanRecord& s : spans) {
    w.BeginObject()
        .Key("name").String(s.name)
        .Key("depth").Int(s.depth)
        .Key("start_ms").Number(s.start_ms)
        .Key("dur_ms").Number(s.dur_ms)
        .Key("iteration").Int(s.iteration)
        .EndObject();
  }
  w.EndArray();

  w.Key("worker_spans").BeginArray();
  for (const WorkerSpanRecord& s : worker_spans) {
    w.BeginObject()
        .Key("name").String(s.name)
        .Key("worker").UInt(s.worker)
        .Key("chunk").UInt(s.chunk)
        .Key("start_ms").Number(s.start_ms)
        .Key("dur_ms").Number(s.dur_ms)
        .Key("iteration").Int(s.iteration)
        .EndObject();
  }
  w.EndArray();
  w.Key("dropped_worker_spans").UInt(dropped_worker_spans);

  w.Key("iterations").BeginArray();
  for (const RunTrace::IterationRow& row : iterations) {
    w.BeginObject()
        .Key("iteration").UInt(row.iteration)
        .Key("groups").UInt(row.groups)
        .Key("pruned").UInt(row.pruned)
        .Key("direct").UInt(row.direct)
        .Key("verified").UInt(row.verified)
        .Key("merges").UInt(row.merges)
        .Key("deferred").UInt(row.deferred)
        .Key("ms").Number(row.ms)
        .Key("t_ms").Number(row.t_ms)
        .EndObject();
  }
  w.EndArray();

  // Timeline as compact array-of-arrays: row layout matches
  // TimelineCsv() — [t_ms, rss_bytes, cpu_user_ms, cpu_sys_ms,
  // <columns...>].
  w.Key("timeline").BeginObject();
  w.Key("interval_ms").Number(timeline.interval_ms);
  w.Key("columns").BeginArray();
  w.String("t_ms").String("rss_bytes").String("cpu_user_ms")
      .String("cpu_sys_ms");
  for (const std::string& c : timeline.columns) w.String(c);
  w.EndArray();
  w.Key("samples").BeginArray();
  for (const TimelineSample& s : timeline.samples) {
    w.BeginArray()
        .Number(s.t_ms)
        .Number(s.rss_bytes)
        .Number(s.cpu_user_ms)
        .Number(s.cpu_sys_ms);
    for (double v : s.values) w.Number(v);
    w.EndArray();
  }
  w.EndArray();
  w.Key("dropped").UInt(timeline.dropped);
  w.EndObject();

  w.Key("counters").BeginObject();
  for (const auto& [name, v] : counters) w.Key(name).UInt(v);
  w.EndObject();

  w.Key("gauges").BeginObject();
  for (const auto& [name, v] : gauges) w.Key(name).Number(v);
  w.EndObject();

  w.Key("histograms").BeginArray();
  for (const HistogramData& h : histograms) {
    w.BeginObject().Key("name").String(h.name);
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < h.counts.size(); ++i) {
      w.BeginObject();
      if (i < h.bounds.size()) {
        w.Key("le").Number(h.bounds[i]);
      } else {
        w.Key("le").String("+Inf");
      }
      w.Key("count").UInt(h.counts[i]).EndObject();
    }
    w.EndArray();
    w.Key("count").UInt(h.count).Key("sum").Number(h.sum).EndObject();
  }
  w.EndArray();

  w.Key("events").BeginArray();
  for (const TraceEvent& e : events) {
    w.BeginObject()
        .Key("t_ms").Number(e.t_ms)
        .Key("iteration").Int(e.iteration)
        .Key("kind").String(e.kind)
        .Key("detail").String(e.detail)
        .Key("value").UInt(e.value)
        .EndObject();
  }
  w.EndArray();
  w.Key("dropped_events").UInt(dropped_events);
  w.EndObject();
  return w.str();
}

std::string RunReport::ToPrometheusText() const {
  std::string out;
  auto line = [&out](const std::string& s) {
    out += s;
    out += '\n';
  };
  for (const auto& [name, v] : counters) {
    std::string p = PromName(name);
    line("# TYPE " + p + " counter");
    line(p + " " + std::to_string(v));
  }
  for (const auto& [name, v] : gauges) {
    std::string p = PromName(name);
    line("# TYPE " + p + " gauge");
    line(p + " " + FormatDouble(v));
  }
  // Phase timings export as two labeled series — one time series per
  // metric with a phase label, not one metric name per phase (which
  // exploded the metric namespace and broke aggregation queries).
  // Label values are escaped per the text exposition format.
  if (!phases.empty()) {
    line("# TYPE hera_phase_ms_total counter");
    for (const Phase& ph : phases) {
      line("hera_phase_ms_total{phase=\"" + PromEscapeLabel(ph.name) + "\"} " +
           FormatDouble(ph.total_ms));
    }
    line("# TYPE hera_phase_runs_total counter");
    for (const Phase& ph : phases) {
      line("hera_phase_runs_total{phase=\"" + PromEscapeLabel(ph.name) +
           "\"} " + std::to_string(ph.count));
    }
  }
  for (const HistogramData& h : histograms) {
    std::string p = PromName(h.name);
    line("# TYPE " + p + " histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      std::string le =
          i < h.bounds.size() ? FormatDouble(h.bounds[i]) : std::string("+Inf");
      line(p + "_bucket{le=\"" + le + "\"} " + std::to_string(cumulative));
    }
    line(p + "_sum " + FormatDouble(h.sum));
    line(p + "_count " + std::to_string(h.count));
  }
  return out;
}

std::string RunReport::ToString() const {
  std::string out;
  char buf[256];
  auto append = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
  };
  append("run outcome: %s\n", outcome.empty() ? "unknown" : outcome.c_str());
  append("stats: index=%zu iterations=%zu comparisons=%zu direct=%zu "
         "pruned=%zu merges=%zu build=%.1fms resolve=%.1fms\n",
         stats.index_size, stats.iterations, stats.comparisons,
         stats.direct_merges, stats.pruned_by_bound, stats.merges,
         stats.index_build_ms, stats.total_ms);
  if (!phases.empty()) {
    out += "phases:\n";
    for (const Phase& p : phases) {
      append("  %-24s count=%-6llu total=%9.2fms max=%8.2fms\n",
             p.name.c_str(), static_cast<unsigned long long>(p.count),
             p.total_ms, p.max_ms);
    }
  }
  if (!iterations.empty()) {
    out += "iterations (groups/pruned/direct/verified/merges/deferred/ms):\n";
    for (const RunTrace::IterationRow& r : iterations) {
      append("  #%-4llu %6llu %6llu %6llu %6llu %6llu %6llu %8.2f\n",
             static_cast<unsigned long long>(r.iteration),
             static_cast<unsigned long long>(r.groups),
             static_cast<unsigned long long>(r.pruned),
             static_cast<unsigned long long>(r.direct),
             static_cast<unsigned long long>(r.verified),
             static_cast<unsigned long long>(r.merges),
             static_cast<unsigned long long>(r.deferred), r.ms);
    }
  }
  if (!histograms.empty()) {
    out += "histograms:\n";
    for (const HistogramData& h : histograms) {
      append("  %-24s count=%llu sum=%g\n", h.name.c_str(),
             static_cast<unsigned long long>(h.count), h.sum);
    }
  }
  if (!events.empty()) {
    append("events (%zu):\n", events.size());
    for (const TraceEvent& e : events) {
      append("  %9.2fms iter=%-4lld %-20s %s value=%llu\n", e.t_ms,
             static_cast<long long>(e.iteration), e.kind.c_str(),
             e.detail.c_str(), static_cast<unsigned long long>(e.value));
    }
  }
  if (!timeline.samples.empty()) {
    append("timeline: %zu samples @ %.0fms (%llu dropped)\n",
           timeline.samples.size(), timeline.interval_ms,
           static_cast<unsigned long long>(timeline.dropped));
  }
  return out;
}

std::string RunReport::TimelineCsv() const {
  std::string out = "t_ms,rss_bytes,cpu_user_ms,cpu_sys_ms";
  for (const std::string& c : timeline.columns) {
    out += ',';
    out += c;  // Column names are metric identifiers: no commas/quotes.
  }
  out += '\n';
  char buf[64];
  auto cell = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
  };
  for (const TimelineSample& s : timeline.samples) {
    cell(s.t_ms);
    out += ',';
    cell(s.rss_bytes);
    out += ',';
    cell(s.cpu_user_ms);
    out += ',';
    cell(s.cpu_sys_ms);
    for (double v : s.values) {
      out += ',';
      cell(v);
    }
    out += '\n';
  }
  return out;
}

}  // namespace obs
}  // namespace hera
