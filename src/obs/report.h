// RunReport: the machine-readable record of one HERA run.
//
// Built from a RunTrace + HeraStats at run end and attached to
// HeraResult, the report carries per-phase timings, per-iteration
// counter rows, the metric snapshot (counters/gauges/histograms), and
// the structured governance/fault events. Three exporters share it:
//
//   ToJson()            one stable schema (schema_version gates
//                       consumers; see docs/observability.md)
//   ToPrometheusText()  Prometheus text exposition format
//   ToString()          human-readable summary
//
// An empty() report (collection was off) exports valid but minimal
// output.

#ifndef HERA_OBS_REPORT_H_
#define HERA_OBS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/options.h"
#include "obs/trace.h"

namespace hera {
namespace obs {

/// Version of the JSON schema ToJson emits. Bump on any
/// backwards-incompatible field change.
inline constexpr int kReportSchemaVersion = 1;

/// \brief Aggregated, export-ready run record.
struct RunReport {
  /// False until BuildRunReport fills the report.
  bool collected = false;

  /// RunOutcomeToString of the run's outcome ("completed", ...).
  std::string outcome;

  /// The flat counters/timings of the run (Table II quantities).
  HeraStats stats;

  /// Per-name span aggregates, name-sorted.
  struct Phase {
    std::string name;
    uint64_t count = 0;
    double total_ms = 0.0;
    double max_ms = 0.0;
  };
  std::vector<Phase> phases;

  /// Individual spans (bounded; see Tracer::kMaxSpanRecords).
  std::vector<SpanRecord> spans;

  /// Per-worker chunk spans (bounded; see RunTrace::kMaxWorkerSpans).
  std::vector<WorkerSpanRecord> worker_spans;
  uint64_t dropped_worker_spans = 0;

  /// Per compare-and-merge pass counter deltas.
  std::vector<RunTrace::IterationRow> iterations;

  /// Sampled resource/metric time series (empty when the sampler was
  /// off). `samples[i].values` is parallel to `columns`.
  struct TimelineData {
    double interval_ms = 0.0;  ///< Sampler tick period (0 = off).
    std::vector<std::string> columns;
    std::vector<TimelineSample> samples;
    uint64_t dropped = 0;      ///< Samples lost to ring overflow.
  };
  TimelineData timeline;

  /// Metric snapshot at report time.
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  struct HistogramData {
    std::string name;
    std::vector<double> bounds;    ///< Upper bounds; +inf bucket implied.
    std::vector<uint64_t> counts;  ///< Per-bucket (bounds.size() + 1).
    uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<HistogramData> histograms;

  /// Governance/fault events in arrival order (bounded; dropped_events
  /// counts the overflow).
  std::vector<TraceEvent> events;
  uint64_t dropped_events = 0;

  bool empty() const { return !collected; }

  std::string ToJson() const;
  std::string ToPrometheusText() const;
  std::string ToString() const;

  /// The timeline as CSV: header
  /// "t_ms,rss_bytes,cpu_user_ms,cpu_sys_ms,<columns...>" then one row
  /// per sample. Header-only when the sampler was off.
  std::string TimelineCsv() const;
};

/// Snapshots `trace` into an export-ready report. `outcome_name` is
/// RunOutcomeToString(stats.outcome) — passed in so this layer stays
/// independent of the core library's symbols.
RunReport BuildRunReport(const RunTrace& trace, const HeraStats& stats,
                         const char* outcome_name);

/// Serializes just the HeraStats block (the "stats" object of the
/// report schema) — shared by RunReport::ToJson and callers that want
/// stats without a trace. NaN/inf fields serialize as null.
std::string HeraStatsToJson(const HeraStats& stats, const char* outcome_name);

}  // namespace obs
}  // namespace hera

#endif  // HERA_OBS_REPORT_H_
