#include "obs/timeline.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#ifdef __linux__
#include <unistd.h>
#endif

namespace hera {
namespace obs {

void TimelineSeries::SetColumns(std::vector<std::string> columns) {
  std::lock_guard<std::mutex> lock(mu_);
  columns_ = std::move(columns);
}

std::vector<std::string> TimelineSeries::columns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return columns_;
}

void TimelineSeries::Push(TimelineSample sample) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(sample));
    return;
  }
  // Full: overwrite the oldest sample (the one the cursor points at).
  ring_[next_] = std::move(sample);
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
  ++dropped_;
}

std::vector<TimelineSample> TimelineSeries::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!wrapped_) return ring_;
  std::vector<TimelineSample> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

size_t TimelineSeries::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t TimelineSeries::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

bool ReadProcSelfStats(ProcSelfStats* out) {
  *out = ProcSelfStats{};
#ifdef __linux__
  static const double kPageBytes = static_cast<double>(sysconf(_SC_PAGESIZE));
  static const double kTickMs = 1000.0 / static_cast<double>(sysconf(_SC_CLK_TCK));
  {
    std::FILE* f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr) return false;
    long long total = 0, resident = 0;
    int n = std::fscanf(f, "%lld %lld", &total, &resident);
    std::fclose(f);
    if (n == 2) out->rss_bytes = static_cast<double>(resident) * kPageBytes;
  }
  {
    std::FILE* f = std::fopen("/proc/self/stat", "r");
    if (f == nullptr) return false;
    char buf[1024];
    size_t got = std::fread(buf, 1, sizeof buf - 1, f);
    std::fclose(f);
    buf[got] = '\0';
    // Field 2 (comm) may contain spaces; parse from after its closing
    // paren. utime/stime are fields 14/15 (1-based), i.e. 11 fields
    // past the parenthesized comm + state.
    const char* p = std::strrchr(buf, ')');
    if (p == nullptr) return false;
    ++p;
    long long utime = 0, stime = 0;
    // state + 10 numeric fields precede utime.
    int n = std::sscanf(p,
                        " %*c %*s %*s %*s %*s %*s %*s %*s %*s %*s %*s "
                        "%lld %lld",
                        &utime, &stime);
    if (n == 2) {
      out->cpu_user_ms = static_cast<double>(utime) * kTickMs;
      out->cpu_sys_ms = static_cast<double>(stime) * kTickMs;
    }
  }
  return true;
#else
  return false;
#endif
}

TimelineSampler::TimelineSampler(Options options,
                                 std::function<double()> now_ms,
                                 TimelineSeries* out)
    : interval_ms_(options.interval_ms >= 1.0 ? options.interval_ms : 1.0),
      now_ms_(std::move(now_ms)),
      out_(out) {}

TimelineSampler::~TimelineSampler() { Stop(); }

void TimelineSampler::AddProbe(std::string name,
                               std::function<double()> probe) {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_once_) return;  // Columns are frozen at first Start.
  probes_.emplace_back(std::move(name), std::move(probe));
}

void TimelineSampler::SampleNow() {
  TimelineSample s;
  s.t_ms = now_ms_();
  ProcSelfStats proc;
  ReadProcSelfStats(&proc);
  s.rss_bytes = proc.rss_bytes;
  s.cpu_user_ms = proc.cpu_user_ms;
  s.cpu_sys_ms = proc.cpu_sys_ms;
  s.values.reserve(probes_.size());
  for (const auto& [name, probe] : probes_) {
    (void)name;
    s.values.push_back(probe());
  }
  out_->Push(std::move(s));
  samples_.fetch_add(1, std::memory_order_relaxed);
}

void TimelineSampler::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    if (!started_once_) {
      std::vector<std::string> columns;
      columns.reserve(probes_.size());
      for (const auto& [name, probe] : probes_) {
        (void)probe;
        columns.push_back(name);
      }
      out_->SetColumns(std::move(columns));
      started_once_ = true;
    }
    running_ = true;
    stop_requested_ = false;
  }
  SampleNow();
  thread_ = std::thread([this] { Loop(); });
}

void TimelineSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  SampleNow();  // Final edge sample: the timeline always reaches run end.
}

bool TimelineSampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void TimelineSampler::Loop() {
  const auto interval = std::chrono::duration<double, std::milli>(interval_ms_);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

}  // namespace obs
}  // namespace hera
