// Sampled resource/metric timelines for one run.
//
// A TimelineSampler is a low-overhead background thread that, every
// interval_ms, snapshots process resources (/proc/self RSS and CPU on
// Linux) plus a set of caller-registered probes (lock-free counters,
// gauges, cache occupancy) into a fixed-capacity ring buffer
// (TimelineSeries). The series is embedded in the RunReport as its
// `timeline` section and exported as JSON and CSV — the raw material
// for merges-vs-seconds quality curves and the Perfetto counter
// tracks.
//
// Determinism: sampling is strictly read-only over atomics and
// internally-locked caches; it never feeds back into resolution, so
// labels and merge sequences are byte-identical with the sampler on or
// off (docs/observability.md states the guarantee).
//
// Overflow: at capacity the ring overwrites the oldest sample and
// counts the overwrite in dropped() — never silent, never unbounded.

#ifndef HERA_OBS_TIMELINE_H_
#define HERA_OBS_TIMELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace hera {
namespace obs {

/// One timeline row. `values` is parallel to the owning series'
/// columns(); the three resource fields are always present.
struct TimelineSample {
  double t_ms = 0.0;        ///< Stitched run time (see RunTrace::NowMs).
  double rss_bytes = 0.0;   ///< Process resident set (0 off-Linux).
  double cpu_user_ms = 0.0; ///< Cumulative process user CPU (0 off-Linux).
  double cpu_sys_ms = 0.0;  ///< Cumulative process system CPU (0 off-Linux).
  std::vector<double> values;
};

/// \brief Thread-safe fixed-capacity ring of samples (oldest dropped
/// first once full, with an explicit dropped() count).
class TimelineSeries {
 public:
  explicit TimelineSeries(size_t capacity = 4096)
      : capacity_(capacity > 0 ? capacity : 1) {}

  /// Names of the probe columns (set once by the sampler at Start).
  void SetColumns(std::vector<std::string> columns);
  std::vector<std::string> columns() const;

  void Push(TimelineSample sample);

  /// Samples oldest-first (chronological).
  std::vector<TimelineSample> Samples() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Samples overwritten because the ring was full.
  uint64_t dropped() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::string> columns_;
  std::vector<TimelineSample> ring_;
  size_t next_ = 0;       ///< Ring write cursor once wrapped.
  bool wrapped_ = false;
  uint64_t dropped_ = 0;
};

/// Resource snapshot of the current process.
struct ProcSelfStats {
  double rss_bytes = 0.0;
  double cpu_user_ms = 0.0;
  double cpu_sys_ms = 0.0;
};

/// Reads RSS from /proc/self/statm and user/system CPU from
/// /proc/self/stat. Returns false (zeroed output) when /proc is
/// unavailable (non-Linux); callers treat the fields as best-effort.
bool ReadProcSelfStats(ProcSelfStats* out);

/// \brief Periodic sampler thread writing into a TimelineSeries.
///
/// Probes are registered before Start() and invoked on the sampler
/// thread at every tick; they must be thread-safe and non-blocking
/// (atomic reads, internally-locked cache counters). Start() takes an
/// immediate sample and Stop() takes a final one, so even a
/// zero-duration run yields a non-empty timeline. Start/Stop are
/// idempotent; SampleNow() is the synchronous hook tests use.
class TimelineSampler {
 public:
  struct Options {
    double interval_ms = 50.0;  ///< Tick period (clamped to >= 1ms).
  };

  /// `now_ms` supplies sample timestamps (the run trace's stitched
  /// clock); `out` must outlive the sampler.
  TimelineSampler(Options options, std::function<double()> now_ms,
                  TimelineSeries* out);
  ~TimelineSampler();
  TimelineSampler(const TimelineSampler&) = delete;
  TimelineSampler& operator=(const TimelineSampler&) = delete;

  /// Registers a probe column; only before the first Start().
  void AddProbe(std::string name, std::function<double()> probe);

  void Start();
  void Stop();
  bool running() const;
  double interval_ms() const { return interval_ms_; }
  /// Total samples captured (including Start/Stop edge samples).
  uint64_t samples_taken() const {
    return samples_.load(std::memory_order_relaxed);
  }

  /// Captures one sample synchronously (any thread, running or not).
  void SampleNow();

 private:
  void Loop();

  const double interval_ms_;
  const std::function<double()> now_ms_;
  TimelineSeries* const out_;
  std::vector<std::pair<std::string, std::function<double()>>> probes_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
  bool started_once_ = false;
  std::atomic<uint64_t> samples_{0};
};

}  // namespace obs
}  // namespace hera

#endif  // HERA_OBS_TIMELINE_H_
