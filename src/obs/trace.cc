#include "obs/trace.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"

namespace hera {
namespace obs {

Tracer::Span::Span(Tracer* tracer, const char* name)
    : tracer_(tracer), name_(name) {
  if (tracer_ == nullptr) return;
  start_ms_ = tracer_->ElapsedMs();
  depth_ = tracer_->open_depth_.fetch_add(1, std::memory_order_relaxed);
}

Tracer::Span& Tracer::Span::operator=(Span&& o) noexcept {
  if (this != &o) {
    End();
    tracer_ = std::exchange(o.tracer_, nullptr);
    name_ = o.name_;
    start_ms_ = o.start_ms_;
    depth_ = o.depth_;
  }
  return *this;
}

void Tracer::Span::End() {
  if (tracer_ == nullptr) return;
  Tracer* t = std::exchange(tracer_, nullptr);
  t->open_depth_.fetch_sub(1, std::memory_order_relaxed);
  t->CloseSpan(name_, start_ms_, depth_);
}

void Tracer::CloseSpan(const char* name, double start_ms, int depth) {
  double dur = ElapsedMs() - start_ms;
  std::lock_guard<std::mutex> lock(mu_);
  PhaseStat& stat = phase_stats_[name];
  ++stat.count;
  stat.total_ms += dur;
  stat.max_ms = std::max(stat.max_ms, dur);
  if (spans_.size() < kMaxSpanRecords) {
    spans_.push_back({name, depth, start_ms, dur, iteration()});
  }
}

void Tracer::Event(std::string kind, std::string detail, uint64_t value) {
  double t = ElapsedMs();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_events_;
    return;
  }
  events_.push_back({t, iteration(), std::move(kind), std::move(detail), value});
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::map<std::string, PhaseStat> Tracer::PhaseStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return phase_stats_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_events_;
}

RunTrace::RunTrace(size_t timeline_capacity) : timeline_(timeline_capacity) {
  // Injected faults become visible trace events instead of opaque
  // early returns. Process-wide single slot: with several concurrently
  // traced runs only the most recent one sees failpoint events.
  failpoint::SetTripObserver(this, [this](const char* site) {
    tracer_.Event("failpoint", site);
    metrics_.GetCounter("failpoint.trips")->Inc();
  });
}

RunTrace::~RunTrace() { failpoint::ClearTripObserver(this); }

void RunTrace::AddIteration(const IterationRow& row) {
  std::lock_guard<std::mutex> lock(mu_);
  iterations_.push_back(row);
}

std::vector<RunTrace::IterationRow> RunTrace::iterations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return iterations_;
}

void RunTrace::AddWorkerSpan(WorkerSpanRecord span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker_spans_.size() >= kMaxWorkerSpans) {
    ++dropped_worker_spans_;
    return;
  }
  worker_spans_.push_back(std::move(span));
}

std::vector<WorkerSpanRecord> RunTrace::worker_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return worker_spans_;
}

uint64_t RunTrace::dropped_worker_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_worker_spans_;
}

}  // namespace obs
}  // namespace hera
