// Phase/span tracing and structured run events.
//
// A Tracer records RAII spans (nested; per-name aggregates plus a
// bounded list of individual span records) and structured events
// (governance decisions: sheds, deferrals, truncation, failpoint
// hits). Spans must nest LIFO on one thread — the resolution loop is
// single-threaded — while events may arrive from any thread and are
// mutex-guarded. All times are milliseconds since the tracer was
// created, read from the same steady clock as common/timer.h.
//
// RunTrace bundles the tracer with a MetricsRegistry and per-iteration
// counter rows; the engine carries one per run when
// HeraOptions::collect_report is set, and obs/report.h turns it into
// the exported RunReport.

#ifndef HERA_OBS_TRACE_H_
#define HERA_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.h"
#include "obs/metrics.h"

namespace hera {
namespace obs {

/// One structured event: what happened, when, in which iteration.
struct TraceEvent {
  double t_ms = 0.0;       ///< Milliseconds since trace start.
  int64_t iteration = -1;  ///< Compare-and-merge pass, -1 outside one.
  std::string kind;        ///< Stable identifier ("shed.index_pairs"...).
  std::string detail;      ///< Free-form context ("deadline", site name).
  uint64_t value = 0;      ///< Magnitude (entries shed, groups deferred).
};

/// Aggregate of every finished span sharing one name.
struct PhaseStat {
  uint64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
};

/// One finished span (kept for the first kMaxSpanRecords closes; the
/// per-name aggregates keep counting beyond that).
struct SpanRecord {
  std::string name;
  int depth = 0;           ///< Nesting depth at open (0 = top level).
  double start_ms = 0.0;   ///< Open time since trace start.
  double dur_ms = 0.0;
  int64_t iteration = -1;  ///< Iteration scope at close.
};

/// \brief Span + event recorder for one run.
class Tracer {
 public:
  static constexpr size_t kMaxSpanRecords = 2048;
  static constexpr size_t kMaxEvents = 4096;

  Tracer() = default;

  /// \brief RAII handle; closes its span on destruction (or End()).
  /// A default-constructed or moved-from Span is a no-op, which lets
  /// instrumentation sites write
  ///   auto span = obs::StartSpan(trace, "index.build");
  /// with a null trace when collection is off.
  class Span {
   public:
    Span() = default;
    Span(Tracer* tracer, const char* name);
    Span(Span&& o) noexcept { *this = std::move(o); }
    Span& operator=(Span&& o) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { End(); }

    /// Closes the span early; idempotent.
    void End();

   private:
    Tracer* tracer_ = nullptr;
    const char* name_ = nullptr;
    double start_ms_ = 0.0;
    int depth_ = 0;
  };

  Span StartSpan(const char* name) { return Span(this, name); }

  /// Records a structured event at the current time/iteration scope.
  void Event(std::string kind, std::string detail = "", uint64_t value = 0);

  /// Tags subsequent spans/events with iteration `k` (-1 clears).
  void SetIteration(int64_t k) { iteration_.store(k, std::memory_order_relaxed); }
  int64_t iteration() const { return iteration_.load(std::memory_order_relaxed); }

  double ElapsedMs() const { return clock_.ElapsedMillis(); }

  // ---- Snapshot accessors (exporters; not for use mid-span).
  std::vector<SpanRecord> spans() const;
  std::map<std::string, PhaseStat> PhaseStats() const;
  std::vector<TraceEvent> events() const;
  /// Events discarded beyond kMaxEvents (reported, never silent).
  uint64_t dropped_events() const;

 private:
  friend class Span;
  void CloseSpan(const char* name, double start_ms, int depth);

  Timer clock_;
  std::atomic<int64_t> iteration_{-1};
  std::atomic<int> open_depth_{0};

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::map<std::string, PhaseStat> phase_stats_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_events_ = 0;
};

/// \brief Everything one observed run collects.
class RunTrace {
 public:
  /// One compare-and-merge pass's counters (deltas for that pass).
  struct IterationRow {
    uint64_t iteration = 0;
    uint64_t groups = 0;     ///< Candidate groups examined.
    uint64_t pruned = 0;     ///< Discarded because Up < delta.
    uint64_t direct = 0;     ///< Resolved by Up == Low (no verification).
    uint64_t verified = 0;   ///< Sent through the verifier.
    uint64_t merges = 0;
    uint64_t deferred = 0;   ///< Pushed to a later pass by the ceiling.
    double ms = 0.0;
  };

  RunTrace();
  ~RunTrace();
  RunTrace(const RunTrace&) = delete;
  RunTrace& operator=(const RunTrace&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  void AddIteration(const IterationRow& row);
  std::vector<IterationRow> iterations() const;

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
  mutable std::mutex mu_;
  std::vector<IterationRow> iterations_;
};

/// Null-tolerant span helper for instrumentation sites.
inline Tracer::Span StartSpan(RunTrace* trace, const char* name) {
  return trace != nullptr ? trace->tracer().StartSpan(name) : Tracer::Span();
}

}  // namespace obs
}  // namespace hera

#endif  // HERA_OBS_TRACE_H_
