// Phase/span tracing and structured run events.
//
// A Tracer records RAII spans (nested; per-name aggregates plus a
// bounded list of individual span records) and structured events
// (governance decisions: sheds, deferrals, truncation, failpoint
// hits). Spans must nest LIFO on one thread — the resolution loop is
// single-threaded — while events may arrive from any thread and are
// mutex-guarded. All times are milliseconds since the tracer was
// created, read from the same steady clock as common/timer.h.
//
// RunTrace bundles the tracer with a MetricsRegistry and per-iteration
// counter rows; the engine carries one per run when
// HeraOptions::collect_report is set, and obs/report.h turns it into
// the exported RunReport.

#ifndef HERA_OBS_TRACE_H_
#define HERA_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace hera {
namespace obs {

/// One structured event: what happened, when, in which iteration.
struct TraceEvent {
  double t_ms = 0.0;       ///< Milliseconds since trace start.
  int64_t iteration = -1;  ///< Compare-and-merge pass, -1 outside one.
  std::string kind;        ///< Stable identifier ("shed.index_pairs"...).
  std::string detail;      ///< Free-form context ("deadline", site name).
  uint64_t value = 0;      ///< Magnitude (entries shed, groups deferred).
};

/// Aggregate of every finished span sharing one name.
struct PhaseStat {
  uint64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
};

/// One finished span (kept for the first kMaxSpanRecords closes; the
/// per-name aggregates keep counting beyond that).
struct SpanRecord {
  std::string name;
  int depth = 0;           ///< Nesting depth at open (0 = top level).
  double start_ms = 0.0;   ///< Open time since trace start.
  double dur_ms = 0.0;
  int64_t iteration = -1;  ///< Iteration scope at close.
};

/// One chunk executed on a pool worker (Phase A verification, join
/// scans). Recorded post-hoc by the controller thread from
/// ParallelRunStats::chunk_spans, so worker code never touches the
/// tracer. Times are on the tracer clock, same as SpanRecord.
struct WorkerSpanRecord {
  std::string name;        ///< Phase ("join.probe", "verify.phase_a").
  size_t worker = 0;       ///< Pool worker index (0-based).
  uint64_t chunk = 0;      ///< Chunk index within the parallel call.
  double start_ms = 0.0;   ///< Start time since trace start.
  double dur_ms = 0.0;
  int64_t iteration = -1;  ///< Iteration scope when recorded.
};

/// \brief Span + event recorder for one run.
class Tracer {
 public:
  static constexpr size_t kMaxSpanRecords = 2048;
  static constexpr size_t kMaxEvents = 4096;

  Tracer() = default;

  /// \brief RAII handle; closes its span on destruction (or End()).
  /// A default-constructed or moved-from Span is a no-op, which lets
  /// instrumentation sites write
  ///   auto span = obs::StartSpan(trace, "index.build");
  /// with a null trace when collection is off.
  class Span {
   public:
    Span() = default;
    Span(Tracer* tracer, const char* name);
    Span(Span&& o) noexcept { *this = std::move(o); }
    Span& operator=(Span&& o) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { End(); }

    /// Closes the span early; idempotent.
    void End();

   private:
    Tracer* tracer_ = nullptr;
    const char* name_ = nullptr;
    double start_ms_ = 0.0;
    int depth_ = 0;
  };

  Span StartSpan(const char* name) { return Span(this, name); }

  /// Records a structured event at the current time/iteration scope.
  void Event(std::string kind, std::string detail = "", uint64_t value = 0);

  /// Tags subsequent spans/events with iteration `k` (-1 clears).
  void SetIteration(int64_t k) { iteration_.store(k, std::memory_order_relaxed); }
  int64_t iteration() const { return iteration_.load(std::memory_order_relaxed); }

  double ElapsedMs() const { return clock_.ElapsedMillis(); }

  // ---- Snapshot accessors (exporters; not for use mid-span).
  std::vector<SpanRecord> spans() const;
  std::map<std::string, PhaseStat> PhaseStats() const;
  std::vector<TraceEvent> events() const;
  /// Events discarded beyond kMaxEvents (reported, never silent).
  uint64_t dropped_events() const;

 private:
  friend class Span;
  void CloseSpan(const char* name, double start_ms, int depth);

  Timer clock_;
  std::atomic<int64_t> iteration_{-1};
  std::atomic<int> open_depth_{0};

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::map<std::string, PhaseStat> phase_stats_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_events_ = 0;
};

/// \brief Everything one observed run collects.
class RunTrace {
 public:
  static constexpr size_t kMaxWorkerSpans = 8192;

  /// One compare-and-merge pass's counters (deltas for that pass).
  struct IterationRow {
    uint64_t iteration = 0;
    uint64_t groups = 0;     ///< Candidate groups examined.
    uint64_t pruned = 0;     ///< Discarded because Up < delta.
    uint64_t direct = 0;     ///< Resolved by Up == Low (no verification).
    uint64_t verified = 0;   ///< Sent through the verifier.
    uint64_t merges = 0;
    uint64_t deferred = 0;   ///< Pushed to a later pass by the ceiling.
    double ms = 0.0;
    double t_ms = 0.0;       ///< Stitched run time at pass end (NowMs).
  };

  explicit RunTrace(size_t timeline_capacity = 4096);
  ~RunTrace();
  RunTrace(const RunTrace&) = delete;
  RunTrace& operator=(const RunTrace&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  TimelineSeries& timeline() { return timeline_; }
  const TimelineSeries& timeline() const { return timeline_; }

  void AddIteration(const IterationRow& row);
  std::vector<IterationRow> iterations() const;

  /// Worker spans (bounded; overflow counted, never silent).
  void AddWorkerSpan(WorkerSpanRecord span);
  std::vector<WorkerSpanRecord> worker_spans() const;
  uint64_t dropped_worker_spans() const;

  /// Stitched-run clock. The base is 0 for a fresh run; a resumed run
  /// sets it to the milliseconds already spent before the checkpoint
  /// (RestoreState), so timeline samples and iteration rows from the
  /// pre-crash and resumed processes concatenate into one monotone
  /// series. Tracer spans stay process-relative by design.
  void SetTimeBaseMs(double base_ms) { time_base_ms_ = base_ms; }
  double time_base_ms() const { return time_base_ms_; }
  double NowMs() const { return time_base_ms_ + tracer_.ElapsedMs(); }

  /// Sampler interval used for this run (0 = sampler off); recorded so
  /// the report can state it.
  void SetTimelineIntervalMs(double ms) { timeline_interval_ms_ = ms; }
  double timeline_interval_ms() const { return timeline_interval_ms_; }

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
  TimelineSeries timeline_;
  double time_base_ms_ = 0.0;
  double timeline_interval_ms_ = 0.0;
  mutable std::mutex mu_;
  std::vector<IterationRow> iterations_;
  std::vector<WorkerSpanRecord> worker_spans_;
  uint64_t dropped_worker_spans_ = 0;
};

/// Null-tolerant span helper for instrumentation sites.
inline Tracer::Span StartSpan(RunTrace* trace, const char* name) {
  return trace != nullptr ? trace->tracer().StartSpan(name) : Tracer::Span();
}

}  // namespace obs
}  // namespace hera

#endif  // HERA_OBS_TRACE_H_
