// Chunked parallel iteration over an index range [0, n).
//
// The range is cut into fixed-size chunks claimed by workers through a
// single atomic cursor — work-stealing-lite: a fast worker simply
// claims more chunks, with no per-item locking and no queues. Because
// chunk boundaries are a pure function of (n, grain), a caller that
// writes results into per-chunk buffers and concatenates them in chunk
// index order gets output that is byte-identical to a serial run, for
// any worker count and any scheduling.
//
// With a null pool (or a single worker, or a single chunk) the chunks
// run inline on the calling thread in ascending order — the serial
// fallback used when HeraOptions::num_threads <= 1.

#ifndef HERA_PARALLEL_PARALLEL_FOR_H_
#define HERA_PARALLEL_PARALLEL_FOR_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

#include "common/timer.h"
#include "parallel/thread_pool.h"

namespace hera {

/// One executed chunk: which worker ran it and when, relative to the
/// ParallelChunks call start. Only recorded when the caller asks
/// (record_spans); feeds the per-worker timeline of the trace export.
struct ChunkSpan {
  size_t chunk = 0;
  size_t worker = 0;
  double start_us = 0.0;  ///< Microseconds after the call started.
  double dur_us = 0.0;
};

/// What one ParallelChunks call did; feeds the observability layer's
/// per-phase thread gauge and worker busy-time histogram.
struct ParallelRunStats {
  /// Workers the range was offered to (1 for the serial fallback).
  size_t workers = 1;
  /// Chunks the range was cut into.
  size_t chunks = 0;
  /// Per-worker busy microseconds (time spent inside chunk bodies).
  std::vector<double> busy_us;
  /// Per-chunk execution records (empty unless record_spans was set).
  /// Slot c describes chunk c; every chunk runs exactly once, so the
  /// vector is fully populated without any cross-worker coordination.
  std::vector<ChunkSpan> chunk_spans;
};

/// Chunk size that yields ~8 claimable chunks per worker, so the
/// atomic-cursor load balancing can absorb skewed chunk costs.
inline size_t DefaultGrain(size_t n, size_t workers) {
  if (workers <= 1) return n > 0 ? n : 1;
  size_t grain = n / (workers * 8);
  return grain > 0 ? grain : 1;
}

/// Runs fn(chunk, begin, end, worker) over every chunk of [0, n).
/// Chunk c covers [c*grain, min(n, (c+1)*grain)). `fn` must be safe to
/// call concurrently from different workers on different chunks; two
/// workers never receive the same chunk.
///
/// With `record_spans` set, every chunk's (worker, start, duration) is
/// captured into stats.chunk_spans — two extra clock reads per chunk,
/// used by the trace/profiling tier. Recording never changes which
/// chunks exist or how they are claimed, so results are unaffected.
template <typename Fn>
ParallelRunStats ParallelChunks(ThreadPool* pool, size_t n, size_t grain,
                                Fn&& fn, bool record_spans = false) {
  ParallelRunStats stats;
  if (n == 0) {
    stats.busy_us.assign(1, 0.0);
    return stats;
  }
  if (grain == 0) grain = 1;
  const size_t num_chunks = (n + grain - 1) / grain;
  stats.chunks = num_chunks;
  if (record_spans) stats.chunk_spans.resize(num_chunks);
  ChunkSpan* spans = record_spans ? stats.chunk_spans.data() : nullptr;
  if (pool == nullptr || pool->size() <= 1 || num_chunks <= 1) {
    Timer timer;
    for (size_t c = 0; c < num_chunks; ++c) {
      double t0 = spans != nullptr ? timer.ElapsedMicros() : 0.0;
      fn(c, c * grain, std::min(n, (c + 1) * grain), size_t{0});
      if (spans != nullptr) {
        spans[c] = {c, size_t{0}, t0, timer.ElapsedMicros() - t0};
      }
    }
    stats.workers = 1;
    stats.busy_us.assign(1, timer.ElapsedMicros());
    return stats;
  }
  stats.workers = pool->size();
  stats.busy_us.assign(pool->size(), 0.0);
  std::atomic<size_t> cursor{0};
  double* busy = stats.busy_us.data();
  // All workers time against one epoch so chunk spans share a single
  // origin (the call start, same as the serial path).
  Timer call_timer;
  pool->Run([&, busy, spans](size_t worker) {
    Timer timer;
    for (;;) {
      size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      double t0 = spans != nullptr ? call_timer.ElapsedMicros() : 0.0;
      fn(c, c * grain, std::min(n, (c + 1) * grain), worker);
      if (spans != nullptr) {
        // Chunk c is claimed by exactly one worker, so slot c is
        // written exactly once: no lock needed.
        spans[c] = {c, worker, t0, call_timer.ElapsedMicros() - t0};
      }
    }
    busy[worker] = timer.ElapsedMicros();
  });
  return stats;
}

}  // namespace hera

#endif  // HERA_PARALLEL_PARALLEL_FOR_H_
