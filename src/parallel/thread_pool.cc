#include "parallel/thread_pool.h"

#include <algorithm>

namespace hera {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Run(const std::function<void(size_t)>& job) {
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &job;
  remaining_ = threads_.size();
  ++epoch_;
  cv_start_.notify_all();
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::WorkerLoop(size_t worker) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock,
                     [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    (*job)(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace hera
