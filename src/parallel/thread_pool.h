// Fixed-size worker pool for the data-parallel stages of a resolution
// run (similarity-join probing, KM verification, value gathering).
//
// The pool is deliberately minimal: no task queue, no futures. One
// caller at a time hands every worker the same callable via Run() and
// blocks until all workers return; work distribution happens above it
// through an atomic chunk cursor (see parallel/parallel_for.h), which
// gives work-stealing-lite load balancing with no per-item locking.
//
// Determinism contract: the pool itself never reorders results —
// callers write into per-chunk buffers and concatenate them in chunk
// order, so output is byte-identical to a serial run regardless of
// worker count or scheduling (see docs/performance.md).

#ifndef HERA_PARALLEL_THREAD_POOL_H_
#define HERA_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hera {

/// \brief Fixed set of worker threads executing one job at a time.
///
/// Workers are spawned once in the constructor and joined in the
/// destructor; Run() reuses them, so per-phase dispatch cost is two
/// condition-variable round trips, not thread creation. Run() is not
/// reentrant: it must be called from one controller thread at a time
/// (the engine's serial control loop), and the job must not call Run()
/// on the same pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Joins all workers; any Run() must have returned.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t size() const { return threads_.size(); }

  /// Executes job(worker) once on every worker (worker in [0, size()))
  /// and returns when all invocations have finished. The job must not
  /// throw.
  void Run(const std::function<void(size_t worker)>& job);

 private:
  void WorkerLoop(size_t worker);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(size_t)>* job_ = nullptr;  // Guarded by mu_.
  uint64_t epoch_ = 0;     // Bumped per Run(); wakes the workers.
  size_t remaining_ = 0;   // Workers still inside the current job.
  bool shutdown_ = false;
};

}  // namespace hera

#endif  // HERA_PARALLEL_THREAD_POOL_H_
