#include "persist/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/failpoint.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "persist/codec.h"

namespace hera {
namespace persist {

namespace {

constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kWalPrefix[] = "wal-";

std::string EpochSuffix(uint64_t epoch) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%06llu",
                static_cast<unsigned long long>(epoch));
  return buf;
}

/// Parses "<prefix>NNNNNN" into an epoch; false for other names.
bool ParseEpochFile(const std::string& name, const char* prefix,
                    uint64_t* epoch) {
  const size_t prefix_len = std::strlen(prefix);
  if (name.size() <= prefix_len || name.compare(0, prefix_len, prefix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix_len; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *epoch = value;
  return true;
}

/// All snapshot epochs present in `dir`, descending (newest first).
std::vector<uint64_t> ListSnapshotEpochs(const std::string& dir) {
  std::vector<uint64_t> epochs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t epoch = 0;
    if (ParseEpochFile(entry.path().filename().string(), kSnapshotPrefix,
                       &epoch)) {
      epochs.push_back(epoch);
    }
  }
  std::sort(epochs.rbegin(), epochs.rend());
  return epochs;
}

void TraceEvent(obs::RunTrace* trace, const char* kind, std::string detail,
                uint64_t value = 0) {
  if (trace != nullptr) trace->tracer().Event(kind, std::move(detail), value);
}

void CountMetric(obs::RunTrace* trace, const char* name, uint64_t n) {
  if (trace != nullptr) trace->metrics().GetCounter(name)->Inc(n);
}

}  // namespace

StatusOr<std::unique_ptr<CheckpointManager>> CheckpointManager::Open(
    const Config& config, obs::RunTrace* trace) {
  if (config.dir.empty()) {
    return Status::InvalidArgument("checkpoint directory must be non-empty");
  }
  if (config.checkpoint_every == 0) {
    return Status::InvalidArgument("checkpoint_every must be > 0");
  }
  HERA_RETURN_NOT_OK(EnsureDirectory(config.dir));

  std::unique_ptr<CheckpointManager> mgr(
      new CheckpointManager(config, trace));
  std::vector<uint64_t> epochs = ListSnapshotEpochs(config.dir);
  mgr->next_epoch_ = epochs.empty() ? 0 : epochs.front() + 1;

  if (const char* spec = std::getenv("HERA_PERSIST_CRASH")) {
    std::string s(spec);
    size_t colon = s.rfind(':');
    if (colon != std::string::npos) {
      mgr->crash_op_ = s.substr(0, colon);
      mgr->crash_after_ = std::atol(s.c_str() + colon + 1);
    }
  }
  return mgr;
}

CheckpointManager::~CheckpointManager() { CloseWal(); }

std::string CheckpointManager::SnapshotPath(uint64_t epoch) const {
  return config_.dir + "/" + kSnapshotPrefix + EpochSuffix(epoch);
}

std::string CheckpointManager::WalPath(uint64_t epoch) const {
  return config_.dir + "/" + kWalPrefix + EpochSuffix(epoch);
}

void CheckpointManager::CloseWal() {
  if (wal_fd_ >= 0) {
    ::close(wal_fd_);
    wal_fd_ = -1;
  }
}

void CheckpointManager::RemoveOldEpochs(uint64_t newest) {
  // Keep `newest` and its predecessor; anything older is unreachable
  // by recovery's single-step fallback.
  if (newest < 2) return;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(config_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t epoch = 0;
    if ((ParseEpochFile(name, kSnapshotPrefix, &epoch) ||
         ParseEpochFile(name, kWalPrefix, &epoch)) &&
        epoch + 2 <= newest) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

void CheckpointManager::CrashHookTick(const char* op) {
  if (crash_op_ != op) return;
  if (++crash_seen_ < crash_after_) return;
  // Simulate an external SIGKILL at this exact durability boundary;
  // nothing below this line runs, matching a real kill -9.
  ::raise(SIGKILL);
  ::_exit(137);  // Unreachable unless SIGKILL is somehow masked.
}

bool CheckpointManager::SnapshotDue(size_t iteration) const {
  if (!have_snapshot_) return true;
  return iteration >= last_snapshot_iteration_ + config_.checkpoint_every;
}

Status CheckpointManager::WriteSnapshot(const EngineState& state) {
  HERA_FAILPOINT("persist.snapshot");
  CloseWal();
  const uint64_t epoch = next_epoch_++;
  SnapshotHeader header;
  header.kind = config_.kind;
  header.options_fp = config_.options_fp;
  header.corpus_fp = config_.corpus_fp;
  header.epoch = epoch;
  header.iteration = state.stats.iterations;
  const std::string bytes = EncodeSnapshot(header, state);
  HERA_RETURN_NOT_OK(AtomicWriteFile(SnapshotPath(epoch), bytes));
  current_epoch_ = epoch;
  have_snapshot_ = true;
  last_snapshot_iteration_ = state.stats.iterations;
  wal_seq_ = 0;
  RemoveOldEpochs(epoch);
  CountMetric(trace_, "persist.snapshots", 1);
  CountMetric(trace_, "persist.snapshot_bytes", bytes.size());
  TraceEvent(trace_, "persist.snapshot", SnapshotPath(epoch), epoch);
  CrashHookTick("snapshot");
  return Status::OK();
}

Status CheckpointManager::AppendWal(WalEntry entry) {
  HERA_FAILPOINT("persist.wal.append");
  if (!have_snapshot_) {
    return Status::Internal("WAL append before any snapshot");
  }
  entry.epoch = current_epoch_;
  entry.seq = wal_seq_;
  std::string block;
  AppendBlock(&block, EncodeWalEntry(entry));
  if (wal_fd_ < 0) {
    // First entry of this epoch; the file cannot pre-exist because the
    // epoch number was never used before (O_TRUNC is just insurance).
    wal_fd_ = ::open(WalPath(current_epoch_).c_str(),
                     O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (wal_fd_ < 0) {
      return Status::IOError("cannot open " + WalPath(current_epoch_) + ": " +
                             std::strerror(errno));
    }
  }
  const char* data = block.data();
  size_t left = block.size();
  while (left > 0) {
    ssize_t n = ::write(wal_fd_, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("cannot append " + WalPath(current_epoch_) +
                             ": " + std::strerror(errno));
    }
    data += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(wal_fd_) != 0) {
    return Status::IOError("cannot fsync " + WalPath(current_epoch_) + ": " +
                           std::strerror(errno));
  }
  ++wal_seq_;
  CountMetric(trace_, "persist.wal_records", 1);
  CountMetric(trace_, "persist.wal_bytes", block.size());
  CrashHookTick("wal.append");
  return Status::OK();
}

StatusOr<CheckpointManager::Recovered> CheckpointManager::Recover(
    const Config& config, obs::RunTrace* trace) {
  HERA_FAILPOINT("persist.recover");
  auto recover_span = obs::StartSpan(trace, "persist.recover");
  if (config.dir.empty()) {
    return Status::InvalidArgument("checkpoint directory must be non-empty");
  }
  std::vector<uint64_t> epochs = ListSnapshotEpochs(config.dir);
  if (epochs.empty()) {
    return Status::NotFound("no snapshot in " + config.dir);
  }

  Recovered out;
  Status last_error = Status::OK();
  bool decoded = false;
  for (uint64_t epoch : epochs) {
    const std::string path =
        config.dir + "/" + kSnapshotPrefix + EpochSuffix(epoch);
    StatusOr<std::string> image = ReadFileToString(path);
    StatusOr<DecodedSnapshot> snap = image.ok()
                                         ? DecodeSnapshot(*image)
                                         : StatusOr<DecodedSnapshot>(
                                               image.status());
    if (!snap.ok()) {
      HERA_LOG(Warning) << "checkpoint " << path
                        << " unreadable, falling back: "
                        << snap.status().ToString();
      TraceEvent(trace, "persist.snapshot_corrupt", path, epoch);
      last_error = snap.status();
      out.fell_back = true;
      continue;
    }
    const SnapshotHeader& h = snap->header;
    if (h.kind != config.kind) {
      return Status::FailedPrecondition(
          "checkpoint " + path + " was written by a " +
          (h.kind == RunKind::kBatch ? std::string("batch")
                                     : std::string("incremental")) +
          " run; cannot resume as the other kind");
    }
    if (h.options_fp != config.options_fp) {
      return Status::FailedPrecondition(
          "checkpoint " + path +
          " was written under different resolution options");
    }
    if (h.corpus_fp != config.corpus_fp) {
      return Status::FailedPrecondition(
          "checkpoint " + path + " was written for a different record set");
    }
    out.state = std::move(snap->state);
    out.epoch = epoch;
    decoded = true;
    break;
  }
  if (!decoded) {
    return Status::IOError("every snapshot in " + config.dir +
                           " is corrupt; last error: " +
                           last_error.ToString());
  }

  StatusOr<std::string> wal_image = ReadFileToString(
      config.dir + "/" + kWalPrefix + EpochSuffix(out.epoch));
  if (wal_image.ok()) {
    WalReadResult wal = ReadWalImage(*wal_image, out.epoch);
    out.wal = std::move(wal.entries);
    out.wal_torn = wal.torn;
    if (wal.torn) {
      TraceEvent(trace, "persist.wal_torn", "dropped torn tail",
                 out.wal.size());
    }
  } else if (wal_image.status().code() != StatusCode::kNotFound) {
    return wal_image.status();
  }

  CountMetric(trace, "persist.recoveries", 1);
  TraceEvent(trace, "persist.recovered",
             "epoch " + EpochSuffix(out.epoch) + ", " +
                 std::to_string(out.wal.size()) + " WAL entries" +
                 (out.fell_back ? ", fell back" : ""),
             out.epoch);
  return out;
}

}  // namespace persist
}  // namespace hera
