// CheckpointManager: durable snapshots + write-ahead log for one run.
//
// Layout of a checkpoint directory:
//
//   snapshot-000000    full engine state at an iteration boundary
//   wal-000000         passes completed since snapshot-000000
//   snapshot-000001    ...
//
// Epochs. Every snapshot write starts a new epoch: the snapshot file
// gets the next epoch number and subsequent WAL entries go to that
// epoch's (fresh) WAL file. Retention keeps the last two epochs so a
// snapshot torn by a crash — or corrupted on disk later — still leaves
// a complete older epoch to recover from. Recovery itself always
// re-snapshots into a *new* epoch rather than appending after a torn
// WAL tail.
//
// Durability. Snapshots go through AtomicWriteFile (temp + fsync +
// rename); WAL entries are appended and fsync'd one framed block at a
// time, so the only possible damage from SIGKILL is a torn final block,
// which recovery detects by CRC and drops.
//
// Failpoints: persist.snapshot, persist.wal.append, persist.recover.
// Crash-test hook: HERA_PERSIST_CRASH="wal.append:N" (or "snapshot:N")
// raises SIGKILL after the Nth durable operation of that kind — CI uses
// it to kill hera_cli at a deterministic point.

#ifndef HERA_PERSIST_CHECKPOINT_H_
#define HERA_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "obs/trace.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace hera {
namespace persist {

/// \brief Owns the files of one checkpoint directory for one run.
class CheckpointManager {
 public:
  /// \brief Identity + cadence of a checkpointed run.
  struct Config {
    std::string dir;
    size_t checkpoint_every = 8;  ///< Snapshot every K iterations.
    RunKind kind = RunKind::kBatch;
    uint64_t options_fp = 0;
    uint64_t corpus_fp = 0;
  };

  /// \brief What Recover() reconstructed.
  struct Recovered {
    EngineState state;           ///< Snapshot state (WAL not yet applied).
    std::vector<WalEntry> wal;   ///< Entries to replay on top.
    uint64_t epoch = 0;          ///< Epoch the state came from.
    bool fell_back = false;      ///< Newest snapshot was corrupt; used older.
    bool wal_torn = false;       ///< A torn WAL tail was dropped.
  };

  /// Opens (creating if needed) a checkpoint directory for writing.
  /// Existing epochs are never overwritten: new snapshots continue
  /// after the highest epoch found.
  static StatusOr<std::unique_ptr<CheckpointManager>> Open(
      const Config& config, obs::RunTrace* trace);

  /// Reads the newest decodable snapshot plus its WAL. Falls back to
  /// the previous epoch when the newest snapshot is corrupt (with a
  /// `persist.snapshot_corrupt` trace event). NotFound when the
  /// directory holds no snapshot at all; FailedPrecondition when the
  /// snapshot exists but was written under different options, a
  /// different corpus, or the other run kind.
  static StatusOr<Recovered> Recover(const Config& config,
                                     obs::RunTrace* trace);

  ~CheckpointManager();
  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  /// True when `iteration` is checkpoint_every or more passes past the
  /// last snapshot.
  bool SnapshotDue(size_t iteration) const;

  /// Writes a snapshot as a new epoch and rotates the WAL; prunes
  /// epochs older than the previous one.
  Status WriteSnapshot(const EngineState& state);

  /// Appends one pass to the current epoch's WAL (fsync'd). `entry`'s
  /// epoch/seq fields are stamped here.
  Status AppendWal(WalEntry entry);

  uint64_t epoch() const { return current_epoch_; }

 private:
  explicit CheckpointManager(Config config, obs::RunTrace* trace)
      : config_(std::move(config)), trace_(trace) {}

  std::string SnapshotPath(uint64_t epoch) const;
  std::string WalPath(uint64_t epoch) const;
  void RemoveOldEpochs(uint64_t newest);
  void CloseWal();
  /// SIGKILLs the process when HERA_PERSIST_CRASH says this durable op
  /// is the one to die after.
  void CrashHookTick(const char* op);

  Config config_;
  obs::RunTrace* trace_ = nullptr;

  uint64_t next_epoch_ = 0;     ///< Epoch the next snapshot will use.
  uint64_t current_epoch_ = 0;  ///< Epoch of the last written snapshot.
  bool have_snapshot_ = false;
  size_t last_snapshot_iteration_ = 0;
  uint64_t wal_seq_ = 0;
  int wal_fd_ = -1;

  // HERA_PERSIST_CRASH state.
  std::string crash_op_;
  long crash_after_ = 0;
  long crash_seen_ = 0;
};

}  // namespace persist
}  // namespace hera

#endif  // HERA_PERSIST_CHECKPOINT_H_
