#include "persist/codec.h"

#include <array>
#include <cstring>

namespace hera {
namespace persist {

uint32_t Crc32(const void* data, size_t len) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void ByteWriter::PutF64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

Status ByteReader::Need(size_t n) {
  if (remaining() < n) {
    return Status::IOError("checkpoint payload truncated (need " +
                           std::to_string(n) + " bytes, have " +
                           std::to_string(remaining()) + ")");
  }
  return Status::OK();
}

Status ByteReader::GetU8(uint8_t* v) {
  HERA_RETURN_NOT_OK(Need(1));
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status ByteReader::GetU32(uint32_t* v) {
  HERA_RETURN_NOT_OK(Need(4));
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status ByteReader::GetU64(uint64_t* v) {
  HERA_RETURN_NOT_OK(Need(8));
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status ByteReader::GetF64(double* v) {
  uint64_t bits = 0;
  HERA_RETURN_NOT_OK(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::GetString(std::string* v) {
  uint32_t len = 0;
  HERA_RETURN_NOT_OK(GetU32(&len));
  HERA_RETURN_NOT_OK(Need(len));
  v->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

void AppendBlock(std::string* out, std::string_view payload) {
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload));
  out->append(frame.str());
  out->append(payload.data(), payload.size());
}

Status ReadBlock(std::string_view file, size_t* pos, std::string* payload) {
  if (*pos == file.size()) return Status::NotFound("end of file");
  if (file.size() - *pos < 8) {
    return Status::IOError("truncated block header at offset " +
                           std::to_string(*pos));
  }
  ByteReader header(file.substr(*pos, 8));
  uint32_t len = 0;
  uint32_t crc = 0;
  HERA_RETURN_NOT_OK(header.GetU32(&len));
  HERA_RETURN_NOT_OK(header.GetU32(&crc));
  if (file.size() - *pos - 8 < len) {
    return Status::IOError("truncated block payload at offset " +
                           std::to_string(*pos) + " (want " +
                           std::to_string(len) + " bytes)");
  }
  std::string_view body = file.substr(*pos + 8, len);
  if (Crc32(body) != crc) {
    return Status::IOError("block CRC mismatch at offset " +
                           std::to_string(*pos));
  }
  payload->assign(body.data(), body.size());
  *pos += 8 + len;
  return Status::OK();
}

}  // namespace persist
}  // namespace hera
