// Binary codec primitives for the persistence layer.
//
// Every durable artifact (snapshot, write-ahead log) is a sequence of
// checksummed blocks:
//
//   [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// written little-endian regardless of host order. A reader validates
// the CRC before interpreting a single payload byte, so torn writes
// and bit flips surface as a clean Status error, never as silently
// wrong state. Within a payload, ByteWriter/ByteReader provide
// bounds-checked fixed-width scalars and length-prefixed strings;
// ByteReader never reads past the payload it was given.

#ifndef HERA_PERSIST_CODEC_H_
#define HERA_PERSIST_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace hera {
namespace persist {

/// CRC-32 (IEEE 802.3 polynomial) of `len` bytes.
uint32_t Crc32(const void* data, size_t len);
inline uint32_t Crc32(std::string_view s) { return Crc32(s.data(), s.size()); }

/// \brief Append-only little-endian buffer builder.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
  /// Doubles travel as their IEEE-754 bit pattern (exact round-trip).
  void PutF64(double v);
  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  void PutBytes(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// \brief Bounds-checked reader over one payload. Every getter returns
/// IOError instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetF64(double* v);
  Status GetString(std::string* v);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

/// Appends one framed block ([len][crc][payload]) to `out`.
void AppendBlock(std::string* out, std::string_view payload);

/// Reads the block starting at `*pos` in `file` and advances `*pos`
/// past it. Returns NotFound at a clean end of file (*pos ==
/// file.size()), IOError on a truncated frame or CRC mismatch.
Status ReadBlock(std::string_view file, size_t* pos, std::string* payload);

}  // namespace persist
}  // namespace hera

#endif  // HERA_PERSIST_CODEC_H_
