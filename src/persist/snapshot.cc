#include "persist/snapshot.h"

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "persist/codec.h"

namespace hera {
namespace persist {

namespace {

constexpr char kMagic[8] = {'H', 'E', 'R', 'A', 'S', 'N', 'A', 'P'};

// ---------------------------------------------------------------------
// FNV-1a 64-bit fingerprinting.

class Fnv1a {
 public:
  void MixBytes(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < len; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ULL;
    }
  }
  void MixU8(uint8_t v) { MixBytes(&v, 1); }
  void MixU32(uint32_t v) {
    uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
    MixBytes(b, 4);
  }
  void MixU64(uint64_t v) {
    uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
    MixBytes(b, 8);
  }
  void MixF64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    MixU64(bits);
  }
  void MixString(std::string_view s) {
    MixU64(s.size());
    MixBytes(s.data(), s.size());
  }
  uint64_t hash() const { return h_; }

 private:
  uint64_t h_ = 14695981039346656037ULL;
};

void MixValue(Fnv1a* f, const Value& v) {
  f->MixU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kString:
      f->MixString(v.AsString());
      break;
    case ValueType::kNumber:
      f->MixF64(v.AsNumber());
      break;
  }
}

void MixSchemas(Fnv1a* f, const SchemaCatalog& schemas) {
  f->MixU64(schemas.size());
  for (uint32_t s = 0; s < schemas.size(); ++s) {
    const Schema& schema = schemas.Get(s);
    f->MixString(schema.name());
    f->MixU64(schema.size());
    for (const std::string& attr : schema.attributes()) f->MixString(attr);
  }
}

// ---------------------------------------------------------------------
// Scalar encode/decode helpers.

void PutLabel(ByteWriter* w, const ValueLabel& l) {
  w->PutU32(l.rid);
  w->PutU32(l.fid);
  w->PutU32(l.vid);
}

Status GetLabel(ByteReader* r, ValueLabel* l) {
  HERA_RETURN_NOT_OK(r->GetU32(&l->rid));
  HERA_RETURN_NOT_OK(r->GetU32(&l->fid));
  return r->GetU32(&l->vid);
}

void PutValue(ByteWriter* w, const Value& v) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kString:
      w->PutString(v.AsString());
      break;
    case ValueType::kNumber:
      w->PutF64(v.AsNumber());
      break;
  }
}

Status GetValue(ByteReader* r, Value* v) {
  uint8_t tag = 0;
  HERA_RETURN_NOT_OK(r->GetU8(&tag));
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *v = Value();
      return Status::OK();
    case ValueType::kString: {
      std::string s;
      HERA_RETURN_NOT_OK(r->GetString(&s));
      *v = Value(std::move(s));
      return Status::OK();
    }
    case ValueType::kNumber: {
      double d = 0.0;
      HERA_RETURN_NOT_OK(r->GetF64(&d));
      *v = Value(d);
      return Status::OK();
    }
    default:
      return Status::IOError("unknown value tag " + std::to_string(tag));
  }
}

/// Rejects element counts a corrupted file could not legitimately hold
/// (every element is at least one byte), so bogus counts fail cleanly
/// instead of driving a huge reserve().
Status CheckCount(const ByteReader& r, uint64_t count) {
  if (count > r.remaining()) {
    return Status::IOError("corrupt element count " + std::to_string(count));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Section payloads.

std::string EncodeHeader(const SnapshotHeader& h) {
  ByteWriter w;
  w.PutBytes(kMagic, sizeof(kMagic));
  w.PutU32(kSnapshotVersion);
  w.PutU8(static_cast<uint8_t>(h.kind));
  w.PutU64(h.options_fp);
  w.PutU64(h.corpus_fp);
  w.PutU64(h.epoch);
  w.PutU64(h.iteration);
  return w.Take();
}

Status DecodeHeader(std::string_view payload, SnapshotHeader* h) {
  ByteReader r(payload);
  char magic[8];
  for (char& c : magic) {
    uint8_t b = 0;
    HERA_RETURN_NOT_OK(r.GetU8(&b));
    c = static_cast<char>(b);
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("bad snapshot magic");
  }
  uint32_t version = 0;
  HERA_RETURN_NOT_OK(r.GetU32(&version));
  if (version != kSnapshotVersion) {
    return Status::IOError("unsupported snapshot version " +
                           std::to_string(version));
  }
  uint8_t kind = 0;
  HERA_RETURN_NOT_OK(r.GetU8(&kind));
  if (kind > static_cast<uint8_t>(RunKind::kIncremental)) {
    return Status::IOError("unknown run kind " + std::to_string(kind));
  }
  h->kind = static_cast<RunKind>(kind);
  HERA_RETURN_NOT_OK(r.GetU64(&h->options_fp));
  HERA_RETURN_NOT_OK(r.GetU64(&h->corpus_fp));
  HERA_RETURN_NOT_OK(r.GetU64(&h->epoch));
  return r.GetU64(&h->iteration);
}

std::string EncodeCore(const EngineState& s) {
  ByteWriter w;
  w.PutU64(s.num_records);
  for (uint32_t label : s.labels) w.PutU32(label);

  const HeraStats& st = s.stats;
  w.PutU64(st.index_size);
  w.PutU64(st.iterations);
  w.PutU64(st.comparisons);
  w.PutU64(st.candidates);
  w.PutU64(st.direct_merges);
  w.PutU64(st.pruned_by_bound);
  w.PutU64(st.merges);
  w.PutU64(st.decided_schema_matchings);
  w.PutF64(st.avg_simplified_nodes);
  w.PutF64(st.index_build_ms);
  w.PutF64(st.total_ms);
  w.PutU8(static_cast<uint8_t>(st.outcome));
  w.PutU64(st.shed_index_pairs);
  w.PutU64(st.shed_posting_entries);
  w.PutU64(st.deferred_candidate_groups);
  w.PutU8(st.join_truncated ? 1 : 0);
  w.PutU64(st.merge_sequence.size());
  for (const auto& [i, j] : st.merge_sequence) {
    w.PutU32(i);
    w.PutU32(j);
  }

  w.PutU32(s.indexed_watermark);
  w.PutU64(s.join_shed_posting);
  w.PutF64(s.simplified_nodes_sum);
  w.PutU64(s.simplified_nodes_count);

  w.PutU64(s.index_next_pid);
  w.PutU64(s.index_probe_count);
  w.PutU64(s.index_shed_pairs);
  w.PutU64(s.index_shed_posting);
  w.PutU64(s.num_predictions);

  w.PutU8(s.loop_first_pass ? 1 : 0);
  w.PutU64(s.loop_dirty.size());
  for (uint32_t rid : s.loop_dirty) w.PutU32(rid);
  w.PutU64(s.loop_deferred.size());
  for (const auto& [a, b] : s.loop_deferred) {
    w.PutU32(a);
    w.PutU32(b);
  }

  // v2: progressive-mode stats. Appended last so the field order above
  // matches v1 byte-for-byte up to here.
  w.PutU64(st.shed_join_candidates);
  w.PutU64(st.frontier_groups);
  w.PutU64(st.budget_deferred_groups);
  return w.Take();
}

Status DecodeCore(std::string_view payload, EngineState* s) {
  ByteReader r(payload);
  HERA_RETURN_NOT_OK(r.GetU64(&s->num_records));
  HERA_RETURN_NOT_OK(CheckCount(r, s->num_records));
  s->labels.resize(s->num_records);
  for (uint32_t& label : s->labels) HERA_RETURN_NOT_OK(r.GetU32(&label));

  HeraStats& st = s->stats;
  uint64_t u = 0;
  HERA_RETURN_NOT_OK(r.GetU64(&u));
  st.index_size = u;
  HERA_RETURN_NOT_OK(r.GetU64(&u));
  st.iterations = u;
  HERA_RETURN_NOT_OK(r.GetU64(&u));
  st.comparisons = u;
  HERA_RETURN_NOT_OK(r.GetU64(&u));
  st.candidates = u;
  HERA_RETURN_NOT_OK(r.GetU64(&u));
  st.direct_merges = u;
  HERA_RETURN_NOT_OK(r.GetU64(&u));
  st.pruned_by_bound = u;
  HERA_RETURN_NOT_OK(r.GetU64(&u));
  st.merges = u;
  HERA_RETURN_NOT_OK(r.GetU64(&u));
  st.decided_schema_matchings = u;
  HERA_RETURN_NOT_OK(r.GetF64(&st.avg_simplified_nodes));
  HERA_RETURN_NOT_OK(r.GetF64(&st.index_build_ms));
  HERA_RETURN_NOT_OK(r.GetF64(&st.total_ms));
  uint8_t b = 0;
  HERA_RETURN_NOT_OK(r.GetU8(&b));
  if (b > static_cast<uint8_t>(RunOutcome::kTruncatedCancelled)) {
    return Status::IOError("unknown run outcome " + std::to_string(b));
  }
  st.outcome = static_cast<RunOutcome>(b);
  HERA_RETURN_NOT_OK(r.GetU64(&u));
  st.shed_index_pairs = u;
  HERA_RETURN_NOT_OK(r.GetU64(&u));
  st.shed_posting_entries = u;
  HERA_RETURN_NOT_OK(r.GetU64(&u));
  st.deferred_candidate_groups = u;
  HERA_RETURN_NOT_OK(r.GetU8(&b));
  st.join_truncated = b != 0;
  uint64_t count = 0;
  HERA_RETURN_NOT_OK(r.GetU64(&count));
  HERA_RETURN_NOT_OK(CheckCount(r, count));
  st.merge_sequence.resize(count);
  for (auto& [i, j] : st.merge_sequence) {
    HERA_RETURN_NOT_OK(r.GetU32(&i));
    HERA_RETURN_NOT_OK(r.GetU32(&j));
  }

  HERA_RETURN_NOT_OK(r.GetU32(&s->indexed_watermark));
  HERA_RETURN_NOT_OK(r.GetU64(&s->join_shed_posting));
  HERA_RETURN_NOT_OK(r.GetF64(&s->simplified_nodes_sum));
  HERA_RETURN_NOT_OK(r.GetU64(&s->simplified_nodes_count));

  HERA_RETURN_NOT_OK(r.GetU64(&s->index_next_pid));
  HERA_RETURN_NOT_OK(r.GetU64(&s->index_probe_count));
  HERA_RETURN_NOT_OK(r.GetU64(&s->index_shed_pairs));
  HERA_RETURN_NOT_OK(r.GetU64(&s->index_shed_posting));
  HERA_RETURN_NOT_OK(r.GetU64(&s->num_predictions));

  HERA_RETURN_NOT_OK(r.GetU8(&b));
  s->loop_first_pass = b != 0;
  HERA_RETURN_NOT_OK(r.GetU64(&count));
  HERA_RETURN_NOT_OK(CheckCount(r, count));
  s->loop_dirty.resize(count);
  for (uint32_t& rid : s->loop_dirty) HERA_RETURN_NOT_OK(r.GetU32(&rid));
  HERA_RETURN_NOT_OK(r.GetU64(&count));
  HERA_RETURN_NOT_OK(CheckCount(r, count));
  s->loop_deferred.resize(count);
  for (auto& [a2, b2] : s->loop_deferred) {
    HERA_RETURN_NOT_OK(r.GetU32(&a2));
    HERA_RETURN_NOT_OK(r.GetU32(&b2));
  }

  HERA_RETURN_NOT_OK(r.GetU64(&u));
  st.shed_join_candidates = u;
  HERA_RETURN_NOT_OK(r.GetU64(&u));
  st.frontier_groups = u;
  HERA_RETURN_NOT_OK(r.GetU64(&u));
  st.budget_deferred_groups = u;
  if (!r.AtEnd()) return Status::IOError("trailing bytes in core section");
  return Status::OK();
}

std::string EncodeRecords(const EngineState& s) {
  ByteWriter w;
  w.PutU64(s.super_records.size());
  for (const SuperRecord& sr : s.super_records) {
    w.PutU32(sr.rid());
    w.PutU32(static_cast<uint32_t>(sr.members().size()));
    for (uint32_t m : sr.members()) w.PutU32(m);
    w.PutU32(static_cast<uint32_t>(sr.num_fields()));
    for (const Field& field : sr.fields()) {
      w.PutU32(static_cast<uint32_t>(field.size()));
      for (const FieldValue& fv : field.values()) {
        PutValue(&w, fv.value);
        w.PutU32(fv.origin.schema_id);
        w.PutU32(fv.origin.attr_index);
      }
    }
  }
  return w.Take();
}

Status DecodeRecords(std::string_view payload, EngineState* s) {
  ByteReader r(payload);
  uint64_t count = 0;
  HERA_RETURN_NOT_OK(r.GetU64(&count));
  HERA_RETURN_NOT_OK(CheckCount(r, count));
  s->super_records.clear();
  s->super_records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t rid = 0;
    HERA_RETURN_NOT_OK(r.GetU32(&rid));
    uint32_t num_members = 0;
    HERA_RETURN_NOT_OK(r.GetU32(&num_members));
    HERA_RETURN_NOT_OK(CheckCount(r, num_members));
    std::vector<uint32_t> members(num_members);
    for (uint32_t& m : members) HERA_RETURN_NOT_OK(r.GetU32(&m));
    uint32_t num_fields = 0;
    HERA_RETURN_NOT_OK(r.GetU32(&num_fields));
    HERA_RETURN_NOT_OK(CheckCount(r, num_fields));
    std::vector<Field> fields;
    fields.reserve(num_fields);
    for (uint32_t f = 0; f < num_fields; ++f) {
      uint32_t num_values = 0;
      HERA_RETURN_NOT_OK(r.GetU32(&num_values));
      HERA_RETURN_NOT_OK(CheckCount(r, num_values));
      std::vector<FieldValue> values;
      values.reserve(num_values);
      for (uint32_t v = 0; v < num_values; ++v) {
        FieldValue fv;
        HERA_RETURN_NOT_OK(GetValue(&r, &fv.value));
        HERA_RETURN_NOT_OK(r.GetU32(&fv.origin.schema_id));
        HERA_RETURN_NOT_OK(r.GetU32(&fv.origin.attr_index));
        values.push_back(std::move(fv));
      }
      fields.emplace_back(std::move(values));
    }
    s->super_records.push_back(
        SuperRecord::FromParts(rid, std::move(fields), std::move(members)));
  }
  if (!r.AtEnd()) return Status::IOError("trailing bytes in records section");
  return Status::OK();
}

std::string EncodeIndex(const EngineState& s) {
  ByteWriter w;
  w.PutU64(s.index_pairs.size());
  for (const IndexedPair& p : s.index_pairs) {
    w.PutU64(p.pid);
    PutLabel(&w, p.a);
    PutLabel(&w, p.b);
    w.PutF64(p.sim);
  }
  return w.Take();
}

Status DecodeIndex(std::string_view payload, EngineState* s) {
  ByteReader r(payload);
  uint64_t count = 0;
  HERA_RETURN_NOT_OK(r.GetU64(&count));
  HERA_RETURN_NOT_OK(CheckCount(r, count));
  s->index_pairs.resize(count);
  for (IndexedPair& p : s->index_pairs) {
    HERA_RETURN_NOT_OK(r.GetU64(&p.pid));
    HERA_RETURN_NOT_OK(GetLabel(&r, &p.a));
    HERA_RETURN_NOT_OK(GetLabel(&r, &p.b));
    HERA_RETURN_NOT_OK(r.GetF64(&p.sim));
  }
  if (!r.AtEnd()) return Status::IOError("trailing bytes in index section");
  return Status::OK();
}

std::string EncodeVotes(const EngineState& s) {
  ByteWriter w;
  w.PutU64(s.votes.size());
  for (const ExportedVote& v : s.votes) {
    w.PutU32(v.attr.schema_id);
    w.PutU32(v.attr.attr_index);
    w.PutU32(v.other_schema);
    w.PutU64(v.total);
    w.PutU32(static_cast<uint32_t>(v.counts.size()));
    for (const auto& [partner, n] : v.counts) {
      w.PutU32(partner);
      w.PutU64(n);
    }
  }
  return w.Take();
}

Status DecodeVotes(std::string_view payload, EngineState* s) {
  ByteReader r(payload);
  uint64_t count = 0;
  HERA_RETURN_NOT_OK(r.GetU64(&count));
  HERA_RETURN_NOT_OK(CheckCount(r, count));
  s->votes.resize(count);
  for (ExportedVote& v : s->votes) {
    HERA_RETURN_NOT_OK(r.GetU32(&v.attr.schema_id));
    HERA_RETURN_NOT_OK(r.GetU32(&v.attr.attr_index));
    HERA_RETURN_NOT_OK(r.GetU32(&v.other_schema));
    HERA_RETURN_NOT_OK(r.GetU64(&v.total));
    uint32_t num_counts = 0;
    HERA_RETURN_NOT_OK(r.GetU32(&num_counts));
    HERA_RETURN_NOT_OK(CheckCount(r, num_counts));
    v.counts.resize(num_counts);
    for (auto& [partner, n] : v.counts) {
      HERA_RETURN_NOT_OK(r.GetU32(&partner));
      HERA_RETURN_NOT_OK(r.GetU64(&n));
    }
  }
  if (!r.AtEnd()) return Status::IOError("trailing bytes in votes section");
  return Status::OK();
}

}  // namespace

std::string EncodeSnapshot(const SnapshotHeader& header,
                           const EngineState& state) {
  std::string out;
  AppendBlock(&out, EncodeHeader(header));
  AppendBlock(&out, EncodeCore(state));
  AppendBlock(&out, EncodeRecords(state));
  AppendBlock(&out, EncodeIndex(state));
  AppendBlock(&out, EncodeVotes(state));
  return out;
}

StatusOr<DecodedSnapshot> DecodeSnapshot(std::string_view file) {
  DecodedSnapshot out;
  size_t pos = 0;
  std::string payload;

  Status st = ReadBlock(file, &pos, &payload);
  if (!st.ok()) return Status::IOError("snapshot header: " + st.message());
  HERA_RETURN_NOT_OK(DecodeHeader(payload, &out.header));

  st = ReadBlock(file, &pos, &payload);
  if (!st.ok()) return Status::IOError("snapshot core: " + st.message());
  HERA_RETURN_NOT_OK(DecodeCore(payload, &out.state));

  st = ReadBlock(file, &pos, &payload);
  if (!st.ok()) return Status::IOError("snapshot records: " + st.message());
  HERA_RETURN_NOT_OK(DecodeRecords(payload, &out.state));

  st = ReadBlock(file, &pos, &payload);
  if (!st.ok()) return Status::IOError("snapshot index: " + st.message());
  HERA_RETURN_NOT_OK(DecodeIndex(payload, &out.state));

  st = ReadBlock(file, &pos, &payload);
  if (!st.ok()) return Status::IOError("snapshot votes: " + st.message());
  HERA_RETURN_NOT_OK(DecodeVotes(payload, &out.state));

  if (pos != file.size()) {
    return Status::IOError("trailing bytes after snapshot votes section");
  }
  return out;
}

uint64_t FingerprintOptions(const HeraOptions& options) {
  Fnv1a f;
  f.MixString("hera-options-v1");
  f.MixF64(options.xi);
  f.MixF64(options.delta);
  // A custom black-box metric cannot be fingerprinted; record its
  // presence so at least metric-name/custom confusion is caught.
  if (options.similarity != nullptr) {
    f.MixString("<custom-similarity>");
  } else {
    f.MixString(options.metric);
  }
  f.MixU8(options.use_prefix_filter_join ? 1 : 0);
  f.MixU8(options.enable_schema_voting ? 1 : 0);
  f.MixF64(options.vote_prior_p);
  f.MixF64(options.vote_rho);
  f.MixU8(options.tight_bounds ? 1 : 0);
  return f.hash();
}

uint64_t FingerprintSchemas(const SchemaCatalog& schemas) {
  Fnv1a f;
  f.MixString("hera-schemas-v1");
  MixSchemas(&f, schemas);
  return f.hash();
}

uint64_t FingerprintDataset(const Dataset& dataset) {
  Fnv1a f;
  f.MixString("hera-dataset-v1");
  MixSchemas(&f, dataset.schemas());
  f.MixU64(dataset.size());
  for (const Record& rec : dataset.records()) {
    f.MixU32(rec.schema_id());
    f.MixU64(rec.size());
    for (const Value& v : rec.values()) MixValue(&f, v);
  }
  return f.hash();
}

}  // namespace persist
}  // namespace hera
