// Snapshot codec: a full serialization of the resolution engine's
// mutable state at an iteration boundary.
//
// A snapshot file is a sequence of CRC-framed blocks (see codec.h):
//
//   block 0  header   magic "HERASNAP", format version, run kind,
//                     options/corpus fingerprints, epoch, iteration
//   block 1  core     union-find labels, HeraStats (incl. the full
//                     merge_sequence), loop state, index/vote counters
//   block 2  records  every live super record (fields, values, members)
//   block 3  index    every value pair with its stable pid
//   block 4  votes    schema-matching vote tallies
//
// Restoring a snapshot and replaying the epoch's WAL reconstructs the
// engine byte-for-byte: pids are preserved (they are an index sort
// tie-breaker), stats counters are exact, and the fixpoint loop's
// dirty/deferred sets resume where the pass left off. The fingerprints
// guard against resuming under different options or a different corpus,
// which would silently produce garbage.

#ifndef HERA_PERSIST_SNAPSHOT_H_
#define HERA_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "core/options.h"
#include "index/value_pair_index.h"
#include "record/dataset.h"
#include "record/super_record.h"
#include "schema/majority_vote.h"

namespace hera {
namespace persist {

/// Current snapshot format version. Bump on any layout change; readers
/// reject versions they do not know. v2 added the progressive-mode
/// stats (frontier_groups, budget_deferred_groups, shed_join_candidates)
/// to the core block and two per-pass deltas to WAL entries.
inline constexpr uint32_t kSnapshotVersion = 2;

/// Run kind recorded in the header: resuming a batch checkpoint through
/// IncrementalHera (or vice versa) is refused.
enum class RunKind : uint8_t { kBatch = 0, kIncremental = 1 };

/// \brief Complete serializable state of a ResolutionEngine.
struct EngineState {
  // Union-find: labels[r] is the representative of record r.
  uint64_t num_records = 0;
  std::vector<uint32_t> labels;

  // Live super records (the engine's active set).
  std::vector<SuperRecord> super_records;

  // Value-pair index contents; pids are preserved exactly because pid
  // is the index key tie-breaker for equal-similarity pairs.
  std::vector<IndexedPair> index_pairs;
  uint64_t index_next_pid = 0;
  uint64_t index_probe_count = 0;
  uint64_t index_shed_pairs = 0;
  uint64_t index_shed_posting = 0;

  // Schema-matching vote tallies.
  std::vector<ExportedVote> votes;
  uint64_t num_predictions = 0;

  // Run statistics, including the full merge_sequence.
  HeraStats stats;

  // Engine bookkeeping outside HeraStats.
  uint32_t indexed_watermark = 0;
  uint64_t join_shed_posting = 0;
  double simplified_nodes_sum = 0.0;
  uint64_t simplified_nodes_count = 0;

  // Fixpoint-loop state at the snapshot boundary. first_pass=true with
  // empty dirty/deferred means "rescan everything" (a fresh loop).
  bool loop_first_pass = true;
  std::vector<uint32_t> loop_dirty;  // sorted rids
  std::vector<std::pair<uint32_t, uint32_t>> loop_deferred;
};

/// \brief Snapshot file header.
struct SnapshotHeader {
  RunKind kind = RunKind::kBatch;
  uint64_t options_fp = 0;
  uint64_t corpus_fp = 0;
  uint64_t epoch = 0;
  uint64_t iteration = 0;
};

/// Serializes header + state into a framed snapshot file image.
std::string EncodeSnapshot(const SnapshotHeader& header,
                           const EngineState& state);

/// Decoded snapshot: header + state.
struct DecodedSnapshot {
  SnapshotHeader header;
  EngineState state;
};

/// Parses a snapshot file image. Any truncation, bit flip, bad magic,
/// or unknown version yields an IOError; the caller falls back to the
/// previous epoch's snapshot.
StatusOr<DecodedSnapshot> DecodeSnapshot(std::string_view file);

/// FNV-1a fingerprint of the options that shape resolution results
/// (xi, delta, metric, bounds/join/voting switches and parameters).
/// Deliberately excludes max_iterations, num_threads, guard, report and
/// checkpoint settings: a resumed run may tighten or relax those.
uint64_t FingerprintOptions(const HeraOptions& options);

/// FNV-1a fingerprint of a schema catalog (names + attribute lists).
uint64_t FingerprintSchemas(const SchemaCatalog& schemas);

/// FNV-1a fingerprint of a full dataset: schemas + every record's
/// schema id and values. Ground truth is excluded (never read by
/// resolution).
uint64_t FingerprintDataset(const Dataset& dataset);

}  // namespace persist
}  // namespace hera

#endif  // HERA_PERSIST_SNAPSHOT_H_
