#include "persist/wal.h"

#include "persist/codec.h"

namespace hera {
namespace persist {

namespace {

/// Rejects element counts larger than the bytes left in the payload
/// (every element is at least one byte) before any reserve().
Status CheckCount(const ByteReader& r, uint64_t count) {
  if (count > r.remaining()) {
    return Status::IOError("corrupt element count " + std::to_string(count));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeWalEntry(const WalEntry& entry) {
  ByteWriter w;
  w.PutU64(entry.epoch);
  w.PutU64(entry.seq);
  w.PutU64(entry.iteration);
  w.PutU64(entry.pruned);
  w.PutU64(entry.direct);
  w.PutU64(entry.candidates);
  w.PutU64(entry.comparisons);
  w.PutU64(entry.deferred_groups);
  w.PutF64(entry.simplified_sum);
  w.PutU64(entry.simplified_count);
  w.PutU64(entry.frontier_groups);
  w.PutU64(entry.budget_deferred);

  w.PutU32(static_cast<uint32_t>(entry.merges.size()));
  for (const WalMerge& m : entry.merges) {
    w.PutU32(m.i);
    w.PutU32(m.j);
    w.PutU32(static_cast<uint32_t>(m.matching.size()));
    for (const FieldMatch& fm : m.matching) {
      w.PutU32(fm.field_a);
      w.PutU32(fm.field_b);
      w.PutF64(fm.sim);
    }
    w.PutU32(static_cast<uint32_t>(m.predictions.size()));
    for (const auto& [a, b] : m.predictions) {
      w.PutU32(a.schema_id);
      w.PutU32(a.attr_index);
      w.PutU32(b.schema_id);
      w.PutU32(b.attr_index);
    }
  }

  w.PutU32(static_cast<uint32_t>(entry.deferred_after.size()));
  for (const auto& [a, b] : entry.deferred_after) {
    w.PutU32(a);
    w.PutU32(b);
  }
  return w.Take();
}

StatusOr<WalEntry> DecodeWalEntry(std::string_view payload) {
  WalEntry e;
  ByteReader r(payload);
  HERA_RETURN_NOT_OK(r.GetU64(&e.epoch));
  HERA_RETURN_NOT_OK(r.GetU64(&e.seq));
  HERA_RETURN_NOT_OK(r.GetU64(&e.iteration));
  HERA_RETURN_NOT_OK(r.GetU64(&e.pruned));
  HERA_RETURN_NOT_OK(r.GetU64(&e.direct));
  HERA_RETURN_NOT_OK(r.GetU64(&e.candidates));
  HERA_RETURN_NOT_OK(r.GetU64(&e.comparisons));
  HERA_RETURN_NOT_OK(r.GetU64(&e.deferred_groups));
  HERA_RETURN_NOT_OK(r.GetF64(&e.simplified_sum));
  HERA_RETURN_NOT_OK(r.GetU64(&e.simplified_count));
  HERA_RETURN_NOT_OK(r.GetU64(&e.frontier_groups));
  HERA_RETURN_NOT_OK(r.GetU64(&e.budget_deferred));

  uint32_t num_merges = 0;
  HERA_RETURN_NOT_OK(r.GetU32(&num_merges));
  HERA_RETURN_NOT_OK(CheckCount(r, num_merges));
  e.merges.resize(num_merges);
  for (WalMerge& m : e.merges) {
    HERA_RETURN_NOT_OK(r.GetU32(&m.i));
    HERA_RETURN_NOT_OK(r.GetU32(&m.j));
    uint32_t count = 0;
    HERA_RETURN_NOT_OK(r.GetU32(&count));
    HERA_RETURN_NOT_OK(CheckCount(r, count));
    m.matching.resize(count);
    for (FieldMatch& fm : m.matching) {
      HERA_RETURN_NOT_OK(r.GetU32(&fm.field_a));
      HERA_RETURN_NOT_OK(r.GetU32(&fm.field_b));
      HERA_RETURN_NOT_OK(r.GetF64(&fm.sim));
    }
    HERA_RETURN_NOT_OK(r.GetU32(&count));
    HERA_RETURN_NOT_OK(CheckCount(r, count));
    m.predictions.resize(count);
    for (auto& [a, b] : m.predictions) {
      HERA_RETURN_NOT_OK(r.GetU32(&a.schema_id));
      HERA_RETURN_NOT_OK(r.GetU32(&a.attr_index));
      HERA_RETURN_NOT_OK(r.GetU32(&b.schema_id));
      HERA_RETURN_NOT_OK(r.GetU32(&b.attr_index));
    }
  }

  uint32_t num_deferred = 0;
  HERA_RETURN_NOT_OK(r.GetU32(&num_deferred));
  HERA_RETURN_NOT_OK(CheckCount(r, num_deferred));
  e.deferred_after.resize(num_deferred);
  for (auto& [a, b] : e.deferred_after) {
    HERA_RETURN_NOT_OK(r.GetU32(&a));
    HERA_RETURN_NOT_OK(r.GetU32(&b));
  }
  if (!r.AtEnd()) return Status::IOError("trailing bytes in WAL entry");
  return e;
}

WalReadResult ReadWalImage(std::string_view file_image, uint64_t epoch) {
  WalReadResult out;
  size_t pos = 0;
  std::string payload;
  while (true) {
    Status st = ReadBlock(file_image, &pos, &payload);
    if (st.code() == StatusCode::kNotFound) break;  // Clean end of file.
    if (!st.ok()) {
      out.torn = true;  // Torn tail: the block being written at death.
      break;
    }
    StatusOr<WalEntry> entry = DecodeWalEntry(payload);
    if (!entry.ok()) {
      out.torn = true;
      break;
    }
    // A wrong epoch or a sequence break means the file does not extend
    // the snapshot we recovered; stop before it.
    if (entry->epoch != epoch || entry->seq != out.entries.size()) {
      out.torn = true;
      break;
    }
    out.entries.push_back(std::move(*entry));
  }
  return out;
}

}  // namespace persist
}  // namespace hera
