// Write-ahead log of the compare-and-merge loop.
//
// One WAL entry is appended (and fsync'd) per completed engine pass:
// the merges the pass applied — each with its field matching and the
// schema-matching predictions it recorded — plus the pass's statistic
// deltas and the deferred-group list left for the next pass. Replaying
// an entry re-applies exactly what the pass did, without re-running
// verification: SuperRecord::Merge and ValuePairIndex::ApplyMerge are
// deterministic given the logged matching, so snapshot + replay
// reconstructs the engine byte-for-byte (same merge_sequence, same
// clusters, same counters).
//
// On disk a WAL file is a sequence of CRC-framed blocks (codec.h), one
// entry per block, stamped with (epoch, seq). A torn tail — the block
// being appended when the process died — fails its CRC or length check
// and is discarded; every complete entry before it is replayed.

#ifndef HERA_PERSIST_WAL_H_
#define HERA_PERSIST_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "record/schema.h"
#include "record/super_record.h"

namespace hera {
namespace persist {

/// \brief One merge applied by a pass: absorb record j into record i
/// under the logged field matching, recording the logged predictions.
struct WalMerge {
  uint32_t i = 0;
  uint32_t j = 0;
  std::vector<FieldMatch> matching;
  std::vector<std::pair<AttrRef, AttrRef>> predictions;
};

/// \brief One completed engine pass.
struct WalEntry {
  uint64_t epoch = 0;      ///< Snapshot epoch this entry extends.
  uint64_t seq = 0;        ///< Position within the epoch, from 0.
  uint64_t iteration = 0;  ///< Engine iteration number of the pass.

  // Statistic deltas of the pass (counters not reconstructible from
  // the merges alone).
  uint64_t pruned = 0;
  uint64_t direct = 0;
  uint64_t candidates = 0;
  uint64_t comparisons = 0;
  uint64_t deferred_groups = 0;
  double simplified_sum = 0.0;
  uint64_t simplified_count = 0;
  /// Groups that entered best-first frontier ordering this pass
  /// (progressive mode; 0 otherwise).
  uint64_t frontier_groups = 0;
  /// Groups deferred unverified at a budget/guard cut this pass.
  uint64_t budget_deferred = 0;

  std::vector<WalMerge> merges;
  /// Candidate groups the pass deferred to the next iteration.
  std::vector<std::pair<uint32_t, uint32_t>> deferred_after;
};

/// Serializes one entry (payload only; the caller frames it).
std::string EncodeWalEntry(const WalEntry& entry);

/// Parses one entry payload.
StatusOr<WalEntry> DecodeWalEntry(std::string_view payload);

/// \brief Result of reading a WAL file.
struct WalReadResult {
  std::vector<WalEntry> entries;  ///< Complete, in-sequence entries.
  bool torn = false;              ///< True when a trailing partial/corrupt
                                  ///< block (or sequence break) was dropped.
};

/// Reads every complete entry of `file_image` that belongs to `epoch`
/// and continues the 0-based sequence. The first bad block or sequence
/// break marks the tail as torn; entries before it are returned.
WalReadResult ReadWalImage(std::string_view file_image, uint64_t epoch);

}  // namespace persist
}  // namespace hera

#endif  // HERA_PERSIST_WAL_H_
