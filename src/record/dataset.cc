#include "record/dataset.h"

#include <set>
#include <unordered_set>

namespace hera {

uint32_t Dataset::AddRecord(uint32_t schema_id, std::vector<Value> values) {
  uint32_t id = static_cast<uint32_t>(records_.size());
  records_.emplace_back(id, schema_id, std::move(values));
  return id;
}

size_t Dataset::NumEntities() const {
  if (!has_ground_truth()) return 0;
  std::unordered_set<uint32_t> entities(entity_of_.begin(), entity_of_.end());
  return entities.size();
}

size_t Dataset::NumDistinctAttributes() const {
  if (!canonical_attr_.empty()) {
    std::unordered_set<uint32_t> concepts;
    for (const auto& [ref, concept_id] : canonical_attr_) concepts.insert(concept_id);
    return concepts.size();
  }
  std::set<std::string> names;
  for (uint32_t s = 0; s < schemas_.size(); ++s) {
    for (const auto& attr : schemas_.Get(s).attributes()) names.insert(attr);
  }
  return names.size();
}

Status Dataset::Validate() const {
  for (const Record& r : records_) {
    if (r.schema_id() >= schemas_.size()) {
      return Status::InvalidArgument("record " + std::to_string(r.id()) +
                                     " references unknown schema " +
                                     std::to_string(r.schema_id()));
    }
    if (r.size() != schemas_.Get(r.schema_id()).size()) {
      return Status::InvalidArgument(
          "record " + std::to_string(r.id()) + " has " +
          std::to_string(r.size()) + " values but schema has " +
          std::to_string(schemas_.Get(r.schema_id()).size()));
    }
  }
  if (!entity_of_.empty() && entity_of_.size() != records_.size()) {
    return Status::InvalidArgument("ground truth size mismatch");
  }
  for (const auto& [ref, concept_id] : canonical_attr_) {
    (void)concept_id;
    if (ref.schema_id >= schemas_.size() ||
        ref.attr_index >= schemas_.Get(ref.schema_id).size()) {
      return Status::InvalidArgument("canonical_attr references unknown attribute");
    }
  }
  return Status::OK();
}

}  // namespace hera
