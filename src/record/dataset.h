// Dataset: a record set R with heterogeneous schemas plus (optional)
// ground truth used only for evaluation — HERA itself never reads it.

#ifndef HERA_RECORD_DATASET_H_
#define HERA_RECORD_DATASET_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "record/record.h"
#include "record/schema.h"

namespace hera {

/// \brief A heterogeneous record collection.
///
/// Records are stored densely; record ids equal vector positions.
/// `entity_of` (when ground truth is known) maps record id to entity
/// id. `canonical_attr` maps each (schema, attribute) to the id of the
/// real-world attribute concept_id it denotes — the manually-curated
/// "distinct attributes" of the paper's Table I; used only to count
/// distinct attributes and to score schema-matching predictions.
class Dataset {
 public:
  Dataset() = default;

  SchemaCatalog& schemas() { return schemas_; }
  const SchemaCatalog& schemas() const { return schemas_; }

  /// Appends a record built from `values` under `schema_id`; assigns
  /// and returns its id.
  uint32_t AddRecord(uint32_t schema_id, std::vector<Value> values);

  const std::vector<Record>& records() const { return records_; }
  const Record& record(uint32_t id) const { return records_[id]; }
  size_t size() const { return records_.size(); }

  /// Ground truth entity ids, parallel to records(). Empty if unknown.
  std::vector<uint32_t>& entity_of() { return entity_of_; }
  const std::vector<uint32_t>& entity_of() const { return entity_of_; }
  bool has_ground_truth() const { return entity_of_.size() == records_.size(); }

  /// Number of distinct ground-truth entities (0 without ground truth).
  size_t NumEntities() const;

  /// Canonical attribute concept_id ids (see class comment).
  std::map<AttrRef, uint32_t>& canonical_attr() { return canonical_attr_; }
  const std::map<AttrRef, uint32_t>& canonical_attr() const {
    return canonical_attr_;
  }

  /// Number of distinct attribute concepts across all schemas; falls
  /// back to counting distinct attribute names when no canonical map
  /// was provided.
  size_t NumDistinctAttributes() const;

  /// Validates internal consistency (value counts match schema sizes,
  /// schema ids in range, ground truth length).
  Status Validate() const;

 private:
  SchemaCatalog schemas_;
  std::vector<Record> records_;
  std::vector<uint32_t> entity_of_;
  std::map<AttrRef, uint32_t> canonical_attr_;
};

}  // namespace hera

#endif  // HERA_RECORD_DATASET_H_
