#include "record/record.h"

namespace hera {

size_t Record::NumPresent() const {
  size_t n = 0;
  for (const auto& v : values_) {
    if (!v.is_null()) ++n;
  }
  return n;
}

}  // namespace hera
