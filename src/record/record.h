// Record: one raw row from a heterogeneous source.

#ifndef HERA_RECORD_RECORD_H_
#define HERA_RECORD_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "record/schema.h"
#include "sim/value.h"

namespace hera {

/// \brief A base record: values aligned with the attributes of one schema.
///
/// Null values are allowed (an attribute present in the schema but
/// missing in this row).
class Record {
 public:
  Record() = default;
  Record(uint32_t id, uint32_t schema_id, std::vector<Value> values)
      : id_(id), schema_id_(schema_id), values_(std::move(values)) {}

  uint32_t id() const { return id_; }
  uint32_t schema_id() const { return schema_id_; }
  const std::vector<Value>& values() const { return values_; }
  const Value& value(size_t i) const { return values_[i]; }
  size_t size() const { return values_.size(); }

  /// Number of non-null values.
  size_t NumPresent() const;

 private:
  uint32_t id_ = 0;
  uint32_t schema_id_ = 0;
  std::vector<Value> values_;
};

}  // namespace hera

#endif  // HERA_RECORD_RECORD_H_
