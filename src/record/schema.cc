#include "record/schema.h"

namespace hera {

std::optional<uint32_t> Schema::IndexOf(const std::string& attr) const {
  for (uint32_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == attr) return i;
  }
  return std::nullopt;
}

uint32_t SchemaCatalog::Register(Schema schema) {
  schemas_.push_back(std::move(schema));
  return static_cast<uint32_t>(schemas_.size() - 1);
}

}  // namespace hera
