// Schema: the attribute list of one heterogeneous source.

#ifndef HERA_RECORD_SCHEMA_H_
#define HERA_RECORD_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hera {

/// Identifies one attribute of one schema: the `a_k^i` of the paper.
struct AttrRef {
  uint32_t schema_id = 0;
  uint32_t attr_index = 0;

  bool operator==(const AttrRef& o) const {
    return schema_id == o.schema_id && attr_index == o.attr_index;
  }
  bool operator<(const AttrRef& o) const {
    if (schema_id != o.schema_id) return schema_id < o.schema_id;
    return attr_index < o.attr_index;
  }
};

/// \brief Named attribute list for one source.
///
/// Schemas are registered in a SchemaCatalog which assigns ids; records
/// reference schemas by id.
class Schema {
 public:
  Schema() = default;
  Schema(std::string name, std::vector<std::string> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& attributes() const { return attributes_; }
  size_t size() const { return attributes_.size(); }
  const std::string& attribute(size_t i) const { return attributes_[i]; }

  /// Index of the attribute with this name, if present.
  std::optional<uint32_t> IndexOf(const std::string& attr) const;

 private:
  std::string name_;
  std::vector<std::string> attributes_;
};

/// \brief Registry of the schemas present in a record set.
class SchemaCatalog {
 public:
  /// Registers a schema, returning its id.
  uint32_t Register(Schema schema);

  const Schema& Get(uint32_t id) const { return schemas_[id]; }
  size_t size() const { return schemas_.size(); }

  /// Attribute name behind an AttrRef.
  const std::string& AttrName(const AttrRef& ref) const {
    return schemas_[ref.schema_id].attribute(ref.attr_index);
  }

 private:
  std::vector<Schema> schemas_;
};

}  // namespace hera

#endif  // HERA_RECORD_SCHEMA_H_
