#include "record/super_record.h"

#include <algorithm>
#include <cassert>

namespace hera {

uint32_t Field::AddValue(FieldValue fv) {
  for (uint32_t i = 0; i < values_.size(); ++i) {
    if (values_[i].value == fv.value) return i;
  }
  values_.push_back(std::move(fv));
  return static_cast<uint32_t>(values_.size() - 1);
}

SuperRecord SuperRecord::FromRecord(const Record& record) {
  SuperRecord sr;
  sr.rid_ = record.id();
  sr.members_.push_back(record.id());
  for (uint32_t a = 0; a < record.size(); ++a) {
    const Value& v = record.value(a);
    if (v.is_null()) continue;
    Field f;
    f.AddValue(FieldValue{v, AttrRef{record.schema_id(), a}});
    sr.fields_.push_back(std::move(f));
  }
  return sr;
}

SuperRecord SuperRecord::Merge(
    const SuperRecord& a, const SuperRecord& b,
    const std::vector<FieldMatch>& matching, uint32_t new_rid,
    std::vector<std::pair<ValueLabel, ValueLabel>>* remap) {
  SuperRecord out;
  out.rid_ = new_rid;
  out.members_ = a.members_;
  out.members_.insert(out.members_.end(), b.members_.begin(), b.members_.end());
  std::sort(out.members_.begin(), out.members_.end());
  out.members_.erase(std::unique(out.members_.begin(), out.members_.end()),
                     out.members_.end());

  // a's fields come first, preserving order and value order; labels for
  // a's values change only in rid.
  out.fields_ = a.fields_;
  if (remap != nullptr) {
    for (uint32_t fi = 0; fi < a.fields_.size(); ++fi) {
      for (uint32_t vi = 0; vi < a.fields_[fi].size(); ++vi) {
        remap->push_back({ValueLabel{a.rid_, fi, vi},
                          ValueLabel{new_rid, fi, vi}});
      }
    }
  }

  // Which of b's fields merge into which of out's fields.
  std::vector<int64_t> target_of_b(b.num_fields(), -1);
  for (const FieldMatch& m : matching) {
    assert(m.field_a < a.num_fields());
    assert(m.field_b < b.num_fields());
    target_of_b[m.field_b] = static_cast<int64_t>(m.field_a);
  }

  for (uint32_t fb = 0; fb < b.num_fields(); ++fb) {
    uint32_t target;
    if (target_of_b[fb] >= 0) {
      target = static_cast<uint32_t>(target_of_b[fb]);
    } else {
      out.fields_.emplace_back();
      target = static_cast<uint32_t>(out.fields_.size() - 1);
    }
    for (uint32_t vb = 0; vb < b.field(fb).size(); ++vb) {
      uint32_t new_vid = out.fields_[target].AddValue(b.field(fb).value(vb));
      if (remap != nullptr) {
        remap->push_back({ValueLabel{b.rid_, fb, vb},
                          ValueLabel{new_rid, target, new_vid}});
      }
    }
  }
  return out;
}

SuperRecord SuperRecord::FromParts(uint32_t rid, std::vector<Field> fields,
                                   std::vector<uint32_t> members) {
  SuperRecord sr;
  sr.rid_ = rid;
  sr.fields_ = std::move(fields);
  sr.members_ = std::move(members);
  return sr;
}

size_t SuperRecord::NumValues() const {
  size_t n = 0;
  for (const auto& f : fields_) n += f.size();
  return n;
}

std::string SuperRecord::ToString() const {
  std::string out = "R" + std::to_string(rid_) + "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "f" + std::to_string(i) + ":[";
    for (size_t j = 0; j < fields_[i].size(); ++j) {
      if (j > 0) out += "|";
      out += fields_[i].value(j).value.ToString();
    }
    out += "]";
  }
  out += "}";
  return out;
}

}  // namespace hera
