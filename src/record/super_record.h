// SuperRecord (Definition 2): the merged representation of all records
// found to refer to one entity. Each field holds the set of values
// contributed to it; merging (⊕, Example 2) unions matched fields,
// deduplicates identical values, and appends unmatched fields verbatim.

#ifndef HERA_RECORD_SUPER_RECORD_H_
#define HERA_RECORD_SUPER_RECORD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "record/record.h"
#include "record/schema.h"
#include "sim/value.h"

namespace hera {

/// \brief The (rid, fid, vid) label of one value inside a super record
/// (Section III-A). 0-based internally (the paper writes 1-based).
struct ValueLabel {
  uint32_t rid = 0;
  uint32_t fid = 0;
  uint32_t vid = 0;

  bool operator==(const ValueLabel& o) const {
    return rid == o.rid && fid == o.fid && vid == o.vid;
  }
  bool operator<(const ValueLabel& o) const {
    if (rid != o.rid) return rid < o.rid;
    if (fid != o.fid) return fid < o.fid;
    return vid < o.vid;
  }
};

/// One value inside a field, together with the source attribute it came
/// from (needed by the schema-based method to vote on attribute pairs).
struct FieldValue {
  Value value;
  AttrRef origin;
};

/// \brief A field of a super record: the set of values believed to
/// describe one attribute of the entity.
class Field {
 public:
  Field() = default;
  explicit Field(std::vector<FieldValue> values) : values_(std::move(values)) {}

  const std::vector<FieldValue>& values() const { return values_; }
  size_t size() const { return values_.size(); }
  const FieldValue& value(size_t i) const { return values_[i]; }

  /// Appends `fv` unless an identical Value is already present; returns
  /// the vid the value lives at afterwards (existing vid on dedup).
  uint32_t AddValue(FieldValue fv);

 private:
  std::vector<FieldValue> values_;
};

/// One matched field pair (f_i of R_a ↔ f_j of R_b) with its field
/// similarity; the unit of the field matching set F(i,j) (Definition 4).
struct FieldMatch {
  uint32_t field_a = 0;
  uint32_t field_b = 0;
  double sim = 0.0;
};

/// \brief Super record: a set of fields plus the ids of the base
/// records merged into it.
class SuperRecord {
 public:
  SuperRecord() = default;

  /// Lifts a base record: one singleton field per non-null value. The
  /// super record id equals the base record id initially.
  static SuperRecord FromRecord(const Record& record);

  /// Merges `a` and `b` (Example 2). `matching` lists the matched field
  /// pairs (one-to-one); matched fields union their values (exact
  /// duplicates dedup), unmatched fields of `b` are appended. The
  /// result keeps `a`'s rid overwritten to `new_rid`.
  ///
  /// If `remap` is non-null it receives (old label -> new label) for
  /// every value of both inputs, in input order; deduplicated values
  /// map onto the surviving value's label. Used for index maintenance.
  static SuperRecord Merge(
      const SuperRecord& a, const SuperRecord& b,
      const std::vector<FieldMatch>& matching, uint32_t new_rid,
      std::vector<std::pair<ValueLabel, ValueLabel>>* remap = nullptr);

  /// Reassembles a super record from serialized parts (checkpoint
  /// restore); the inverse of reading rid()/fields()/members().
  static SuperRecord FromParts(uint32_t rid, std::vector<Field> fields,
                               std::vector<uint32_t> members);

  uint32_t rid() const { return rid_; }
  void set_rid(uint32_t rid) { rid_ = rid; }

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Base record ids merged into this super record.
  const std::vector<uint32_t>& members() const { return members_; }

  /// Total number of stored values across all fields.
  size_t NumValues() const;

  /// Debug rendering, e.g. "R3{f0:[John], f1:[2 Norman Street|...]}".
  std::string ToString() const;

 private:
  uint32_t rid_ = 0;
  std::vector<Field> fields_;
  std::vector<uint32_t> members_;
};

}  // namespace hera

#endif  // HERA_RECORD_SUPER_RECORD_H_
