#include "schema/majority_vote.h"

#include <cassert>
#include <cmath>

namespace hera {

double SchemaMatchingPredictor::ErrorUpperBound(size_t n, double p) {
  assert(p > 0.0);
  double exponent = -(static_cast<double>(n) / (2.0 * p)) * (p - 0.5) * (p - 0.5);
  return std::exp(exponent);
}

void SchemaMatchingPredictor::AddPrediction(const AttrRef& a, const AttrRef& b) {
  if (a.schema_id == b.schema_id) return;
  ++num_predictions_;
  Votes& va = votes_[{a, b.schema_id}];
  ++va.counts[b.attr_index];
  ++va.total;
  Votes& vb = votes_[{b, a.schema_id}];
  ++vb.counts[a.attr_index];
  ++vb.total;
}

std::optional<AttrRef> SchemaMatchingPredictor::VoteWinner(
    const AttrRef& a, uint32_t other_schema) const {
  auto it = votes_.find({a, other_schema});
  if (it == votes_.end() || it->second.total == 0) return std::nullopt;
  if (ErrorUpperBound(it->second.total, prior_p_) >= rho_) return std::nullopt;
  uint32_t best_attr = 0;
  uint64_t best_count = 0;
  for (const auto& [attr, count] : it->second.counts) {
    if (count > best_count) {
      best_count = count;
      best_attr = attr;
    }
  }
  return AttrRef{other_schema, best_attr};
}

std::optional<AttrRef> SchemaMatchingPredictor::DecidedPartner(
    const AttrRef& a, uint32_t other_schema) const {
  auto winner = VoteWinner(a, other_schema);
  if (!winner) return std::nullopt;
  // Mutual check: the winner must vote back for `a`.
  auto back = VoteWinner(*winner, a.schema_id);
  if (!back || !(*back == a)) return std::nullopt;
  return winner;
}

bool SchemaMatchingPredictor::IsDecided(const AttrRef& a, const AttrRef& b) const {
  auto partner = DecidedPartner(a, b.schema_id);
  return partner && *partner == b;
}

std::vector<std::pair<AttrRef, AttrRef>>
SchemaMatchingPredictor::DecidedMatchings() const {
  std::vector<std::pair<AttrRef, AttrRef>> out;
  for (const auto& [key, votes] : votes_) {
    (void)votes;
    const AttrRef& a = key.first;
    uint32_t other_schema = key.second;
    auto partner = DecidedPartner(a, other_schema);
    if (!partner) continue;
    if (*partner < a) continue;  // Report each matching once.
    out.emplace_back(a, *partner);
  }
  return out;
}

std::vector<ExportedVote> SchemaMatchingPredictor::ExportVotes() const {
  std::vector<ExportedVote> out;
  out.reserve(votes_.size());
  for (const auto& [key, votes] : votes_) {
    ExportedVote ev;
    ev.attr = key.first;
    ev.other_schema = key.second;
    ev.total = votes.total;
    ev.counts.assign(votes.counts.begin(), votes.counts.end());
    out.push_back(std::move(ev));
  }
  return out;
}

void SchemaMatchingPredictor::RestoreVotes(
    const std::vector<ExportedVote>& votes, size_t num_predictions) {
  votes_.clear();
  for (const ExportedVote& ev : votes) {
    Votes& v = votes_[{ev.attr, ev.other_schema}];
    v.total = ev.total;
    v.counts.insert(ev.counts.begin(), ev.counts.end());
  }
  num_predictions_ = num_predictions;
}

}  // namespace hera
