// Schema-based method (Section IV-B): collect the schema-matching
// predictions produced by instance-based comparisons and promote the
// majority choice to a trusted matching once the Theorem 2 error bound
// drops below the threshold rho.
//
//   UP_error = e^{ -(n / 2p) (p - 1/2)^2 }
//
// where n is the number of predictions observed for an attribute and
// p = Pr(a single prediction is correct) is a prior (the paper obtains
// it from a training set; here it is a configuration parameter).
// Under the no-redundant-attributes assumption [12], an attribute of
// one schema matches at most one attribute of another, so the vote
// picks the modal partner.

#ifndef HERA_SCHEMA_MAJORITY_VOTE_H_
#define HERA_SCHEMA_MAJORITY_VOTE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "record/schema.h"

namespace hera {

/// \brief One vote tally in serialized form: the votes attribute
/// `attr` has received for partners under `other_schema`. Produced by
/// SchemaMatchingPredictor::ExportVotes for checkpointing.
struct ExportedVote {
  AttrRef attr;
  uint32_t other_schema = 0;
  uint64_t total = 0;
  /// (partner attr_index, count), ascending partner order.
  std::vector<std::pair<uint32_t, uint64_t>> counts;
};

/// \brief Accumulates attribute-match predictions and decides trusted
/// schema matchings by probabilistic majority vote.
class SchemaMatchingPredictor {
 public:
  /// \param prior_p probability that one instance-level prediction is
  ///        correct (paper's p); must be in (0.5, 1].
  /// \param rho error-probability threshold: a matching is decided
  ///        when UP_error < rho.
  SchemaMatchingPredictor(double prior_p, double rho)
      : prior_p_(prior_p), rho_(rho) {}

  /// Records one prediction a ≈ b from a similar record pair. The two
  /// attributes must belong to different schemas; same-schema
  /// predictions are ignored (no self matching).
  void AddPrediction(const AttrRef& a, const AttrRef& b);

  /// True when the vote has decided a ≈ b *mutually*: a's modal partner
  /// under b's schema is b, b's modal partner under a's schema is a,
  /// and both sides' error bounds are below rho. Mutuality keeps the
  /// decided set one-to-one per schema pair.
  bool IsDecided(const AttrRef& a, const AttrRef& b) const;

  /// The attribute `a` is decided to match under `other_schema`, if any.
  std::optional<AttrRef> DecidedPartner(const AttrRef& a,
                                        uint32_t other_schema) const;

  /// All mutually decided matchings, each reported once (smaller
  /// AttrRef first).
  std::vector<std::pair<AttrRef, AttrRef>> DecidedMatchings() const;

  /// Total number of predictions recorded.
  size_t num_predictions() const { return num_predictions_; }

  /// Every tally, in deterministic (attr, other_schema) order; with
  /// RestoreVotes, round-trips the predictor's full state.
  std::vector<ExportedVote> ExportVotes() const;

  /// Replaces all tallies with exported ones (checkpoint restore).
  void RestoreVotes(const std::vector<ExportedVote>& votes,
                    size_t num_predictions);

  /// Theorem 2: upper bound on the majority-vote error probability
  /// after n trials with per-trial accuracy p.
  static double ErrorUpperBound(size_t n, double p);

  double prior_p() const { return prior_p_; }
  double rho() const { return rho_; }

 private:
  /// Votes for (attr under other schema): partner attr_index -> count.
  using VoteKey = std::pair<AttrRef, uint32_t>;
  struct Votes {
    std::map<uint32_t, uint64_t> counts;  // partner attr_index -> votes
    uint64_t total = 0;
  };

  /// One-directional vote outcome: modal partner if bound < rho.
  std::optional<AttrRef> VoteWinner(const AttrRef& a, uint32_t other_schema) const;

  double prior_p_;
  double rho_;
  std::map<VoteKey, Votes> votes_;
  size_t num_predictions_ = 0;
};

}  // namespace hera

#endif  // HERA_SCHEMA_MAJORITY_VOTE_H_
