#include "sim/kernel.h"

#include <algorithm>
#include <cmath>

#include "sim/kernel_simd.h"

namespace hera {

namespace {

/// The exact similarity formula of `kind` for intersection size
/// `inter`; one shared expression so SetSimilarity, the bounded
/// variant, and MinOverlapForThreshold can never disagree in the last
/// bit. Callers guarantee na > 0 and nb > 0.
double FormulaOf(SetSimKind kind, size_t inter, size_t na, size_t nb) {
  switch (kind) {
    case SetSimKind::kJaccard: {
      size_t uni = na + nb - inter;
      return static_cast<double>(inter) / static_cast<double>(uni);
    }
    case SetSimKind::kDice:
      return 2.0 * static_cast<double>(inter) / static_cast<double>(na + nb);
    case SetSimKind::kOverlap:
      return static_cast<double>(inter) /
             static_cast<double>(std::min(na, nb));
    case SetSimKind::kCosine:
      return static_cast<double>(inter) /
             std::sqrt(static_cast<double>(na) * static_cast<double>(nb));
  }
  return 0.0;  // Unreachable.
}

/// Merge-shaped intersection on an explicit (already-resolved) tier:
/// the vector kernel when the tier has one and both inputs fill at
/// least one window, the scalar merge otherwise. Exact on every path.
inline size_t IntersectMergeShaped(const uint32_t* a, size_t na,
                                   const uint32_t* b, size_t nb,
                                   KernelDispatch tier) {
#ifdef HERA_X86_SIMD
  if (tier == KernelDispatch::kAvx2 && std::min(na, nb) >= 8) {
    CountSimdIntersection();
    return simd::IntersectAvx2(a, na, b, nb);
  }
  if (tier == KernelDispatch::kSse4 && std::min(na, nb) >= 4) {
    CountSimdIntersection();
    return simd::IntersectSse4(a, na, b, nb);
  }
#else
  (void)tier;
#endif
  return IntersectSizeMerge(a, na, b, nb);
}

/// Bounded merge-shaped intersection: exact count when >= min_req,
/// else simd::kAbandonedIntersect. The scalar branch applies the same
/// integer abandon test per step that the vector kernels apply per
/// block — abandon timing differs, the returned value never does.
inline size_t IntersectBoundedMergeShaped(const uint32_t* a, size_t na,
                                          const uint32_t* b, size_t nb,
                                          size_t min_req,
                                          KernelDispatch tier) {
#ifdef HERA_X86_SIMD
  if (tier == KernelDispatch::kAvx2 && std::min(na, nb) >= 8) {
    CountSimdIntersection();
    return simd::IntersectBoundedAvx2(a, na, b, nb, min_req);
  }
  if (tier == KernelDispatch::kSse4 && std::min(na, nb) >= 4) {
    CountSimdIntersection();
    return simd::IntersectBoundedSse4(a, na, b, nb, min_req);
  }
#else
  (void)tier;
#endif
  size_t i = 0, j = 0, inter = 0;
  while (i < na && j < nb) {
    if (inter + std::min(na - i, nb - j) < min_req) {
      return simd::kAbandonedIntersect;
    }
    uint32_t x = a[i], y = b[j];
    inter += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return inter < min_req ? simd::kAbandonedIntersect : inter;
}

}  // namespace

size_t IntersectSizeMerge(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb) {
  size_t i = 0, j = 0, inter = 0;
  while (i < na && j < nb) {
    uint32_t x = a[i], y = b[j];
    // Deduplicated inputs: at least one pointer advances per step, and
    // both advance on a hit, so the increments can be branch-light.
    inter += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return inter;
}

size_t IntersectSizeGallop(const uint32_t* small, size_t ns,
                           const uint32_t* large, size_t nl) {
  size_t pos = 0, inter = 0;
  for (size_t i = 0; i < ns && pos < nl; ++i) {
    uint32_t v = small[i];
    if (large[pos] < v) {
      // Exponential expansion, then binary search the bracketed range
      // for the first element >= v.
      size_t step = 1, prev = pos;
      while (pos + step < nl && large[pos + step] < v) {
        prev = pos + step;
        step <<= 1;
      }
      size_t hi = std::min(pos + step, nl);
      pos = static_cast<size_t>(
          std::lower_bound(large + prev + 1, large + hi, v) - large);
    }
    if (pos < nl && large[pos] == v) {
      ++inter;
      ++pos;
    }
  }
  return inter;
}

bool BitmapEligible(const std::vector<uint32_t>& a,
                    const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return false;
  uint32_t lo = std::min(a.front(), b.front());
  uint32_t hi = std::max(a.back(), b.back());
  return hi - lo < kBitmapBits;
}

size_t IntersectSizeBitmap(const std::vector<uint32_t>& a,
                           const std::vector<uint32_t>& b) {
  const uint32_t base = std::min(a.front(), b.front());
  uint64_t words[kBitmapBits / 64] = {};
  for (uint32_t id : a) {
    uint32_t d = id - base;
    words[d >> 6] |= uint64_t{1} << (d & 63);
  }
  size_t inter = 0;
  for (uint32_t id : b) {
    uint32_t d = id - base;
    inter += (words[d >> 6] >> (d & 63)) & 1;
  }
  return inter;
}

size_t IntersectSize(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return 0;
  if (BitmapEligible(a, b)) return IntersectSizeBitmap(a, b);
  const std::vector<uint32_t>& s = a.size() <= b.size() ? a : b;
  const std::vector<uint32_t>& l = a.size() <= b.size() ? b : a;
  if (s.size() * kGallopSkew < l.size()) {
    return IntersectSizeGallop(s.data(), s.size(), l.data(), l.size());
  }
  return IntersectMergeShaped(s.data(), s.size(), l.data(), l.size(),
                              ActiveKernelDispatch());
}

size_t IntersectSizeSimd(const uint32_t* a, size_t na, const uint32_t* b,
                         size_t nb, KernelDispatch tier) {
  return IntersectMergeShaped(a, na, b, nb, ResolveKernelDispatch(tier));
}

double SetSimilarity(SetSimKind kind, const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b) {
  // Empty gram sets carry no information (JaccardOfSets convention).
  if (a.empty() || b.empty()) return 0.0;
  return FormulaOf(kind, IntersectSize(a, b), a.size(), b.size());
}

size_t MinOverlapForThreshold(SetSimKind kind, size_t na, size_t nb,
                              double xi) {
  size_t cap = std::min(na, nb);
  if (na == 0 || nb == 0) return cap + 1;  // Score is pinned to 0.0...
  if (xi <= 0.0) return 0;                 // ...but 0.0 >= xi <= 0 holds.
  if (FormulaOf(kind, cap, na, nb) < xi) return cap + 1;  // Unreachable xi.
  // Smallest o with formula(o) >= xi; the formula is nondecreasing in
  // o for every kind, so binary search is exact.
  size_t lo = 0, hi = cap;  // Invariant: formula(hi) >= xi.
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (FormulaOf(kind, mid, na, nb) >= xi) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

double SetSimilarityBounded(SetSimKind kind, const std::vector<uint32_t>& a,
                            const std::vector<uint32_t>& b, double xi) {
  return SetSimilarityBounded(kind, a, b, xi, ActiveKernelDispatch());
}

double SetSimilarityBounded(SetSimKind kind, const std::vector<uint32_t>& a,
                            const std::vector<uint32_t>& b, double xi,
                            KernelDispatch tier) {
  if (a.empty() || b.empty()) return 0.0 >= xi ? 0.0 : kBelowThreshold;
  const size_t na = a.size(), nb = b.size();
  const size_t min_req = MinOverlapForThreshold(kind, na, nb, xi);
  if (min_req > std::min(na, nb)) return kBelowThreshold;  // Size bound.

  size_t inter;
  if (BitmapEligible(a, b)) {
    // Already cheaper than any early exit could make it.
    inter = IntersectSizeBitmap(a, b);
  } else if (std::min(na, nb) * kGallopSkew < std::max(na, nb)) {
    const std::vector<uint32_t>& s = na <= nb ? a : b;
    const std::vector<uint32_t>& l = na <= nb ? b : a;
    const size_t ns = s.size(), nl = l.size();
    size_t pos = 0;
    inter = 0;
    for (size_t i = 0; i < ns && pos < nl; ++i) {
      // Even if every remaining small element matched, min_req is out
      // of reach: abandon. (Integer test; exactness preserved.)
      if (inter + (ns - i) < min_req) return kBelowThreshold;
      uint32_t v = s[i];
      if (l[pos] < v) {
        size_t step = 1, prev = pos;
        while (pos + step < nl && l[pos + step] < v) {
          prev = pos + step;
          step <<= 1;
        }
        size_t hi = std::min(pos + step, nl);
        pos = static_cast<size_t>(
            std::lower_bound(l.data() + prev + 1, l.data() + hi, v) - l.data());
      }
      if (pos < nl && l[pos] == v) {
        ++inter;
        ++pos;
      }
    }
  } else {
    inter = IntersectBoundedMergeShaped(a.data(), na, b.data(), nb, min_req,
                                        tier);
    if (inter == simd::kAbandonedIntersect) return kBelowThreshold;
  }
  if (inter < min_req) return kBelowThreshold;
  // Monotonicity: formula(inter) >= formula(min_req) >= xi.
  return FormulaOf(kind, inter, na, nb);
}

double BestSetSimilarityBounded(
    SetSimKind kind, const std::vector<uint32_t>& a,
    const std::vector<const std::vector<uint32_t>*>& bs, double floor) {
  // One tier resolution for the whole row; the per-cell overload would
  // reload the dispatch atomic on every cell of a dense weight matrix.
  const KernelDispatch tier = ActiveKernelDispatch();
  double best = 0.0;
  for (const std::vector<uint32_t>* b : bs) {
    if (b == nullptr) continue;
    double s = SetSimilarityBounded(kind, a, *b, std::max(floor, best), tier);
    if (s != kBelowThreshold && s > best) best = s;
  }
  return best;
}

size_t OverlapUpperBound(const uint32_t* a, size_t na, const uint32_t* b,
                         size_t nb, int depth) {
  size_t trivial = std::min(na, nb);
  if (trivial == 0 || depth <= 0) return trivial;
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  // Split both spans on the larger side's median: intersection
  // elements < w live entirely in the left halves, > w in the right,
  // and w itself contributes at most 1 — so the bound is sound at any
  // depth.
  size_t mid = nb / 2;
  uint32_t w = b[mid];
  const uint32_t* split = std::lower_bound(a, a + na, w);
  size_t a_lt = static_cast<size_t>(split - a);
  bool has = a_lt < na && *split == w;
  size_t skip = has ? 1 : 0;
  size_t ub = OverlapUpperBound(a, a_lt, b, mid, depth - 1) + skip +
              OverlapUpperBound(split + skip, na - a_lt - skip, b + mid + 1,
                                nb - mid - 1, depth - 1);
  return std::min(ub, trivial);
}

bool GramMetricKind(const std::string& metric_name, int q, SetSimKind* kind) {
  static constexpr struct {
    const char* base;
    SetSimKind kind;
  } kKinds[] = {
      {"jaccard", SetSimKind::kJaccard},
      {"dice", SetSimKind::kDice},
      {"overlap", SetSimKind::kOverlap},
      {"cosine", SetSimKind::kCosine},
  };
  const std::string suffix = "_q" + std::to_string(q);
  for (const auto& k : kKinds) {
    std::string plain = k.base + suffix;
    if (metric_name == plain || metric_name == "hybrid(" + plain + ")") {
      *kind = k.kind;
      return true;
    }
  }
  return false;
}

int GramMetricSize(const std::string& metric_name) {
  // Parse the "_q<k>" suffix (possibly inside a one-argument hybrid
  // wrapper) and confirm through GramMetricKind so the two can never
  // disagree about what counts as gram-family.
  size_t pos = metric_name.rfind("_q");
  if (pos == std::string::npos) return 0;
  int q = 0;
  for (size_t i = pos + 2;
       i < metric_name.size() && metric_name[i] >= '0' && metric_name[i] <= '9';
       ++i) {
    q = q * 10 + (metric_name[i] - '0');
    if (q > 64) return 0;
  }
  SetSimKind kind;
  return q > 0 && GramMetricKind(metric_name, q, &kind) ? q : 0;
}

}  // namespace hera
