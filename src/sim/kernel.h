// Integer-encoded similarity kernels.
//
// The join and the verification phase already hold every string value
// as a sorted vector of dense uint32_t gram ids (QgramDictionary /
// TokenCache). These kernels compute the set-overlap similarity family
// — Jaccard, Dice, overlap coefficient, cosine — directly on those id
// sets, so the hot loop is an integer merge instead of a re-normalize +
// re-tokenize + string compare per call.
//
// Bit-equality contract: the dictionary encoding is injective on grams
// (unknown grams get fresh ids), so set sizes and intersection sizes
// are preserved exactly, and each SetSimilarity formula below is the
// same floating-point expression the string metrics evaluate
// (sim/string_metrics.cc, text/qgram.cc). A kernel score is therefore
// bit-identical to the corresponding string-path score — callers can
// switch paths without perturbing thresholds, merge order, or labels.
//
// Intersection strategy (IntersectSize):
//   - bitmap: when both sets fit one small id window, intern the
//     smaller set into stack-resident 64-bit words and probe with
//     bit tests — no branches on the comparison ladder.
//   - gallop: when one set is much smaller, walk the small set and
//     binary-expand into the large one (O(ns log nl)).
//   - simd:   merge-shaped inputs on an AVX2/SSE4 dispatch tier run
//     the block all-pairs vector kernel (sim/kernel_simd.h) — same
//     exact count, one vector-width window per step.
//   - merge:  the classic two-pointer merge, otherwise (and always on
//     the scalar tier).
//
// Which vector tier runs is the process-global dispatch knob
// (sim/kernel_dispatch.h): HeraOptions::kernel_dispatch /
// HERA_KERNEL_DISPATCH, resolved against CPUID with scalar as the
// universal fallback. Tiers are a speed knob only — every tier
// computes the same integer counts, hence bit-identical similarity
// scores.
//
// Thresholded verification (SetSimilarityBounded) converts the
// threshold into the minimum intersection size that can reach it
// (MinOverlapForThreshold, computed with the *same* double formula, so
// the conversion is exact, not epsilon-fudged) and abandons the merge
// as soon as the remaining elements cannot reach that minimum — the
// paper's simv upper bound, |a ∩ b| <= min(|a|, |b|), applied
// continuously as the merge advances.

#ifndef HERA_SIM_KERNEL_H_
#define HERA_SIM_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel_dispatch.h"

namespace hera {

/// The set-overlap similarity family computable on encoded gram sets.
enum class SetSimKind {
  kJaccard,  // |a∩b| / |a∪b|
  kDice,     // 2|a∩b| / (|a| + |b|)
  kOverlap,  // |a∩b| / min(|a|, |b|)
  kCosine,   // |a∩b| / sqrt(|a| |b|)
};

/// Exact |a ∩ b| by two-pointer merge; inputs sorted + deduplicated.
size_t IntersectSizeMerge(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb);

/// Exact |small ∩ large| by galloping search; `small` should be the
/// shorter input (correct either way, fast only when ns << nl).
size_t IntersectSizeGallop(const uint32_t* small, size_t ns,
                           const uint32_t* large, size_t nl);

/// Id-window width (in bits) under which the bitmap path applies:
/// max(back) - min(front) must fit kBitmapBits so the word array stays
/// on the stack.
inline constexpr size_t kBitmapBits = 1024;

/// Skew ratio at which galloping replaces the merge.
inline constexpr size_t kGallopSkew = 8;

/// True when both sets span an id window of < kBitmapBits.
bool BitmapEligible(const std::vector<uint32_t>& a,
                    const std::vector<uint32_t>& b);

/// Exact |a ∩ b| via a stack bitmap; requires BitmapEligible(a, b)
/// and both sets non-empty.
size_t IntersectSizeBitmap(const std::vector<uint32_t>& a,
                           const std::vector<uint32_t>& b);

/// Exact |a ∩ b|, dispatching bitmap / gallop / simd / merge on shape
/// and the active dispatch tier.
size_t IntersectSize(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b);

/// Exact |a ∩ b| on an explicit dispatch tier: the block all-pairs
/// vector kernel on kAvx2/kSse4, the scalar merge on kScalar (kAuto
/// resolves first). Same count on every tier; exposed for the fuzz
/// tests and bench_kernel, and the primitive IntersectSize slots into
/// its shape dispatch.
size_t IntersectSizeSimd(const uint32_t* a, size_t na, const uint32_t* b,
                         size_t nb, KernelDispatch tier);

/// Similarity of two encoded gram sets; bit-equal to the string-path
/// metric of the same kind and q (empty either side -> 0.0, matching
/// JaccardOfSets and the Qgram* functions).
double SetSimilarity(SetSimKind kind, const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b);

/// Sentinel returned by SetSimilarityBounded for "provably below xi".
inline constexpr double kBelowThreshold = -1.0;

/// The smallest intersection size o with sim(o, na, nb) >= xi, where
/// sim is the exact double formula of `kind` — or min(na, nb) + 1 when
/// no intersection can reach xi. Every comparison uses the same
/// floating-point expression SetSimilarity evaluates, so the bound is
/// exact: sim >= xi  <=>  |a∩b| >= MinOverlapForThreshold(...).
size_t MinOverlapForThreshold(SetSimKind kind, size_t na, size_t nb, double xi);

/// SetSimilarity with threshold-driven early exit: returns the exact
/// (bit-equal) similarity when it is >= xi, else kBelowThreshold —
/// possibly without finishing the intersection. Exact for every kind:
/// the abandon test is integer (remaining elements cannot reach
/// MinOverlapForThreshold), never a floating-point approximation.
double SetSimilarityBounded(SetSimKind kind, const std::vector<uint32_t>& a,
                            const std::vector<uint32_t>& b, double xi);

/// SetSimilarityBounded on an explicit dispatch tier. The overload
/// above resolves ActiveKernelDispatch() per call; batch loops resolve
/// the tier once and reuse it. Bit-identical results on every tier.
double SetSimilarityBounded(SetSimKind kind, const std::vector<uint32_t>& a,
                            const std::vector<uint32_t>& b, double xi,
                            KernelDispatch tier);

/// Batched weight-row entry point: the best bounded similarity of `a`
/// against every non-null set in `bs`, resolving the dispatch tier
/// once for the whole row and ratcheting the floor upward as cells
/// land (each cell is bounded by max(floor, best so far)). Returns the
/// exact maximum whenever it is >= floor; otherwise some value below
/// floor (0.0 when nothing scored). Null entries are skipped — they
/// stand for cells the caller scores another way.
double BestSetSimilarityBounded(SetSimKind kind, const std::vector<uint32_t>& a,
                                const std::vector<const std::vector<uint32_t>*>& bs,
                                double floor);

/// Upper bound on |a ∩ b| from sorted id spans without computing the
/// intersection: partition on a median element and recurse `depth`
/// levels (depth 0 is min(na, nb)). Sound for any depth — never less
/// than the true intersection size — which is what makes the suffix
/// filter built on it exact. O(2^depth log n).
size_t OverlapUpperBound(const uint32_t* a, size_t na, const uint32_t* b,
                         size_t nb, int depth);

/// Maps a metric name (ValueSimilarity::Name()) to its set kind when
/// the metric is a q-gram set similarity with gram length `q` —
/// "jaccard_q<q>", "dice_q<q>", "overlap_q<q>", "cosine_q<q>", or the
/// same wrapped as "hybrid(<kind>_q<q>)". Returns false otherwise
/// (different q, edit/Jaro/TF-IDF families, two-argument hybrids).
bool GramMetricKind(const std::string& metric_name, int q, SetSimKind* kind);

/// The gram length of a gram-family metric name — the q at which
/// GramMetricKind matches — or 0 for non-gram metrics (edit, Jaro,
/// TF-IDF, two-argument hybrids). Join construction uses this to index
/// at the metric's own gram size instead of assuming q = 2, which is
/// what arms the encoded-kernel verify path for q != 2 metrics.
int GramMetricSize(const std::string& metric_name);

}  // namespace hera

#endif  // HERA_SIM_KERNEL_H_
