#include "sim/kernel_dispatch.h"

#include <cstdlib>

namespace hera {

namespace kernel_internal {
std::atomic<uint64_t> g_simd_intersections{0};
std::atomic<uint64_t> g_myers_calls{0};
}  // namespace kernel_internal

namespace {

#if defined(__x86_64__) || defined(__i386__)
bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }
bool CpuHasSse4() {
  // The SSE4 kernels use SSE2 shuffles/compares plus POPCNT, which
  // arrived with SSE4.2-era CPUs; gate on both to be safe.
  return __builtin_cpu_supports("sse4.2") != 0 &&
         __builtin_cpu_supports("popcnt") != 0;
}
#else
bool CpuHasAvx2() { return false; }
bool CpuHasSse4() { return false; }
#endif

/// kAuto until the first ActiveKernelDispatch()/SetActiveKernelDispatch
/// resolves it.
std::atomic<KernelDispatch> g_active{KernelDispatch::kAuto};

/// The HERA_KERNEL_DISPATCH environment override, or kAuto when unset
/// or unparseable (an unknown value falls back to auto rather than
/// aborting a run over a typo — the run report's kernel.dispatch_tier
/// gauge shows what actually ran).
KernelDispatch EnvRequestedDispatch() {
  const char* env = std::getenv("HERA_KERNEL_DISPATCH");
  if (env == nullptr || *env == '\0') return KernelDispatch::kAuto;
  KernelDispatch tier;
  if (!KernelDispatchFromString(env, &tier)) return KernelDispatch::kAuto;
  return tier;
}

}  // namespace

bool CpuSupportsKernelDispatch(KernelDispatch tier) {
  switch (tier) {
    case KernelDispatch::kAvx2:
      return CpuHasAvx2();
    case KernelDispatch::kSse4:
      return CpuHasSse4();
    case KernelDispatch::kAuto:
    case KernelDispatch::kScalar:
      return true;
  }
  return true;
}

KernelDispatch BestSupportedKernelDispatch() {
  if (CpuHasAvx2()) return KernelDispatch::kAvx2;
  if (CpuHasSse4()) return KernelDispatch::kSse4;
  return KernelDispatch::kScalar;
}

KernelDispatch ResolveKernelDispatch(KernelDispatch requested) {
  if (requested == KernelDispatch::kAuto) {
    requested = EnvRequestedDispatch();
    if (requested == KernelDispatch::kAuto) {
      return BestSupportedKernelDispatch();
    }
  }
  // Clamp a named tier down to what the CPU can run.
  if (requested == KernelDispatch::kAvx2 && !CpuHasAvx2()) {
    requested = KernelDispatch::kSse4;
  }
  if (requested == KernelDispatch::kSse4 && !CpuHasSse4()) {
    requested = KernelDispatch::kScalar;
  }
  return requested;
}

KernelDispatch ActiveKernelDispatch() {
  KernelDispatch tier = g_active.load(std::memory_order_relaxed);
  if (tier == KernelDispatch::kAuto) {
    // Benign race: concurrent first readers resolve to the same value
    // (the environment and CPUID are stable for the process lifetime).
    tier = ResolveKernelDispatch(KernelDispatch::kAuto);
    g_active.store(tier, std::memory_order_relaxed);
  }
  return tier;
}

void SetActiveKernelDispatch(KernelDispatch tier) {
  g_active.store(ResolveKernelDispatch(tier), std::memory_order_relaxed);
}

const char* KernelDispatchToString(KernelDispatch tier) {
  switch (tier) {
    case KernelDispatch::kAuto:
      return "auto";
    case KernelDispatch::kAvx2:
      return "avx2";
    case KernelDispatch::kSse4:
      return "sse4";
    case KernelDispatch::kScalar:
      return "scalar";
  }
  return "auto";
}

bool KernelDispatchFromString(const std::string& name, KernelDispatch* tier) {
  if (name == "auto") {
    *tier = KernelDispatch::kAuto;
  } else if (name == "avx2") {
    *tier = KernelDispatch::kAvx2;
  } else if (name == "sse4") {
    *tier = KernelDispatch::kSse4;
  } else if (name == "scalar") {
    *tier = KernelDispatch::kScalar;
  } else {
    return false;
  }
  return true;
}

int KernelDispatchGaugeValue(KernelDispatch tier) {
  switch (tier) {
    case KernelDispatch::kAvx2:
      return 2;
    case KernelDispatch::kSse4:
      return 1;
    case KernelDispatch::kAuto:
    case KernelDispatch::kScalar:
      return 0;
  }
  return 0;
}

KernelCounterSnapshot KernelCountersNow() {
  KernelCounterSnapshot snap;
  snap.simd_intersections =
      kernel_internal::g_simd_intersections.load(std::memory_order_relaxed);
  snap.myers_calls =
      kernel_internal::g_myers_calls.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace hera
