// Runtime dispatch for the SIMD kernel tier.
//
// The similarity kernels (sim/kernel.cc set intersection, the Myers
// bit-parallel Levenshtein in sim/string_metrics.cc) come in several
// implementations: scalar (always available), SSE4, and AVX2. Which one
// runs is a pure speed knob — every tier computes the same integers and
// the same doubles, so labels and merge_sequence are byte-identical
// across tiers (tests/kernel_test.cc sweeps them).
//
// Tier selection, in precedence order:
//   1. HeraOptions::kernel_dispatch, when not kAuto (the engine applies
//      it via SetActiveKernelDispatch at construction);
//   2. the HERA_KERNEL_DISPATCH environment variable ("avx2", "sse4",
//      "scalar", "auto") — this is how CI forces the scalar fallback
//      for a whole ctest run without touching any call site;
//   3. CPUID: the best tier the running CPU supports.
// A requested tier the CPU cannot run clamps down (avx2 -> sse4 ->
// scalar), never errors: the knob can be baked into configs that run on
// heterogeneous fleets.
//
// The active tier is process-global (one atomic, relaxed ordering) by
// design: the kernels are called from deep inside hot loops that cannot
// afford to thread an options struct through, and the tier never
// changes results, only speed. It is lazily initialized on first use so
// plain kernel calls in tests and benches honor the environment
// variable without any engine in the picture.
//
// The same header owns the process-global kernel counters
// (simd_intersections, myers_calls). They use relaxed atomics on the
// hot path; the engine publishes per-run deltas into the run report as
// kernel.* metrics (docs/observability.md).

#ifndef HERA_SIM_KERNEL_DISPATCH_H_
#define HERA_SIM_KERNEL_DISPATCH_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace hera {

/// Kernel implementation tiers, best first. kAuto resolves to the best
/// supported tier (or the HERA_KERNEL_DISPATCH override) and is never
/// the *active* tier.
enum class KernelDispatch {
  kAuto,
  kAvx2,
  kSse4,
  kScalar,
};

/// True when the running CPU can execute the tier's instructions
/// (kScalar and kAuto are always true).
bool CpuSupportsKernelDispatch(KernelDispatch tier);

/// Best tier the running CPU supports (never kAuto).
KernelDispatch BestSupportedKernelDispatch();

/// Resolves a requested tier to a runnable one: kAuto consults
/// HERA_KERNEL_DISPATCH then CPUID; a named tier clamps down to the
/// best supported tier at or below it. Never returns kAuto.
KernelDispatch ResolveKernelDispatch(KernelDispatch requested);

/// The process-global active tier, lazily resolved from kAuto on first
/// read (so the environment variable works without an engine).
KernelDispatch ActiveKernelDispatch();

/// Sets the active tier (resolving kAuto / clamping unsupported tiers
/// first). The engine calls this with HeraOptions::kernel_dispatch.
void SetActiveKernelDispatch(KernelDispatch tier);

/// "auto" | "avx2" | "sse4" | "scalar".
const char* KernelDispatchToString(KernelDispatch tier);

/// Inverse of KernelDispatchToString; false on unknown names.
bool KernelDispatchFromString(const std::string& name, KernelDispatch* tier);

/// Numeric tier id for the kernel.dispatch_tier gauge: 0 = scalar,
/// 1 = sse4, 2 = avx2.
int KernelDispatchGaugeValue(KernelDispatch tier);

namespace kernel_internal {
extern std::atomic<uint64_t> g_simd_intersections;
extern std::atomic<uint64_t> g_myers_calls;
}  // namespace kernel_internal

/// One SIMD (sse4/avx2) intersection ran instead of the scalar merge.
inline void CountSimdIntersection() {
  kernel_internal::g_simd_intersections.fetch_add(1, std::memory_order_relaxed);
}

/// One Myers bit-parallel edit-distance call ran instead of the DP.
inline void CountMyersCall() {
  kernel_internal::g_myers_calls.fetch_add(1, std::memory_order_relaxed);
}

/// Snapshot of the process-global kernel counters. Monotone; consumers
/// (the engine's metric sync) publish deltas against a baseline taken
/// at engine construction.
struct KernelCounterSnapshot {
  uint64_t simd_intersections = 0;
  uint64_t myers_calls = 0;
};

KernelCounterSnapshot KernelCountersNow();

}  // namespace hera

#endif  // HERA_SIM_KERNEL_DISPATCH_H_
