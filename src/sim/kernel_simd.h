// Vector set-intersection kernels (internal to sim/).
//
// Block all-pairs intersection in the style of Schlegel et al. /
// Lemire's SIMD compression work: load one vector-width window from
// each sorted, deduplicated input, compare every (a, b) lane pair via
// register rotations, popcount the hit mask, then advance whichever
// window has the smaller maximum. Because the inputs are strictly
// increasing, a window pair contributes each common element exactly
// once: a hit (x == y) implies x <= max of both windows, and only
// windows whose maximum was <= the other's advance — so no common
// element is counted twice or skipped. Tails shorter than a window
// fall through to the scalar merge.
//
// The Bounded variants carry the PPJoin+ abandon test: before each
// block, if the hits so far plus min(remaining a, remaining b) cannot
// reach min_req, the true intersection provably cannot either, and the
// kernel returns kAbandonedIntersect. Abandon timing never changes a
// returned count — callers only see the sentinel when the exact count
// would have been < min_req — so SetSimilarityBounded stays bit-equal
// across tiers.
//
// These functions are compiled in their own translation units with the
// matching -m flags (see src/sim/CMakeLists.txt) and must only be
// called after a CPUID check (sim/kernel_dispatch.h); kernel.cc is the
// sole caller.

#ifndef HERA_SIM_KERNEL_SIMD_H_
#define HERA_SIM_KERNEL_SIMD_H_

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#define HERA_X86_SIMD 1
#endif

namespace hera {
namespace simd {

/// Sentinel for the bounded kernels: the intersection provably cannot
/// reach min_req. Distinct from any real count (counts are <= set
/// sizes, far below SIZE_MAX).
inline constexpr size_t kAbandonedIntersect = ~size_t{0};

#ifdef HERA_X86_SIMD

/// Exact |a ∩ b| using 8-lane AVX2 windows; inputs sorted + deduped.
size_t IntersectAvx2(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb);

/// IntersectAvx2 with the integer abandon test: returns the exact count
/// when it is >= min_req could still be reached at every block, else
/// kAbandonedIntersect (in which case the exact count is < min_req).
size_t IntersectBoundedAvx2(const uint32_t* a, size_t na, const uint32_t* b,
                            size_t nb, size_t min_req);

/// Exact |a ∩ b| using 4-lane SSE windows; inputs sorted + deduped.
size_t IntersectSse4(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb);

/// IntersectSse4 with the integer abandon test (see IntersectBoundedAvx2).
size_t IntersectBoundedSse4(const uint32_t* a, size_t na, const uint32_t* b,
                            size_t nb, size_t min_req);

#endif  // HERA_X86_SIMD

}  // namespace simd
}  // namespace hera

#endif  // HERA_SIM_KERNEL_SIMD_H_
