// AVX2 set-intersection kernel. This translation unit is compiled with
// -mavx2 -mpopcnt (src/sim/CMakeLists.txt); nothing here may be called
// without a CPUID check — kernel.cc routes through the dispatch tier.

#include "sim/kernel_simd.h"

#ifdef HERA_X86_SIMD

#include <immintrin.h>

#include <algorithm>

namespace hera {
namespace simd {

namespace {

/// Scalar two-pointer merge over the tails, continuing an in-progress
/// count. Identical to IntersectSizeMerge in kernel.cc.
size_t MergeTail(const uint32_t* a, size_t i, size_t na, const uint32_t* b,
                 size_t j, size_t nb, size_t inter) {
  while (i < na && j < nb) {
    uint32_t x = a[i], y = b[j];
    inter += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return inter;
}

/// Hits between one 8-lane window of `a` and one 8-lane window of `b`:
/// compare va against all 8 rotations of vb and popcount the combined
/// mask. Deduplicated inputs mean each a-lane matches at most one
/// b-lane, so the mask bits are distinct hits.
inline int BlockHits8(__m256i va, __m256i vb) {
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  __m256i match = _mm256_cmpeq_epi32(va, vb);
  __m256i vr = vb;
  for (int r = 1; r < 8; ++r) {
    vr = _mm256_permutevar8x32_epi32(vr, rot1);
    match = _mm256_or_si256(match, _mm256_cmpeq_epi32(va, vr));
  }
  return __builtin_popcount(
      static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(match))));
}

}  // namespace

size_t IntersectAvx2(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb) {
  size_t i = 0, j = 0, inter = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const uint32_t amax = a[i + 7], bmax = b[j + 7];
    // Disjoint windows: skip the whole block without lane compares.
    if (amax < b[j]) {
      i += 8;
      continue;
    }
    if (bmax < a[i]) {
      j += 8;
      continue;
    }
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    inter += static_cast<size_t>(BlockHits8(va, vb));
    // Advance the window(s) whose maximum is covered; every element of
    // an advanced window has been compared against all candidates.
    i += (amax <= bmax) ? 8 : 0;
    j += (bmax <= amax) ? 8 : 0;
  }
  return MergeTail(a, i, na, b, j, nb, inter);
}

size_t IntersectBoundedAvx2(const uint32_t* a, size_t na, const uint32_t* b,
                            size_t nb, size_t min_req) {
  size_t i = 0, j = 0, inter = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    // Even if every remaining element matched, min_req is out of
    // reach: abandon. Integer test — exactness preserved.
    if (inter + std::min(na - i, nb - j) < min_req) {
      return kAbandonedIntersect;
    }
    const uint32_t amax = a[i + 7], bmax = b[j + 7];
    if (amax < b[j]) {
      i += 8;
      continue;
    }
    if (bmax < a[i]) {
      j += 8;
      continue;
    }
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    inter += static_cast<size_t>(BlockHits8(va, vb));
    i += (amax <= bmax) ? 8 : 0;
    j += (bmax <= amax) ? 8 : 0;
  }
  if (inter + std::min(na - i, nb - j) < min_req) return kAbandonedIntersect;
  inter = MergeTail(a, i, na, b, j, nb, inter);
  return inter < min_req ? kAbandonedIntersect : inter;
}

}  // namespace simd
}  // namespace hera

#endif  // HERA_X86_SIMD
