// SSE set-intersection kernel: the 4-lane analogue of the AVX2 kernel,
// for CPUs without AVX2. Compiled with -msse4.2 -mpopcnt
// (src/sim/CMakeLists.txt); only reachable through the dispatch tier.

#include "sim/kernel_simd.h"

#ifdef HERA_X86_SIMD

#include <nmmintrin.h>

#include <algorithm>

namespace hera {
namespace simd {

namespace {

size_t MergeTail(const uint32_t* a, size_t i, size_t na, const uint32_t* b,
                 size_t j, size_t nb, size_t inter) {
  while (i < na && j < nb) {
    uint32_t x = a[i], y = b[j];
    inter += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return inter;
}

/// Hits between one 4-lane window of `a` and one of `b`: va against all
/// 4 rotations of vb.
inline int BlockHits4(__m128i va, __m128i vb) {
  __m128i match = _mm_cmpeq_epi32(va, vb);
  __m128i vr = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
  match = _mm_or_si128(match, _mm_cmpeq_epi32(va, vr));
  vr = _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2));
  match = _mm_or_si128(match, _mm_cmpeq_epi32(va, vr));
  vr = _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3));
  match = _mm_or_si128(match, _mm_cmpeq_epi32(va, vr));
  return __builtin_popcount(
      static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(match))));
}

}  // namespace

size_t IntersectSse4(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb) {
  size_t i = 0, j = 0, inter = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const uint32_t amax = a[i + 3], bmax = b[j + 3];
    if (amax < b[j]) {
      i += 4;
      continue;
    }
    if (bmax < a[i]) {
      j += 4;
      continue;
    }
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    inter += static_cast<size_t>(BlockHits4(va, vb));
    i += (amax <= bmax) ? 4 : 0;
    j += (bmax <= amax) ? 4 : 0;
  }
  return MergeTail(a, i, na, b, j, nb, inter);
}

size_t IntersectBoundedSse4(const uint32_t* a, size_t na, const uint32_t* b,
                            size_t nb, size_t min_req) {
  size_t i = 0, j = 0, inter = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    if (inter + std::min(na - i, nb - j) < min_req) {
      return kAbandonedIntersect;
    }
    const uint32_t amax = a[i + 3], bmax = b[j + 3];
    if (amax < b[j]) {
      i += 4;
      continue;
    }
    if (bmax < a[i]) {
      j += 4;
      continue;
    }
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    inter += static_cast<size_t>(BlockHits4(va, vb));
    i += (amax <= bmax) ? 4 : 0;
    j += (bmax <= amax) ? 4 : 0;
  }
  if (inter + std::min(na - i, nb - j) < min_req) return kAbandonedIntersect;
  inter = MergeTail(a, i, na, b, j, nb, inter);
  return inter < min_req ? kAbandonedIntersect : inter;
}

}  // namespace simd
}  // namespace hera

#endif  // HERA_X86_SIMD
