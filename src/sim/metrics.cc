#include "sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/string_metrics.h"
#include "text/normalize.h"
#include "text/qgram.h"
#include "text/tfidf.h"

namespace hera {

namespace {

/// Null never matches anything (including null): shared absence of a
/// value is not evidence that two records agree.
bool EitherNull(const Value& a, const Value& b) {
  return a.is_null() || b.is_null();
}

/// Per-metric tokenization cache ceiling: gram-set metrics intern the
/// q-gram sets of the texts they score (bounded so a pathological
/// value universe degrades to pass-through, not unbounded growth).
constexpr size_t kMetricTokenCacheEntries = 1u << 18;

std::shared_ptr<TokenCache> MakeMetricTokenCache(int q) {
  return std::make_shared<TokenCache>(q, kMetricTokenCacheEntries);
}

}  // namespace

JaccardSimilarity::JaccardSimilarity(int q)
    : q_(q), cache_(MakeMetricTokenCache(q)) {}

double JaccardSimilarity::Compute(const Value& a, const Value& b) const {
  if (EitherNull(a, b)) return 0.0;
  TokenCache::GramsPtr ga = cache_->Grams(Normalize(a.ToString()));
  TokenCache::GramsPtr gb = cache_->Grams(Normalize(b.ToString()));
  return JaccardOfSets(*ga, *gb);
}

std::string JaccardSimilarity::Name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "jaccard_q%d", q_);
  return buf;
}

double EditSimilarity::Compute(const Value& a, const Value& b) const {
  if (EitherNull(a, b)) return 0.0;
  return NormalizedLevenshtein(a.ToString(), b.ToString());
}

double JaroWinklerSimilarity::Compute(const Value& a, const Value& b) const {
  if (EitherNull(a, b)) return 0.0;
  return JaroWinkler(a.ToString(), b.ToString());
}

CosineSimilarity::CosineSimilarity(int q)
    : q_(q), cache_(MakeMetricTokenCache(q)) {}

double CosineSimilarity::Compute(const Value& a, const Value& b) const {
  if (EitherNull(a, b)) return 0.0;
  TokenCache::GramsPtr ga = cache_->Grams(Normalize(a.ToString()));
  TokenCache::GramsPtr gb = cache_->Grams(Normalize(b.ToString()));
  // Same expression as QgramCosine (bit-equal scores).
  if (ga->empty() || gb->empty()) return 0.0;
  size_t inter = OverlapOfSets(*ga, *gb);
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(ga->size()) *
                   static_cast<double>(gb->size()));
}

std::string CosineSimilarity::Name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "cosine_q%d", q_);
  return buf;
}

DiceSimilarity::DiceSimilarity(int q)
    : q_(q), cache_(MakeMetricTokenCache(q)) {}

double DiceSimilarity::Compute(const Value& a, const Value& b) const {
  if (EitherNull(a, b)) return 0.0;
  TokenCache::GramsPtr ga = cache_->Grams(Normalize(a.ToString()));
  TokenCache::GramsPtr gb = cache_->Grams(Normalize(b.ToString()));
  // Same expression as QgramDice (bit-equal scores).
  if (ga->empty() || gb->empty()) return 0.0;
  size_t inter = OverlapOfSets(*ga, *gb);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(ga->size() + gb->size());
}

std::string DiceSimilarity::Name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "dice_q%d", q_);
  return buf;
}

OverlapSimilarity::OverlapSimilarity(int q)
    : q_(q), cache_(MakeMetricTokenCache(q)) {}

double OverlapSimilarity::Compute(const Value& a, const Value& b) const {
  if (EitherNull(a, b)) return 0.0;
  TokenCache::GramsPtr ga = cache_->Grams(Normalize(a.ToString()));
  TokenCache::GramsPtr gb = cache_->Grams(Normalize(b.ToString()));
  // Same expression as QgramOverlap (bit-equal scores).
  if (ga->empty() || gb->empty()) return 0.0;
  size_t inter = OverlapOfSets(*ga, *gb);
  return static_cast<double>(inter) /
         static_cast<double>(std::min(ga->size(), gb->size()));
}

std::string OverlapSimilarity::Name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "overlap_q%d", q_);
  return buf;
}

double MongeElkanSimilarity::Compute(const Value& a, const Value& b) const {
  if (EitherNull(a, b)) return 0.0;
  return MongeElkan(a.ToString(), b.ToString());
}

double SoftTfIdfSimilarity::Compute(const Value& a, const Value& b) const {
  if (EitherNull(a, b)) return 0.0;
  return SoftTfIdf(a.ToString(), b.ToString(), *model_, theta_);
}

double NumericSimilarity::Compute(const Value& a, const Value& b) const {
  if (EitherNull(a, b)) return 0.0;
  if (!a.is_number() || !b.is_number()) return 0.0;
  double x = a.AsNumber(), y = b.AsNumber();
  if (x == y) return 1.0;
  double denom = std::max(std::fabs(x), std::fabs(y));
  if (denom == 0.0) return 1.0;
  return std::clamp(1.0 - std::fabs(x - y) / denom, 0.0, 1.0);
}

double ScaledNumericSimilarity::Compute(const Value& a, const Value& b) const {
  if (EitherNull(a, b)) return 0.0;
  if (!a.is_number() || !b.is_number()) return 0.0;
  if (tolerance_ <= 0.0) return a.AsNumber() == b.AsNumber() ? 1.0 : 0.0;
  double gap = std::fabs(a.AsNumber() - b.AsNumber());
  return std::clamp(1.0 - gap / tolerance_, 0.0, 1.0);
}

std::string ScaledNumericSimilarity::Name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "numeric_tol%g", tolerance_);
  return buf;
}

double HybridSimilarity::Compute(const Value& a, const Value& b) const {
  if (EitherNull(a, b)) return 0.0;
  if (a.is_number() && b.is_number()) {
    return numeric_metric_ ? numeric_metric_->Compute(a, b)
                           : default_numeric_.Compute(a, b);
  }
  return string_metric_->Compute(a, b);
}

std::string HybridSimilarity::Name() const {
  if (numeric_metric_) {
    return "hybrid(" + string_metric_->Name() + "," + numeric_metric_->Name() +
           ")";
  }
  return "hybrid(" + string_metric_->Name() + ")";
}

ValueSimilarityPtr MakeSimilarity(const std::string& name) {
  auto parse_q = [](const std::string& s, const char* prefix) -> int {
    int q = 0;
    if (std::sscanf(s.c_str(), (std::string(prefix) + "%d").c_str(), &q) == 1 &&
        q >= 1) {
      return q;
    }
    return 0;
  };
  if (name.rfind("jaccard_q", 0) == 0) {
    if (int q = parse_q(name, "jaccard_q")) {
      return std::make_shared<JaccardSimilarity>(q);
    }
    return nullptr;
  }
  if (name == "jaccard") return std::make_shared<JaccardSimilarity>(2);
  if (name == "edit") return std::make_shared<EditSimilarity>();
  if (name == "jaro_winkler") return std::make_shared<JaroWinklerSimilarity>();
  if (name.rfind("cosine_q", 0) == 0) {
    if (int q = parse_q(name, "cosine_q")) {
      return std::make_shared<CosineSimilarity>(q);
    }
    return nullptr;
  }
  if (name == "cosine") return std::make_shared<CosineSimilarity>(2);
  if (name.rfind("dice_q", 0) == 0) {
    if (int q = parse_q(name, "dice_q")) {
      return std::make_shared<DiceSimilarity>(q);
    }
    return nullptr;
  }
  if (name == "dice") return std::make_shared<DiceSimilarity>(2);
  if (name.rfind("overlap_q", 0) == 0) {
    if (int q = parse_q(name, "overlap_q")) {
      return std::make_shared<OverlapSimilarity>(q);
    }
    return nullptr;
  }
  if (name == "overlap") return std::make_shared<OverlapSimilarity>(2);
  if (name == "monge_elkan") return std::make_shared<MongeElkanSimilarity>();
  if (name.rfind("numeric_tol", 0) == 0) {
    double tol = 0.0;
    if (std::sscanf(name.c_str(), "numeric_tol%lf", &tol) == 1 && tol > 0.0) {
      return std::make_shared<ScaledNumericSimilarity>(tol);
    }
    return nullptr;
  }
  if (name == "numeric") return std::make_shared<NumericSimilarity>();
  if (name.rfind("hybrid(", 0) == 0 && name.back() == ')') {
    std::string inner_spec = name.substr(7, name.size() - 8);
    size_t comma = inner_spec.find(',');
    if (comma == std::string::npos) {
      auto inner = MakeSimilarity(inner_spec);
      if (!inner) return nullptr;
      return std::make_shared<HybridSimilarity>(std::move(inner));
    }
    auto string_metric = MakeSimilarity(inner_spec.substr(0, comma));
    auto numeric_metric = MakeSimilarity(inner_spec.substr(comma + 1));
    if (!string_metric || !numeric_metric) return nullptr;
    return std::make_shared<HybridSimilarity>(std::move(string_metric),
                                              std::move(numeric_metric));
  }
  return nullptr;
}

}  // namespace hera
