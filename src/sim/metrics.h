// Concrete ValueSimilarity implementations over the Value model.

#ifndef HERA_SIM_METRICS_H_
#define HERA_SIM_METRICS_H_

#include <memory>
#include <string>

#include "sim/similarity.h"
#include "text/token_cache.h"

namespace hera {

class TfIdfModel;

/// \brief Jaccard over q-gram sets — the paper's default (q = 2).
///
/// Numbers are compared via their canonical string rendering; nulls
/// score 0 against everything.
///
/// Tokenization is served from an internal TokenCache (as are the
/// other gram-set metrics below): each distinct normalized text is
/// q-grammed once per metric instance instead of once per Compute
/// call. Caching never changes scores — a cached gram set is the exact
/// QgramSet the uncached path would extract.
class JaccardSimilarity : public ValueSimilarity {
 public:
  explicit JaccardSimilarity(int q = 2);
  double Compute(const Value& a, const Value& b) const override;
  std::string Name() const override;
  int q() const { return q_; }

 private:
  int q_;
  std::shared_ptr<TokenCache> cache_;
};

/// Normalized Levenshtein (1 - dist/maxlen).
class EditSimilarity : public ValueSimilarity {
 public:
  double Compute(const Value& a, const Value& b) const override;
  std::string Name() const override { return "edit"; }
};

/// Jaro–Winkler.
class JaroWinklerSimilarity : public ValueSimilarity {
 public:
  double Compute(const Value& a, const Value& b) const override;
  std::string Name() const override { return "jaro_winkler"; }
};

/// Cosine over q-gram sets (TokenCache-served, see JaccardSimilarity).
class CosineSimilarity : public ValueSimilarity {
 public:
  explicit CosineSimilarity(int q = 2);
  double Compute(const Value& a, const Value& b) const override;
  std::string Name() const override;

 private:
  int q_;
  std::shared_ptr<TokenCache> cache_;
};

/// Dice coefficient over q-gram sets (TokenCache-served).
class DiceSimilarity : public ValueSimilarity {
 public:
  explicit DiceSimilarity(int q = 2);
  double Compute(const Value& a, const Value& b) const override;
  std::string Name() const override;

 private:
  int q_;
  std::shared_ptr<TokenCache> cache_;
};

/// Overlap coefficient over q-gram sets (TokenCache-served).
class OverlapSimilarity : public ValueSimilarity {
 public:
  explicit OverlapSimilarity(int q = 2);
  double Compute(const Value& a, const Value& b) const override;
  std::string Name() const override;

 private:
  int q_;
  std::shared_ptr<TokenCache> cache_;
};

/// Symmetrized Monge–Elkan over word tokens (good for multi-word names).
class MongeElkanSimilarity : public ValueSimilarity {
 public:
  double Compute(const Value& a, const Value& b) const override;
  std::string Name() const override { return "monge_elkan"; }
};

/// Soft TF-IDF; holds a shared corpus model.
class SoftTfIdfSimilarity : public ValueSimilarity {
 public:
  SoftTfIdfSimilarity(std::shared_ptr<const TfIdfModel> model, double theta = 0.9)
      : model_(std::move(model)), theta_(theta) {}
  double Compute(const Value& a, const Value& b) const override;
  std::string Name() const override { return "soft_tfidf"; }

 private:
  std::shared_ptr<const TfIdfModel> model_;
  double theta_;
};

/// \brief Relative-difference similarity for numbers:
/// 1 - |a-b| / max(|a|, |b|), clamped to [0,1]; exact equality -> 1.
class NumericSimilarity : public ValueSimilarity {
 public:
  double Compute(const Value& a, const Value& b) const override;
  std::string Name() const override { return "numeric"; }
};

/// \brief Absolute-tolerance similarity for identifier-like numbers
/// (years, ids): 1 - |a-b| / tolerance, clamped to [0,1]. Relative
/// difference is wrong for such values — 1973 and 2024 are 97% "similar"
/// relatively but denote entirely different things.
class ScaledNumericSimilarity : public ValueSimilarity {
 public:
  explicit ScaledNumericSimilarity(double tolerance) : tolerance_(tolerance) {}
  double Compute(const Value& a, const Value& b) const override;
  std::string Name() const override;
  double tolerance() const { return tolerance_; }

 private:
  double tolerance_;
};

/// \brief Type-dispatching similarity: number pairs -> the numeric
/// metric (relative difference by default), strings -> the wrapped
/// string metric, mixed types -> string metric over canonical
/// renderings. This is the "black-box per data type" composition the
/// paper describes.
class HybridSimilarity : public ValueSimilarity {
 public:
  /// `numeric_metric` defaults to NumericSimilarity when null.
  explicit HybridSimilarity(ValueSimilarityPtr string_metric,
                            ValueSimilarityPtr numeric_metric = nullptr)
      : string_metric_(std::move(string_metric)),
        numeric_metric_(std::move(numeric_metric)) {}
  double Compute(const Value& a, const Value& b) const override;
  std::string Name() const override;

 private:
  ValueSimilarityPtr string_metric_;
  ValueSimilarityPtr numeric_metric_;  // Null -> default_numeric_.
  NumericSimilarity default_numeric_;
};

/// Looks up a metric by name: "jaccard_q<N>", "edit", "jaro_winkler",
/// "cosine_q<N>", "dice_q<N>", "overlap_q<N>", "monge_elkan",
/// "numeric", "numeric_tol<T>", "hybrid(<string>)", or
/// "hybrid(<string>,<numeric>)". Returns nullptr for unknown names
/// (Soft TF-IDF needs a corpus model and cannot be built by name).
ValueSimilarityPtr MakeSimilarity(const std::string& name);

}  // namespace hera

#endif  // HERA_SIM_METRICS_H_
