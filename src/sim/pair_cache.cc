#include "sim/pair_cache.h"

#include <mutex>
#include <utility>

namespace hera {

namespace {

/// Length-framed ordered key: no delimiter byte a value text could
/// collide with ("a\x1fb" + "c" vs "a" + "\x1fbc").
std::string PairKey(const std::string& a, const std::string& b) {
  std::string key = std::to_string(a.size());
  key.reserve(key.size() + 1 + a.size() + b.size());
  key.push_back(':');
  key.append(a);
  key.append(b);
  return key;
}

}  // namespace

double PairSimCache::GetOrCompute(const std::string& a, const std::string& b,
                                  const std::function<double()>& compute) {
  std::string key = PairKey(a, b);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  double sim = compute();
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (max_entries_ > 0 && map_.size() >= max_entries_ &&
        map_.find(key) == map_.end()) {
      skipped_inserts_.fetch_add(1, std::memory_order_relaxed);
      return sim;
    }
    map_.emplace(std::move(key), sim);
  }
  return sim;
}

void PairSimCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  map_.clear();
}

PairSimCache::Stats PairSimCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.skipped_inserts = skipped_inserts_.load(std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_);
  s.entries = map_.size();
  return s;
}

}  // namespace hera
