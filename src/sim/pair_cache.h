// Cross-pass memoization of verified value-pair similarities.
//
// The expensive part of candidate verification — when the metric is
// not kernel-eligible (edit distance, Jaro–Winkler, Monge–Elkan, Soft
// TF-IDF, or a q mismatch) — is the metric call itself, and the same
// text pairs recur constantly: duplicate values inside one batch, and
// every incremental round re-probes fresh records against the standing
// value set. PairSimCache interns the score per (text, text) pair so
// each distinct pair is computed once per run.
//
// Content-addressed like TokenCache: keys are the raw value texts, so
// super-record merges invalidate by construction (merging permutes
// value labels, never value text — a merged record's entries are still
// valid verbatim). Keys preserve argument order and are length-framed,
// so the cache is sound for asymmetric metrics and for texts that
// contain any delimiter byte.
//
// Determinism: a metric is a pure function of its two texts, so a hit
// returns the bit-identical double a fresh computation would — results
// never depend on cache state, thread interleaving, or capacity. Only
// the hit/miss counters are timing-dependent.
//
// Thread safety: GetOrCompute may be called concurrently from join
// workers (shared-lock lookups, unique-lock inserts). Two workers
// racing on the same missing key both compute the same value; either
// insert wins.

#ifndef HERA_SIM_PAIR_CACHE_H_
#define HERA_SIM_PAIR_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

namespace hera {

/// \brief Content-addressed cache of value-pair similarity scores.
class PairSimCache {
 public:
  /// Point-in-time counters; hits/misses/skipped are cumulative.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Misses computed but not retained because the cache was full.
    uint64_t skipped_inserts = 0;
    size_t entries = 0;
  };

  /// \param metric_name Name() of the metric whose scores are cached;
  ///   consumers must check it so a cache never serves scores from a
  ///   different metric.
  /// \param max_entries capacity ceiling (0 = unlimited); at the
  ///   ceiling the cache degrades to a pass-through.
  explicit PairSimCache(std::string metric_name, size_t max_entries = 1u << 20)
      : metric_name_(std::move(metric_name)), max_entries_(max_entries) {}

  /// The cached score for the ordered text pair (a, b), or compute(),
  /// interned for next time.
  double GetOrCompute(const std::string& a, const std::string& b,
                      const std::function<double()>& compute);

  /// Drops every entry; counters are kept.
  void Clear();

  Stats stats() const;

  const std::string& metric_name() const { return metric_name_; }

 private:
  const std::string metric_name_;
  const size_t max_entries_;

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, double> map_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> skipped_inserts_{0};
};

}  // namespace hera

#endif  // HERA_SIM_PAIR_CACHE_H_
