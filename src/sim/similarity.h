// ValueSimilarity: the black-box simv(v1, v2) of Definition 3.
//
// All implementations return a score in [0, 1], where 1 is identity.
// Null values have similarity 0 against everything (including null):
// absence of information is never positive evidence.

#ifndef HERA_SIM_SIMILARITY_H_
#define HERA_SIM_SIMILARITY_H_

#include <memory>
#include <string>
#include <string_view>

#include "sim/value.h"

namespace hera {

/// \brief Abstract similarity over typed values. Thread-compatible:
/// Compute() is const and implementations hold no mutable state.
class ValueSimilarity {
 public:
  virtual ~ValueSimilarity() = default;

  /// simv(a, b) in [0, 1].
  virtual double Compute(const Value& a, const Value& b) const = 0;

  /// Identifier for configs / registry lookup (e.g. "jaccard_q2").
  virtual std::string Name() const = 0;
};

using ValueSimilarityPtr = std::shared_ptr<const ValueSimilarity>;

}  // namespace hera

#endif  // HERA_SIM_SIMILARITY_H_
