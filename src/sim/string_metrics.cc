#include "sim/string_metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "text/normalize.h"
#include "text/qgram.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace hera {

namespace {

struct GramPair {
  std::vector<std::string> a;
  std::vector<std::string> b;
};

GramPair Grams(std::string_view a, std::string_view b, int q) {
  return {QgramSet(Normalize(a), q), QgramSet(Normalize(b), q)};
}

}  // namespace

double QgramJaccard(std::string_view a, std::string_view b, int q) {
  auto [ga, gb] = Grams(a, b, q);
  return JaccardOfSets(ga, gb);
}

double QgramDice(std::string_view a, std::string_view b, int q) {
  auto [ga, gb] = Grams(a, b, q);
  if (ga.empty() || gb.empty()) return 0.0;
  size_t inter = OverlapOfSets(ga, gb);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(ga.size() + gb.size());
}

double QgramOverlap(std::string_view a, std::string_view b, int q) {
  auto [ga, gb] = Grams(a, b, q);
  if (ga.empty() || gb.empty()) return 0.0;
  size_t inter = OverlapOfSets(ga, gb);
  return static_cast<double>(inter) /
         static_cast<double>(std::min(ga.size(), gb.size()));
}

double QgramCosine(std::string_view a, std::string_view b, int q) {
  auto [ga, gb] = Grams(a, b, q);
  if (ga.empty() || gb.empty()) return 0.0;
  size_t inter = OverlapOfSets(ga, gb);
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(ga.size()) * static_cast<double>(gb.size()));
}

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Single-row DP: O(min(|a|,|b|)) space.
  std::vector<size_t> row(a.size() + 1);
  std::iota(row.begin(), row.end(), size_t{0});
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t cur = row[i];
      size_t sub_cost = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, sub_cost});
      prev_diag = cur;
    }
  }
  return row[a.size()];
}

double NormalizedLevenshtein(std::string_view a, std::string_view b) {
  std::string na = Normalize(a), nb = Normalize(b);
  if (na.empty() && nb.empty()) return 1.0;
  size_t dist = LevenshteinDistance(na, nb);
  size_t denom = std::max(na.size(), nb.size());
  return 1.0 - static_cast<double>(dist) / static_cast<double>(denom);
}

double Jaro(std::string_view a, std::string_view b) {
  std::string sa = Normalize(a), sb = Normalize(b);
  if (sa.empty() && sb.empty()) return 1.0;
  if (sa.empty() || sb.empty()) return 0.0;
  size_t match_window =
      std::max<size_t>(1, std::max(sa.size(), sb.size()) / 2) - 1;
  std::vector<bool> a_matched(sa.size(), false), b_matched(sb.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < sa.size(); ++i) {
    size_t lo = i > match_window ? i - match_window : 0;
    size_t hi = std::min(sb.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && sa[i] == sb[j]) {
        a_matched[i] = b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t transpositions = 0, j = 0;
  for (size_t i = 0; i < sa.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (sa[i] != sb[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / sa.size() + m / sb.size() + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinkler(std::string_view a, std::string_view b) {
  double jaro = Jaro(a, b);
  std::string sa = Normalize(a), sb = Normalize(b);
  size_t prefix = 0;
  size_t limit = std::min({sa.size(), sb.size(), size_t{4}});
  while (prefix < limit && sa[prefix] == sb[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

namespace {

double MongeElkanOneWay(const std::vector<std::string>& ta,
                        const std::vector<std::string>& tb) {
  if (ta.empty()) return tb.empty() ? 1.0 : 0.0;
  if (tb.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& x : ta) {
    double best = 0.0;
    for (const auto& y : tb) best = std::max(best, JaroWinkler(x, y));
    sum += best;
  }
  return sum / static_cast<double>(ta.size());
}

}  // namespace

double MongeElkan(std::string_view a, std::string_view b) {
  auto ta = WordTokens(a), tb = WordTokens(b);
  return std::max(MongeElkanOneWay(ta, tb), MongeElkanOneWay(tb, ta));
}

double TfIdfCosine(std::string_view a, std::string_view b, const TfIdfModel& model) {
  auto wa = model.WeightVector(a);
  auto wb = model.WeightVector(b);
  if (wa.empty() && wb.empty()) return 1.0;
  double dot = 0.0;
  for (const auto& [tok, w] : wa) {
    auto it = wb.find(tok);
    if (it != wb.end()) dot += w * it->second;
  }
  return std::clamp(dot, 0.0, 1.0);
}

double SoftTfIdf(std::string_view a, std::string_view b, const TfIdfModel& model,
                 double theta) {
  auto wa = model.WeightVector(a);
  auto wb = model.WeightVector(b);
  if (wa.empty() && wb.empty()) return 1.0;
  double score = 0.0;
  for (const auto& [ta, weight_a] : wa) {
    // CLOSE(theta): best soft match of ta among b's tokens.
    double best_sim = 0.0;
    double best_weight_b = 0.0;
    for (const auto& [tb, weight_b] : wb) {
      double s = JaroWinkler(ta, tb);
      if (s >= theta && s > best_sim) {
        best_sim = s;
        best_weight_b = weight_b;
      }
    }
    if (best_sim > 0.0) score += weight_a * best_weight_b * best_sim;
  }
  return std::clamp(score, 0.0, 1.0);
}

}  // namespace hera
