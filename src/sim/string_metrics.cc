#include "sim/string_metrics.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "sim/kernel_dispatch.h"
#include "text/normalize.h"
#include "text/qgram.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace hera {

namespace {

struct GramPair {
  std::vector<std::string> a;
  std::vector<std::string> b;
};

GramPair Grams(std::string_view a, std::string_view b, int q) {
  return {QgramSet(Normalize(a), q), QgramSet(Normalize(b), q)};
}

}  // namespace

double QgramJaccard(std::string_view a, std::string_view b, int q) {
  auto [ga, gb] = Grams(a, b, q);
  return JaccardOfSets(ga, gb);
}

double QgramDice(std::string_view a, std::string_view b, int q) {
  auto [ga, gb] = Grams(a, b, q);
  if (ga.empty() || gb.empty()) return 0.0;
  size_t inter = OverlapOfSets(ga, gb);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(ga.size() + gb.size());
}

double QgramOverlap(std::string_view a, std::string_view b, int q) {
  auto [ga, gb] = Grams(a, b, q);
  if (ga.empty() || gb.empty()) return 0.0;
  size_t inter = OverlapOfSets(ga, gb);
  return static_cast<double>(inter) /
         static_cast<double>(std::min(ga.size(), gb.size()));
}

double QgramCosine(std::string_view a, std::string_view b, int q) {
  auto [ga, gb] = Grams(a, b, q);
  if (ga.empty() || gb.empty()) return 0.0;
  size_t inter = OverlapOfSets(ga, gb);
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(ga.size()) * static_cast<double>(gb.size()));
}

namespace {

/// "No limit" sentinel for the bounded edit-distance kernels.
constexpr size_t kNoLimit = std::numeric_limits<size_t>::max();

constexpr uint64_t kHighBit = uint64_t{1} << 63;

/// One column step of one 64-row block of the Myers bit-parallel
/// recurrence (Hyyrö/edlib formulation). pv/mv are the vertical +1/-1
/// delta vectors for this block, eq the pattern-match bits for the
/// current text byte, hin the horizontal delta entering from the block
/// below (-1, 0, +1). Returns the horizontal delta leaving the top of
/// the block, and writes the pre-shift horizontal vectors so the
/// caller can read the score delta at the pattern's last row.
struct BlockStep {
  int hout;
  uint64_t ph;  // pre-shift horizontal +1 bits; bit i = row i+1 of block
  uint64_t mh;  // pre-shift horizontal -1 bits
};

inline BlockStep AdvanceMyersBlock(uint64_t& pv, uint64_t& mv, uint64_t eq,
                                   int hin) {
  const uint64_t xv = eq | mv;
  if (hin < 0) eq |= 1;
  const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
  const uint64_t ph = mv | ~(xh | pv);
  const uint64_t mh = pv & xh;
  int hout = 0;
  if (ph & kHighBit) {
    hout = 1;
  } else if (mh & kHighBit) {
    hout = -1;
  }
  uint64_t ph_shift = ph << 1;
  uint64_t mh_shift = mh << 1;
  if (hin < 0) {
    mh_shift |= 1;
  } else if (hin > 0) {
    ph_shift |= 1;
  }
  pv = mh_shift | ~(xv | ph_shift);
  mv = ph_shift & xv;
  return {hout, ph, mh};
}

/// Myers for patterns of <= 64 bytes: the whole pattern in one word.
/// With `limit`, returns limit + 1 as soon as the score minus the
/// remaining columns exceeds it (the score changes by at most one per
/// column, so the final distance provably exceeds the limit too).
size_t Myers64(std::string_view pat, std::string_view txt, size_t limit) {
  const size_t m = pat.size(), n = txt.size();
  uint64_t peq[256] = {};
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(pat[i])] |= uint64_t{1} << i;
  }
  uint64_t pv = ~uint64_t{0}, mv = 0;
  size_t score = m;
  const uint64_t last_row = uint64_t{1} << (m - 1);
  for (size_t j = 0; j < n; ++j) {
    BlockStep step =
        AdvanceMyersBlock(pv, mv, peq[static_cast<unsigned char>(txt[j])], 1);
    if (step.ph & last_row) {
      ++score;
    } else if (step.mh & last_row) {
      --score;
    }
    if (limit != kNoLimit && score > limit + (n - 1 - j)) return limit + 1;
  }
  return score;
}

/// Blocked Myers for patterns longer than one word: ceil(m/64) blocks
/// per column with horizontal carries between them. Rows above m in
/// the top block are padding (eq bits 0); carries propagate upward
/// only, so they never affect the tracked row m.
size_t MyersBlocked(std::string_view pat, std::string_view txt, size_t limit) {
  const size_t m = pat.size(), n = txt.size();
  const size_t w = (m + 63) / 64;
  std::vector<uint64_t> peq(256 * w, 0);
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<size_t>(static_cast<unsigned char>(pat[i])) * w +
        (i >> 6)] |= uint64_t{1} << (i & 63);
  }
  std::vector<uint64_t> pv(w, ~uint64_t{0});
  std::vector<uint64_t> mv(w, 0);
  size_t score = m;
  const size_t top = w - 1;
  const uint64_t last_row = uint64_t{1} << ((m - 1) & 63);
  for (size_t j = 0; j < n; ++j) {
    const uint64_t* eq_row =
        &peq[static_cast<size_t>(static_cast<unsigned char>(txt[j])) * w];
    int hin = 1;
    for (size_t v = 0; v <= top; ++v) {
      BlockStep step = AdvanceMyersBlock(pv[v], mv[v], eq_row[v], hin);
      if (v == top) {
        if (step.ph & last_row) {
          ++score;
        } else if (step.mh & last_row) {
          --score;
        }
      }
      hin = step.hout;
    }
    if (limit != kNoLimit && score > limit + (n - 1 - j)) return limit + 1;
  }
  return score;
}

/// The row DP with the same banded early exit the Myers kernels use:
/// once even the best cell of the row cannot get back under the limit
/// with the columns that remain, the final distance cannot either.
size_t DpBounded(std::string_view a, std::string_view b, size_t limit) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> row(a.size() + 1);
  std::iota(row.begin(), row.end(), size_t{0});
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    size_t row_min = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t cur = row[i];
      size_t sub_cost = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, sub_cost});
      row_min = std::min(row_min, row[i]);
      prev_diag = cur;
    }
    if (limit != kNoLimit && row_min > limit + (b.size() - j)) {
      return limit + 1;
    }
  }
  return row[a.size()];
}

/// Lower bound on the edit distance from byte histograms: one edit
/// changes the summed per-byte count difference by at most 2, so
/// lev >= ceil(diff / 2). Exact inputs, integer math — safe to use as
/// a bail-out at any threshold.
size_t HistogramLowerBound(std::string_view a, std::string_view b) {
  std::array<int32_t, 256> counts{};
  for (char c : a) ++counts[static_cast<unsigned char>(c)];
  for (char c : b) --counts[static_cast<unsigned char>(c)];
  size_t diff = 0;
  for (int32_t d : counts) {
    diff += static_cast<size_t>(d < 0 ? -d : d);
  }
  return (diff + 1) / 2;
}

/// Histogram scan is ~256 adds + the two passes; below this length the
/// banded kernel is cheaper than the filter.
constexpr size_t kHistogramFilterMinLen = 16;

size_t MyersDistance(std::string_view a, std::string_view b, size_t limit) {
  if (a.size() > b.size()) std::swap(a, b);  // Pattern = shorter side.
  if (a.empty()) return b.size();
  CountMyersCall();
  return a.size() <= 64 ? Myers64(a, b, limit) : MyersBlocked(a, b, limit);
}

}  // namespace

size_t LevenshteinDistanceDp(std::string_view a, std::string_view b) {
  return DpBounded(a, b, kNoLimit);
}

size_t LevenshteinDistanceMyers(std::string_view a, std::string_view b) {
  return MyersDistance(a, b, kNoLimit);
}

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  // Tier dispatch is a speed knob only: the DP and the Myers kernel
  // compute the same integer for every pair of byte strings
  // (tests/kernel_test.cc fuzzes the equality).
  if (ActiveKernelDispatch() == KernelDispatch::kScalar) {
    return LevenshteinDistanceDp(a, b);
  }
  return MyersDistance(a, b, kNoLimit);
}

size_t LevenshteinDistanceBounded(std::string_view a, std::string_view b,
                                  size_t limit) {
  const size_t gap =
      a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
  if (gap > limit) return limit + 1;  // lev >= length gap.
  if (ActiveKernelDispatch() == KernelDispatch::kScalar) {
    return DpBounded(a, b, limit);
  }
  return MyersDistance(a, b, limit);
}

double NormalizedLevenshtein(std::string_view a, std::string_view b) {
  std::string na = Normalize(a), nb = Normalize(b);
  if (na.empty() && nb.empty()) return 1.0;
  size_t dist = LevenshteinDistance(na, nb);
  size_t denom = std::max(na.size(), nb.size());
  return 1.0 - static_cast<double>(dist) / static_cast<double>(denom);
}

double NormalizedLevenshteinAtLeast(std::string_view a, std::string_view b,
                                    double floor) {
  std::string na = Normalize(a), nb = Normalize(b);
  return NormalizedLevenshteinAtLeastNormalized(na, nb, floor);
}

double NormalizedLevenshteinAtLeastNormalized(std::string_view na,
                                              std::string_view nb,
                                              double floor) {
  if (na.empty() && nb.empty()) return 1.0 >= floor ? 1.0 : 0.0;
  const size_t denom = std::max(na.size(), nb.size());
  // The exact score expression NormalizedLevenshtein evaluates; using
  // the same doubles here makes the distance budget exact rather than
  // epsilon-fudged (same technique as MinOverlapForThreshold).
  auto score_of = [denom](size_t d) {
    return 1.0 - static_cast<double>(d) / static_cast<double>(denom);
  };
  if (score_of(0) < floor) return 0.0;  // floor > 1.0: nothing reaches it.
  // Largest distance whose score still reaches the floor. score_of is
  // nonincreasing in d (IEEE division is monotone), so binary search.
  size_t max_dist = denom;
  if (score_of(denom) < floor) {
    size_t lo = 0, hi = denom;  // Invariant: score_of(lo) >= floor > score_of(hi).
    while (hi - lo > 1) {
      size_t mid = lo + (hi - lo) / 2;
      if (score_of(mid) >= floor) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    max_dist = lo;
  }
  // Pre-filters: cheap exact lower bounds on the distance. When one
  // already overshoots the budget the score is provably < floor — bail
  // without any DP/Myers work.
  const size_t gap = denom - std::min(na.size(), nb.size());
  if (gap > max_dist) return 0.0;
  if (max_dist < denom && denom >= kHistogramFilterMinLen &&
      HistogramLowerBound(na, nb) > max_dist) {
    return 0.0;
  }
  size_t dist = LevenshteinDistanceBounded(na, nb, max_dist);
  if (dist > max_dist) return 0.0;
  return score_of(dist);
}

double Jaro(std::string_view a, std::string_view b) {
  std::string sa = Normalize(a), sb = Normalize(b);
  if (sa.empty() && sb.empty()) return 1.0;
  if (sa.empty() || sb.empty()) return 0.0;
  size_t match_window =
      std::max<size_t>(1, std::max(sa.size(), sb.size()) / 2) - 1;
  std::vector<bool> a_matched(sa.size(), false), b_matched(sb.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < sa.size(); ++i) {
    size_t lo = i > match_window ? i - match_window : 0;
    size_t hi = std::min(sb.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && sa[i] == sb[j]) {
        a_matched[i] = b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t transpositions = 0, j = 0;
  for (size_t i = 0; i < sa.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (sa[i] != sb[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / sa.size() + m / sb.size() + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinkler(std::string_view a, std::string_view b) {
  double jaro = Jaro(a, b);
  std::string sa = Normalize(a), sb = Normalize(b);
  size_t prefix = 0;
  size_t limit = std::min({sa.size(), sb.size(), size_t{4}});
  while (prefix < limit && sa[prefix] == sb[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

namespace {

/// Upper bound on JaroWinkler(x, y) from token lengths alone (inputs
/// in normal form, as WordTokens emits). Matches <= min(|x|, |y|) caps
/// both m/len terms, the transposition term is <= 1, and the Winkler
/// prefix adds at most 4 * 0.1 of the headroom. Every step uses the
/// same doubles (and the same rounding direction) the real metric
/// does, so bound >= JaroWinkler(x, y) holds exactly, never within an
/// epsilon.
double JaroWinklerUpperBound(size_t la, size_t lb) {
  if (la == 0 && lb == 0) return 1.0;
  if (la == 0 || lb == 0) return 0.0;
  // Max prefix boost expressed as the same product JaroWinkler forms
  // (4 * 0.1 in doubles is slightly above the literal 0.4 — using the
  // literal would under-estimate and break soundness in the last bit).
  constexpr double kMaxPrefixBoost = 4.0 * 0.1;
  const double mn = static_cast<double>(std::min(la, lb));
  const double jaro_ub = (mn / static_cast<double>(la) +
                          mn / static_cast<double>(lb) + 1.0) /
                         3.0;
  return jaro_ub + kMaxPrefixBoost * (1.0 - jaro_ub);
}

double MongeElkanOneWay(const std::vector<std::string>& ta,
                        const std::vector<std::string>& tb) {
  if (ta.empty()) return tb.empty() ? 1.0 : 0.0;
  if (tb.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& x : ta) {
    double best = 0.0;
    for (const auto& y : tb) {
      // A candidate whose length-only upper bound cannot beat the
      // running best cannot change the max: skip the full metric.
      if (JaroWinklerUpperBound(x.size(), y.size()) <= best) continue;
      best = std::max(best, JaroWinkler(x, y));
    }
    sum += best;
  }
  return sum / static_cast<double>(ta.size());
}

}  // namespace

double MongeElkan(std::string_view a, std::string_view b) {
  auto ta = WordTokens(a), tb = WordTokens(b);
  return std::max(MongeElkanOneWay(ta, tb), MongeElkanOneWay(tb, ta));
}

double TfIdfCosine(std::string_view a, std::string_view b, const TfIdfModel& model) {
  auto wa = model.WeightVector(a);
  auto wb = model.WeightVector(b);
  if (wa.empty() && wb.empty()) return 1.0;
  double dot = 0.0;
  for (const auto& [tok, w] : wa) {
    auto it = wb.find(tok);
    if (it != wb.end()) dot += w * it->second;
  }
  return std::clamp(dot, 0.0, 1.0);
}

double SoftTfIdf(std::string_view a, std::string_view b, const TfIdfModel& model,
                 double theta) {
  auto wa = model.WeightVector(a);
  auto wb = model.WeightVector(b);
  if (wa.empty() && wb.empty()) return 1.0;
  double score = 0.0;
  for (const auto& [ta, weight_a] : wa) {
    // CLOSE(theta): best soft match of ta among b's tokens.
    double best_sim = 0.0;
    double best_weight_b = 0.0;
    for (const auto& [tb, weight_b] : wb) {
      double s = JaroWinkler(ta, tb);
      if (s >= theta && s > best_sim) {
        best_sim = s;
        best_weight_b = weight_b;
      }
    }
    if (best_sim > 0.0) score += weight_a * best_weight_b * best_sim;
  }
  return std::clamp(score, 0.0, 1.0);
}

}  // namespace hera
