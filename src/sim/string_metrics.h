// String similarity metric implementations.
//
// The paper's default is Jaccard over q-gram sets with q = 2; it also
// names edit distance, cosine, and Soft TF-IDF as drop-in alternatives.
// Every metric here normalizes input via text/normalize first and
// returns scores in [0, 1].

#ifndef HERA_SIM_STRING_METRICS_H_
#define HERA_SIM_STRING_METRICS_H_

#include <string_view>

namespace hera {

class TfIdfModel;

/// Jaccard similarity of q-gram sets: |G1 ∩ G2| / |G1 ∪ G2|.
double QgramJaccard(std::string_view a, std::string_view b, int q);

/// Dice coefficient of q-gram sets: 2|G1 ∩ G2| / (|G1| + |G2|).
double QgramDice(std::string_view a, std::string_view b, int q);

/// Overlap coefficient of q-gram sets: |G1 ∩ G2| / min(|G1|, |G2|).
double QgramOverlap(std::string_view a, std::string_view b, int q);

/// Cosine over q-gram sets: |G1 ∩ G2| / sqrt(|G1| |G2|).
double QgramCosine(std::string_view a, std::string_view b, int q);

/// Levenshtein edit distance (unit costs). Raw count, not normalized.
/// Dispatches on the kernel tier (sim/kernel_dispatch.h): the Myers
/// bit-parallel kernel on any vector tier, the row DP on the scalar
/// tier. Both compute the same integer for every byte string.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// The O(mn) single-row DP — the scalar reference implementation,
/// exposed for tests and bench_kernel.
size_t LevenshteinDistanceDp(std::string_view a, std::string_view b);

/// The Myers bit-parallel kernel (Hyyrö's formulation; 64-bit blocks
/// for patterns longer than one word). Exposed for tests and
/// bench_kernel; LevenshteinDistance routes here off the scalar tier.
size_t LevenshteinDistanceMyers(std::string_view a, std::string_view b);

/// Banded variant: the exact distance when it is <= limit, else any
/// value > limit (callers must only branch on "> limit"). The band is
/// a column early-exit — score minus remaining columns can only shrink
/// by one per column, so once it exceeds limit the final distance
/// provably does too.
size_t LevenshteinDistanceBounded(std::string_view a, std::string_view b,
                                  size_t limit);

/// 1 - dist / max(|a|, |b|); 1.0 for two empty strings.
double NormalizedLevenshtein(std::string_view a, std::string_view b);

/// NormalizedLevenshtein with a floor: returns the exact (bit-equal)
/// score when it is >= floor, else 0.0 — usually without paying the
/// full edit-distance cost. Two pre-filters bail out before any DP:
/// the length gap (lev >= ||a| - |b||) and the byte-histogram bound
/// (lev >= ceil(diff/2) where diff sums per-byte count deltas); then
/// the banded kernel runs against the largest distance that can still
/// reach the floor, derived with the same double expression
/// NormalizedLevenshtein evaluates, so the conversion is exact.
double NormalizedLevenshteinAtLeast(std::string_view a, std::string_view b,
                                    double floor);

/// NormalizedLevenshteinAtLeast over inputs already in normal form
/// (Normalize applied by the caller — e.g. a memo in the weight
/// loops). Normalize is idempotent, so this is the same function with
/// the normalization hoisted out.
double NormalizedLevenshteinAtLeastNormalized(std::string_view na,
                                              std::string_view nb,
                                              double floor);

/// Jaro similarity.
double Jaro(std::string_view a, std::string_view b);

/// Jaro–Winkler with standard prefix scale 0.1 and max prefix 4.
double JaroWinkler(std::string_view a, std::string_view b);

/// Monge–Elkan: mean over tokens of `a` of the best Jaro–Winkler match
/// in `b`, symmetrized by taking the max of both directions.
double MongeElkan(std::string_view a, std::string_view b);

/// Cosine over TF-IDF-weighted word vectors.
double TfIdfCosine(std::string_view a, std::string_view b, const TfIdfModel& model);

/// Soft TF-IDF (Cohen et al.): TF-IDF cosine where tokens are matched
/// softly by Jaro–Winkler above `theta` rather than exact equality.
double SoftTfIdf(std::string_view a, std::string_view b, const TfIdfModel& model,
                 double theta = 0.9);

}  // namespace hera

#endif  // HERA_SIM_STRING_METRICS_H_
