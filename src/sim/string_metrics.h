// String similarity metric implementations.
//
// The paper's default is Jaccard over q-gram sets with q = 2; it also
// names edit distance, cosine, and Soft TF-IDF as drop-in alternatives.
// Every metric here normalizes input via text/normalize first and
// returns scores in [0, 1].

#ifndef HERA_SIM_STRING_METRICS_H_
#define HERA_SIM_STRING_METRICS_H_

#include <string_view>

namespace hera {

class TfIdfModel;

/// Jaccard similarity of q-gram sets: |G1 ∩ G2| / |G1 ∪ G2|.
double QgramJaccard(std::string_view a, std::string_view b, int q);

/// Dice coefficient of q-gram sets: 2|G1 ∩ G2| / (|G1| + |G2|).
double QgramDice(std::string_view a, std::string_view b, int q);

/// Overlap coefficient of q-gram sets: |G1 ∩ G2| / min(|G1|, |G2|).
double QgramOverlap(std::string_view a, std::string_view b, int q);

/// Cosine over q-gram sets: |G1 ∩ G2| / sqrt(|G1| |G2|).
double QgramCosine(std::string_view a, std::string_view b, int q);

/// Levenshtein edit distance (unit costs). Raw count, not normalized.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - dist / max(|a|, |b|); 1.0 for two empty strings.
double NormalizedLevenshtein(std::string_view a, std::string_view b);

/// Jaro similarity.
double Jaro(std::string_view a, std::string_view b);

/// Jaro–Winkler with standard prefix scale 0.1 and max prefix 4.
double JaroWinkler(std::string_view a, std::string_view b);

/// Monge–Elkan: mean over tokens of `a` of the best Jaro–Winkler match
/// in `b`, symmetrized by taking the max of both directions.
double MongeElkan(std::string_view a, std::string_view b);

/// Cosine over TF-IDF-weighted word vectors.
double TfIdfCosine(std::string_view a, std::string_view b, const TfIdfModel& model);

/// Soft TF-IDF (Cohen et al.): TF-IDF cosine where tokens are matched
/// softly by Jaro–Winkler above `theta` rather than exact equality.
double SoftTfIdf(std::string_view a, std::string_view b, const TfIdfModel& model,
                 double theta = 0.9);

}  // namespace hera

#endif  // HERA_SIM_STRING_METRICS_H_
