#include "sim/value.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/string_util.h"

namespace hera {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kString:
      return "string";
    case ValueType::kNumber:
      return "number";
  }
  return "?";
}

Value Value::Parse(std::string_view raw, bool sniff_numbers) {
  std::string_view trimmed = Trim(raw);
  if (trimmed.empty() || trimmed == "null" || trimmed == "NULL") return Value();
  if (sniff_numbers && LooksNumeric(trimmed)) {
    double d = 0.0;
    auto [ptr, ec] = std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), d);
    if (ec == std::errc() && ptr == trimmed.data() + trimmed.size()) {
      return Value(d);
    }
  }
  return Value(std::string(trimmed));
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kString:
      return AsString();
    case ValueType::kNumber: {
      double d = AsNumber();
      if (std::nearbyint(d) == d && std::fabs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
        return buf;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", d);
      return buf;
    }
  }
  return "";
}

}  // namespace hera
