// Value: the typed atomic unit stored in record fields.
//
// The paper: "HERA could handle records with various data types, such
// as string data, numeric data, etc. and view the similarity metric of
// corresponding data type as a black-box." Value is a tagged union of
// the supported types; ValueSimilarity implementations dispatch on the
// tag.

#ifndef HERA_SIM_VALUE_H_
#define HERA_SIM_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace hera {

/// Runtime type of a Value.
enum class ValueType { kNull = 0, kString = 1, kNumber = 2 };

const char* ValueTypeToString(ValueType t);

/// \brief Immutable typed attribute value (null, string, or double).
class Value {
 public:
  /// Null value.
  Value() : data_(std::monostate{}) {}

  /// String value.
  explicit Value(std::string s) : data_(std::move(s)) {}
  explicit Value(const char* s) : data_(std::string(s)) {}

  /// Numeric value.
  explicit Value(double d) : data_(d) {}

  /// Parses `raw`: numeric-looking strings become kNumber when
  /// `sniff_numbers` is set, empty / "null" strings become kNull,
  /// everything else is kString.
  static Value Parse(std::string_view raw, bool sniff_numbers = false);

  ValueType type() const {
    switch (data_.index()) {
      case 1:
        return ValueType::kString;
      case 2:
        return ValueType::kNumber;
      default:
        return ValueType::kNull;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_number() const { return type() == ValueType::kNumber; }

  /// String payload; must be a string value.
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric payload; must be a number value.
  double AsNumber() const { return std::get<double>(data_); }

  /// Human/similarity-facing rendering: strings verbatim, numbers with
  /// minimal formatting, null as "".
  std::string ToString() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  std::variant<std::monostate, std::string, double> data_;
};

}  // namespace hera

#endif  // HERA_SIM_VALUE_H_
