#include "simjoin/similarity_join.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <iterator>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "parallel/parallel_for.h"
#include "sim/kernel.h"
#include "text/normalize.h"
#include "text/qgram.h"

namespace hera {

std::vector<ValuePair> SimilarityJoin::Join(
    const std::vector<LabeledValue>& values, const ValueSimilarity& simv,
    double xi) const {
  std::vector<ValuePair> out;
  Join(values, simv, xi, RunGuard(), &out);
  return out;
}

std::vector<ValuePair> SimilarityJoin::JoinAB(
    const std::vector<LabeledValue>& probe, const std::vector<LabeledValue>& base,
    const ValueSimilarity& simv, double xi) const {
  std::vector<ValuePair> out;
  JoinAB(probe, base, simv, xi, RunGuard(), &out);
  return out;
}

namespace {

/// Filter/verify counters accumulated per chunk and folded across the
/// join's phases; the single accumulator the report is written from.
struct JoinCounters {
  size_t candidates = 0;
  size_t verified = 0;
  /// Candidates counted but dropped unverified when the guard tripped
  /// at their batch's weighted Tick(n) check (trip-boundary exactness:
  /// candidates == verified + shed_candidates for truncated runs).
  size_t shed_candidates = 0;
  /// Token-path pairs that shared at least one indexed prefix token,
  /// counted once per pair (the marker dedup fires before any filter).
  size_t encountered = 0;
  size_t pruned_length = 0;
  size_t pruned_positional = 0;
  size_t pruned_suffix = 0;

  void Fold(const JoinCounters& o) {
    candidates += o.candidates;
    verified += o.verified;
    shed_candidates += o.shed_candidates;
    encountered += o.encountered;
    pruned_length += o.pruned_length;
    pruned_positional += o.pruned_positional;
    pruned_suffix += o.pruned_suffix;
  }
};

/// One chunk's output: pairs found plus filter/verify counters. Chunks
/// are concatenated in chunk index order (MergeChunks), which is what
/// makes parallel output byte-identical to serial for completed runs.
struct ChunkOut {
  std::vector<ValuePair> pairs;
  JoinCounters counters;
};

void MergeChunks(std::vector<ChunkOut>& chunks, std::vector<ValuePair>* out,
                 JoinCounters* totals) {
  size_t total = 0;
  for (const ChunkOut& c : chunks) total += c.pairs.size();
  out->reserve(out->size() + total);
  for (ChunkOut& c : chunks) {
    std::move(c.pairs.begin(), c.pairs.end(), std::back_inserter(*out));
    totals->Fold(c.counters);
  }
}

/// Writes the accumulated counters into the report (the plumbing every
/// join tail used to duplicate). `token_pairs` is the number of pairs
/// eligible for the token path; the prefix filter's effect is derived
/// from it — pairs it never surfaced were prefix-pruned.
void FinishReport(JoinReport* report, const JoinCounters& totals,
                  bool truncated, size_t shed_posting, size_t token_pairs,
                  const std::vector<ValuePair>& out) {
  if (!report) return;
  report->truncated = truncated;
  report->shed_posting_entries = shed_posting;
  report->candidates = totals.candidates;
  report->verified = totals.verified;
  report->shed_candidates = totals.shed_candidates;
  report->emitted = out.size();
  report->pruned_prefix =
      token_pairs > totals.encountered ? token_pairs - totals.encountered : 0;
  report->pruned_length = totals.pruned_length;
  report->pruned_positional = totals.pruned_positional;
  report->pruned_suffix = totals.pruned_suffix;
}

/// Folds one parallel phase's stats into the join report (element-wise
/// busy-time sum; threads_used is the widest phase). `phase` names the
/// phase for the recorded chunk spans (if any) and `phase_offset_us`
/// rebases their call-relative starts onto the join-entry clock.
void AccumulateBusy(const ParallelRunStats& stats, JoinReport* report,
                    const char* phase = "", double phase_offset_us = 0.0) {
  if (!report) return;
  report->threads_used = std::max(report->threads_used, stats.workers);
  for (const ChunkSpan& cs : stats.chunk_spans) {
    report->worker_spans.push_back(
        {phase, cs.chunk, cs.worker, phase_offset_us + cs.start_us, cs.dur_us});
  }
  if (stats.workers <= 1) return;
  if (report->worker_busy_us.size() < stats.busy_us.size()) {
    report->worker_busy_us.resize(stats.busy_us.size(), 0.0);
  }
  for (size_t w = 0; w < stats.busy_us.size(); ++w) {
    report->worker_busy_us[w] += stats.busy_us[w];
  }
}

size_t NumChunks(size_t n, size_t grain) {
  return n == 0 ? 0 : (n + grain - 1) / grain;
}

/// True when `simv` is q-gram Jaccard, so the prefix filter is exact
/// and verification can run on the encoded token sets directly.
bool IsJaccardMetric(const ValueSimilarity& simv, int q) {
  std::string name = simv.Name();
  std::string expect = "jaccard_q" + std::to_string(q);
  return name == expect || name == "hybrid(" + expect + ")";
}

/// Pre-kernel Jaccard verification, kept as the SetEncodedKernels(false)
/// A/B path.
double JaccardOfIds(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter, ++i, ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

/// How a join verifies the candidates the filters let through.
struct VerifyPlan {
  /// Kernel-eligible metric: score encoded token sets directly
  /// (bit-equal to the string path; see sim/kernel.h).
  bool use_kernel = false;
  SetSimKind kind = SetSimKind::kJaccard;
  /// Positional/suffix filters apply (exact threshold: q-gram Jaccard
  /// with kernels on).
  bool exact_filters = false;
  /// Kernels off but the metric is exact Jaccard: verify with the
  /// pre-kernel two-pointer merge (the A/B baseline path).
  bool legacy_jaccard_ids = false;
  /// Metric-matched PairSimCache for the fallback string path, or null.
  PairSimCache* pair_cache = nullptr;
};

/// Suffix filter recursion depth (each level costs a binary search and
/// halves the spans; 2 is where the cost/benefit curve flattens for
/// q-gram-sized sets).
constexpr int kSuffixFilterDepth = 2;
/// Skip the suffix filter when the remaining spans are shorter than
/// this — verifying tiny sets outright is cheaper than bounding them.
constexpr size_t kSuffixFilterMinRemain = 8;

/// PPJoin+-style check at the pair's first shared prefix token, found
/// at position `px` of `x` and `py` of `y` (both sorted rare-first).
/// Elements below the shared token contribute at most min(px, py) to
/// the intersection, the token itself 1, the suffixes at most
/// min(remaining) (positional bound) — tightened by a depth-limited
/// partition bound (suffix filter). Pruning only when the intersection
/// provably cannot reach MinOverlapForThreshold keeps the filter exact:
/// every pruned pair scores < xi.
/// Returns 0 = keep, 1 = positional-pruned, 2 = suffix-pruned.
int PositionalSuffixFilter(const std::vector<uint32_t>& x, size_t px,
                           const std::vector<uint32_t>& y, size_t py,
                           double xi) {
  const size_t nx = x.size(), ny = y.size();
  const size_t alpha =
      MinOverlapForThreshold(SetSimKind::kJaccard, nx, ny, xi);
  const size_t below = std::min(px, py) + 1;
  const size_t rx = nx - px - 1, ry = ny - py - 1;
  if (below + std::min(rx, ry) < alpha) return 1;
  if (std::min(rx, ry) >= kSuffixFilterMinRemain) {
    size_t ub = below + OverlapUpperBound(x.data() + px + 1, rx,
                                          y.data() + py + 1, ry,
                                          kSuffixFilterDepth);
    if (ub < alpha) return 2;
  }
  return 0;
}

VerifyPlan MakeVerifyPlan(const ValueSimilarity& simv, int q,
                          bool encoded_kernels, PairSimCache* cache) {
  VerifyPlan plan;
  const bool exact_jaccard = IsJaccardMetric(simv, q);
  SetSimKind kind;
  if (encoded_kernels && GramMetricKind(simv.Name(), q, &kind)) {
    plan.use_kernel = true;
    plan.kind = kind;
  }
  plan.exact_filters = exact_jaccard && encoded_kernels;
  plan.legacy_jaccard_ids = exact_jaccard && !plan.use_kernel;
  plan.pair_cache =
      (plan.use_kernel || plan.legacy_jaccard_ids) ? nullptr : cache;
  return plan;
}

/// Scores one string-path candidate per the plan: kernel when
/// eligible (early exit below xi returns a negative sentinel, which
/// callers' `s >= xi` emission test already rejects), else the metric,
/// served from the pair cache when one is installed.
double VerifyStringPair(const VerifyPlan& plan, const ValueSimilarity& simv,
                        double xi, const std::vector<uint32_t>& x_ids,
                        const std::vector<uint32_t>& y_ids, const Value& va,
                        const Value& vb) {
  if (plan.use_kernel) return SetSimilarityBounded(plan.kind, x_ids, y_ids, xi);
  if (plan.legacy_jaccard_ids) return JaccardOfIds(x_ids, y_ids);
  if (plan.pair_cache != nullptr) {
    return plan.pair_cache->GetOrCompute(
        va.ToString(), vb.ToString(), [&] { return simv.Compute(va, vb); });
  }
  return simv.Compute(va, vb);
}


/// How the numeric sweep bounds its search window; derived from the
/// metric name so the filter stays exact for both built-in numeric
/// semantics (relative difference and absolute tolerance).
struct NumericWindow {
  bool absolute = false;  // true: |gap| <= (1 - xi) * tol.
  double tol = 0.0;
};

NumericWindow NumericWindowFor(const ValueSimilarity& simv) {
  NumericWindow w;
  std::string name = simv.Name();
  size_t pos = name.find("numeric_tol");
  if (pos != std::string::npos) {
    w.absolute = true;
    w.tol = std::atof(name.c_str() + pos + 11);
  }
  return w;
}

/// Prefix length for the AllPairs filter at threshold filter_xi.
size_t PrefixLen(size_t len, double filter_xi) {
  size_t keep =
      static_cast<size_t>(std::ceil(static_cast<double>(len) * filter_xi));
  size_t prefix = len - (keep > 0 ? keep : 1) + 1;
  return std::min(prefix, len);
}

}  // namespace

Status NestedLoopJoin::Join(const std::vector<LabeledValue>& values,
                            const ValueSimilarity& simv, double xi,
                            const RunGuard& guard, std::vector<ValuePair>* out,
                            JoinReport* report) const {
  HERA_FAILPOINT("simjoin.join");
  out->clear();
  ThreadPool* pool = executor();
  const bool rec = collect_worker_spans() && report != nullptr &&
                   pool != nullptr && pool->size() > 1;
  PairSimCache* pair_cache = PairCacheFor(simv);
  const size_t n = values.size();
  const size_t grain = DefaultGrain(n, pool ? pool->size() : 1);
  std::vector<ChunkOut> chunks(NumChunks(n, grain));
  std::atomic<bool> stop{false};
  ParallelRunStats stats = ParallelChunks(
      pool, n, grain,
      [&](size_t chunk, size_t begin, size_t end, size_t /*worker*/) {
        ChunkOut& co = chunks[chunk];
        GuardTicker ticker(guard);
        for (size_t i = begin;
             i < end && !stop.load(std::memory_order_relaxed); ++i) {
          for (size_t j = i + 1; j < n; ++j) {
            if (ticker.Tick()) {
              stop.store(true, std::memory_order_relaxed);
              break;
            }
            if (values[i].label.rid == values[j].label.rid) continue;
            ++co.counters.candidates;
            ++co.counters.verified;
            const Value& va = values[i].value;
            const Value& vb = values[j].value;
            double s = (pair_cache && va.is_string() && vb.is_string())
                           ? pair_cache->GetOrCompute(
                                 va.AsString(), vb.AsString(),
                                 [&] { return simv.Compute(va, vb); })
                           : simv.Compute(va, vb);
            if (s >= xi) co.pairs.push_back({values[i].label, values[j].label, s});
          }
        }
      },
      rec);
  JoinCounters totals;
  MergeChunks(chunks, out, &totals);
  FinishReport(report, totals, stop.load(std::memory_order_relaxed), 0, 0,
               *out);
  AccumulateBusy(stats, report, "join.nested");
  return Status::OK();
}

Status NestedLoopJoin::JoinAB(const std::vector<LabeledValue>& probe,
                              const std::vector<LabeledValue>& base,
                              const ValueSimilarity& simv, double xi,
                              const RunGuard& guard,
                              std::vector<ValuePair>* out,
                              JoinReport* report) const {
  HERA_FAILPOINT("simjoin.join");
  out->clear();
  ThreadPool* pool = executor();
  const bool rec = collect_worker_spans() && report != nullptr &&
                   pool != nullptr && pool->size() > 1;
  PairSimCache* pair_cache = PairCacheFor(simv);
  const size_t n = probe.size();
  const size_t grain = DefaultGrain(n, pool ? pool->size() : 1);
  std::vector<ChunkOut> chunks(NumChunks(n, grain));
  std::atomic<bool> stop{false};
  ParallelRunStats stats = ParallelChunks(
      pool, n, grain,
      [&](size_t chunk, size_t begin, size_t end, size_t /*worker*/) {
        ChunkOut& co = chunks[chunk];
        GuardTicker ticker(guard);
        for (size_t pi = begin;
             pi < end && !stop.load(std::memory_order_relaxed); ++pi) {
          const LabeledValue& p = probe[pi];
          for (const LabeledValue& b : base) {
            if (ticker.Tick()) {
              stop.store(true, std::memory_order_relaxed);
              break;
            }
            if (p.label.rid == b.label.rid) continue;
            ++co.counters.candidates;
            ++co.counters.verified;
            double s = (pair_cache && p.value.is_string() && b.value.is_string())
                           ? pair_cache->GetOrCompute(
                                 p.value.AsString(), b.value.AsString(),
                                 [&] { return simv.Compute(p.value, b.value); })
                           : simv.Compute(p.value, b.value);
            if (s >= xi) co.pairs.push_back({p.label, b.label, s});
          }
        }
      },
      rec);
  JoinCounters totals;
  MergeChunks(chunks, out, &totals);
  FinishReport(report, totals, stop.load(std::memory_order_relaxed), 0, 0,
               *out);
  AccumulateBusy(stats, report, "join.nested");
  return Status::OK();
}

Status PrefixFilterJoin::Join(const std::vector<LabeledValue>& values,
                              const ValueSimilarity& simv, double xi,
                              const RunGuard& guard,
                              std::vector<ValuePair>* out,
                              JoinReport* report) const {
  HERA_FAILPOINT("simjoin.join");
  out->clear();
  ThreadPool* pool = executor();
  const size_t nworkers = (pool && pool->size() > 1) ? pool->size() : 1;
  // Per-phase chunk spans are rebased onto this join-entry clock so the
  // report's worker spans share one origin across all phases.
  Timer join_timer;
  const bool rec =
      collect_worker_spans() && report != nullptr && nworkers > 1;
  std::atomic<bool> stop{false};
  const size_t max_posting = guard.max_posting_list();
  size_t shed_posting = 0;
  JoinCounters totals;

  // ---- Partition: numeric values are swept, everything else gets the
  // token-based path over its canonical string rendering.
  std::vector<size_t> string_idx, numeric_idx;
  const bool metric_handles_numbers =
      StartsWith(simv.Name(), "hybrid(") || simv.Name() == "numeric";
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].value.is_null()) continue;
    if (values[i].value.is_number() && metric_handles_numbers) {
      numeric_idx.push_back(i);
    } else {
      string_idx.push_back(i);
    }
  }

  // ---- Numeric sweep: sort by value; sim >= xi iff
  // (y - x) <= (1 - xi) * max(|x|, |y|), which for y > 0 fails
  // monotonically as y grows, allowing early break. Each chunk of
  // sorted probe positions scans forward independently (read-only), so
  // the sweep parallelizes without coordination.
  std::sort(numeric_idx.begin(), numeric_idx.end(), [&](size_t a, size_t b) {
    return values[a].value.AsNumber() < values[b].value.AsNumber();
  });
  // The window is a pruning device only (the metric makes the final
  // call), so it is epsilon-relaxed: computing t = 1 - xi in floating
  // point can otherwise exclude exact-boundary pairs (sim == xi).
  const double t = 1.0 - xi;
  const NumericWindow window = NumericWindowFor(simv);
  {
    const size_t n = numeric_idx.size();
    const size_t grain = DefaultGrain(n, nworkers);
    std::vector<ChunkOut> chunks(NumChunks(n, grain));
    const double phase_t0 = join_timer.ElapsedMicros();
    ParallelRunStats stats = ParallelChunks(
        pool, n, grain,
        [&](size_t chunk, size_t begin, size_t end, size_t /*worker*/) {
          ChunkOut& co = chunks[chunk];
          GuardTicker ticker(guard);
          for (size_t p = begin;
               p < end && !stop.load(std::memory_order_relaxed); ++p) {
            double x = values[numeric_idx[p]].value.AsNumber();
            for (size_t r = p + 1; r < n; ++r) {
              if (ticker.Tick()) {
                stop.store(true, std::memory_order_relaxed);
                break;
              }
              double y = values[numeric_idx[r]].value.AsNumber();
              double gap = y - x;
              double denom = std::max(std::fabs(x), std::fabs(y));
              bool within;
              if (window.absolute) {
                within = gap <= t * window.tol + 1e-9;
              } else {
                within = denom == 0.0
                             ? gap == 0.0
                             : gap <= t * denom + 1e-9 * std::max(1.0, denom);
              }
              if (!within) {
                // Relative window: failure is monotone only once y > 0.
                // Absolute window: failure is monotone unconditionally.
                if (window.absolute || y > 0) break;
                continue;
              }
              const LabeledValue& va = values[numeric_idx[p]];
              const LabeledValue& vb = values[numeric_idx[r]];
              if (va.label.rid == vb.label.rid) continue;
              ++co.counters.candidates;
              ++co.counters.verified;
              double s = simv.Compute(va.value, vb.value);
              if (s >= xi) co.pairs.push_back({va.label, vb.label, s});
            }
          }
        },
        rec);
    MergeChunks(chunks, out, &totals);
    AccumulateBusy(stats, report, "join.numeric", phase_t0);
  }

  // ---- String path: AllPairs with length + prefix filters, plus
  // positional/suffix filters when the threshold is exact.
  const bool exact_jaccard = IsJaccardMetric(simv, q_);
  const VerifyPlan plan =
      MakeVerifyPlan(simv, q_, encoded_kernels_, PairCacheFor(simv));
  // For non-Jaccard metrics the gram filter is only a blocker; run it
  // at a slackened threshold so near-threshold true pairs survive.
  const double filter_xi = exact_jaccard ? xi : xi * filter_slack_;

  // Phase 1 (parallel): normalization + gram extraction, the
  // embarrassingly parallel part of tokenization. Grams come from the
  // shared TokenCache when one is installed (rounds >= 2 of an
  // incremental run hit it almost every time), else are extracted
  // fresh. Workers write disjoint slots.
  TokenCache* cache = (cache_ && cache_->q() == q_) ? cache_.get() : nullptr;
  std::vector<std::string> normalized(values.size());
  std::vector<TokenCache::GramsPtr> shared_grams;
  std::vector<std::vector<std::string>> owned_grams;
  if (cache) {
    shared_grams.resize(values.size());
  } else {
    owned_grams.resize(values.size());
  }
  {
    const size_t n = string_idx.size();
    const double phase_t0 = join_timer.ElapsedMicros();
    ParallelRunStats stats = ParallelChunks(
        pool, n, DefaultGrain(n, nworkers),
        [&](size_t /*chunk*/, size_t begin, size_t end, size_t /*worker*/) {
          for (size_t k = begin; k < end; ++k) {
            size_t i = string_idx[k];
            normalized[i] = Normalize(values[i].value.ToString());
            if (cache) {
              shared_grams[i] = cache->Grams(normalized[i]);
            } else {
              owned_grams[i] = QgramSet(normalized[i], q_);
            }
          }
        },
        rec);
    AccumulateBusy(stats, report, "join.tokenize", phase_t0);
  }
  auto grams_of = [&](size_t i) -> const std::vector<std::string>& {
    return cache ? *shared_grams[i] : owned_grams[i];
  };

  // Phase 2 (serial): dictionary build + encoding both mutate the
  // dictionary, so they stay on the controller thread.
  QgramDictionary dict(q_, backend_, pipeline_depth_);
  for (size_t i : string_idx) dict.AddGrams(grams_of(i));
  dict.Freeze();

  struct Encoded {
    size_t idx;                 // Position in `values`.
    std::vector<uint32_t> ids;  // Sorted rare-first token ids.
  };
  std::vector<Encoded> sets;
  sets.reserve(string_idx.size());
  for (size_t i : string_idx) {
    std::vector<uint32_t> ids = dict.EncodeGrams(grams_of(i));
    if (ids.empty()) continue;  // Nothing to match on.
    sets.push_back({i, std::move(ids)});
  }
  std::sort(sets.begin(), sets.end(), [](const Encoded& a, const Encoded& b) {
    return a.ids.size() < b.ids.size();
  });

  // Phase 3 (serial): full posting lists, built in ascending set
  // order. The posting ceiling is applied in that same order, so each
  // list's contents are exactly what the serial incremental index held
  // — and because entries are ascending, a probe that stops scanning
  // at its own position (cj >= si below) sees exactly the lists as
  // they stood when the serial loop reached it.
  // Each entry carries the token's position inside its set, which is
  // what the positional filter reasons about at probe time.
  struct Posting {
    size_t si;   // Index into `sets`.
    size_t pos;  // Prefix position of the token within sets[si].ids.
  };
  // The posting map is backend-selected: the ordered path keys lists
  // directly in an unordered_map; the flat path keeps lists in a dense
  // slab and maps token id -> slab slot through a FlatTable, so probes
  // can batch through the prefetch pipeline. Build order, shed
  // decisions, and each list's contents are identical either way.
  const bool flat = backend_ == IndexBackend::kFlat;
  constexpr uint64_t kNoSlot = ~0ull;
  std::vector<size_t> prefix_len(sets.size());
  std::unordered_map<uint32_t, std::vector<Posting>> postings;
  FlatTable posting_of(0, pipeline_depth_);  // token id -> slab slot.
  std::vector<std::vector<Posting>> posting_store;
  {
    std::vector<uint64_t> key_buf;
    std::vector<uint64_t*> slot_buf;
    for (size_t si = 0; si < sets.size(); ++si) {
      prefix_len[si] = PrefixLen(sets[si].ids.size(), filter_xi);
      if (flat) {
        key_buf.assign(sets[si].ids.begin(),
                       sets[si].ids.begin() + prefix_len[si]);
        slot_buf.resize(key_buf.size());
        posting_of.FindOrInsertBatch(key_buf, kNoSlot, slot_buf);
        for (size_t pi = 0; pi < prefix_len[si]; ++pi) {
          uint64_t* slot = slot_buf[pi];
          if (*slot == kNoSlot) {
            *slot = posting_store.size();
            posting_store.emplace_back();
          }
          std::vector<Posting>& list = posting_store[*slot];
          if (max_posting > 0 && list.size() >= max_posting) {
            ++shed_posting;
            continue;
          }
          list.push_back({si, pi});
        }
      } else {
        for (size_t pi = 0; pi < prefix_len[si]; ++pi) {
          std::vector<Posting>& list = postings[sets[si].ids[pi]];
          if (max_posting > 0 && list.size() >= max_posting) {
            ++shed_posting;
            continue;
          }
          list.push_back({si, pi});
        }
      }
    }
  }

  // Phase 4 (parallel): probing. Candidates for set si are earlier
  // (shorter-or-equal) sets sharing a prefix token and passing the
  // length filter |y| >= filter_xi * |x|. Dedup markers, candidate
  // buffers, and list/key scratch are per-worker and reused across
  // chunks; marker values are probe indices, which are globally
  // unique, so no resets are needed. Each record gathers its posting
  // lists first (one batched flat probe or one map lookup per prefix
  // token), which sizes the candidate buffer from the posting lengths
  // and lets the flat path prefetch the list heads before the scan.
  // The guard is hoisted to a per-record stride (weighted by the
  // record's work, so the check cadence is unchanged).
  {
    const size_t n = sets.size();
    const size_t grain = DefaultGrain(n, nworkers);
    std::vector<ChunkOut> chunks(NumChunks(n, grain));
    std::vector<std::vector<size_t>> markers(nworkers,
                                             std::vector<size_t>(n, SIZE_MAX));
    std::vector<std::vector<size_t>> cand_bufs(nworkers);
    std::vector<std::vector<const std::vector<Posting>*>> list_bufs(nworkers);
    std::vector<std::vector<uint64_t>> key_bufs(nworkers);
    std::vector<std::vector<const uint64_t*>> slot_bufs(nworkers);
    const double phase_t0 = join_timer.ElapsedMicros();
    ParallelRunStats stats = ParallelChunks(
        pool, n, grain,
        [&](size_t chunk, size_t begin, size_t end, size_t worker) {
          ChunkOut& co = chunks[chunk];
          std::vector<size_t>& candidate_of = markers[worker];
          std::vector<size_t>& candidates = cand_bufs[worker];
          std::vector<const std::vector<Posting>*>& lists = list_bufs[worker];
          GuardTicker ticker(guard);
          for (size_t si = begin;
               si < end && !stop.load(std::memory_order_relaxed); ++si) {
            const Encoded& x = sets[si];
            const size_t prefix = prefix_len[si];
            if (ticker.Tick(1 + prefix)) {
              stop.store(true, std::memory_order_relaxed);
              break;
            }
            const double min_len =
                filter_xi * static_cast<double>(x.ids.size());
            lists.clear();
            if (flat) {
              std::vector<uint64_t>& keys = key_bufs[worker];
              std::vector<const uint64_t*>& slots = slot_bufs[worker];
              keys.assign(x.ids.begin(), x.ids.begin() + prefix);
              slots.resize(prefix);
              posting_of.FindBatch(keys, slots);
              for (size_t pi = 0; pi < prefix; ++pi) {
                lists.push_back(slots[pi] != nullptr
                                    ? &posting_store[*slots[pi]]
                                    : nullptr);
              }
            } else {
              for (size_t pi = 0; pi < prefix; ++pi) {
                auto it = postings.find(x.ids[pi]);
                lists.push_back(it == postings.end() ? nullptr : &it->second);
              }
            }
            size_t expected = 0;
            for (const std::vector<Posting>* list : lists) {
              if (list == nullptr) continue;
              expected += list->size();
              HERA_PREFETCH_READ(list->data());
            }
            candidates.clear();
            candidates.reserve(std::min(expected, si));
            for (size_t pi = 0; pi < prefix; ++pi) {
              const std::vector<Posting>* list = lists[pi];
              if (list == nullptr) continue;
              for (const Posting& e : *list) {
                const size_t cj = e.si;
                if (cj >= si) break;  // Ascending: the rest joined later.
                if (candidate_of[cj] == si) continue;  // Already seen.
                // Every filter sees a pair exactly once, at its first
                // shared prefix token; re-encounters would fail the
                // same (size-determined) length check, so marking the
                // pair up front changes neither the candidate set nor
                // its order.
                candidate_of[cj] = si;
                ++co.counters.encountered;
                if (static_cast<double>(sets[cj].ids.size()) < min_len) {
                  ++co.counters.pruned_length;
                  continue;
                }
                if (plan.exact_filters) {
                  int pruned = PositionalSuffixFilter(x.ids, pi,
                                                      sets[cj].ids, e.pos, xi);
                  if (pruned != 0) {
                    if (pruned == 1) {
                      ++co.counters.pruned_positional;
                    } else {
                      ++co.counters.pruned_suffix;
                    }
                    continue;
                  }
                }
                candidates.push_back(cj);
              }
            }

            co.counters.candidates += candidates.size();
            if (ticker.Tick(candidates.size())) {
              // This batch was counted as candidates but never reaches
              // the verify scan below — record it shed so the trip
              // boundary stays exact (candidates == verified + shed).
              co.counters.shed_candidates += candidates.size();
              stop.store(true, std::memory_order_relaxed);
              break;
            }
            // Pull the candidates' token sets toward the cache ahead
            // of the verify scan.
            for (size_t cj : candidates) {
              HERA_PREFETCH_READ(sets[cj].ids.data());
            }
            for (size_t cj : candidates) {
              const Encoded& y = sets[cj];
              const LabeledValue& va = values[x.idx];
              const LabeledValue& vb = values[y.idx];
              if (va.label.rid == vb.label.rid) continue;
              ++co.counters.verified;
              double s = VerifyStringPair(plan, simv, xi, x.ids, y.ids,
                                          va.value, vb.value);
              if (s >= xi) co.pairs.push_back({va.label, vb.label, s});
            }
          }
        },
        rec);
    MergeChunks(chunks, out, &totals);
    AccumulateBusy(stats, report, "join.probe", phase_t0);
  }

  const size_t token_pairs = sets.size() * (sets.size() - (sets.empty() ? 0 : 1)) / 2;
  FinishReport(report, totals, stop.load(std::memory_order_relaxed),
               shed_posting, token_pairs, *out);
  if (report != nullptr) {
    report->flat_probes_batched =
        dict.flat_batched_probes() + posting_of.batched_probes();
    report->flat_rehashes = dict.flat_rehashes() + posting_of.rehashes();
  }
  return Status::OK();
}


Status PrefixFilterJoin::JoinAB(const std::vector<LabeledValue>& probe,
                                const std::vector<LabeledValue>& base,
                                const ValueSimilarity& simv, double xi,
                                const RunGuard& guard,
                                std::vector<ValuePair>* out,
                                JoinReport* report) const {
  HERA_FAILPOINT("simjoin.join");
  out->clear();
  ThreadPool* pool = executor();
  const size_t nworkers = (pool && pool->size() > 1) ? pool->size() : 1;
  Timer join_timer;
  const bool rec =
      collect_worker_spans() && report != nullptr && nworkers > 1;
  std::atomic<bool> stop{false};
  const size_t max_posting = guard.max_posting_list();
  size_t shed_posting = 0;
  JoinCounters totals;

  const bool metric_handles_numbers =
      StartsWith(simv.Name(), "hybrid(") || simv.Name() == "numeric";
  const bool exact_jaccard = IsJaccardMetric(simv, q_);
  const VerifyPlan plan =
      MakeVerifyPlan(simv, q_, encoded_kernels_, PairCacheFor(simv));
  const double filter_xi = exact_jaccard ? xi : xi * filter_slack_;

  // ---- Numeric path: base sorted by value, probes scan the window
  // where (gap <= (1 - xi) * max(|x|, |y|)) can hold. Probes chunk
  // across workers; the sorted base is read-only.
  std::vector<size_t> base_numeric;
  for (size_t i = 0; i < base.size(); ++i) {
    if (base[i].value.is_number() && metric_handles_numbers) {
      base_numeric.push_back(i);
    }
  }
  std::sort(base_numeric.begin(), base_numeric.end(), [&](size_t a, size_t b) {
    return base[a].value.AsNumber() < base[b].value.AsNumber();
  });
  const double t = 1.0 - xi;
  const NumericWindow window = NumericWindowFor(simv);
  {
    const size_t n = probe.size();
    const size_t grain = DefaultGrain(n, nworkers);
    std::vector<ChunkOut> chunks(NumChunks(n, grain));
    const double phase_t0 = join_timer.ElapsedMicros();
    ParallelRunStats stats = ParallelChunks(
        pool, n, grain,
        [&](size_t chunk, size_t begin, size_t end, size_t /*worker*/) {
          ChunkOut& co = chunks[chunk];
          GuardTicker ticker(guard);
          for (size_t pi = begin;
               pi < end && !stop.load(std::memory_order_relaxed); ++pi) {
            const LabeledValue& p = probe[pi];
            if (!p.value.is_number() || !metric_handles_numbers) continue;
            double x = p.value.AsNumber();
            // Start at the first y >= x and also scan backwards while
            // the symmetric condition can hold.
            auto cmp = [&](size_t idx, double v) {
              return base[idx].value.AsNumber() < v;
            };
            size_t start = static_cast<size_t>(
                std::lower_bound(base_numeric.begin(), base_numeric.end(), x,
                                 cmp) -
                base_numeric.begin());
            auto try_pair = [&](size_t bi) -> bool {  // "Within window".
              double y = base[bi].value.AsNumber();
              double gap = std::fabs(y - x);
              double denom = std::max(std::fabs(x), std::fabs(y));
              // Epsilon-relaxed pruning window; the metric makes the
              // final call.
              bool within;
              if (window.absolute) {
                within = gap <= t * window.tol + 1e-9;
              } else {
                within = denom == 0.0
                             ? gap == 0.0
                             : gap <= t * denom + 1e-9 * std::max(1.0, denom);
              }
              if (!within) return false;
              if (p.label.rid != base[bi].label.rid) {
                ++co.counters.candidates;
                ++co.counters.verified;
                double s = simv.Compute(p.value, base[bi].value);
                if (s >= xi) co.pairs.push_back({p.label, base[bi].label, s});
              }
              return true;
            };
            // Forward: y >= x; failure is monotone for y > 0 (see
            // Join()), and unconditionally for an absolute window.
            for (size_t k = start; k < base_numeric.size(); ++k) {
              if (ticker.Tick()) {
                stop.store(true, std::memory_order_relaxed);
                break;
              }
              double y = base[base_numeric[k]].value.AsNumber();
              if (!try_pair(base_numeric[k]) && (window.absolute || y > 0))
                break;
            }
            // Backward: y < x; by symmetry, failure is monotone while
            // y < 0 for the relative window, always for the absolute.
            for (size_t k = start; k-- > 0;) {
              if (ticker.Tick()) {
                stop.store(true, std::memory_order_relaxed);
                break;
              }
              double y = base[base_numeric[k]].value.AsNumber();
              if (!try_pair(base_numeric[k]) && (window.absolute || y < 0))
                break;
            }
          }
        },
        rec);
    MergeChunks(chunks, out, &totals);
    AccumulateBusy(stats, report, "join.numeric", phase_t0);
  }

  // ---- String path: full inverted index over the base tokens, probes
  // search with their prefix tokens; two-sided length filter.

  // Phase 1 (parallel): normalization + gram extraction for base and
  // probe sides (TokenCache-served when installed).
  TokenCache* cache = (cache_ && cache_->q() == q_) ? cache_.get() : nullptr;
  std::vector<std::string> base_norm(base.size()), probe_norm(probe.size());
  std::vector<TokenCache::GramsPtr> base_shared, probe_shared;
  std::vector<std::vector<std::string>> base_owned, probe_owned;
  if (cache) {
    base_shared.resize(base.size());
    probe_shared.resize(probe.size());
  } else {
    base_owned.resize(base.size());
    probe_owned.resize(probe.size());
  }
  {
    const size_t n = base.size() + probe.size();
    const double phase_t0 = join_timer.ElapsedMicros();
    ParallelRunStats stats = ParallelChunks(
        pool, n, DefaultGrain(n, nworkers),
        [&](size_t /*chunk*/, size_t begin, size_t end, size_t /*worker*/) {
          for (size_t k = begin; k < end; ++k) {
            const bool is_base = k < base.size();
            const size_t i = is_base ? k : k - base.size();
            const LabeledValue& v = is_base ? base[i] : probe[i];
            if (v.value.is_null()) continue;
            if (v.value.is_number() && metric_handles_numbers) continue;
            std::string norm = Normalize(v.value.ToString());
            if (cache) {
              (is_base ? base_shared : probe_shared)[i] = cache->Grams(norm);
            } else {
              (is_base ? base_owned : probe_owned)[i] = QgramSet(norm, q_);
            }
            (is_base ? base_norm : probe_norm)[i] = std::move(norm);
          }
        },
        rec);
    AccumulateBusy(stats, report, "join.tokenize", phase_t0);
  }
  auto base_grams = [&](size_t i) -> const std::vector<std::string>& {
    return cache ? *base_shared[i] : base_owned[i];
  };
  auto probe_grams = [&](size_t i) -> const std::vector<std::string>& {
    return cache ? *probe_shared[i] : probe_owned[i];
  };

  // Phase 2 (serial): dictionary build; mutates the dictionary.
  QgramDictionary dict(q_, backend_, pipeline_depth_);
  for (size_t i = 0; i < base.size(); ++i) {
    if (!base_norm[i].empty()) dict.AddGrams(base_grams(i));
  }
  for (size_t i = 0; i < probe.size(); ++i) {
    if (!probe_norm[i].empty()) dict.AddGrams(probe_grams(i));
  }
  dict.Freeze();

  // Phase 3 (serial): encode the base and build its inverted index,
  // honoring the posting ceiling in ascending base order (identical
  // shed decisions to the serial build).
  // token -> (base idx, token position); the position feeds the
  // positional filter at probe time.
  struct Posting {
    size_t bi;
    size_t pos;
  };
  // Backend-selected posting map, as in Join(): flat keeps the lists
  // in a dense slab keyed through a FlatTable so probe-side lookups
  // can batch; contents and shed decisions are identical either way.
  const bool flat = backend_ == IndexBackend::kFlat;
  constexpr uint64_t kNoSlot = ~0ull;
  std::unordered_map<uint32_t, std::vector<Posting>> postings;
  FlatTable posting_of(0, pipeline_depth_);  // token id -> slab slot.
  std::vector<std::vector<Posting>> posting_store;
  std::vector<std::vector<uint32_t>> base_ids(base.size());
  {
    std::vector<uint64_t> key_buf;
    std::vector<uint64_t*> slot_buf;
    for (size_t i = 0; i < base.size(); ++i) {
      if (base_norm[i].empty()) continue;
      base_ids[i] = dict.EncodeGrams(base_grams(i));
      if (flat) {
        key_buf.assign(base_ids[i].begin(), base_ids[i].end());
        slot_buf.resize(key_buf.size());
        posting_of.FindOrInsertBatch(key_buf, kNoSlot, slot_buf);
        for (size_t pos = 0; pos < base_ids[i].size(); ++pos) {
          uint64_t* slot = slot_buf[pos];
          if (*slot == kNoSlot) {
            *slot = posting_store.size();
            posting_store.emplace_back();
          }
          std::vector<Posting>& list = posting_store[*slot];
          if (max_posting > 0 && list.size() >= max_posting) {
            ++shed_posting;
            continue;
          }
          list.push_back({i, pos});
        }
      } else {
        for (size_t pos = 0; pos < base_ids[i].size(); ++pos) {
          std::vector<Posting>& list = postings[base_ids[i][pos]];
          if (max_posting > 0 && list.size() >= max_posting) {
            ++shed_posting;
            continue;
          }
          list.push_back({i, pos});
        }
      }
    }
  }

  // Probe token ids are pre-encoded here (encoding can intern unknown
  // grams, so it cannot run concurrently) instead of per-probe inside
  // the scan loop, which also drops the per-iteration vector copy the
  // old in-loop encode paid.
  std::vector<std::vector<uint32_t>> probe_ids(probe.size());
  for (size_t i = 0; i < probe.size(); ++i) {
    if (!probe_norm[i].empty()) probe_ids[i] = dict.EncodeGrams(probe_grams(i));
  }

  // Phase 4 (parallel): probing; per-worker last-probe markers (probe
  // indices are globally unique, so markers never need resetting).
  // Each probe gathers its prefix tokens' posting lists up front (one
  // batched flat lookup or one map find per token, with list-head
  // prefetch), and the guard runs at a per-probe stride weighted by
  // the gathered work instead of inside the posting scan.
  {
    const size_t n = probe.size();
    const size_t grain = DefaultGrain(n, nworkers);
    std::vector<ChunkOut> chunks(NumChunks(n, grain));
    std::vector<std::vector<size_t>> markers(
        nworkers, std::vector<size_t>(base.size(), SIZE_MAX));
    std::vector<std::vector<const std::vector<Posting>*>> list_bufs(nworkers);
    std::vector<std::vector<uint64_t>> key_bufs(nworkers);
    std::vector<std::vector<const uint64_t*>> slot_bufs(nworkers);
    const double phase_t0 = join_timer.ElapsedMicros();
    ParallelRunStats stats = ParallelChunks(
        pool, n, grain,
        [&](size_t chunk, size_t begin, size_t end, size_t worker) {
          ChunkOut& co = chunks[chunk];
          std::vector<size_t>& last_probe = markers[worker];
          std::vector<const std::vector<Posting>*>& lists = list_bufs[worker];
          GuardTicker ticker(guard);
          for (size_t pi = begin;
               pi < end && !stop.load(std::memory_order_relaxed); ++pi) {
            const std::vector<uint32_t>& ids = probe_ids[pi];
            if (ids.empty()) continue;
            const size_t len_x = ids.size();
            const size_t prefix = PrefixLen(len_x, filter_xi);
            if (ticker.Tick(1 + prefix)) {
              stop.store(true, std::memory_order_relaxed);
              break;
            }
            const double min_len = filter_xi * static_cast<double>(len_x);
            const double max_len =
                filter_xi > 0.0 ? static_cast<double>(len_x) / filter_xi
                                : std::numeric_limits<double>::infinity();
            lists.clear();
            if (flat) {
              std::vector<uint64_t>& keys = key_bufs[worker];
              std::vector<const uint64_t*>& slots = slot_bufs[worker];
              keys.clear();
              for (size_t k = 0; k < prefix; ++k) keys.push_back(ids[k]);
              slots.resize(prefix);
              posting_of.FindBatch(keys, slots);
              for (size_t k = 0; k < prefix; ++k) {
                lists.push_back(slots[k] != nullptr
                                    ? &posting_store[*slots[k]]
                                    : nullptr);
              }
            } else {
              for (size_t k = 0; k < prefix; ++k) {
                auto it = postings.find(ids[k]);
                lists.push_back(it == postings.end() ? nullptr : &it->second);
              }
            }
            size_t scan_work = 0;
            for (const std::vector<Posting>* list : lists) {
              if (list == nullptr) continue;
              scan_work += list->size();
              HERA_PREFETCH_READ(list->data());
            }
            if (ticker.Tick(scan_work)) {
              stop.store(true, std::memory_order_relaxed);
              break;
            }
            for (size_t k = 0; k < prefix; ++k) {
              const std::vector<Posting>* list = lists[k];
              if (list == nullptr) continue;
              for (const Posting& e : *list) {
                const size_t bi = e.bi;
                if (last_probe[bi] == pi) continue;
                last_probe[bi] = pi;
                ++co.counters.encountered;
                double blen = static_cast<double>(base_ids[bi].size());
                if (blen < min_len || blen > max_len) {
                  ++co.counters.pruned_length;
                  continue;
                }
                if (probe[pi].label.rid == base[bi].label.rid) continue;
                if (plan.exact_filters) {
                  int pruned = PositionalSuffixFilter(ids, k, base_ids[bi],
                                                      e.pos, xi);
                  if (pruned != 0) {
                    if (pruned == 1) {
                      ++co.counters.pruned_positional;
                    } else {
                      ++co.counters.pruned_suffix;
                    }
                    continue;
                  }
                }
                ++co.counters.candidates;
                ++co.counters.verified;
                double s = VerifyStringPair(plan, simv, xi, ids, base_ids[bi],
                                            probe[pi].value, base[bi].value);
                if (s >= xi) co.pairs.push_back({probe[pi].label, base[bi].label, s});
              }
            }
          }
        },
        rec);
    MergeChunks(chunks, out, &totals);
    AccumulateBusy(stats, report, "join.probe", phase_t0);
  }

  size_t probe_tokenized = 0, base_tokenized = 0;
  for (size_t i = 0; i < probe.size(); ++i) {
    if (!probe_ids[i].empty()) ++probe_tokenized;
  }
  for (size_t i = 0; i < base.size(); ++i) {
    if (!base_ids[i].empty()) ++base_tokenized;
  }
  FinishReport(report, totals, stop.load(std::memory_order_relaxed),
               shed_posting, probe_tokenized * base_tokenized, *out);
  if (report != nullptr) {
    report->flat_probes_batched =
        dict.flat_batched_probes() + posting_of.batched_probes();
    report->flat_rehashes = dict.flat_rehashes() + posting_of.rehashes();
  }
  return Status::OK();
}

}  // namespace hera
