#include "simjoin/similarity_join.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <unordered_map>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "text/normalize.h"
#include "text/qgram.h"

namespace hera {

std::vector<ValuePair> SimilarityJoin::Join(
    const std::vector<LabeledValue>& values, const ValueSimilarity& simv,
    double xi) const {
  std::vector<ValuePair> out;
  Join(values, simv, xi, RunGuard(), &out);
  return out;
}

std::vector<ValuePair> SimilarityJoin::JoinAB(
    const std::vector<LabeledValue>& probe, const std::vector<LabeledValue>& base,
    const ValueSimilarity& simv, double xi) const {
  std::vector<ValuePair> out;
  JoinAB(probe, base, simv, xi, RunGuard(), &out);
  return out;
}

Status NestedLoopJoin::Join(const std::vector<LabeledValue>& values,
                            const ValueSimilarity& simv, double xi,
                            const RunGuard& guard, std::vector<ValuePair>* out,
                            JoinReport* report) const {
  HERA_FAILPOINT("simjoin.join");
  out->clear();
  GuardTicker ticker(guard);
  size_t verified = 0;
  for (size_t i = 0; i < values.size() && !ticker.stopped(); ++i) {
    for (size_t j = i + 1; j < values.size(); ++j) {
      if (ticker.Tick()) break;
      if (values[i].label.rid == values[j].label.rid) continue;
      ++verified;
      double s = simv.Compute(values[i].value, values[j].value);
      if (s >= xi) out->push_back({values[i].label, values[j].label, s});
    }
  }
  if (report) {
    report->truncated = ticker.stopped();
    report->candidates = verified;
    report->verified = verified;
    report->emitted = out->size();
  }
  return Status::OK();
}

Status NestedLoopJoin::JoinAB(const std::vector<LabeledValue>& probe,
                              const std::vector<LabeledValue>& base,
                              const ValueSimilarity& simv, double xi,
                              const RunGuard& guard,
                              std::vector<ValuePair>* out,
                              JoinReport* report) const {
  HERA_FAILPOINT("simjoin.join");
  out->clear();
  GuardTicker ticker(guard);
  size_t verified = 0;
  for (const LabeledValue& p : probe) {
    if (ticker.stopped()) break;
    for (const LabeledValue& b : base) {
      if (ticker.Tick()) break;
      if (p.label.rid == b.label.rid) continue;
      ++verified;
      double s = simv.Compute(p.value, b.value);
      if (s >= xi) out->push_back({p.label, b.label, s});
    }
  }
  if (report) {
    report->truncated = ticker.stopped();
    report->candidates = verified;
    report->verified = verified;
    report->emitted = out->size();
  }
  return Status::OK();
}

namespace {

/// True when `simv` is q-gram Jaccard, so the prefix filter is exact
/// and verification can run on the encoded token sets directly.
bool IsJaccardMetric(const ValueSimilarity& simv, int q) {
  std::string name = simv.Name();
  std::string expect = "jaccard_q" + std::to_string(q);
  return name == expect || name == "hybrid(" + expect + ")";
}

double JaccardOfIds(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter, ++i, ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}


/// How the numeric sweep bounds its search window; derived from the
/// metric name so the filter stays exact for both built-in numeric
/// semantics (relative difference and absolute tolerance).
struct NumericWindow {
  bool absolute = false;  // true: |gap| <= (1 - xi) * tol.
  double tol = 0.0;
};

NumericWindow NumericWindowFor(const ValueSimilarity& simv) {
  NumericWindow w;
  std::string name = simv.Name();
  size_t pos = name.find("numeric_tol");
  if (pos != std::string::npos) {
    w.absolute = true;
    w.tol = std::atof(name.c_str() + pos + 11);
  }
  return w;
}

}  // namespace

Status PrefixFilterJoin::Join(const std::vector<LabeledValue>& values,
                              const ValueSimilarity& simv, double xi,
                              const RunGuard& guard,
                              std::vector<ValuePair>* out,
                              JoinReport* report) const {
  HERA_FAILPOINT("simjoin.join");
  out->clear();
  GuardTicker ticker(guard);
  const size_t max_posting = guard.max_posting_list();
  size_t shed_posting = 0;
  size_t n_candidates = 0, n_verified = 0;

  // ---- Partition: numeric values are swept, everything else gets the
  // token-based path over its canonical string rendering.
  std::vector<size_t> string_idx, numeric_idx;
  const bool metric_handles_numbers =
      StartsWith(simv.Name(), "hybrid(") || simv.Name() == "numeric";
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].value.is_null()) continue;
    if (values[i].value.is_number() && metric_handles_numbers) {
      numeric_idx.push_back(i);
    } else {
      string_idx.push_back(i);
    }
  }

  // ---- Numeric sweep: sort by value; sim >= xi iff
  // (y - x) <= (1 - xi) * max(|x|, |y|), which for y > 0 fails
  // monotonically as y grows, allowing early break.
  std::sort(numeric_idx.begin(), numeric_idx.end(), [&](size_t a, size_t b) {
    return values[a].value.AsNumber() < values[b].value.AsNumber();
  });
  // The window is a pruning device only (the metric makes the final
  // call), so it is epsilon-relaxed: computing t = 1 - xi in floating
  // point can otherwise exclude exact-boundary pairs (sim == xi).
  const double t = 1.0 - xi;
  const NumericWindow window = NumericWindowFor(simv);
  for (size_t p = 0; p < numeric_idx.size() && !ticker.stopped(); ++p) {
    double x = values[numeric_idx[p]].value.AsNumber();
    for (size_t r = p + 1; r < numeric_idx.size(); ++r) {
      if (ticker.Tick()) break;
      double y = values[numeric_idx[r]].value.AsNumber();
      double gap = y - x;
      double denom = std::max(std::fabs(x), std::fabs(y));
      bool within;
      if (window.absolute) {
        within = gap <= t * window.tol + 1e-9;
      } else {
        within = denom == 0.0
                     ? gap == 0.0
                     : gap <= t * denom + 1e-9 * std::max(1.0, denom);
      }
      if (!within) {
        // Relative window: failure is monotone only once y > 0.
        // Absolute window: failure is monotone unconditionally.
        if (window.absolute || y > 0) break;
        continue;
      }
      const LabeledValue& va = values[numeric_idx[p]];
      const LabeledValue& vb = values[numeric_idx[r]];
      if (va.label.rid == vb.label.rid) continue;
      ++n_candidates;
      ++n_verified;
      double s = simv.Compute(va.value, vb.value);
      if (s >= xi) out->push_back({va.label, vb.label, s});
    }
  }

  // ---- String path: AllPairs with length + prefix filters.
  const bool exact_jaccard = IsJaccardMetric(simv, q_);
  // For non-Jaccard metrics the gram filter is only a blocker; run it
  // at a slackened threshold so near-threshold true pairs survive.
  const double filter_xi = exact_jaccard ? xi : xi * filter_slack_;

  QgramDictionary dict(q_);
  std::vector<std::string> normalized(values.size());
  for (size_t i : string_idx) {
    normalized[i] = Normalize(values[i].value.ToString());
    dict.Add(normalized[i]);
  }
  dict.Freeze();

  struct Encoded {
    size_t idx;                 // Position in `values`.
    std::vector<uint32_t> ids;  // Sorted rare-first token ids.
  };
  std::vector<Encoded> sets;
  sets.reserve(string_idx.size());
  for (size_t i : string_idx) {
    std::vector<uint32_t> ids = dict.Encode(normalized[i]);
    if (ids.empty()) continue;  // Nothing to match on.
    sets.push_back({i, std::move(ids)});
  }
  std::sort(sets.begin(), sets.end(), [](const Encoded& a, const Encoded& b) {
    return a.ids.size() < b.ids.size();
  });

  // token id -> positions (into `sets`) whose prefix contains it.
  std::unordered_map<uint32_t, std::vector<size_t>> postings;
  std::vector<size_t> candidate_of(sets.size(), SIZE_MAX);  // Dedup marker.

  for (size_t si = 0; si < sets.size() && !ticker.stopped(); ++si) {
    const Encoded& x = sets[si];
    const size_t len_x = x.ids.size();
    // Prefix length for Jaccard threshold filter_xi.
    size_t keep = static_cast<size_t>(
        std::ceil(static_cast<double>(len_x) * filter_xi));
    size_t prefix = len_x - (keep > 0 ? keep : 1) + 1;
    prefix = std::min(prefix, len_x);

    // Probe: candidates are earlier (shorter-or-equal) sets sharing a
    // prefix token and passing the length filter |y| >= filter_xi*|x|.
    const double min_len = filter_xi * static_cast<double>(len_x);
    std::vector<size_t> candidates;
    for (size_t pi = 0; pi < prefix; ++pi) {
      auto it = postings.find(x.ids[pi]);
      if (it == postings.end()) continue;
      for (size_t cj : it->second) {
        if (candidate_of[cj] == si) continue;  // Already a candidate.
        if (static_cast<double>(sets[cj].ids.size()) < min_len) continue;
        candidate_of[cj] = si;
        candidates.push_back(cj);
      }
    }

    n_candidates += candidates.size();
    for (size_t cj : candidates) {
      if (ticker.Tick()) break;
      const Encoded& y = sets[cj];
      const LabeledValue& va = values[x.idx];
      const LabeledValue& vb = values[y.idx];
      if (va.label.rid == vb.label.rid) continue;
      ++n_verified;
      double s;
      if (exact_jaccard) {
        s = JaccardOfIds(x.ids, y.ids);
      } else {
        s = simv.Compute(va.value, vb.value);
      }
      if (s >= xi) out->push_back({va.label, vb.label, s});
    }

    // Index x's prefix tokens for later probes, honoring the guard's
    // posting-list ceiling (frequent tokens stop accumulating probes).
    for (size_t pi = 0; pi < prefix; ++pi) {
      std::vector<size_t>& list = postings[x.ids[pi]];
      if (max_posting > 0 && list.size() >= max_posting) {
        ++shed_posting;
        continue;
      }
      list.push_back(si);
    }
  }

  if (report) {
    report->truncated = ticker.stopped();
    report->shed_posting_entries = shed_posting;
    report->candidates = n_candidates;
    report->verified = n_verified;
    report->emitted = out->size();
  }
  return Status::OK();
}


Status PrefixFilterJoin::JoinAB(const std::vector<LabeledValue>& probe,
                                const std::vector<LabeledValue>& base,
                                const ValueSimilarity& simv, double xi,
                                const RunGuard& guard,
                                std::vector<ValuePair>* out,
                                JoinReport* report) const {
  HERA_FAILPOINT("simjoin.join");
  out->clear();
  GuardTicker ticker(guard);
  const size_t max_posting = guard.max_posting_list();
  size_t shed_posting = 0;
  size_t n_candidates = 0, n_verified = 0;

  const bool metric_handles_numbers =
      StartsWith(simv.Name(), "hybrid(") || simv.Name() == "numeric";
  const bool exact_jaccard = IsJaccardMetric(simv, q_);
  const double filter_xi = exact_jaccard ? xi : xi * filter_slack_;

  // ---- Numeric path: base sorted by value, probes scan the window
  // where (gap <= (1 - xi) * max(|x|, |y|)) can hold.
  std::vector<size_t> base_numeric;
  for (size_t i = 0; i < base.size(); ++i) {
    if (base[i].value.is_number() && metric_handles_numbers) {
      base_numeric.push_back(i);
    }
  }
  std::sort(base_numeric.begin(), base_numeric.end(), [&](size_t a, size_t b) {
    return base[a].value.AsNumber() < base[b].value.AsNumber();
  });
  const double t = 1.0 - xi;
  const NumericWindow window = NumericWindowFor(simv);
  for (const LabeledValue& p : probe) {
    if (ticker.stopped()) break;
    if (!p.value.is_number() || !metric_handles_numbers) continue;
    double x = p.value.AsNumber();
    // Find the first base value the window can reach: y >= x - t*|...|
    // is not monotone across signs, so start from the first y with
    // y >= x - t * max(|x|, |y|) conservatively via a linear lower
    // bound y >= (x >= 0 ? x * (1 - t) - ... ). Keep it simple and
    // sound: start at the first y >= x and also scan backwards while
    // the symmetric condition can hold.
    auto cmp = [&](size_t idx, double v) { return base[idx].value.AsNumber() < v; };
    size_t start = static_cast<size_t>(
        std::lower_bound(base_numeric.begin(), base_numeric.end(), x, cmp) -
        base_numeric.begin());
    auto try_pair = [&](size_t bi) -> bool {  // Returns "within window".
      double y = base[bi].value.AsNumber();
      double gap = std::fabs(y - x);
      double denom = std::max(std::fabs(x), std::fabs(y));
      // Epsilon-relaxed pruning window; the metric makes the final call.
      bool within;
      if (window.absolute) {
        within = gap <= t * window.tol + 1e-9;
      } else {
        within = denom == 0.0
                     ? gap == 0.0
                     : gap <= t * denom + 1e-9 * std::max(1.0, denom);
      }
      if (!within) return false;
      if (p.label.rid != base[bi].label.rid) {
        ++n_candidates;
        ++n_verified;
        double s = simv.Compute(p.value, base[bi].value);
        if (s >= xi) out->push_back({p.label, base[bi].label, s});
      }
      return true;
    };
    // Forward: y >= x; failure is monotone for y > 0 (see Join()),
    // and unconditionally for an absolute window.
    for (size_t k = start; k < base_numeric.size(); ++k) {
      if (ticker.Tick()) break;
      double y = base[base_numeric[k]].value.AsNumber();
      if (!try_pair(base_numeric[k]) && (window.absolute || y > 0)) break;
    }
    // Backward: y < x; by symmetry, failure is monotone while y < 0
    // for the relative window, always for the absolute one.
    for (size_t k = start; k-- > 0;) {
      if (ticker.Tick()) break;
      double y = base[base_numeric[k]].value.AsNumber();
      if (!try_pair(base_numeric[k]) && (window.absolute || y < 0)) break;
    }
  }

  // ---- String path: full inverted index over the base tokens, probes
  // search with their prefix tokens; two-sided length filter.
  QgramDictionary dict(q_);
  std::vector<std::string> base_norm(base.size()), probe_norm(probe.size());
  for (size_t i = 0; i < base.size(); ++i) {
    if (base[i].value.is_null()) continue;
    if (base[i].value.is_number() && metric_handles_numbers) continue;
    base_norm[i] = Normalize(base[i].value.ToString());
    dict.Add(base_norm[i]);
  }
  for (size_t i = 0; i < probe.size(); ++i) {
    if (probe[i].value.is_null()) continue;
    if (probe[i].value.is_number() && metric_handles_numbers) continue;
    probe_norm[i] = Normalize(probe[i].value.ToString());
    dict.Add(probe_norm[i]);
  }
  dict.Freeze();

  std::unordered_map<uint32_t, std::vector<size_t>> postings;  // token -> base idx
  std::vector<std::vector<uint32_t>> base_ids(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    if (base_norm[i].empty()) continue;
    base_ids[i] = dict.Encode(base_norm[i]);
    for (uint32_t tok : base_ids[i]) {
      std::vector<size_t>& list = postings[tok];
      if (max_posting > 0 && list.size() >= max_posting) {
        ++shed_posting;
        continue;
      }
      list.push_back(i);
    }
  }

  std::vector<size_t> last_probe(base.size(), SIZE_MAX);
  for (size_t pi = 0; pi < probe.size() && !ticker.stopped(); ++pi) {
    if (probe_norm[pi].empty()) continue;
    std::vector<uint32_t> ids = dict.Encode(probe_norm[pi]);
    if (ids.empty()) continue;
    const size_t len_x = ids.size();
    size_t keep = static_cast<size_t>(
        std::ceil(static_cast<double>(len_x) * filter_xi));
    size_t prefix = len_x - (keep > 0 ? keep : 1) + 1;
    prefix = std::min(prefix, len_x);
    const double min_len = filter_xi * static_cast<double>(len_x);
    const double max_len =
        filter_xi > 0.0 ? static_cast<double>(len_x) / filter_xi
                        : std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < prefix && !ticker.stopped(); ++k) {
      auto it = postings.find(ids[k]);
      if (it == postings.end()) continue;
      for (size_t bi : it->second) {
        if (ticker.Tick()) break;
        if (last_probe[bi] == pi) continue;
        last_probe[bi] = pi;
        double blen = static_cast<double>(base_ids[bi].size());
        if (blen < min_len || blen > max_len) continue;
        if (probe[pi].label.rid == base[bi].label.rid) continue;
        ++n_candidates;
        ++n_verified;
        double s;
        if (exact_jaccard) {
          s = JaccardOfIds(ids, base_ids[bi]);
        } else {
          s = simv.Compute(probe[pi].value, base[bi].value);
        }
        if (s >= xi) out->push_back({probe[pi].label, base[bi].label, s});
      }
    }
  }

  if (report) {
    report->truncated = ticker.stopped();
    report->shed_posting_entries = shed_posting;
    report->candidates = n_candidates;
    report->verified = n_verified;
    report->emitted = out->size();
  }
  return Status::OK();
}

}  // namespace hera
