// Similarity join (Definition 7): all value pairs across different
// records whose similarity is at least ξ. This is the engine behind
// index construction (Section III-A).

#ifndef HERA_SIMJOIN_SIMILARITY_JOIN_H_
#define HERA_SIMJOIN_SIMILARITY_JOIN_H_

#include <memory>
#include <vector>

#include "common/run_guard.h"
#include "common/status.h"
#include "index/flat_table.h"
#include "parallel/thread_pool.h"
#include "record/super_record.h"
#include "sim/pair_cache.h"
#include "sim/similarity.h"
#include "text/token_cache.h"

namespace hera {

/// One value with its (rid, fid, vid) label.
struct LabeledValue {
  ValueLabel label;
  Value value;
};

/// A similar value pair and its similarity; the element type of V.
struct ValuePair {
  ValueLabel a;
  ValueLabel b;
  double sim = 0.0;
};

/// What a guarded join did, shed, or skipped (see common/run_guard.h).
/// The candidate/verified counters expose the filter-vs-verify split
/// of the join's work for the observability layer: `candidates` is
/// what survived the cheap filters (length/prefix/window), `verified`
/// is how many of those the actual metric scored.
struct JoinReport {
  /// The join stopped early on deadline expiry or cancellation; `out`
  /// holds every pair found so far (each is genuinely similar — the
  /// result is a subset, never wrong).
  bool truncated = false;
  /// Posting-list entries dropped by the guard's max_posting_list
  /// ceiling; candidate recall may be reduced.
  size_t shed_posting_entries = 0;
  /// Value pairs surfaced by candidate generation (for the nested-loop
  /// join every cross-record pair is a candidate).
  size_t candidates = 0;
  /// Candidates scored by the similarity metric (== candidates unless
  /// truncated mid-verification or pruned by the positional/suffix
  /// filters below).
  size_t verified = 0;
  /// Candidates generated but dropped unverified at a guard trip
  /// boundary — exact at the trip, including the batch whose weighted
  /// Tick(n) check fired: for truncated joins,
  /// candidates == verified + shed_candidates on the record-pair path.
  size_t shed_candidates = 0;
  /// Pairs that met xi and were emitted into `out`.
  size_t emitted = 0;
  /// Per-filter pruning counters for the token path (all zero for the
  /// nested-loop join). A token-path pair flows
  ///   prefix -> length -> positional -> suffix -> candidate
  /// and is counted in exactly one bucket the first time it is pruned:
  /// `pruned_prefix` — pairs sharing no indexed prefix token (derived:
  /// eligible token pairs minus encountered ones); `pruned_length` —
  /// encountered pairs failing the length filter; `pruned_positional`
  /// / `pruned_suffix` — PPJoin+-style position and suffix bounds,
  /// applied only when the filter threshold is exact (q-gram Jaccard),
  /// so pruning never changes the emitted pairs.
  size_t pruned_prefix = 0;
  size_t pruned_length = 0;
  size_t pruned_positional = 0;
  size_t pruned_suffix = 0;
  /// Keys probed through the flat backend's batched entry points
  /// (gram dictionary + posting table); 0 under the ordered backend.
  size_t flat_probes_batched = 0;
  /// Flat-table capacity doublings during this join's dictionary and
  /// posting-table builds; 0 under the ordered backend.
  size_t flat_rehashes = 0;
  /// Worker threads the join's parallel phases ran on (1 = serial).
  size_t threads_used = 1;
  /// Per-worker busy microseconds summed across the join's parallel
  /// phases; empty when the join ran serially. Feeds the
  /// parallel.worker_busy_us histogram.
  std::vector<double> worker_busy_us;
  /// One chunk executed on a pool worker in one of the join's parallel
  /// phases ("join.numeric", "join.tokenize", "join.probe",
  /// "join.nested"). Collected only when the joiner's
  /// SetCollectWorkerSpans is on and a pool is installed; start_us is
  /// relative to the join call's entry. Feeds the trace export's
  /// per-worker tracks.
  struct WorkerSpan {
    const char* phase = "";
    size_t chunk = 0;
    size_t worker = 0;
    double start_us = 0.0;
    double dur_us = 0.0;
  };
  std::vector<WorkerSpan> worker_spans;
};

/// \brief Abstract similarity join over labeled value sets.
///
/// Join() is a self-join: every pair (a, b) with a.rid != b.rid and
/// simv(a, b) >= xi, each unordered pair reported once. JoinAB() is the
/// two-set form used by incremental resolution: pairs (p, q) with p
/// from `probe`, q from `base`, different rids, simv >= xi.
///
/// The guarded forms stop at the next check stride once `guard`
/// reports interruption (partial output, report->truncated) and honor
/// its posting-list ceiling; they fail only via fault injection
/// (HERA_FAILPOINT "simjoin.join"). The 3-argument convenience forms
/// run unguarded.
///
/// Parallelism: SetExecutor installs a worker pool; the probe stream
/// is then partitioned into chunks claimed via an atomic cursor, each
/// chunk writing a thread-local buffer, and the buffers concatenated
/// in chunk order — so for runs that complete (no deadline truncation)
/// the output pair list is byte-identical to the serial path for any
/// worker count (see docs/performance.md). A null pool (default) or a
/// single-worker pool is the serial path.
class SimilarityJoin {
 public:
  virtual ~SimilarityJoin() = default;

  /// Installs the worker pool used by the guarded joins; the caller
  /// retains ownership and the pool must outlive every join call.
  /// nullptr (the default) restores the serial path.
  void SetExecutor(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* executor() const { return pool_; }

  /// Shares a verified-pair similarity cache across joins and rounds:
  /// metric verification of string pairs is served from it when the
  /// cache was built for the same metric (Name() match). Scores are a
  /// pure function of the two texts, so caching never changes results.
  /// Kernel-eligible metrics bypass it (the kernel is cheaper than the
  /// lookup); it pays off for edit/Jaro/Monge–Elkan-style metrics.
  void SetPairSimCache(std::shared_ptr<PairSimCache> cache) {
    pair_cache_ = std::move(cache);
  }
  const PairSimCache* pair_sim_cache() const { return pair_cache_.get(); }

  /// Records per-chunk worker spans into JoinReport::worker_spans (two
  /// extra clock reads per chunk; off by default). Recording never
  /// affects which pairs are emitted — it is observation only.
  void SetCollectWorkerSpans(bool on) { collect_worker_spans_ = on; }
  bool collect_worker_spans() const { return collect_worker_spans_; }


  /// Unguarded convenience forms.
  std::vector<ValuePair> Join(const std::vector<LabeledValue>& values,
                              const ValueSimilarity& simv, double xi) const;
  std::vector<ValuePair> JoinAB(const std::vector<LabeledValue>& probe,
                                const std::vector<LabeledValue>& base,
                                const ValueSimilarity& simv, double xi) const;

  /// Guarded core. `out` is cleared first; `report` may be null.
  virtual Status Join(const std::vector<LabeledValue>& values,
                      const ValueSimilarity& simv, double xi,
                      const RunGuard& guard, std::vector<ValuePair>* out,
                      JoinReport* report = nullptr) const = 0;
  virtual Status JoinAB(const std::vector<LabeledValue>& probe,
                        const std::vector<LabeledValue>& base,
                        const ValueSimilarity& simv, double xi,
                        const RunGuard& guard, std::vector<ValuePair>* out,
                        JoinReport* report = nullptr) const = 0;

 protected:
  /// The installed cache when it matches `simv`, else nullptr.
  PairSimCache* PairCacheFor(const ValueSimilarity& simv) const {
    return (pair_cache_ && pair_cache_->metric_name() == simv.Name())
               ? pair_cache_.get()
               : nullptr;
  }

 private:
  ThreadPool* pool_ = nullptr;
  std::shared_ptr<PairSimCache> pair_cache_;
  bool collect_worker_spans_ = false;
};

/// \brief O(n^2) reference implementation; correctness oracle in tests
/// and the "basic nest-loop method" baseline of the paper's efficiency
/// claim.
class NestedLoopJoin : public SimilarityJoin {
 public:
  using SimilarityJoin::Join;
  using SimilarityJoin::JoinAB;

  Status Join(const std::vector<LabeledValue>& values,
              const ValueSimilarity& simv, double xi, const RunGuard& guard,
              std::vector<ValuePair>* out,
              JoinReport* report = nullptr) const override;

  Status JoinAB(const std::vector<LabeledValue>& probe,
                const std::vector<LabeledValue>& base,
                const ValueSimilarity& simv, double xi, const RunGuard& guard,
                std::vector<ValuePair>* out,
                JoinReport* report = nullptr) const override;
};

/// \brief AllPairs/PPJoin+-style join: q-gram tokens interned in
/// ascending global frequency, length + prefix filters over an
/// inverted index — plus positional and suffix filters when the
/// threshold is exact — then verification on the encoded token sets
/// (kernel-eligible metrics) or with the actual metric.
///
/// The filter stack is *exact* (no false negatives) when the metric is
/// q-gram Jaccard with the same q — HERA's default; the positional and
/// suffix filters apply only then. For other string metrics the prefix
/// threshold is scaled down by `filter_slack` (candidate generation
/// becomes heuristic blocking; verification still uses the true
/// metric). Numeric values are joined by a sorted sweep, exact for the
/// relative-difference numeric similarity.
class PrefixFilterJoin : public SimilarityJoin {
 public:
  using SimilarityJoin::Join;
  using SimilarityJoin::JoinAB;

  explicit PrefixFilterJoin(int q = 2, double filter_slack = 0.7)
      : q_(q), filter_slack_(filter_slack) {}

  /// Shares an interned-gram cache across joins (and rounds): value
  /// tokenization is served from it instead of re-extracting q-grams.
  /// A cache built for a different gram length is ignored. Caching
  /// never changes results — only the tokenization cost.
  void SetTokenCache(std::shared_ptr<TokenCache> cache) {
    cache_ = std::move(cache);
  }
  const TokenCache* token_cache() const { return cache_.get(); }

  /// Gram length of the filter's tokenization (a compatible TokenCache
  /// must be built with the same q).
  int q() const { return q_; }

  /// Selects the hash backend for the join's gram dictionary and token
  /// posting table. kFlat batches each record's prefix-token probes
  /// through FlatTable's software-prefetch pipeline (index/flat_table.h)
  /// with `pipeline_depth` probes in flight; candidate order, emitted
  /// pairs, and shed decisions are byte-identical to kOrdered — the
  /// backend is a speed knob only. The gram dictionary falls back to
  /// ordered when q > kMaxPackedGramLen (the posting table, keyed on
  /// integer ids, stays flat).
  void SetIndexBackend(
      IndexBackend backend,
      size_t pipeline_depth = FlatTable::kDefaultPipelineDepth) {
    backend_ = backend;
    pipeline_depth_ = pipeline_depth;
  }
  IndexBackend index_backend() const { return backend_; }
  size_t pipeline_depth() const { return pipeline_depth_; }

  /// Toggles the integer-encoded verification kernels (sim/kernel.h)
  /// and the PPJoin+-style positional/suffix filters that ride on
  /// them. On (the default), kernel-eligible metrics (Jaccard / Dice /
  /// overlap / cosine over q-grams with matching q) are verified
  /// directly on the encoded token sets with threshold-driven early
  /// exit — bit-equal to the string path, so emitted pairs are
  /// byte-identical either way. Off restores the pre-kernel path
  /// (A/B comparisons, debugging).
  void SetEncodedKernels(bool enabled) { encoded_kernels_ = enabled; }
  bool encoded_kernels() const { return encoded_kernels_; }

  Status Join(const std::vector<LabeledValue>& values,
              const ValueSimilarity& simv, double xi, const RunGuard& guard,
              std::vector<ValuePair>* out,
              JoinReport* report = nullptr) const override;

  /// Probe-vs-base join: the base's tokens are fully indexed, probes
  /// search with their prefix tokens plus a two-sided length filter —
  /// exact (no false negatives) for the Jaccard metric.
  Status JoinAB(const std::vector<LabeledValue>& probe,
                const std::vector<LabeledValue>& base,
                const ValueSimilarity& simv, double xi, const RunGuard& guard,
                std::vector<ValuePair>* out,
                JoinReport* report = nullptr) const override;

 private:
  int q_;
  double filter_slack_;
  bool encoded_kernels_ = true;
  IndexBackend backend_ = IndexBackend::kOrdered;
  size_t pipeline_depth_ = FlatTable::kDefaultPipelineDepth;
  std::shared_ptr<TokenCache> cache_;
};

}  // namespace hera

#endif  // HERA_SIMJOIN_SIMILARITY_JOIN_H_
