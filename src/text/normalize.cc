#include "text/normalize.h"

#include <cctype>

namespace hera {

std::string Normalize(std::string_view s, const NormalizeOptions& opts) {
  std::string out;
  out.reserve(s.size());
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (opts.strip_punctuation && std::ispunct(c)) {
      out.push_back(' ');
    } else if (opts.lowercase) {
      out.push_back(static_cast<char>(std::tolower(c)));
    } else {
      out.push_back(raw);
    }
  }
  if (opts.collapse_whitespace) {
    std::string squeezed;
    squeezed.reserve(out.size());
    bool in_space = true;  // Leading spaces are dropped.
    for (char c : out) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!in_space) squeezed.push_back(' ');
        in_space = true;
      } else {
        squeezed.push_back(c);
        in_space = false;
      }
    }
    while (!squeezed.empty() && squeezed.back() == ' ') squeezed.pop_back();
    return squeezed;
  }
  return out;
}

}  // namespace hera
