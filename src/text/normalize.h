// Text normalization applied before tokenization and similarity.
//
// The paper computes string similarity over q-gram sets of raw values
// ("we set 2 q-grams"). Real heterogeneous sources differ in case and
// punctuation conventions, so values are canonicalized first. All
// normalizations are optional and bundled in NormalizeOptions so the
// effect can be ablated.

#ifndef HERA_TEXT_NORMALIZE_H_
#define HERA_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace hera {

/// Knobs for Normalize().
struct NormalizeOptions {
  bool lowercase = true;          ///< ASCII case folding.
  bool strip_punctuation = true;  ///< Replace punctuation with spaces.
  bool collapse_whitespace = true;///< Squeeze runs of spaces; trim ends.
};

/// Canonicalizes a raw attribute value for similarity computation.
std::string Normalize(std::string_view s, const NormalizeOptions& opts = {});

}  // namespace hera

#endif  // HERA_TEXT_NORMALIZE_H_
