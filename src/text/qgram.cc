#include "text/qgram.h"

#include <algorithm>
#include <cassert>
#include <tuple>

namespace hera {

namespace {

/// Value sentinel for "id not yet assigned" in the flat id map (ids
/// are uint32, so the all-ones value can never be a real id).
constexpr uint64_t kUnassignedId = ~0ull;

}  // namespace

std::vector<std::string> QgramSet(std::string_view s, int q) {
  assert(q >= 1);
  std::vector<std::string> grams;
  if (s.empty()) return grams;
  if (static_cast<int>(s.size()) < q) {
    grams.emplace_back(s);
    return grams;
  }
  grams.reserve(s.size() - q + 1);
  for (size_t i = 0; i + q <= s.size(); ++i) {
    grams.emplace_back(s.substr(i, q));
  }
  std::sort(grams.begin(), grams.end());
  grams.erase(std::unique(grams.begin(), grams.end()), grams.end());
  return grams;
}

size_t OverlapOfSets(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

double JaccardOfSets(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  // Empty gram sets carry no information: matching on nothing is not
  // evidence, so the score is 0 (not the conventional 1).
  if (a.empty() || b.empty()) return 0.0;
  size_t inter = OverlapOfSets(a, b);
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

uint64_t PackGram(std::string_view gram) {
  assert(gram.size() <= kMaxPackedGramLen);
  uint64_t packed = static_cast<uint64_t>(gram.size()) << 56;
  for (size_t i = 0; i < gram.size(); ++i) {
    packed |= static_cast<uint64_t>(static_cast<unsigned char>(gram[i]))
              << (48 - 8 * i);
  }
  return packed;
}

std::string UnpackGram(uint64_t packed) {
  const size_t len = static_cast<size_t>(packed >> 56);
  assert(len <= kMaxPackedGramLen);
  std::string gram(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    gram[i] = static_cast<char>((packed >> (48 - 8 * i)) & 0xff);
  }
  return gram;
}

QgramDictionary::QgramDictionary(int q, IndexBackend backend,
                                 size_t pipeline_depth)
    : q_(q),
      backend_(backend == IndexBackend::kFlat &&
                       static_cast<size_t>(q) <= kMaxPackedGramLen
                   ? IndexBackend::kFlat
                   : IndexBackend::kOrdered),
      counts_flat_(0, pipeline_depth),
      id_of_flat_(0, pipeline_depth) {}

void QgramDictionary::Add(std::string_view s) {
  AddGrams(QgramSet(s, q_));
}

void QgramDictionary::AddGrams(const std::vector<std::string>& grams) {
  assert(!frozen_);
  if (!flat()) {
    for (const std::string& g : grams) ++counts_[g];
    return;
  }
  scratch_keys_.clear();
  for (const std::string& g : grams) scratch_keys_.push_back(PackGram(g));
  scratch_slots_.resize(scratch_keys_.size());
  counts_flat_.FindOrInsertBatch(scratch_keys_, 0, scratch_slots_);
  for (uint64_t* count : scratch_slots_) ++*count;
}

void QgramDictionary::Freeze() {
  assert(!frozen_);
  if (!flat()) {
    std::vector<std::pair<uint64_t, const std::string*>> by_freq;
    by_freq.reserve(counts_.size());
    for (const auto& [gram, count] : counts_) by_freq.emplace_back(count, &gram);
    std::sort(by_freq.begin(), by_freq.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                return *a.second < *b.second;  // Tie-break for determinism.
              });
    for (const auto& [count, gram] : by_freq) {
      (void)count;
      id_of_.emplace(*gram, next_id_++);
    }
    counts_.clear();
    frozen_ = true;
    return;
  }
  // Packed-key order is length-major, not lexicographic, so the
  // determinism tie-break must compare the unpacked gram strings —
  // that keeps flat ids identical to the ordered backend's.
  std::vector<std::tuple<uint64_t, std::string, uint64_t>> by_freq;
  by_freq.reserve(counts_flat_.size());
  counts_flat_.ForEach([&](uint64_t packed, uint64_t count) {
    by_freq.emplace_back(count, UnpackGram(packed), packed);
  });
  std::sort(by_freq.begin(), by_freq.end(),
            [](const auto& a, const auto& b) {
              if (std::get<0>(a) != std::get<0>(b)) {
                return std::get<0>(a) < std::get<0>(b);
              }
              return std::get<1>(a) < std::get<1>(b);
            });
  id_of_flat_.Reserve(by_freq.size());
  for (const auto& [count, gram, packed] : by_freq) {
    (void)count;
    (void)gram;
    uint64_t* slot = id_of_flat_.FindOrInsert(packed, next_id_);
    assert(*slot == next_id_);
    (void)slot;
    ++next_id_;
  }
  counts_flat_.Clear();
  frozen_ = true;
}

std::vector<uint32_t> QgramDictionary::Encode(std::string_view s) {
  assert(frozen_);
  if (!flat()) {
    std::vector<uint32_t> ids;
    for (auto& g : QgramSet(s, q_)) {
      auto it = id_of_.find(g);
      if (it == id_of_.end()) {
        it = id_of_.emplace(std::move(g), next_id_++).first;
      }
      ids.push_back(it->second);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }
  return EncodeGrams(QgramSet(s, q_));
}

std::vector<uint32_t> QgramDictionary::EncodeGrams(
    const std::vector<std::string>& grams) {
  assert(frozen_);
  std::vector<uint32_t> ids;
  ids.reserve(grams.size());
  if (!flat()) {
    for (const std::string& g : grams) {
      auto it = id_of_.find(g);
      if (it == id_of_.end()) {
        it = id_of_.emplace(g, next_id_++).first;
      }
      ids.push_back(it->second);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }
  scratch_keys_.clear();
  for (const std::string& g : grams) scratch_keys_.push_back(PackGram(g));
  scratch_slots_.resize(scratch_keys_.size());
  id_of_flat_.FindOrInsertBatch(scratch_keys_, kUnassignedId, scratch_slots_);
  // Fresh ids go to unknown grams in encounter order — the same order
  // the ordered backend's in-loop emplace assigns them.
  for (uint64_t* slot : scratch_slots_) {
    if (*slot == kUnassignedId) *slot = next_id_++;
    ids.push_back(static_cast<uint32_t>(*slot));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace hera
