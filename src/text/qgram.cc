#include "text/qgram.h"

#include <algorithm>
#include <cassert>

namespace hera {

std::vector<std::string> QgramSet(std::string_view s, int q) {
  assert(q >= 1);
  std::vector<std::string> grams;
  if (s.empty()) return grams;
  if (static_cast<int>(s.size()) < q) {
    grams.emplace_back(s);
    return grams;
  }
  grams.reserve(s.size() - q + 1);
  for (size_t i = 0; i + q <= s.size(); ++i) {
    grams.emplace_back(s.substr(i, q));
  }
  std::sort(grams.begin(), grams.end());
  grams.erase(std::unique(grams.begin(), grams.end()), grams.end());
  return grams;
}

size_t OverlapOfSets(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

double JaccardOfSets(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  // Empty gram sets carry no information: matching on nothing is not
  // evidence, so the score is 0 (not the conventional 1).
  if (a.empty() || b.empty()) return 0.0;
  size_t inter = OverlapOfSets(a, b);
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

void QgramDictionary::Add(std::string_view s) {
  assert(!frozen_);
  for (auto& g : QgramSet(s, q_)) ++counts_[g];
}

void QgramDictionary::AddGrams(const std::vector<std::string>& grams) {
  assert(!frozen_);
  for (const std::string& g : grams) ++counts_[g];
}

void QgramDictionary::Freeze() {
  assert(!frozen_);
  std::vector<std::pair<uint64_t, const std::string*>> by_freq;
  by_freq.reserve(counts_.size());
  for (const auto& [gram, count] : counts_) by_freq.emplace_back(count, &gram);
  std::sort(by_freq.begin(), by_freq.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return *a.second < *b.second;  // Tie-break for determinism.
            });
  for (const auto& [count, gram] : by_freq) {
    (void)count;
    id_of_.emplace(*gram, next_id_++);
  }
  counts_.clear();
  frozen_ = true;
}

std::vector<uint32_t> QgramDictionary::Encode(std::string_view s) {
  assert(frozen_);
  std::vector<uint32_t> ids;
  for (auto& g : QgramSet(s, q_)) {
    auto it = id_of_.find(g);
    if (it == id_of_.end()) {
      it = id_of_.emplace(std::move(g), next_id_++).first;
    }
    ids.push_back(it->second);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<uint32_t> QgramDictionary::EncodeGrams(
    const std::vector<std::string>& grams) {
  assert(frozen_);
  std::vector<uint32_t> ids;
  ids.reserve(grams.size());
  for (const std::string& g : grams) {
    auto it = id_of_.find(g);
    if (it == id_of_.end()) {
      it = id_of_.emplace(g, next_id_++).first;
    }
    ids.push_back(it->second);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace hera
