// q-gram extraction.
//
// Jaccard over q-gram sets is the paper's default value similarity
// ("take Jaccard as similarity metric ... we set 2 q-grams"). Grams are
// returned sorted and deduplicated so that set intersection / union are
// linear merges, and optionally as sorted integer token ids (via
// QgramDictionary) for the similarity-join prefix filter.

#ifndef HERA_TEXT_QGRAM_H_
#define HERA_TEXT_QGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/flat_table.h"

namespace hera {

/// Extracts the set of q-grams of `s`, sorted and deduplicated.
///
/// Strings shorter than q yield a single gram equal to the whole string
/// (so "LA" with q=3 still has a token to match on). Empty input yields
/// an empty set.
std::vector<std::string> QgramSet(std::string_view s, int q);

/// Jaccard similarity of two sorted, deduplicated gram sets.
double JaccardOfSets(const std::vector<std::string>& a,
                     const std::vector<std::string>& b);

/// Overlap |a ∩ b| of two sorted, deduplicated gram sets.
size_t OverlapOfSets(const std::vector<std::string>& a,
                     const std::vector<std::string>& b);

/// Longest gram the flat dictionary backend can pack losslessly into a
/// uint64 key. Grams at q <= 7 always fit (short strings yield one
/// whole-string gram, but QgramSet only emits those below q).
inline constexpr size_t kMaxPackedGramLen = 7;

/// Packs a gram of length <= kMaxPackedGramLen into a uint64: length
/// tag in the top byte, gram bytes big-endian below it. The packing is
/// injective (no collisions), so a flat dictionary keyed on it is
/// exact. Packed order is NOT string order — unpack before comparing
/// lexicographically.
uint64_t PackGram(std::string_view gram);

/// Inverse of PackGram.
std::string UnpackGram(uint64_t packed);

/// \brief Interns q-grams as dense integer ids ordered by ascending
/// global frequency (the canonical ordering for prefix filtering).
///
/// Build in two passes: Add() every string, then Freeze(), then Encode().
///
/// The backend selects the gram -> count/id map: ordered keeps the
/// original std::unordered_map<std::string, ...>; flat packs grams into
/// uint64 keys (exact; see PackGram) and probes a FlatTable through its
/// batched prefetch pipeline. Ids assigned are identical under both —
/// Freeze sorts by (count, gram string) either way, and Encode assigns
/// fresh ids in encounter order — so the backend is a speed knob only.
/// Falls back to ordered when q > kMaxPackedGramLen.
class QgramDictionary {
 public:
  explicit QgramDictionary(
      int q, IndexBackend backend = IndexBackend::kOrdered,
      size_t pipeline_depth = FlatTable::kDefaultPipelineDepth);

  /// Counts the grams of one string (pass 1).
  void Add(std::string_view s);

  /// Counts an already-extracted gram set (pass 1); `grams` must be the
  /// QgramSet of one string (sorted, deduplicated). Lets callers that
  /// intern gram sets (text/token_cache.h) skip re-extraction.
  void AddGrams(const std::vector<std::string>& grams);

  /// Assigns ids: rarest gram gets the smallest id. Must be called once
  /// after all Add() calls and before Encode().
  void Freeze();

  /// Encodes a string as a sorted vector of gram ids (ascending id ==
  /// ascending frequency). Unknown grams are assigned fresh ids on the
  /// fly (treated as globally rare).
  std::vector<uint32_t> Encode(std::string_view s);

  /// Encode() over an already-extracted gram set (same unknown-gram
  /// handling); the counterpart of AddGrams.
  std::vector<uint32_t> EncodeGrams(const std::vector<std::string>& grams);

  int q() const { return q_; }
  size_t vocab_size() const {
    return flat() ? id_of_flat_.size() : id_of_.size();
  }
  bool frozen() const { return frozen_; }

  /// The backend actually in use (flat requests fall back to ordered
  /// when q > kMaxPackedGramLen).
  IndexBackend backend() const { return backend_; }

  /// Flat-table traffic for the obs layer (0 under ordered).
  uint64_t flat_batched_probes() const {
    return counts_flat_.batched_probes() + id_of_flat_.batched_probes();
  }
  uint64_t flat_rehashes() const {
    return counts_flat_.rehashes() + id_of_flat_.rehashes();
  }

 private:
  bool flat() const { return backend_ == IndexBackend::kFlat; }

  int q_;
  IndexBackend backend_;
  bool frozen_ = false;
  std::unordered_map<std::string, uint64_t> counts_;
  std::unordered_map<std::string, uint32_t> id_of_;
  FlatTable counts_flat_;  // packed gram -> count.
  FlatTable id_of_flat_;   // packed gram -> id.
  // Scratch buffers reused across batched calls.
  std::vector<uint64_t> scratch_keys_;
  std::vector<uint64_t*> scratch_slots_;
  uint32_t next_id_ = 0;
};

}  // namespace hera

#endif  // HERA_TEXT_QGRAM_H_
