// q-gram extraction.
//
// Jaccard over q-gram sets is the paper's default value similarity
// ("take Jaccard as similarity metric ... we set 2 q-grams"). Grams are
// returned sorted and deduplicated so that set intersection / union are
// linear merges, and optionally as sorted integer token ids (via
// QgramDictionary) for the similarity-join prefix filter.

#ifndef HERA_TEXT_QGRAM_H_
#define HERA_TEXT_QGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hera {

/// Extracts the set of q-grams of `s`, sorted and deduplicated.
///
/// Strings shorter than q yield a single gram equal to the whole string
/// (so "LA" with q=3 still has a token to match on). Empty input yields
/// an empty set.
std::vector<std::string> QgramSet(std::string_view s, int q);

/// Jaccard similarity of two sorted, deduplicated gram sets.
double JaccardOfSets(const std::vector<std::string>& a,
                     const std::vector<std::string>& b);

/// Overlap |a ∩ b| of two sorted, deduplicated gram sets.
size_t OverlapOfSets(const std::vector<std::string>& a,
                     const std::vector<std::string>& b);

/// \brief Interns q-grams as dense integer ids ordered by ascending
/// global frequency (the canonical ordering for prefix filtering).
///
/// Build in two passes: Add() every string, then Freeze(), then Encode().
class QgramDictionary {
 public:
  explicit QgramDictionary(int q) : q_(q) {}

  /// Counts the grams of one string (pass 1).
  void Add(std::string_view s);

  /// Counts an already-extracted gram set (pass 1); `grams` must be the
  /// QgramSet of one string (sorted, deduplicated). Lets callers that
  /// intern gram sets (text/token_cache.h) skip re-extraction.
  void AddGrams(const std::vector<std::string>& grams);

  /// Assigns ids: rarest gram gets the smallest id. Must be called once
  /// after all Add() calls and before Encode().
  void Freeze();

  /// Encodes a string as a sorted vector of gram ids (ascending id ==
  /// ascending frequency). Unknown grams are assigned fresh ids on the
  /// fly (treated as globally rare).
  std::vector<uint32_t> Encode(std::string_view s);

  /// Encode() over an already-extracted gram set (same unknown-gram
  /// handling); the counterpart of AddGrams.
  std::vector<uint32_t> EncodeGrams(const std::vector<std::string>& grams);

  int q() const { return q_; }
  size_t vocab_size() const { return id_of_.size(); }
  bool frozen() const { return frozen_; }

 private:
  int q_;
  bool frozen_ = false;
  std::unordered_map<std::string, uint64_t> counts_;
  std::unordered_map<std::string, uint32_t> id_of_;
  uint32_t next_id_ = 0;
};

}  // namespace hera

#endif  // HERA_TEXT_QGRAM_H_
