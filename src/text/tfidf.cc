#include "text/tfidf.h"

#include <cassert>
#include <cmath>

#include "text/tokenizer.h"

namespace hera {

void TfIdfModel::AddDocument(std::string_view value) {
  assert(!frozen_);
  ++num_docs_;
  for (const auto& tok : WordTokenSet(value)) ++df_[tok];
}

void TfIdfModel::Freeze() { frozen_ = true; }

double TfIdfModel::Idf(const std::string& token) const {
  auto it = df_.find(token);
  double df = it == df_.end() ? 1.0 : static_cast<double>(it->second);
  double n = std::max<double>(1.0, static_cast<double>(num_docs_));
  return std::log(1.0 + n / df);
}

std::unordered_map<std::string, double> TfIdfModel::WeightVector(
    std::string_view value) const {
  std::unordered_map<std::string, double> tf;
  for (const auto& tok : WordTokens(value)) tf[tok] += 1.0;
  double norm_sq = 0.0;
  for (auto& [tok, weight] : tf) {
    weight *= Idf(tok);
    norm_sq += weight * weight;
  }
  if (norm_sq > 0.0) {
    double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& [tok, weight] : tf) weight *= inv;
  }
  return tf;
}

}  // namespace hera
