// Corpus-level TF-IDF model backing the Soft TF-IDF similarity
// (mentioned by the paper as an alternative black-box metric).

#ifndef HERA_TEXT_TFIDF_H_
#define HERA_TEXT_TFIDF_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hera {

/// \brief Document-frequency statistics over a corpus of values.
///
/// Build with AddDocument() per value, then Freeze(). Idf() uses the
/// smoothed formula log(1 + N / df).
class TfIdfModel {
 public:
  TfIdfModel() = default;

  /// Registers one value (document). Token multiplicity within a
  /// document does not increase df.
  void AddDocument(std::string_view value);

  /// Finalizes N; further AddDocument calls are invalid.
  void Freeze();

  /// Smoothed inverse document frequency; unseen tokens get the
  /// maximum idf (df treated as 1).
  double Idf(const std::string& token) const;

  /// TF-IDF weight vector of a value: token -> tf * idf, L2-normalized.
  std::unordered_map<std::string, double> WeightVector(std::string_view value) const;

  size_t num_documents() const { return num_docs_; }
  bool frozen() const { return frozen_; }

 private:
  std::unordered_map<std::string, uint64_t> df_;
  size_t num_docs_ = 0;
  bool frozen_ = false;
};

}  // namespace hera

#endif  // HERA_TEXT_TFIDF_H_
