#include "text/token_cache.h"

#include <mutex>
#include <utility>

#include "text/qgram.h"

namespace hera {

TokenCache::GramsPtr TokenCache::Grams(const std::string& normalized) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = map_.find(normalized);
    if (it != map_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto grams =
      std::make_shared<const std::vector<std::string>>(QgramSet(normalized, q_));
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (max_entries_ > 0 && map_.size() >= max_entries_ &&
      map_.find(normalized) == map_.end()) {
    skipped_inserts_.fetch_add(1, std::memory_order_relaxed);
    return grams;
  }
  // Two workers can miss on the same key concurrently; the first
  // insert wins and both return the same published vector.
  auto [it, inserted] = map_.emplace(normalized, std::move(grams));
  return it->second;
}

void TokenCache::Invalidate(const std::string& normalized) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  map_.erase(normalized);
}

void TokenCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  map_.clear();
}

TokenCache::Stats TokenCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.skipped_inserts = skipped_inserts_.load(std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_);
  s.entries = map_.size();
  return s;
}

}  // namespace hera
