// Interned q-gram token vectors, shared across joins and rounds.
//
// Every similarity-join round re-tokenizes the live value set, yet
// super-record merging only permutes value *labels* — the value text
// itself is immutable — so from the second round on the overwhelming
// majority of tokenizations are repeats. TokenCache interns the q-gram
// set of each normalized value string once and hands out shared_ptr
// references; a hit is one hash lookup instead of a gram extraction,
// sort, and dedup.
//
// Keys are the normalized value text (content-addressed), which makes
// merge invalidation a no-op by construction: a merged super record
// carries the same value strings its sources did, so its cache entries
// stay valid. Invalidate()/Clear() exist for values an application
// rewrites in place and for bounding memory; when the capacity ceiling
// is reached new entries are computed but not retained (the cache
// degrades to a pass-through instead of growing without bound).
//
// Thread safety: Grams() may be called concurrently from join workers;
// lookups take a shared lock, insertions a unique one, and published
// vectors are immutable (shared_ptr<const ...>), so readers never see
// a partially built entry.

#ifndef HERA_TEXT_TOKEN_CACHE_H_
#define HERA_TEXT_TOKEN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace hera {

/// \brief Content-addressed intern table for q-gram sets.
class TokenCache {
 public:
  using GramsPtr = std::shared_ptr<const std::vector<std::string>>;

  /// Point-in-time counters; hits/misses/skipped are cumulative.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Misses computed but not retained because the cache was full.
    uint64_t skipped_inserts = 0;
    size_t entries = 0;
  };

  /// \param q gram length the cached sets are built with.
  /// \param max_entries capacity ceiling (0 = unlimited).
  explicit TokenCache(int q, size_t max_entries = 1u << 20)
      : q_(q), max_entries_(max_entries) {}

  /// The q-gram set of `normalized` (sorted, deduplicated — the
  /// QgramSet contract), served from the cache when interned.
  GramsPtr Grams(const std::string& normalized);

  /// Drops one entry (no-op when absent).
  void Invalidate(const std::string& normalized);

  /// Drops every entry; counters are kept.
  void Clear();

  Stats stats() const;

  int q() const { return q_; }

 private:
  const int q_;
  const size_t max_entries_;

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, GramsPtr> map_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> skipped_inserts_{0};
};

}  // namespace hera

#endif  // HERA_TEXT_TOKEN_CACHE_H_
