#include "text/tokenizer.h"

#include <algorithm>

#include "text/normalize.h"

namespace hera {

std::vector<std::string> WordTokens(std::string_view s) {
  std::string norm = Normalize(s);
  std::vector<std::string> tokens;
  size_t start = 0;
  for (size_t i = 0; i <= norm.size(); ++i) {
    if (i == norm.size() || norm[i] == ' ') {
      if (i > start) tokens.emplace_back(norm.substr(start, i - start));
      start = i + 1;
    }
  }
  return tokens;
}

std::vector<std::string> WordTokenSet(std::string_view s) {
  auto tokens = WordTokens(s);
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

}  // namespace hera
