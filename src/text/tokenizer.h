// Word-level tokenization for token-based similarities (cosine,
// Soft TF-IDF, Monge–Elkan).

#ifndef HERA_TEXT_TOKENIZER_H_
#define HERA_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace hera {

/// Splits on whitespace after normalization; tokens keep duplicates and
/// original order (bag semantics — cosine needs term frequencies).
std::vector<std::string> WordTokens(std::string_view s);

/// Like WordTokens but sorted + deduplicated (set semantics).
std::vector<std::string> WordTokenSet(std::string_view s);

}  // namespace hera

#endif  // HERA_TEXT_TOKENIZER_H_
