// Tests for src/baselines: R-Swoosh, correlation clustering,
// collective ER, naive transitive closure.

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "baselines/collective_er.h"
#include "baselines/correlation_clustering.h"
#include "baselines/homogeneous.h"
#include "baselines/naive.h"
#include "baselines/rswoosh.h"
#include "eval/metrics.h"
#include "sim/metrics.h"
#include "testing_util.h"

namespace hera {
namespace {

/// Easy homogeneous dataset: 3 entities x 3 near-duplicate records
/// under one schema; any sane ER method must solve it.
Dataset EasyHomogeneous() {
  Dataset ds;
  uint32_t s = ds.schemas().Register(
      Schema("person", {"name", "city", "phone"}));
  auto add = [&](const char* n, const char* c, const char* p, uint32_t e) {
    ds.AddRecord(s, {Value(n), Value(c), Value(p)});
    ds.entity_of().push_back(e);
  };
  add("Jonathan Smithers", "Springfield", "555-0101", 0);
  add("Jonathan Smithers", "Springfeld", "555-0101", 0);
  add("Jonathan Smitherz", "Springfield", "555-0101", 0);
  add("Mary Bellweather", "Shelbyville", "555-0202", 1);
  add("Mary Bellweather", "Shelbyville", "555-0203", 1);
  add("Mary Belweather", "Shelbyville", "555-0202", 1);
  add("Hubert Wolfenstein", "Capital City", "555-0303", 2);
  add("Hubert Wolfenstein", "Capital City", "555-0303", 2);
  add("Hubert Wolfenstien", "CapitalCity", "555-0303", 2);
  return ds;
}

// ---------------------------------------------------- HomogeneousCluster

TEST(HomogeneousClusterTest, FromRecordKeepsNonNulls) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a", "b", "c"}));
  ds.AddRecord(s, {Value("x"), Value(), Value("z")});
  HomogeneousCluster c = HomogeneousCluster::FromRecord(ds.record(0));
  EXPECT_EQ(c.NumPopulatedAttrs(), 2u);
  EXPECT_EQ(c.members(), (std::vector<uint32_t>{0}));
}

TEST(HomogeneousClusterTest, AbsorbUnionsValuesWithDedup) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  ds.AddRecord(s, {Value("x")});
  ds.AddRecord(s, {Value("x")});
  ds.AddRecord(s, {Value("y")});
  HomogeneousCluster c = HomogeneousCluster::FromRecord(ds.record(0));
  c.Absorb(HomogeneousCluster::FromRecord(ds.record(1)));
  EXPECT_EQ(c.attr_values()[0].size(), 1u);  // Dedup.
  c.Absorb(HomogeneousCluster::FromRecord(ds.record(2)));
  EXPECT_EQ(c.attr_values()[0].size(), 2u);
  EXPECT_EQ(c.members().size(), 3u);
}

TEST(HomogeneousClusterTest, SimilarityIdenticalRecords) {
  Dataset ds = EasyHomogeneous();
  auto metric = MakeSimilarity("jaccard_q2");
  HomogeneousCluster a = HomogeneousCluster::FromRecord(ds.record(6));
  HomogeneousCluster b = HomogeneousCluster::FromRecord(ds.record(7));
  EXPECT_DOUBLE_EQ(ClusterSimilarity(a, b, *metric, 0.5), 1.0);
}

TEST(HomogeneousClusterTest, SimilaritySymmetric) {
  Dataset ds = EasyHomogeneous();
  auto metric = MakeSimilarity("jaccard_q2");
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = i + 1; j < 4; ++j) {
      HomogeneousCluster a = HomogeneousCluster::FromRecord(ds.record(i));
      HomogeneousCluster b = HomogeneousCluster::FromRecord(ds.record(j));
      EXPECT_DOUBLE_EQ(ClusterSimilarity(a, b, *metric, 0.5),
                       ClusterSimilarity(b, a, *metric, 0.5));
    }
  }
}

TEST(CandidatePairsTest, CoversTruePairsOnEasyData) {
  Dataset ds = EasyHomogeneous();
  auto metric = MakeSimilarity("jaccard_q2");
  auto cands = CandidateRecordPairs(ds, *metric, 0.5);
  // All 9 intra-entity pairs must be candidates (they share values).
  std::set<std::pair<uint32_t, uint32_t>> set(cands.begin(), cands.end());
  for (uint32_t i = 0; i < ds.size(); ++i) {
    for (uint32_t j = i + 1; j < ds.size(); ++j) {
      if (ds.entity_of()[i] == ds.entity_of()[j]) {
        EXPECT_TRUE(set.count({i, j})) << i << "," << j;
      }
    }
  }
}

// ------------------------------------------------------------- baselines

struct BaselineCase {
  const char* name;
  std::vector<uint32_t> (*run)(const Dataset&, const ValueSimilarity&);
};

std::vector<uint32_t> RunRSwoosh(const Dataset& ds, const ValueSimilarity& m) {
  return RSwoosh(ds, m, {0.5, 0.6});
}
std::vector<uint32_t> RunCc(const Dataset& ds, const ValueSimilarity& m) {
  return CorrelationClustering(ds, m, {0.5, 0.6, 42});
}
std::vector<uint32_t> RunCr(const Dataset& ds, const ValueSimilarity& m) {
  return CollectiveER(ds, m, {0.5, 0.6, 0.3});
}
std::vector<uint32_t> RunNaive(const Dataset& ds, const ValueSimilarity& m) {
  return NaivePairwiseER(ds, m, {0.5, 0.6, false});
}

class BaselinePerfectTest : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(BaselinePerfectTest, SolvesEasyHomogeneousData) {
  Dataset ds = EasyHomogeneous();
  auto metric = MakeSimilarity("jaccard_q2");
  auto labels = GetParam().run(ds, *metric);
  ASSERT_EQ(labels.size(), ds.size());
  PairMetrics m = EvaluatePairs(labels, ds.entity_of());
  EXPECT_DOUBLE_EQ(m.f1, 1.0) << GetParam().name;
}

TEST_P(BaselinePerfectTest, EmptyDataset) {
  Dataset ds;
  ds.schemas().Register(Schema("S", {"a"}));
  auto metric = MakeSimilarity("jaccard_q2");
  EXPECT_TRUE(GetParam().run(ds, *metric).empty());
}

TEST_P(BaselinePerfectTest, SingletonsStaySeparate) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"name"}));
  ds.AddRecord(s, {Value("alpha bravo")});
  ds.AddRecord(s, {Value("charlie delta")});
  ds.AddRecord(s, {Value("echo foxtrot")});
  auto metric = MakeSimilarity("jaccard_q2");
  auto labels = GetParam().run(ds, *metric);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[1], labels[2]);
  EXPECT_NE(labels[0], labels[2]);
}

INSTANTIATE_TEST_SUITE_P(
    All, BaselinePerfectTest,
    ::testing::Values(BaselineCase{"rswoosh", RunRSwoosh},
                      BaselineCase{"cc", RunCc}, BaselineCase{"cr", RunCr},
                      BaselineCase{"naive", RunNaive}),
    [](const ::testing::TestParamInfo<BaselineCase>& info) {
      return info.param.name;
    });

TEST(NaiveTest, ExhaustiveEqualsBlockedOnEasyData) {
  Dataset ds = EasyHomogeneous();
  auto metric = MakeSimilarity("jaccard_q2");
  auto blocked = NaivePairwiseER(ds, *metric, {0.5, 0.6, false});
  auto exhaustive = NaivePairwiseER(ds, *metric, {0.5, 0.6, true});
  EXPECT_TRUE(testing_util::SamePartition(blocked, exhaustive));
}

TEST(RSwooshTest, MergedInformationEnablesTransitiveMatch) {
  // a matches b and b matches c at delta = 0.75, but a vs c alone
  // scores only 0.5: R-Swoosh's merge-then-rematch must still unify
  // all three through the merged record.
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"name", "email", "phone"}));
  ds.AddRecord(s, {Value("Jonathan Smithers"), Value("jon@mail.test"), Value()});
  ds.AddRecord(s, {Value("Jonathan Smithers"), Value("jon@mail.test"),
                   Value("555-777-0101")});
  ds.AddRecord(s, {Value(), Value("jon@mail.test"), Value("555-777-0101")});
  auto metric = MakeSimilarity("jaccard_q2");
  // Sanity: the weak link really is below threshold on its own.
  HomogeneousCluster a = HomogeneousCluster::FromRecord(ds.record(0));
  HomogeneousCluster c = HomogeneousCluster::FromRecord(ds.record(2));
  ASSERT_LT(ClusterSimilarity(a, c, *metric, 0.5), 0.75);
  auto labels = RSwoosh(ds, *metric, {0.5, 0.75});
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
}

TEST(CorrelationClusteringTest, DifferentSeedsStillValidPartition) {
  Dataset ds = EasyHomogeneous();
  auto metric = MakeSimilarity("jaccard_q2");
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto labels = CorrelationClustering(ds, *metric, {0.5, 0.6, seed});
    ASSERT_EQ(labels.size(), ds.size());
    PairMetrics m = EvaluatePairs(labels, ds.entity_of());
    EXPECT_GE(m.f1, 0.9) << "seed " << seed;  // Easy data: near perfect.
  }
}

TEST(CollectiveERTest, RelationalEvidenceHelps) {
  // (a, b) have attribute similarity 0.75 — below delta = 0.8 — but a
  // fully shared relational neighborhood {c, d} via the exact org
  // value. With alpha = 0.3 the combined similarity is
  // 0.7*0.75 + 0.3*1.0 = 0.825 >= 0.8 and they merge; with alpha = 0
  // they must stay separate. This is the collective effect.
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"name", "org"}));
  ds.AddRecord(s, {Value("J Smith"), Value("Acme Corporation")});      // a
  ds.AddRecord(s, {Value("John Smith"), Value("Acme Corporation")});   // b
  ds.AddRecord(s, {Value("Bob Jones"), Value("Acme Corporation")});    // c
  ds.AddRecord(s, {Value("Bob Jones"), Value("Acme Corporation")});    // d
  auto metric = MakeSimilarity("jaccard_q2");

  auto with_rel = CollectiveER(ds, *metric, {0.5, 0.8, 0.3});
  EXPECT_EQ(with_rel[0], with_rel[1]) << "relational evidence must merge a,b";

  auto without_rel = CollectiveER(ds, *metric, {0.5, 0.8, 0.0});
  EXPECT_NE(without_rel[0], without_rel[1])
      << "attribute similarity alone must not reach delta";
  EXPECT_EQ(without_rel[2], without_rel[3]);  // Identical pair merges.
}

}  // namespace
}  // namespace hera
