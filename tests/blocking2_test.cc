// Tests for sorted-neighborhood blocking and dataset profiling.

#include <gtest/gtest.h>

#include <set>

#include "blocking/sorted_neighborhood.h"
#include "blocking/token_blocking.h"
#include "data/movie_generator.h"
#include "data/profile.h"
#include "testing_util.h"

namespace hera {
namespace {

// ---------------------------------------------------- SortedNeighborhood

TEST(SortedNeighborhoodTest, KeyUsesSortedTokens) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a", "b"}));
  ds.AddRecord(s, {Value("zebra apple"), Value("mango")});
  SortedNeighborhoodOptions opts;
  std::string key0 = SortedNeighborhoodKey(ds.record(0), 0, opts);
  // Pass 0 keys on the alphabetically first token: "apple...".
  EXPECT_EQ(key0.rfind("apple", 0), 0u) << key0;
  std::string key1 = SortedNeighborhoodKey(ds.record(0), 1, opts);
  EXPECT_EQ(key1.rfind("mango", 0), 0u) << key1;
}

TEST(SortedNeighborhoodTest, KeyRotationWraps) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  ds.AddRecord(s, {Value("alpha beta")});
  SortedNeighborhoodOptions opts;
  EXPECT_EQ(SortedNeighborhoodKey(ds.record(0), 0, opts),
            SortedNeighborhoodKey(ds.record(0), 2, opts));
}

TEST(SortedNeighborhoodTest, EmptyRecordGetsNoKey) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  ds.AddRecord(s, {Value()});
  EXPECT_TRUE(SortedNeighborhoodKey(ds.record(0), 0, {}).empty());
}

TEST(SortedNeighborhoodTest, NearDuplicatesLandAdjacent) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"name"}));
  ds.AddRecord(s, {Value("jonathan smithers")});
  ds.AddRecord(s, {Value("unrelated words here")});
  ds.AddRecord(s, {Value("jonathan smithers")});
  auto pairs = SortedNeighborhoodPairs(ds, {});
  std::set<std::pair<uint32_t, uint32_t>> set(pairs.begin(), pairs.end());
  EXPECT_TRUE(set.count({0, 2}));
}

TEST(SortedNeighborhoodTest, WindowBoundsCandidateCount) {
  MovieGeneratorConfig config;
  config.num_records = 200;
  config.num_entities = 40;
  config.seed = 8;
  Dataset ds = GenerateMovieDataset(config);
  SortedNeighborhoodOptions opts;
  opts.window = 5;
  opts.passes = 1;
  auto pairs = SortedNeighborhoodPairs(ds, opts);
  // At most n * (window - 1) pairs per pass.
  EXPECT_LE(pairs.size(), ds.size() * (opts.window - 1));
}

TEST(SortedNeighborhoodTest, MorePassesNeverReduceCoverage) {
  Dataset ds = testing_util::MakeCustomersDataset();
  SortedNeighborhoodOptions one;
  one.passes = 1;
  SortedNeighborhoodOptions three;
  three.passes = 3;
  auto p1 = SortedNeighborhoodPairs(ds, one);
  auto p3 = SortedNeighborhoodPairs(ds, three);
  std::set<std::pair<uint32_t, uint32_t>> s1(p1.begin(), p1.end());
  for (auto pr : p1) EXPECT_TRUE(s1.count(pr));
  EXPECT_GE(p3.size(), p1.size());
}

TEST(SortedNeighborhoodTest, ReasonableCompletenessOnGeneratedData) {
  MovieGeneratorConfig config;
  config.num_records = 200;
  config.num_entities = 30;
  config.seed = 12;
  Dataset ds = GenerateMovieDataset(config);
  SortedNeighborhoodOptions opts;
  opts.window = 15;
  opts.passes = 3;
  auto pairs = SortedNeighborhoodPairs(ds, opts);
  BlockingQuality q = EvaluateBlocking(pairs, ds.entity_of());
  EXPECT_GT(q.pair_completeness, 0.5);
  EXPECT_GT(q.reduction_ratio, 0.5);
}

// ------------------------------------------------------------- Profiling

TEST(ProfileTest, CountsPerAttribute) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"name", "tag"}));
  ds.AddRecord(s, {Value("alice"), Value("x")});
  ds.AddRecord(s, {Value("bob"), Value("x")});
  ds.AddRecord(s, {Value(), Value("x")});
  DatasetProfile p = ProfileDataset(ds);
  ASSERT_EQ(p.attributes.size(), 2u);
  const AttributeProfile& name = p.attributes[0];
  EXPECT_EQ(name.attr_name, "name");
  EXPECT_EQ(name.num_records, 3u);
  EXPECT_EQ(name.num_present, 2u);
  EXPECT_EQ(name.num_distinct, 2u);
  EXPECT_NEAR(name.null_rate, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(name.distinct_ratio, 1.0);
  const AttributeProfile& tag = p.attributes[1];
  EXPECT_EQ(tag.num_distinct, 1u);
  EXPECT_EQ(p.total_values, 6u);
  EXPECT_EQ(p.total_nulls, 1u);
}

TEST(ProfileTest, FlagsLowCardinality) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"flag"}));
  for (int i = 0; i < 100; ++i) {
    ds.AddRecord(s, {Value(i % 2 ? "yes" : "no")});
  }
  DatasetProfile p = ProfileDataset(ds);
  EXPECT_TRUE(p.attributes[0].low_cardinality);
}

TEST(ProfileTest, KeyLikeAttributeNotFlagged) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"id"}));
  for (int i = 0; i < 100; ++i) {
    ds.AddRecord(s, {Value("id-" + std::to_string(i))});
  }
  DatasetProfile p = ProfileDataset(ds);
  EXPECT_FALSE(p.attributes[0].low_cardinality);
  EXPECT_DOUBLE_EQ(p.attributes[0].distinct_ratio, 1.0);
}

TEST(ProfileTest, NumericValuesCounted) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"year"}));
  ds.AddRecord(s, {Value(1999.0)});
  ds.AddRecord(s, {Value("not a number")});
  DatasetProfile p = ProfileDataset(ds);
  EXPECT_EQ(p.attributes[0].num_numeric, 1u);
}

TEST(ProfileTest, ToStringRendersEveryAttribute) {
  Dataset ds = testing_util::MakeCustomersDataset();
  std::string text = ProfileDataset(ds).ToString();
  EXPECT_NE(text.find("Con.Type"), std::string::npos);
  EXPECT_NE(text.find("Contact No."), std::string::npos);
}

TEST(ProfileTest, UnusedSchemaStillListed) {
  Dataset ds;
  ds.schemas().Register(Schema("empty", {"a"}));
  DatasetProfile p = ProfileDataset(ds);
  ASSERT_EQ(p.attributes.size(), 1u);
  EXPECT_EQ(p.attributes[0].num_records, 0u);
}

}  // namespace
}  // namespace hera
