// Tests for src/blocking: token blocking, block purging, candidate
// generation, blocking quality, and the attribute-agnostic ER baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "blocking/token_blocking.h"
#include "data/movie_generator.h"
#include "eval/metrics.h"
#include "sim/metrics.h"
#include "testing_util.h"

namespace hera {
namespace {

Dataset TinyDataset() {
  Dataset ds;
  uint32_t s1 = ds.schemas().Register(Schema("A", {"name", "city"}));
  uint32_t s2 = ds.schemas().Register(Schema("B", {"person", "location"}));
  ds.AddRecord(s1, {Value("John Smith"), Value("Springfield")});
  ds.AddRecord(s2, {Value("John Smith"), Value("Springfield")});
  ds.AddRecord(s1, {Value("Mary Jones"), Value("Shelbyville")});
  ds.entity_of() = {0, 0, 1};
  return ds;
}

TEST(TokenBlockingTest, BuildsOneBlockPerToken) {
  Dataset ds = TinyDataset();
  auto blocks = BuildBlocks(ds);
  // Tokens: john, smith, springfield, mary, jones, shelbyville.
  EXPECT_EQ(blocks.size(), 6u);
  // Sorted by token.
  EXPECT_TRUE(std::is_sorted(blocks.begin(), blocks.end(),
                             [](const Block& a, const Block& b) {
                               return a.token < b.token;
                             }));
}

TEST(TokenBlockingTest, BlocksAreSchemaAgnostic) {
  // Records under different schemas land in the same token block.
  Dataset ds = TinyDataset();
  auto blocks = BuildBlocks(ds);
  for (const Block& b : blocks) {
    if (b.token == "john") {
      EXPECT_EQ(b.record_ids, (std::vector<uint32_t>{0, 1}));
      return;
    }
  }
  FAIL() << "no 'john' block";
}

TEST(TokenBlockingTest, MinTokenLengthFilters) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  ds.AddRecord(s, {Value("of x yz abc")});
  BlockingOptions opts;
  opts.min_token_length = 3;
  auto blocks = BuildBlocks(ds, opts);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].token, "abc");
}

TEST(TokenBlockingTest, PurgeRemovesSingletonsAndGiants) {
  std::vector<Block> blocks = {
      {"solo", {1}},
      {"pair", {1, 2}},
      {"giant", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
  };
  BlockingOptions opts;
  opts.max_block_fraction = 0.5;
  size_t purged = PurgeBlocks(&blocks, /*dataset_size=*/10, opts);
  EXPECT_EQ(purged, 2u);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].token, "pair");
}

TEST(TokenBlockingTest, CandidatePairsDeduplicated) {
  std::vector<Block> blocks = {
      {"x", {0, 1, 2}},
      {"y", {1, 0}},  // Repeats the (0,1) pair.
  };
  auto pairs = CandidatePairsFromBlocks(blocks);
  EXPECT_EQ(pairs.size(), 3u);  // (0,1), (0,2), (1,2).
  for (auto [a, b] : pairs) EXPECT_LT(a, b);
}

TEST(TokenBlockingTest, QualityMetricsPerfectBlocking) {
  std::vector<std::pair<uint32_t, uint32_t>> candidates = {{0, 1}};
  std::vector<uint32_t> truth = {5, 5, 6};
  BlockingQuality q = EvaluateBlocking(candidates, truth);
  EXPECT_DOUBLE_EQ(q.pair_completeness, 1.0);
  EXPECT_NEAR(q.reduction_ratio, 1.0 - 1.0 / 3.0, 1e-12);
}

TEST(TokenBlockingTest, QualityMetricsMissedPair) {
  std::vector<std::pair<uint32_t, uint32_t>> candidates = {{0, 2}};
  std::vector<uint32_t> truth = {5, 5, 6};
  BlockingQuality q = EvaluateBlocking(candidates, truth);
  EXPECT_DOUBLE_EQ(q.pair_completeness, 0.0);
}

TEST(TokenBlockingTest, CompletenessHighOnGeneratedData) {
  MovieGeneratorConfig config;
  config.num_records = 200;
  config.num_entities = 30;
  config.seed = 3;
  Dataset ds = GenerateMovieDataset(config);
  auto blocks = BuildBlocks(ds);
  PurgeBlocks(&blocks, ds.size());
  BlockingQuality q =
      EvaluateBlocking(CandidatePairsFromBlocks(blocks), ds.entity_of());
  // Token blocking is recall-oriented: nearly every true pair shares
  // a token somewhere.
  EXPECT_GT(q.pair_completeness, 0.95);
  EXPECT_GT(q.reduction_ratio, 0.3);
}

TEST(TokenBlockingERTest, SolvesMotivatingExampleRoughly) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto metric = MakeSimilarity("jaccard_q2");
  TokenBlockingEROptions opts;
  opts.blocking.max_block_fraction = 1.0;  // Tiny data: keep all blocks.
  auto labels = TokenBlockingER(ds, *metric, opts);
  ASSERT_EQ(labels.size(), 6u);
  // The attribute-agnostic baseline finds the easy pairs but has no
  // compare-and-merge: it cannot guarantee the description-difference
  // pair (r1, r2). Evaluate it scores at least the directly similar
  // clusters, i.e. r3 and r5 together.
  EXPECT_EQ(labels[2], labels[4]);
}

TEST(TokenBlockingERTest, EmptyDataset) {
  Dataset ds;
  auto metric = MakeSimilarity("jaccard_q2");
  EXPECT_TRUE(TokenBlockingER(ds, *metric, {}).empty());
}

TEST(TokenBlockingERTest, ReasonableQualityOnGeneratedData) {
  MovieGeneratorConfig config;
  config.num_records = 200;
  config.num_entities = 30;
  config.seed = 5;
  Dataset ds = GenerateMovieDataset(config);
  auto metric = MakeSimilarity("jaccard_q2");
  auto labels = TokenBlockingER(ds, *metric, {});
  PairMetrics m = EvaluatePairs(labels, ds.entity_of());
  EXPECT_GT(m.f1, 0.5);  // Baseline floor: works, but below HERA.
}

}  // namespace
}  // namespace hera
