// Tests for src/eval/cluster_metrics: ARI, closest-cluster F1, and the
// per-entity breakdown.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "eval/cluster_metrics.h"

namespace hera {
namespace {

TEST(AdjustedRandIndexTest, IdenticalPartitions) {
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0, 0, 1, 1}, {7, 7, 9, 9}), 1.0);
}

TEST(AdjustedRandIndexTest, CompletelyOpposed) {
  // All-singletons vs all-one-cluster: ARI 0 (no agreement structure).
  double ari = AdjustedRandIndex({0, 1, 2, 3}, {5, 5, 5, 5});
  EXPECT_NEAR(ari, 0.0, 1e-9);
}

TEST(AdjustedRandIndexTest, KnownValue) {
  // Classic example: predicted {a,a,b,b,b,c}, truth {x,x,x,y,y,y}.
  std::vector<uint32_t> pred = {0, 0, 1, 1, 1, 2};
  std::vector<uint32_t> truth = {0, 0, 0, 1, 1, 1};
  double ari = AdjustedRandIndex(pred, truth);
  EXPECT_GT(ari, 0.05);
  EXPECT_LT(ari, 0.3);
}

TEST(AdjustedRandIndexTest, RandomLabelsNearZero) {
  Rng rng(17);
  double total = 0.0;
  const int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<uint32_t> a(200), b(200);
    for (size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<uint32_t>(rng.Uniform(5));
      b[i] = static_cast<uint32_t>(rng.Uniform(5));
    }
    total += AdjustedRandIndex(a, b);
  }
  EXPECT_NEAR(total / kTrials, 0.0, 0.05);
}

TEST(AdjustedRandIndexTest, SymmetricInArguments) {
  std::vector<uint32_t> a = {0, 0, 1, 2, 2, 2};
  std::vector<uint32_t> b = {0, 1, 1, 2, 2, 0};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), AdjustedRandIndex(b, a));
}

TEST(AdjustedRandIndexTest, DegenerateSizes) {
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({3}, {9}), 1.0);
}

TEST(ClosestClusterF1Test, PerfectPrediction) {
  EXPECT_DOUBLE_EQ(ClosestClusterF1({4, 4, 5}, {0, 0, 1}), 1.0);
}

TEST(ClosestClusterF1Test, SplitEntityScoresBelowOne) {
  // Entity {0,1,2} split into {0,1} and {2}.
  double f1 = ClosestClusterF1({7, 7, 8}, {0, 0, 0});
  // Best match is {0,1}: P=1, R=2/3 -> F1=0.8.
  EXPECT_NEAR(f1, 0.8, 1e-9);
}

TEST(ClosestClusterF1Test, ContaminatedClusterScoresBelowOne) {
  // Predicted merges two entities.
  double f1 = ClosestClusterF1({7, 7, 7, 7}, {0, 0, 1, 1});
  // Each entity matches the giant cluster: P=1/2, R=1 -> F1=2/3.
  EXPECT_NEAR(f1, 2.0 / 3.0, 1e-9);
}

TEST(ClosestClusterF1Test, BoundedByOne) {
  Rng rng(23);
  for (int t = 0; t < 50; ++t) {
    std::vector<uint32_t> a(60), b(60);
    for (size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<uint32_t>(rng.Uniform(8));
      b[i] = static_cast<uint32_t>(rng.Uniform(8));
    }
    double f1 = ClosestClusterF1(a, b);
    EXPECT_GE(f1, 0.0);
    EXPECT_LE(f1, 1.0);
  }
}

TEST(PerEntityBreakdownTest, ExactEntities) {
  auto outcomes = PerEntityBreakdown({4, 4, 5}, {0, 0, 1});
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].entity, 0u);
  EXPECT_EQ(outcomes[0].size, 2u);
  EXPECT_EQ(outcomes[0].num_fragments, 1u);
  EXPECT_TRUE(outcomes[0].pure);
  BreakdownSummary s = SummarizeBreakdown(outcomes);
  EXPECT_EQ(s.exact, 2u);
  EXPECT_EQ(s.split, 0u);
  EXPECT_EQ(s.contaminated, 0u);
}

TEST(PerEntityBreakdownTest, SplitEntity) {
  auto outcomes = PerEntityBreakdown({1, 2, 2}, {0, 0, 0});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].num_fragments, 2u);
  BreakdownSummary s = SummarizeBreakdown(outcomes);
  EXPECT_EQ(s.split, 1u);
}

TEST(PerEntityBreakdownTest, ContaminatedEntity) {
  // Entities 0 and 1 merged into one predicted cluster.
  auto outcomes = PerEntityBreakdown({9, 9, 9}, {0, 0, 1});
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.num_fragments, 1u);
    EXPECT_FALSE(o.pure);
  }
  BreakdownSummary s = SummarizeBreakdown(outcomes);
  EXPECT_EQ(s.contaminated, 2u);
}

}  // namespace
}  // namespace hera
