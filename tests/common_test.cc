// Unit tests for src/common: Status, StatusOr, Rng, string utilities,
// UnionFind.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/string_util.h"
#include "common/union_find.h"

namespace hera {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad xi");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad xi");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad xi");
}

TEST(StatusTest, AllNamedConstructors) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::IOError("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  HERA_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

// -------------------------------------------------------------- StatusOr

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("gone");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-7), -7);
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v.value_or("fallback"), "hello");
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  std::vector<int> got = std::move(v).value();
  EXPECT_EQ(got.size(), 3u);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(13), 13u);
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.5);
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(21);
  for (int i = 0; i < 500; ++i) EXPECT_LT(rng.Zipf(10, 1.0), 10u);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(23);
  int low = 0;
  const int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Zipf(100, 1.0) < 10) ++low;
  }
  // Under Zipf(1.0) the first 10 ranks carry well over a third of mass.
  EXPECT_GT(low, kTrials / 3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ChoicePicksExistingElement) {
  Rng rng(37);
  std::vector<std::string> v{"a", "b", "c"};
  for (int i = 0; i < 50; ++i) {
    const std::string& c = rng.Choice(v);
    EXPECT_TRUE(c == "a" || c == "b" || c == "c");
  }
}

// ----------------------------------------------------------- string_util

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, SplitKeepsEmptyTokens) {
  EXPECT_EQ(Split(",a,,b,", ','),
            (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(StringUtilTest, SplitEmptyString) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinInvertsSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringUtilTest, TrimRemovesEdgesOnly) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
  EXPECT_EQ(ToUpper("AbC-12"), "ABC-12");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hera_core", "hera"));
  EXPECT_FALSE(StartsWith("he", "hera"));
  EXPECT_TRUE(EndsWith("hera_core", "core"));
  EXPECT_FALSE(EndsWith("re", "core"));
}

struct NumericCase {
  const char* input;
  bool expected;
};

class LooksNumericTest : public ::testing::TestWithParam<NumericCase> {};

TEST_P(LooksNumericTest, Classifies) {
  EXPECT_EQ(LooksNumeric(GetParam().input), GetParam().expected)
      << "input=" << GetParam().input;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LooksNumericTest,
    ::testing::Values(NumericCase{"123", true}, NumericCase{"-4.5", true},
                      NumericCase{"+7", true}, NumericCase{" 42 ", true},
                      NumericCase{"1.2.3", false}, NumericCase{"", false},
                      NumericCase{"abc", false}, NumericCase{"12a", false},
                      NumericCase{".", false}, NumericCase{"-", false},
                      NumericCase{"0.5", true}, NumericCase{".5", true}));

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

// -------------------------------------------------------------- UnionFind

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(4);
  EXPECT_EQ(uf.NumSets(), 4u);
  for (uint32_t i = 0; i < 4; ++i) EXPECT_EQ(uf.Find(i), i);
}

TEST(UnionFindTest, UnionKeepsFirstArgumentRoot) {
  UnionFind uf(6);
  EXPECT_EQ(uf.Union(1, 5), 1u);  // Paper: "assume 1 = union(1, 6)".
  EXPECT_EQ(uf.Find(5), 1u);
  EXPECT_EQ(uf.Find(1), 1u);
}

TEST(UnionFindTest, UnionThroughNonRoots) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  // Union via members 1 and 3: representative of 1's set (0) survives.
  EXPECT_EQ(uf.Union(1, 3), 0u);
  EXPECT_EQ(uf.Find(3), 0u);
  EXPECT_EQ(uf.Find(2), 0u);
}

TEST(UnionFindTest, ConnectedAndSetSize) {
  UnionFind uf(5);
  uf.Union(0, 1);
  uf.Union(0, 2);
  EXPECT_TRUE(uf.Connected(1, 2));
  EXPECT_FALSE(uf.Connected(1, 3));
  EXPECT_EQ(uf.SetSize(2), 3u);
  EXPECT_EQ(uf.SetSize(4), 1u);
  EXPECT_EQ(uf.NumSets(), 3u);
}

TEST(UnionFindTest, SelfUnionIsNoop) {
  UnionFind uf(3);
  uf.Union(0, 1);
  size_t sets = uf.NumSets();
  EXPECT_EQ(uf.Union(0, 1), 0u);
  EXPECT_EQ(uf.NumSets(), sets);
}

TEST(UnionFindTest, ResetRestoresSingletons) {
  UnionFind uf(3);
  uf.Union(0, 2);
  uf.Reset(5);
  EXPECT_EQ(uf.NumSets(), 5u);
  EXPECT_FALSE(uf.Connected(0, 2));
}

TEST(UnionFindTest, LargeChainCompresses) {
  const uint32_t n = 1000;
  UnionFind uf(n);
  for (uint32_t i = 1; i < n; ++i) uf.Union(0, i);
  EXPECT_EQ(uf.NumSets(), 1u);
  for (uint32_t i = 0; i < n; ++i) EXPECT_EQ(uf.Find(i), 0u);
}

}  // namespace
}  // namespace hera
