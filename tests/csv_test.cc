// Tests for src/data CSV dataset I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "data/csv.h"
#include "data/movie_generator.h"
#include "testing_util.h"

namespace hera {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// -------------------------------------------------------- field escaping

struct EscapeCase {
  const char* raw;
  const char* escaped;
};

class CsvEscapeTest : public ::testing::TestWithParam<EscapeCase> {};

TEST_P(CsvEscapeTest, EscapesAndParsesBack) {
  const auto& c = GetParam();
  EXPECT_EQ(EscapeCsvField(c.raw), c.escaped);
  auto fields = ParseCsvLine(EscapeCsvField(c.raw));
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], c.raw);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CsvEscapeTest,
    ::testing::Values(EscapeCase{"plain", "plain"},
                      EscapeCase{"with,comma", "\"with,comma\""},
                      EscapeCase{"with\"quote", "\"with\"\"quote\""},
                      EscapeCase{"", ""},
                      EscapeCase{"both,\"x\"", "\"both,\"\"x\"\"\""}));

TEST(CsvLineTest, SplitsUnquotedFields) {
  EXPECT_EQ(ParseCsvLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvLineTest, EmptyFields) {
  EXPECT_EQ(ParseCsvLine(",a,"), (std::vector<std::string>{"", "a", ""}));
}

TEST(CsvLineTest, QuotedCommaStaysInField) {
  EXPECT_EQ(ParseCsvLine("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
}

TEST(CsvLineTest, RoundTripMultipleFields) {
  std::vector<std::string> fields{"x", "a,b", "q\"u\"o", "", "end"};
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line += ",";
    line += EscapeCsvField(fields[i]);
  }
  EXPECT_EQ(ParseCsvLine(line), fields);
}

// ----------------------------------------------------- dataset round trip

TEST(DatasetIoTest, RoundTripsMotivatingExample) {
  Dataset ds = testing_util::MakeCustomersDataset();
  std::string path = TempPath("customers.hera");
  ASSERT_TRUE(WriteDataset(ds, path).ok());
  auto loaded = ReadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), ds.size());
  EXPECT_EQ(loaded->schemas().size(), ds.schemas().size());
  EXPECT_EQ(loaded->entity_of(), ds.entity_of());
  for (uint32_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(loaded->record(i).schema_id(), ds.record(i).schema_id());
    for (size_t v = 0; v < ds.record(i).size(); ++v) {
      EXPECT_EQ(loaded->record(i).value(v).ToString(),
                ds.record(i).value(v).ToString());
    }
  }
}

TEST(DatasetIoTest, RoundTripsGeneratedDataset) {
  MovieGeneratorConfig config;
  config.num_records = 80;
  config.num_entities = 15;
  config.seed = 21;
  Dataset ds = GenerateMovieDataset(config);
  std::string path = TempPath("movies.hera");
  ASSERT_TRUE(WriteDataset(ds, path).ok());
  auto loaded = ReadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), ds.size());
  for (uint32_t i = 0; i < ds.size(); ++i) {
    for (size_t v = 0; v < ds.record(i).size(); ++v) {
      // The format stores canonical strings and re-types on read via
      // Value::Parse (numeric sniffing + trimming) — that parse of the
      // written rendering is the documented round-trip contract.
      Value expect =
          Value::Parse(ds.record(i).value(v).ToString(), /*sniff=*/true);
      EXPECT_EQ(loaded->record(i).value(v), expect)
          << "record " << i << " attr " << v;
    }
  }
}

TEST(DatasetIoTest, NullValuesSurviveRoundTrip) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a", "b"}));
  ds.AddRecord(s, {Value(), Value("x")});
  std::string path = TempPath("nulls.hera");
  ASSERT_TRUE(WriteDataset(ds, path).ok());
  auto loaded = ReadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->record(0).value(0).is_null());
  EXPECT_EQ(loaded->record(0).value(1).ToString(), "x");
}

TEST(DatasetIoTest, WithoutGroundTruth) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  ds.AddRecord(s, {Value("v")});
  std::string path = TempPath("no_truth.hera");
  ASSERT_TRUE(WriteDataset(ds, path).ok());
  auto loaded = ReadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->has_ground_truth());
}

// ------------------------------------------------------------ error cases

TEST(DatasetIoTest, MissingFileIsIOError) {
  auto r = ReadDataset("/nonexistent/path/file.hera");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(DatasetIoTest, MissingHeaderRejected) {
  std::string path = TempPath("bad_header.hera");
  std::ofstream(path) << "0,-,x\n";
  auto r = ReadDataset(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, UnknownSchemaIdRejected) {
  std::string path = TempPath("bad_schema.hera");
  std::ofstream(path) << "#hera-dataset v1\n#schema 0 S a\n5,-,x\n";
  auto r = ReadDataset(path);
  EXPECT_FALSE(r.ok());
}

TEST(DatasetIoTest, ArityMismatchRejected) {
  std::string path = TempPath("bad_arity.hera");
  std::ofstream(path) << "#hera-dataset v1\n#schema 0 S a,b\n0,-,only\n";
  auto r = ReadDataset(path);
  EXPECT_FALSE(r.ok());
}

TEST(DatasetIoTest, BadEntityIdRejected) {
  std::string path = TempPath("bad_entity.hera");
  std::ofstream(path) << "#hera-dataset v1\n#schema 0 S a\n#truth 1\n0,xyz,v\n";
  auto r = ReadDataset(path);
  EXPECT_FALSE(r.ok());
}

TEST(DatasetIoTest, ToleratesCrlfAndBlankLines) {
  std::string path = TempPath("crlf.hera");
  std::ofstream(path) << "#hera-dataset v1\r\n#schema 0 S a\r\n\r\n0,-,x\r\n";
  auto r = ReadDataset(path);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 1u);
}


TEST(DatasetIoTest, CanonicalAttrMapRoundTrips) {
  MovieGeneratorConfig config;
  config.num_records = 30;
  config.num_entities = 10;
  config.seed = 33;
  Dataset ds = GenerateMovieDataset(config);
  ASSERT_FALSE(ds.canonical_attr().empty());
  std::string path = TempPath("concepts.hera");
  ASSERT_TRUE(WriteDataset(ds, path).ok());
  auto loaded = ReadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->canonical_attr(), ds.canonical_attr());
  EXPECT_EQ(loaded->NumDistinctAttributes(), ds.NumDistinctAttributes());
}

TEST(DatasetIoTest, BadConceptLineRejected) {
  std::string path = TempPath("bad_concept.hera");
  std::ofstream(path) << "#hera-dataset v1\n#schema 0 S a\n#concept x y z\n0,-,v\n";
  EXPECT_FALSE(ReadDataset(path).ok());
}

// --------------------------------------------------------- hostile files

TEST(CsvLineTest, ReportsUnterminatedQuote) {
  bool unterminated = false;
  ParseCsvLine("\"closed\",ok", &unterminated);
  EXPECT_FALSE(unterminated);
  ParseCsvLine("\"never closed", &unterminated);
  EXPECT_TRUE(unterminated);
}

TEST(DatasetIoTest, UnterminatedQuoteRejectedWithLineNumber) {
  std::string path = TempPath("open_quote.hera");
  std::ofstream(path) << "#hera-dataset v1\n#schema 0 S a\n0,-,\"oops\n";
  auto r = ReadDataset(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("unterminated quote"), std::string::npos)
      << r.status();
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status();
}

TEST(DatasetIoTest, UnterminatedQuoteInSchemaAttrsRejected) {
  std::string path = TempPath("open_quote_schema.hera");
  std::ofstream(path) << "#hera-dataset v1\n#schema 0 S \"a,b\n";
  auto r = ReadDataset(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status();
}

TEST(DatasetIoTest, RaggedRowReportsExpectedAndActualArity) {
  std::string path = TempPath("ragged.hera");
  std::ofstream(path) << "#hera-dataset v1\n#schema 0 S a,b\n0,-,x,y,z\n";
  auto r = ReadDataset(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("expects 2"), std::string::npos)
      << r.status();
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status();
}

TEST(DatasetIoTest, DuplicateHeaderRejected) {
  std::string path = TempPath("dup_header.hera");
  std::ofstream(path) << "#hera-dataset v1\n#hera-dataset v1\n";
  auto r = ReadDataset(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("duplicate"), std::string::npos)
      << r.status();
}

TEST(DatasetIoTest, DuplicateSchemaIdRejected) {
  std::string path = TempPath("dup_schema.hera");
  std::ofstream(path) << "#hera-dataset v1\n#schema 0 S a\n#schema 0 T b\n";
  auto r = ReadDataset(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("duplicate #schema"), std::string::npos)
      << r.status();
}

TEST(DatasetIoTest, MalformedSchemaLineRejected) {
  std::string path = TempPath("malformed_schema.hera");
  std::ofstream(path) << "#hera-dataset v1\n#schema nonsense\n";
  auto r = ReadDataset(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("malformed #schema"), std::string::npos)
      << r.status();
}

TEST(DatasetIoTest, SchemaAfterDataRejected) {
  std::string path = TempPath("late_schema.hera");
  std::ofstream(path) << "#hera-dataset v1\n#schema 0 S a\n0,-,v\n"
                      << "#schema 1 T b\n";
  auto r = ReadDataset(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("after data"), std::string::npos)
      << r.status();
}

TEST(DatasetIoTest, DuplicateTruthRejected) {
  std::string path = TempPath("dup_truth.hera");
  std::ofstream(path) << "#hera-dataset v1\n#schema 0 S a\n#truth 1\n"
                      << "#truth 1\n0,0,v\n";
  auto r = ReadDataset(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("duplicate #truth"), std::string::npos)
      << r.status();
}

TEST(DatasetIoTest, TruthAfterDataRejected) {
  // Records read before #truth would have no entity id; rejecting is
  // the only labeling-consistent answer.
  std::string path = TempPath("late_truth.hera");
  std::ofstream(path) << "#hera-dataset v1\n#schema 0 S a\n0,-,v\n"
                      << "#truth 1\n0,0,w\n";
  auto r = ReadDataset(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("after data"), std::string::npos)
      << r.status();
}

TEST(DatasetIoTest, OversizedLineRejected) {
  std::string path = TempPath("huge_line.hera");
  {
    std::ofstream out(path);
    out << "#hera-dataset v1\n#schema 0 S a\n0,-,";
    std::string big((4u << 20) + 16, 'x');
    out << big << "\n";
  }
  auto r = ReadDataset(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("exceeds"), std::string::npos)
      << r.status();
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status();
}

}  // namespace
}  // namespace hera

