// Tests for src/data: corruption model, movie generator, benchmark
// dataset specs.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "data/benchmark_datasets.h"
#include "data/corruption.h"
#include "data/movie_generator.h"
#include "sim/string_metrics.h"

namespace hera {
namespace {

// ------------------------------------------------------------ Corruption

TEST(CorruptionTest, ZeroProbabilitiesLeaveInputIntact) {
  CorruptionOptions off;
  off.typo_prob = off.abbreviate_prob = off.drop_token_prob = 0.0;
  off.case_flip_prob = off.numeric_jitter_prob = 0.0;
  Rng rng(1);
  EXPECT_EQ(CorruptString("John Smith", &rng, off), "John Smith");
  EXPECT_EQ(CorruptValue(Value(1999.0), &rng, off), Value(1999.0));
}

TEST(CorruptionTest, NullPassesThrough) {
  Rng rng(2);
  EXPECT_TRUE(CorruptValue(Value(), &rng).is_null());
}

TEST(CorruptionTest, Deterministic) {
  Rng a(42), b(42);
  CorruptionOptions opts;
  opts.typo_prob = 1.0;
  EXPECT_EQ(CorruptString("hello world", &a, opts),
            CorruptString("hello world", &b, opts));
}

TEST(CorruptionTest, TypoChangesString) {
  CorruptionOptions opts;
  opts.typo_prob = 1.0;
  opts.abbreviate_prob = opts.drop_token_prob = opts.case_flip_prob = 0.0;
  Rng rng(7);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    if (CorruptString("reference string", &rng, opts) != "reference string") {
      ++changed;
    }
  }
  EXPECT_GT(changed, 40);  // A transpose of equal chars may no-op.
}

TEST(CorruptionTest, MildDefaultsPreserveRecognizability) {
  // The default model must keep most values similar enough for the
  // paper's xi = 0.5 Jaccard threshold to find them.
  Rng rng(11);
  int recognizable = 0;
  const std::string original = "Paramount Pictures";
  const int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    std::string corrupted = CorruptString(original, &rng);
    if (QgramJaccard(original, corrupted, 2) >= 0.5) ++recognizable;
  }
  EXPECT_GT(recognizable, kTrials * 7 / 10);
}

TEST(CorruptionTest, AbbreviationKeepsSurname) {
  CorruptionOptions opts;
  opts.abbreviate_prob = 1.0;
  opts.typo_prob = opts.drop_token_prob = opts.case_flip_prob = 0.0;
  Rng rng(3);
  EXPECT_EQ(CorruptString("John Smith", &rng, opts), "J. Smith");
}

TEST(CorruptionTest, NumericJitterIsSmall) {
  CorruptionOptions opts;
  opts.numeric_jitter_prob = 1.0;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    Value v = CorruptValue(Value(2000.0), &rng, opts);
    ASSERT_TRUE(v.is_number());
    EXPECT_NEAR(v.AsNumber(), 2000.0, 25.0);
    EXPECT_NE(v.AsNumber(), 2000.0);
  }
}

// ------------------------------------------------------- MovieGenerator

TEST(MovieGeneratorTest, ProducesRequestedShape) {
  MovieGeneratorConfig config;
  config.num_records = 200;
  config.num_entities = 30;
  config.seed = 9;
  Dataset ds = GenerateMovieDataset(config);
  EXPECT_EQ(ds.size(), 200u);
  EXPECT_EQ(ds.NumEntities(), 30u);
  EXPECT_TRUE(ds.has_ground_truth());
  EXPECT_TRUE(ds.Validate().ok());
  EXPECT_EQ(ds.schemas().size(), 4u);  // All standard profiles.
}

TEST(MovieGeneratorTest, EveryEntityHasAtLeastOneRecord) {
  MovieGeneratorConfig config;
  config.num_records = 50;
  config.num_entities = 50;
  config.seed = 10;
  Dataset ds = GenerateMovieDataset(config);
  std::set<uint32_t> entities(ds.entity_of().begin(), ds.entity_of().end());
  EXPECT_EQ(entities.size(), 50u);
}

TEST(MovieGeneratorTest, DeterministicForSeed) {
  MovieGeneratorConfig config;
  config.num_records = 100;
  config.num_entities = 20;
  config.seed = 77;
  Dataset a = GenerateMovieDataset(config);
  Dataset b = GenerateMovieDataset(config);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.entity_of(), b.entity_of());
  for (uint32_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.record(i).schema_id(), b.record(i).schema_id());
    for (size_t v = 0; v < a.record(i).size(); ++v) {
      EXPECT_EQ(a.record(i).value(v), b.record(i).value(v));
    }
  }
}

TEST(MovieGeneratorTest, DifferentSeedsDiffer) {
  MovieGeneratorConfig a_cfg, b_cfg;
  a_cfg.num_records = b_cfg.num_records = 100;
  a_cfg.num_entities = b_cfg.num_entities = 20;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  Dataset a = GenerateMovieDataset(a_cfg);
  Dataset b = GenerateMovieDataset(b_cfg);
  bool any_diff = a.entity_of() != b.entity_of();
  for (uint32_t i = 0; !any_diff && i < a.size(); ++i) {
    if (a.record(i).schema_id() != b.record(i).schema_id()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(MovieGeneratorTest, CanonicalAttrCoversEveryAttribute) {
  MovieGeneratorConfig config;
  config.num_records = 20;
  config.num_entities = 5;
  Dataset ds = GenerateMovieDataset(config);
  size_t total_attrs = 0;
  for (uint32_t s = 0; s < ds.schemas().size(); ++s) {
    total_attrs += ds.schemas().Get(s).size();
  }
  EXPECT_EQ(ds.canonical_attr().size(), total_attrs);
}

TEST(MovieGeneratorTest, NullProbabilityProducesNulls) {
  MovieGeneratorConfig config;
  config.num_records = 300;
  config.num_entities = 30;
  config.null_prob = 0.3;
  Dataset ds = GenerateMovieDataset(config);
  size_t nulls = 0, total = 0;
  for (const Record& r : ds.records()) {
    total += r.size();
    nulls += r.size() - r.NumPresent();
  }
  double rate = static_cast<double>(nulls) / static_cast<double>(total);
  EXPECT_NEAR(rate, 0.3, 0.06);
}

TEST(MovieGeneratorTest, StandardProfilesShareTitleConcept) {
  auto profiles = StandardMovieProfiles();
  ASSERT_EQ(profiles.size(), 4u);
  for (const auto& p : profiles) {
    bool has_title = false;
    for (const auto& [attr, concept_id] : p.attrs) {
      (void)attr;
      if (concept_id == kTitle) has_title = true;
    }
    EXPECT_TRUE(has_title) << p.name;
  }
}

TEST(MovieGeneratorTest, ProfilesUseDistinctAttributeNames) {
  // Heterogeneity: the same concept goes by different names.
  auto profiles = StandardMovieProfiles();
  std::set<std::string> title_names;
  for (const auto& p : profiles) {
    for (const auto& [attr, concept_id] : p.attrs) {
      if (concept_id == kTitle) title_names.insert(attr);
    }
  }
  EXPECT_EQ(title_names.size(), 4u);  // title/name/movie_title/film.
}

// --------------------------------------------------- Benchmark datasets

TEST(BenchmarkDatasetsTest, SpecsMatchTableI) {
  EXPECT_EQ(SpecFor(BenchmarkDataset::kDm1).num_records, 1000u);
  EXPECT_EQ(SpecFor(BenchmarkDataset::kDm1).num_entities, 121u);
  EXPECT_EQ(SpecFor(BenchmarkDataset::kDm2).num_records, 2000u);
  EXPECT_EQ(SpecFor(BenchmarkDataset::kDm2).num_entities, 277u);
  EXPECT_EQ(SpecFor(BenchmarkDataset::kDm3).num_records, 3000u);
  EXPECT_EQ(SpecFor(BenchmarkDataset::kDm3).num_entities, 361u);
  EXPECT_EQ(SpecFor(BenchmarkDataset::kDm4).num_records, 4000u);
  EXPECT_EQ(SpecFor(BenchmarkDataset::kDm4).num_entities, 533u);
}

TEST(BenchmarkDatasetsTest, Dm1BuildsWithSixteenDistinctAttrs) {
  Dataset ds = BuildBenchmarkDataset(BenchmarkDataset::kDm1);
  EXPECT_EQ(ds.size(), 1000u);
  EXPECT_EQ(ds.NumEntities(), 121u);
  EXPECT_EQ(ds.NumDistinctAttributes(), 16u);  // Table I.
}

TEST(BenchmarkDatasetsTest, DistinctAttributeCountsNearTableI) {
  // Paper: 16 / 22 / 23 / 21.
  EXPECT_EQ(BuildBenchmarkDataset(BenchmarkDataset::kDm2).NumDistinctAttributes(),
            22u);
  EXPECT_EQ(BuildBenchmarkDataset(BenchmarkDataset::kDm3).NumDistinctAttributes(),
            23u);
  EXPECT_EQ(BuildBenchmarkDataset(BenchmarkDataset::kDm4).NumDistinctAttributes(),
            21u);
}

}  // namespace
}  // namespace hera
