// Direct tests for ResolutionEngine: record growth across rounds,
// precomputed indexing, label stability.

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "core/hera.h"
#include "sim/metrics.h"
#include "testing_util.h"

namespace hera {
namespace {

ValueSimilarityPtr Metric() { return MakeSimilarity("jaccard_q2"); }

TEST(EngineTest, EmptyEngineYieldsNoLabels) {
  ResolutionEngine engine(HeraOptions{}, Metric());
  EXPECT_EQ(engine.NumRecords(), 0u);
  EXPECT_TRUE(engine.Labels().empty());
  engine.IterateToFixpoint();  // No-op on empty state.
  EXPECT_EQ(engine.stats().merges, 0u);
}

TEST(EngineTest, AddRecordsPreservesEarlierMerges) {
  Dataset ds = testing_util::MakeCustomersDataset();
  ResolutionEngine engine(HeraOptions{}, Metric());
  // Round 1: r1 (0) and r6 (5) only — renumber as 0 and 1.
  std::vector<Record> first = {
      Record(0, ds.record(0).schema_id(), ds.record(0).values()),
      Record(1, ds.record(5).schema_id(), ds.record(5).values()),
  };
  engine.AddRecords(first);
  engine.IndexNewRecords();
  engine.IterateToFixpoint();
  auto labels = engine.Labels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], labels[1]);  // Near-identical records merged.

  // Round 2: an unrelated record must not disturb the merge.
  std::vector<Record> second = {
      Record(2, ds.record(2).schema_id(), ds.record(2).values()),  // r3.
  };
  engine.AddRecords(second);
  engine.IndexNewRecords();
  engine.IterateToFixpoint();
  labels = engine.Labels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[2], labels[0]);
}

TEST(EngineTest, IndexPrecomputedMatchesIndexNewRecords) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;

  ResolutionEngine joined(opts, Metric());
  joined.AddRecords(ds.records());
  joined.IndexNewRecords();
  joined.IterateToFixpoint();

  auto pairs = ComputeSimilarValuePairs(ds, opts);
  ASSERT_TRUE(pairs.ok());
  ResolutionEngine seeded(opts, Metric());
  seeded.AddRecords(ds.records());
  seeded.IndexPrecomputed(*pairs);
  seeded.IterateToFixpoint();

  EXPECT_EQ(joined.Labels(), seeded.Labels());
  EXPECT_EQ(joined.stats().index_size, seeded.stats().index_size);
}

TEST(EngineTest, IndexNewRecordsReturnsPairCount) {
  Dataset ds = testing_util::MakeCustomersDataset();
  ResolutionEngine engine(HeraOptions{}, Metric());
  engine.AddRecords(ds.records());
  auto added = engine.IndexNewRecords();
  ASSERT_TRUE(added.ok());
  EXPECT_GT(*added, 0u);
  EXPECT_EQ(*added, engine.stats().index_size);
  // Nothing new: zero additional pairs.
  EXPECT_EQ(*engine.IndexNewRecords(), 0u);
}

TEST(EngineTest, PredictorAccessibleAfterRun) {
  Dataset ds = testing_util::MakeCustomersDataset();
  ResolutionEngine engine(HeraOptions{}, Metric());
  engine.AddRecords(ds.records());
  engine.IndexNewRecords();
  engine.IterateToFixpoint();
  // Predictions were recorded (the decided count may be 0 at this
  // scale, but votes must exist once merges happened).
  EXPECT_GT(engine.predictor().num_predictions(), 0u);
}

TEST(EngineTest, TakeSuperRecordsTransfersOwnership) {
  Dataset ds = testing_util::MakeCustomersDataset();
  ResolutionEngine engine(HeraOptions{}, Metric());
  engine.AddRecords(ds.records());
  engine.IndexNewRecords();
  engine.IterateToFixpoint();
  auto supers = engine.TakeSuperRecords();
  EXPECT_EQ(supers.size(), 2u);
  EXPECT_TRUE(engine.active().empty());
}

}  // namespace
}  // namespace hera
