// Tests for src/eval: pairwise precision / recall / F1.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "eval/metrics.h"

namespace hera {
namespace {

TEST(CountIntraPairsTest, KnownValues) {
  EXPECT_EQ(CountIntraPairs({}), 0u);
  EXPECT_EQ(CountIntraPairs({1}), 0u);
  EXPECT_EQ(CountIntraPairs({1, 1}), 1u);
  EXPECT_EQ(CountIntraPairs({1, 1, 1}), 3u);
  EXPECT_EQ(CountIntraPairs({1, 2, 1, 2}), 2u);
  EXPECT_EQ(CountIntraPairs({0, 1, 2, 3}), 0u);
}

TEST(EvaluatePairsTest, PerfectPrediction) {
  PairMetrics m = EvaluatePairs({5, 5, 9, 9}, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_EQ(m.true_positives, 2u);
}

TEST(EvaluatePairsTest, AllSingletonsPredicted) {
  PairMetrics m = EvaluatePairs({0, 1, 2, 3}, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);  // Vacuous: no predicted pairs.
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(EvaluatePairsTest, EverythingMergedPredicted) {
  PairMetrics m = EvaluatePairs({7, 7, 7, 7}, {0, 0, 1, 1});
  EXPECT_EQ(m.predicted_pairs, 6u);
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_DOUBLE_EQ(m.precision, 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(EvaluatePairsTest, PartialOverlap) {
  // Predicted: {0,1},{2,3}; truth: {0,1,2},{3}.
  PairMetrics m = EvaluatePairs({4, 4, 5, 5}, {0, 0, 0, 1});
  EXPECT_EQ(m.predicted_pairs, 2u);
  EXPECT_EQ(m.truth_pairs, 3u);
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_NEAR(m.recall, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.f1, 2.0 * 0.5 * (1.0 / 3.0) / (0.5 + 1.0 / 3.0), 1e-12);
}

TEST(EvaluatePairsTest, LabelValuesIrrelevant) {
  PairMetrics a = EvaluatePairs({0, 0, 1}, {9, 9, 4});
  PairMetrics b = EvaluatePairs({100, 100, 7}, {2, 2, 3});
  EXPECT_DOUBLE_EQ(a.f1, b.f1);
  EXPECT_DOUBLE_EQ(a.f1, 1.0);
}

TEST(EvaluatePairsTest, EmptyInput) {
  PairMetrics m = EvaluatePairs({}, {});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(EvaluatePairsTest, PropertyScoresInRange) {
  Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    size_t n = 1 + rng.Uniform(50);
    std::vector<uint32_t> pred(n), truth(n);
    for (size_t i = 0; i < n; ++i) {
      pred[i] = static_cast<uint32_t>(rng.Uniform(8));
      truth[i] = static_cast<uint32_t>(rng.Uniform(8));
    }
    PairMetrics m = EvaluatePairs(pred, truth);
    EXPECT_GE(m.precision, 0.0);
    EXPECT_LE(m.precision, 1.0);
    EXPECT_GE(m.recall, 0.0);
    EXPECT_LE(m.recall, 1.0);
    EXPECT_GE(m.f1, 0.0);
    EXPECT_LE(m.f1, 1.0);
    EXPECT_LE(m.true_positives, m.predicted_pairs);
    EXPECT_LE(m.true_positives, m.truth_pairs);
  }
}

TEST(EvaluatePairsTest, SymmetricWhenSwapped) {
  // Swapping prediction and truth swaps precision and recall.
  std::vector<uint32_t> a{0, 0, 1, 1, 2};
  std::vector<uint32_t> b{0, 0, 0, 1, 1};
  PairMetrics ab = EvaluatePairs(a, b);
  PairMetrics ba = EvaluatePairs(b, a);
  EXPECT_DOUBLE_EQ(ab.precision, ba.recall);
  EXPECT_DOUBLE_EQ(ab.recall, ba.precision);
  EXPECT_DOUBLE_EQ(ab.f1, ba.f1);
}

}  // namespace
}  // namespace hera
