// Tests for src/data data exchange (target-schema projection).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/benchmark_datasets.h"
#include "data/data_exchange.h"
#include "data/movie_generator.h"

namespace hera {
namespace {

MovieGeneratorConfig SmallConfig() {
  MovieGeneratorConfig config;
  config.num_records = 120;
  config.num_entities = 20;
  config.seed = 4;
  return config;
}

TEST(DataExchangeTest, PreservesRecordCountAndOrder) {
  Dataset src = GenerateMovieDataset(SmallConfig());
  ExchangeResult ex = ExchangeToTargetSchema(src, 1.0 / 3.0, 99);
  EXPECT_EQ(ex.dataset.size(), src.size());
  EXPECT_EQ(ex.dataset.entity_of(), src.entity_of());
  EXPECT_TRUE(ex.dataset.Validate().ok());
}

TEST(DataExchangeTest, SingleTargetSchema) {
  Dataset src = GenerateMovieDataset(SmallConfig());
  ExchangeResult ex = ExchangeToTargetSchema(src, 0.5, 99);
  EXPECT_EQ(ex.dataset.schemas().size(), 1u);
  for (const Record& r : ex.dataset.records()) {
    EXPECT_EQ(r.schema_id(), 0u);
    EXPECT_EQ(r.size(), ex.target_concepts.size());
  }
}

TEST(DataExchangeTest, FractionControlsTargetWidth) {
  Dataset src = GenerateMovieDataset(SmallConfig());
  size_t total = src.NumDistinctAttributes();
  ExchangeResult small = ExchangeToTargetSchema(src, 1.0 / 3.0, 5);
  ExchangeResult large = ExchangeToTargetSchema(src, 2.0 / 3.0, 5);
  EXPECT_EQ(small.target_concepts.size(),
            static_cast<size_t>(std::lround(total / 3.0)));
  EXPECT_EQ(large.target_concepts.size(),
            static_cast<size_t>(std::lround(2.0 * total / 3.0)));
  EXPECT_LT(small.target_concepts.size(), large.target_concepts.size());
}

TEST(DataExchangeTest, AnchorConceptAlwaysIncluded) {
  Dataset src = GenerateMovieDataset(SmallConfig());
  for (uint64_t seed = 0; seed < 20; ++seed) {
    ExchangeResult ex = ExchangeToTargetSchema(src, 1.0 / 3.0, seed);
    EXPECT_TRUE(std::count(ex.target_concepts.begin(),
                           ex.target_concepts.end(), kTitle))
        << "seed " << seed;
  }
}

TEST(DataExchangeTest, TgdsReferenceValidAttributes) {
  Dataset src = GenerateMovieDataset(SmallConfig());
  ExchangeResult ex = ExchangeToTargetSchema(src, 0.5, 3);
  std::set<uint32_t> chosen(ex.target_concepts.begin(),
                            ex.target_concepts.end());
  for (const CopyTgd& tgd : ex.tgds) {
    ASSERT_LT(tgd.source.schema_id, src.schemas().size());
    ASSERT_LT(tgd.source.attr_index,
              src.schemas().Get(tgd.source.schema_id).size());
    ASSERT_LT(tgd.target_attr, ex.target_concepts.size());
    // The tgd must copy between attributes of the same concept.
    uint32_t src_concept = src.canonical_attr().at(tgd.source);
    EXPECT_EQ(src_concept, ex.target_concepts[tgd.target_attr]);
  }
}

TEST(DataExchangeTest, ValuesCopiedFaithfully) {
  Dataset src = GenerateMovieDataset(SmallConfig());
  ExchangeResult ex = ExchangeToTargetSchema(src, 2.0 / 3.0, 8);
  // Rebuild the expected projection per record from the tgds.
  for (const Record& r : src.records()) {
    const Record& t = ex.dataset.record(r.id());
    for (const CopyTgd& tgd : ex.tgds) {
      if (tgd.source.schema_id != r.schema_id()) continue;
      EXPECT_EQ(t.value(tgd.target_attr), r.value(tgd.source.attr_index));
    }
  }
}

TEST(DataExchangeTest, UnmappedAttributesAreNull) {
  // A source record only fills target attributes its schema maps to;
  // everything else must be null (the paper's information loss).
  Dataset src = GenerateMovieDataset(SmallConfig());
  ExchangeResult ex = ExchangeToTargetSchema(src, 2.0 / 3.0, 8);
  std::set<std::pair<uint32_t, uint32_t>> mapped;  // (schema, target attr)
  for (const CopyTgd& tgd : ex.tgds) {
    mapped.emplace(tgd.source.schema_id, tgd.target_attr);
  }
  for (const Record& r : src.records()) {
    const Record& t = ex.dataset.record(r.id());
    for (uint32_t a = 0; a < t.size(); ++a) {
      if (!mapped.count({r.schema_id(), a})) {
        EXPECT_TRUE(t.value(a).is_null());
      }
    }
  }
}

TEST(DataExchangeTest, DeterministicForSeed) {
  Dataset src = GenerateMovieDataset(SmallConfig());
  ExchangeResult a = ExchangeToTargetSchema(src, 0.5, 31);
  ExchangeResult b = ExchangeToTargetSchema(src, 0.5, 31);
  EXPECT_EQ(a.target_concepts, b.target_concepts);
}

TEST(DataExchangeTest, ProjectionLosesInformation) {
  // The homogeneous projection must carry strictly fewer non-null
  // values than the heterogeneous source (the motivation for HERA).
  Dataset src = GenerateMovieDataset(SmallConfig());
  ExchangeResult ex = ExchangeToTargetSchema(src, 1.0 / 3.0, 12);
  size_t src_values = 0, dst_values = 0;
  for (const Record& r : src.records()) src_values += r.NumPresent();
  for (const Record& r : ex.dataset.records()) dst_values += r.NumPresent();
  EXPECT_LT(dst_values, src_values);
}

TEST(BenchmarkProjectionTest, BuildsSmallAndLarge) {
  ExchangeResult s = BuildHomogeneousProjection(BenchmarkDataset::kDm1, true);
  ExchangeResult l = BuildHomogeneousProjection(BenchmarkDataset::kDm1, false);
  EXPECT_EQ(s.dataset.size(), 1000u);
  EXPECT_EQ(l.dataset.size(), 1000u);
  EXPECT_LT(s.target_concepts.size(), l.target_concepts.size());
}

}  // namespace
}  // namespace hera
