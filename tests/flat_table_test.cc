// Tests for the flat index backend (src/index/flat_table.*): the
// open-addressing table itself (scalar vs batched-pipelined probes,
// backward-shift deletion, rehash growth), gram packing, and — the
// guarantee the backend is sold on — byte-identical labels and merge
// sequences between ordered and flat across thread counts, kernels,
// and the pair-sim cache (see docs/performance.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/hera.h"
#include "data/movie_generator.h"
#include "data/publication_generator.h"
#include "index/flat_table.h"
#include "index/value_pair_index.h"
#include "text/qgram.h"

namespace hera {
namespace {

// ------------------------------------------------------------ FlatTable

TEST(FlatTableTest, InsertFindErase) {
  FlatTable t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.Find(42), nullptr);
  *t.FindOrInsert(42, 7) = 7;
  ASSERT_NE(t.Find(42), nullptr);
  EXPECT_EQ(*t.Find(42), 7u);
  EXPECT_EQ(t.size(), 1u);
  // FindOrInsert on a present key returns the existing slot.
  EXPECT_EQ(*t.FindOrInsert(42, 99), 7u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Erase(42));
  EXPECT_FALSE(t.Erase(42));
  EXPECT_EQ(t.Find(42), nullptr);
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlatTableTest, RehashGrowthKeepsEveryEntry) {
  FlatTable t;
  const size_t n = 5000;
  for (uint64_t k = 0; k < n; ++k) *t.FindOrInsert(k * 2654435761ull, 0) = k;
  EXPECT_EQ(t.size(), n);
  EXPECT_GT(t.rehashes(), 0u);
  // Max load factor 3/4 held through growth.
  EXPECT_LE(t.size() * 4, t.capacity() * 3);
  for (uint64_t k = 0; k < n; ++k) {
    const uint64_t* v = std::as_const(t).Find(k * 2654435761ull);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k);
  }
}

TEST(FlatTableTest, ClearKeepsCapacity) {
  FlatTable t;
  for (uint64_t k = 0; k < 100; ++k) *t.FindOrInsert(k, 0) = k;
  const size_t cap = t.capacity();
  t.Clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.capacity(), cap);
  EXPECT_EQ(t.Find(5), nullptr);
  *t.FindOrInsert(5, 1) = 1;
  EXPECT_EQ(*t.Find(5), 1u);
}

// Fuzz the table against std::unordered_map through a random
// insert/erase/lookup workload — this drives the load factor through
// every step up to the rehash threshold and back down, exercising
// backward-shift deletion inside long collision runs (keys drawn from
// a small universe so probe chains overlap).
TEST(FlatTableTest, FuzzAgainstUnorderedMapReference) {
  Rng rng(1234);
  FlatTable t;
  std::unordered_map<uint64_t, uint64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    uint64_t key = rng.Uniform(700);  // Small universe: heavy collisions.
    switch (rng.Uniform(3)) {
      case 0: {  // Insert / overwrite.
        uint64_t val = rng.Next() >> 1;
        *t.FindOrInsert(key, val) = val;
        ref[key] = val;
        break;
      }
      case 1: {  // Erase.
        EXPECT_EQ(t.Erase(key), ref.erase(key) > 0) << "op " << op;
        break;
      }
      default: {  // Lookup.
        const uint64_t* v = t.Find(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(v, nullptr) << "op " << op;
        } else {
          ASSERT_NE(v, nullptr) << "op " << op;
          EXPECT_EQ(*v, it->second) << "op " << op;
        }
      }
    }
    EXPECT_EQ(t.size(), ref.size());
  }
  // Full sweep at the end: contents agree exactly.
  size_t seen = 0;
  t.ForEach([&](uint64_t k, uint64_t v) {
    ++seen;
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end()) << k;
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(seen, ref.size());
}

// Batched probes must agree with scalar probes at every pipeline depth
// and at every load-factor step (the batch is checked after each
// insertion wave, so it sees the table right before and after rehash).
TEST(FlatTableTest, FindBatchMatchesScalarAtEveryLoadStep) {
  for (size_t depth : {1u, 4u, 8u, 16u}) {
    Rng rng(99 + depth);
    FlatTable t(0, depth);
    ASSERT_EQ(t.pipeline_depth(), depth);
    std::vector<uint64_t> present;
    for (int wave = 0; wave < 60; ++wave) {
      for (int i = 0; i < 17; ++i) {
        uint64_t k = rng.Next() >> 1;
        *t.FindOrInsert(k, k + 1) = k + 1;
        present.push_back(k);
      }
      // Query a mix of present and absent keys, batched vs scalar.
      std::vector<uint64_t> queries;
      for (int i = 0; i < 40; ++i) {
        queries.push_back(rng.Uniform(2) == 0
                              ? present[rng.Uniform(present.size())]
                              : (rng.Next() >> 1));
      }
      std::vector<const uint64_t*> batch(queries.size());
      std::as_const(t).FindBatch(queries, batch);
      for (size_t i = 0; i < queries.size(); ++i) {
        const uint64_t* scalar = std::as_const(t).Find(queries[i]);
        EXPECT_EQ(batch[i], scalar) << "depth " << depth << " wave " << wave;
      }
    }
    EXPECT_GT(t.batched_probes(), 0u);
  }
}

TEST(FlatTableTest, FindOrInsertBatchMatchesScalarSemantics) {
  for (size_t depth : {1u, 4u, 8u, 16u}) {
    Rng rng(7 + depth);
    FlatTable batched(0, depth);
    FlatTable scalar(0, depth);
    for (int wave = 0; wave < 40; ++wave) {
      std::vector<uint64_t> keys;
      for (int i = 0; i < 23; ++i) keys.push_back(rng.Uniform(500));
      std::vector<uint64_t*> slots(keys.size());
      batched.FindOrInsertBatch(keys, 0, slots);
      for (size_t i = 0; i < keys.size(); ++i) {
        ASSERT_NE(slots[i], nullptr);
        *slots[i] += 1;  // Count occurrences, like the gram dictionary.
        *scalar.FindOrInsert(keys[i], 0) += 1;
      }
    }
    EXPECT_EQ(batched.size(), scalar.size());
    batched.ForEach([&](uint64_t k, uint64_t v) {
      const uint64_t* ref = scalar.Find(k);
      ASSERT_NE(ref, nullptr) << k;
      EXPECT_EQ(v, *ref) << k;
    });
  }
}

TEST(FlatTableTest, FindOrInsertBatchDuplicateKeysShareOneSlot) {
  FlatTable t;
  std::vector<uint64_t> keys = {5, 9, 5, 5, 9, 1};
  std::vector<uint64_t*> slots(keys.size());
  t.FindOrInsertBatch(keys, 100, slots);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(slots[0], slots[2]);
  EXPECT_EQ(slots[0], slots[3]);
  EXPECT_EQ(slots[1], slots[4]);
  EXPECT_NE(slots[0], slots[1]);
  for (uint64_t* s : slots) EXPECT_EQ(*s, 100u);
}

TEST(FlatTableTest, BatchOnEmptyTableReturnsAllNull) {
  FlatTable t;
  std::vector<uint64_t> keys = {1, 2, 3};
  std::vector<uint64_t*> out(3, reinterpret_cast<uint64_t*>(0x1));
  t.FindBatch(keys, out);
  for (uint64_t* p : out) EXPECT_EQ(p, nullptr);
}

TEST(FlatTableTest, BackendNames) {
  EXPECT_STREQ(IndexBackendToString(IndexBackend::kOrdered), "ordered");
  EXPECT_STREQ(IndexBackendToString(IndexBackend::kFlat), "flat");
  IndexBackend b = IndexBackend::kOrdered;
  EXPECT_TRUE(IndexBackendFromString("flat", &b));
  EXPECT_EQ(b, IndexBackend::kFlat);
  EXPECT_TRUE(IndexBackendFromString("ordered", &b));
  EXPECT_EQ(b, IndexBackend::kOrdered);
  EXPECT_FALSE(IndexBackendFromString("btree", &b));
  EXPECT_EQ(b, IndexBackend::kOrdered);  // Untouched on failure.
}

// ------------------------------------------------------------- PackGram

TEST(PackGramTest, RoundTripsEveryLengthUpToMax) {
  Rng rng(31);
  for (size_t len = 0; len <= kMaxPackedGramLen; ++len) {
    for (int trial = 0; trial < 50; ++trial) {
      std::string s;
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.Uniform(256)));
      }
      EXPECT_EQ(UnpackGram(PackGram(s)), s);
    }
  }
}

TEST(PackGramTest, InjectiveAcrossLengths) {
  // "a" vs "a\0" vs "\0a" must all pack differently (the length tag
  // disambiguates embedded NULs and prefixes).
  std::string a = "a";
  std::string a0("a\0", 2);
  std::string zero_a("\0a", 2);
  EXPECT_NE(PackGram(a), PackGram(a0));
  EXPECT_NE(PackGram(a), PackGram(zero_a));
  EXPECT_NE(PackGram(a0), PackGram(zero_a));
}

// ------------------------------------------------------ QgramDictionary

TEST(QgramDictionaryTest, FlatAssignsIdenticalIdsToOrdered) {
  Rng rng(55);
  std::vector<std::string> corpus;
  for (int i = 0; i < 300; ++i) {
    std::string s;
    size_t len = 1 + rng.Uniform(20);
    for (size_t c = 0; c < len; ++c) {
      s.push_back("abcdefgh "[rng.Uniform(9)]);  // Small alphabet: shared grams.
    }
    corpus.push_back(std::move(s));
  }
  for (int q : {2, 3}) {
    QgramDictionary ordered(q, IndexBackend::kOrdered);
    QgramDictionary flat(q, IndexBackend::kFlat);
    ASSERT_EQ(flat.backend(), IndexBackend::kFlat);
    for (const std::string& s : corpus) {
      ordered.Add(s);
      flat.Add(s);
    }
    ordered.Freeze();
    flat.Freeze();
    EXPECT_EQ(ordered.vocab_size(), flat.vocab_size());
    // Encode both seen and unseen strings: id streams must match
    // exactly, including the fresh ids minted for unknown grams.
    for (const std::string& s : corpus) {
      EXPECT_EQ(ordered.Encode(s), flat.Encode(s)) << s;
    }
    for (int i = 0; i < 50; ++i) {
      std::string s;
      size_t len = 1 + rng.Uniform(12);
      for (size_t c = 0; c < len; ++c) {
        s.push_back(static_cast<char>('a' + rng.Uniform(26)));
      }
      EXPECT_EQ(ordered.Encode(s), flat.Encode(s)) << s;
    }
    EXPECT_GT(flat.flat_batched_probes(), 0u);
  }
}

TEST(QgramDictionaryTest, FlatFallsBackToOrderedForLongGrams) {
  QgramDictionary dict(static_cast<int>(kMaxPackedGramLen) + 1,
                       IndexBackend::kFlat);
  EXPECT_EQ(dict.backend(), IndexBackend::kOrdered);
  dict.Add("abcdefghij");
  dict.Freeze();
  EXPECT_FALSE(dict.Encode("abcdefghij").empty());
}

// ------------------------------------------------------- ValuePairIndex

ValuePair MakePair(uint32_t r1, uint32_t f1, uint32_t v1, uint32_t r2,
                   uint32_t f2, uint32_t v2, double sim) {
  return {ValueLabel{r1, f1, v1}, ValueLabel{r2, f2, v2}, sim};
}

std::vector<ValuePair> RandomPairs(Rng* rng, size_t n, uint32_t num_records) {
  std::vector<ValuePair> pairs;
  while (pairs.size() < n) {
    uint32_t r1 = static_cast<uint32_t>(rng->Uniform(num_records));
    uint32_t r2 = static_cast<uint32_t>(rng->Uniform(num_records));
    if (r1 == r2) continue;
    pairs.push_back(MakePair(r1, static_cast<uint32_t>(rng->Uniform(3)),
                             static_cast<uint32_t>(rng->Uniform(2)), r2,
                             static_cast<uint32_t>(rng->Uniform(3)),
                             static_cast<uint32_t>(rng->Uniform(2)),
                             static_cast<double>(rng->Uniform(100)) / 100.0));
  }
  return pairs;
}

bool SameDump(const std::vector<IndexedPair>& a,
              const std::vector<IndexedPair>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].pid != b[i].pid || a[i].sim != b[i].sim ||
        !(a[i].a == b[i].a) || !(a[i].b == b[i].b)) {
      return false;
    }
  }
  return true;
}

TEST(ValuePairIndexFlatTest, FlatMirrorsOrderedThroughBuildAndMerges) {
  Rng rng(2024);
  ValuePairIndex ordered;
  ValuePairIndex flat;
  flat.SetBackend(IndexBackend::kFlat);
  EXPECT_EQ(flat.backend(), IndexBackend::kFlat);
  const uint32_t num_records = 40;
  std::vector<ValuePair> pairs = RandomPairs(&rng, 400, num_records);
  ordered.Build(pairs);
  flat.Build(pairs);
  ASSERT_TRUE(ordered.CheckInvariants());
  ASSERT_TRUE(flat.CheckInvariants());
  EXPECT_TRUE(SameDump(ordered.Dump(), flat.Dump()));

  // Merge a few record pairs, identically on both. The remap must cover
  // every value of the two records that appears in the index; build it
  // from the ordered dump (both hold the same pairs).
  std::vector<uint32_t> live;
  for (uint32_t r = 0; r < num_records; ++r) live.push_back(r);
  for (int round = 0; round < 10; ++round) {
    uint32_t i = live[rng.Uniform(live.size())];
    uint32_t j = live[rng.Uniform(live.size())];
    if (i == j) continue;
    if (i > j) std::swap(i, j);
    // Relabel every (rid in {i,j}) value onto record i, bumping vid by
    // a disambiguating offset per source record.
    std::vector<std::pair<ValueLabel, ValueLabel>> remap;
    std::vector<ValueLabel> seen;
    for (const IndexedPair& p : ordered.Dump()) {
      for (const ValueLabel& l : {p.a, p.b}) {
        if (l.rid != i && l.rid != j) continue;
        if (std::find(seen.begin(), seen.end(), l) != seen.end()) continue;
        seen.push_back(l);
        ValueLabel target{i, l.fid, static_cast<uint32_t>(
                                        l.vid * 2 + (l.rid == j ? 1 : 0))};
        remap.emplace_back(l, target);
      }
    }
    ordered.ApplyMerge(i, j, i, remap);
    flat.ApplyMerge(i, j, i, remap);
    live.erase(std::remove(live.begin(), live.end(), j), live.end());
    ASSERT_TRUE(ordered.CheckInvariants()) << "round " << round;
    ASSERT_TRUE(flat.CheckInvariants()) << "round " << round;
    ASSERT_TRUE(SameDump(ordered.Dump(), flat.Dump())) << "round " << round;
  }
  EXPECT_GT(flat.flat_batched_probes(), 0u);
}

TEST(ValuePairIndexFlatTest, PairsForBatchMatchesScalarLookups) {
  Rng rng(77);
  for (IndexBackend backend : {IndexBackend::kOrdered, IndexBackend::kFlat}) {
    ValuePairIndex index;
    index.SetBackend(backend);
    index.Build(RandomPairs(&rng, 300, 30));
    std::vector<std::pair<uint32_t, uint32_t>> groups;
    for (int g = 0; g < 50; ++g) {
      groups.emplace_back(static_cast<uint32_t>(rng.Uniform(30)),
                          static_cast<uint32_t>(rng.Uniform(30)));
    }
    const size_t probes_before = index.probe_count();
    std::vector<std::vector<IndexedPair>> batched;
    index.PairsForBatch(groups, &batched);
    EXPECT_EQ(index.probe_count(), probes_before + groups.size());
    ASSERT_EQ(batched.size(), groups.size());
    for (size_t k = 0; k < groups.size(); ++k) {
      EXPECT_TRUE(SameDump(index.PairsFor(groups[k].first, groups[k].second),
                           batched[k]))
          << "group " << k;
    }
  }
}

// Regression for the move-assignment bug: the hand-written member-wise
// move had to list every field and silently dropped newly added ones.
// With MovableAtomicCounter the moves are defaulted — moving must carry
// *all* state, including counters and the flat side table.
TEST(ValuePairIndexFlatTest, MoveCarriesFullState) {
  for (IndexBackend backend : {IndexBackend::kOrdered, IndexBackend::kFlat}) {
    Rng rng(5);
    ValuePairIndex index;
    index.SetBackend(backend);
    index.SetCeilings(100, 0);
    index.Build(RandomPairs(&rng, 150, 20));  // 50 shed by the ceiling.
    (void)index.PairsFor(1, 2);
    (void)index.PairsFor(3, 4);
    const auto dump = index.Dump();
    const size_t size = index.size();
    const size_t shed = index.shed_pairs();
    const size_t probes = index.probe_count();
    const uint64_t next_pid = index.next_pid();

    ValuePairIndex moved(std::move(index));
    EXPECT_EQ(moved.size(), size);
    EXPECT_EQ(moved.shed_pairs(), shed);
    EXPECT_EQ(moved.probe_count(), probes);
    EXPECT_EQ(moved.next_pid(), next_pid);
    EXPECT_TRUE(moved.CheckInvariants());
    EXPECT_TRUE(SameDump(moved.Dump(), dump));

    ValuePairIndex assigned;
    assigned = std::move(moved);
    EXPECT_EQ(assigned.size(), size);
    EXPECT_EQ(assigned.shed_pairs(), shed);
    EXPECT_EQ(assigned.probe_count(), probes);
    EXPECT_EQ(assigned.backend(), backend);
    EXPECT_TRUE(assigned.CheckInvariants());
    EXPECT_TRUE(SameDump(assigned.Dump(), dump));
    // The moved-to index keeps working: probes and merges still land.
    EXPECT_EQ(assigned.probe_count(), probes);
    (void)assigned.PairsFor(0, 1);
    EXPECT_EQ(assigned.probe_count(), probes + 1);
  }
}

TEST(ValuePairIndexFlatTest, RestoreStateUnderFlatBackend) {
  Rng rng(88);
  ValuePairIndex index;
  index.SetBackend(IndexBackend::kFlat);
  index.Build(RandomPairs(&rng, 200, 25));
  const auto dump = index.Dump();
  const uint64_t next_pid = index.next_pid();

  ValuePairIndex restored;
  restored.SetBackend(IndexBackend::kFlat);
  restored.RestoreState(dump, next_pid, 3, 4, 17);
  EXPECT_TRUE(restored.CheckInvariants());
  EXPECT_TRUE(SameDump(restored.Dump(), dump));
  EXPECT_EQ(restored.shed_pairs(), 3u);
  EXPECT_EQ(restored.shed_posting_entries(), 4u);
  EXPECT_EQ(restored.probe_count(), 17u);
  EXPECT_EQ(restored.next_pid(), next_pid);
}

// --------------------------------------------- end-to-end determinism

Dataset MovieData(size_t records, uint64_t seed) {
  MovieGeneratorConfig config;
  config.num_records = records;
  config.num_entities = records / 5;
  config.seed = seed;
  return GenerateMovieDataset(config);
}

Dataset PublicationData(size_t records, uint64_t seed) {
  PublicationGeneratorConfig config;
  config.num_records = records;
  config.num_entities = records / 4;
  config.seed = seed;
  return GeneratePublicationDataset(config);
}

// The tentpole guarantee: the flat backend changes probe cost only.
// Labels AND the merge sequence must be byte-identical to the ordered
// backend at every thread count, with and without the encoded kernels
// and the pair-sim cache.
TEST(FlatBackendDeterminismTest, JoinPairsIdenticalOrderedVsFlat) {
  Dataset ds = MovieData(150, 13);
  HeraOptions ordered_opts;
  auto ordered = ComputeSimilarValuePairs(ds, ordered_opts);
  ASSERT_TRUE(ordered.ok());
  ASSERT_FALSE(ordered->empty());
  for (size_t threads : {0u, 4u}) {
    HeraOptions opts;
    opts.index_backend = IndexBackend::kFlat;
    opts.num_threads = threads;
    auto flat = ComputeSimilarValuePairs(ds, opts);
    ASSERT_TRUE(flat.ok());
    ASSERT_EQ(ordered->size(), flat->size()) << "threads=" << threads;
    for (size_t i = 0; i < ordered->size(); ++i) {
      EXPECT_TRUE((*ordered)[i].a == (*flat)[i].a);
      EXPECT_TRUE((*ordered)[i].b == (*flat)[i].b);
      EXPECT_DOUBLE_EQ((*ordered)[i].sim, (*flat)[i].sim);
    }
  }
}

TEST(FlatBackendDeterminismTest, ResolutionIdenticalOrderedVsFlat) {
  for (bool movies : {true, false}) {
    Dataset ds = movies ? MovieData(120, 21) : PublicationData(100, 9);
    for (bool kernels : {true, false}) {
      for (bool pair_cache : {true, false}) {
        HeraOptions base;
        base.use_encoded_kernels = kernels;
        base.enable_pair_sim_cache = pair_cache;
        base.num_threads = 0;
        auto want = Hera(base).Run(ds);
        ASSERT_TRUE(want.ok());
        ASSERT_GT(want->stats.merges, 0u);
        for (size_t threads : {0u, 4u, 8u}) {
          HeraOptions opts = base;
          opts.index_backend = IndexBackend::kFlat;
          opts.num_threads = threads;
          auto got = Hera(opts).Run(ds);
          ASSERT_TRUE(got.ok());
          const std::string what =
              std::string(movies ? "movies" : "publications") +
              " kernels=" + std::to_string(kernels) +
              " cache=" + std::to_string(pair_cache) +
              " threads=" + std::to_string(threads);
          EXPECT_EQ(want->entity_of, got->entity_of) << what;
          EXPECT_EQ(want->stats.merge_sequence, got->stats.merge_sequence)
              << what;
        }
      }
    }
  }
}

TEST(FlatBackendDeterminismTest, PipelineDepthDoesNotChangeResults) {
  Dataset ds = MovieData(100, 5);
  HeraOptions base;
  base.index_backend = IndexBackend::kFlat;
  auto want = Hera(base).Run(ds);
  ASSERT_TRUE(want.ok());
  for (size_t depth : {1u, 2u, 32u}) {
    HeraOptions opts = base;
    opts.flat_pipeline_depth = depth;
    auto got = Hera(opts).Run(ds);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(want->entity_of, got->entity_of) << "depth=" << depth;
    EXPECT_EQ(want->stats.merge_sequence, got->stats.merge_sequence)
        << "depth=" << depth;
  }
}

TEST(FlatBackendDeterminismTest, InvalidPipelineDepthRejected) {
  Dataset ds = MovieData(40, 2);
  HeraOptions opts;
  opts.flat_pipeline_depth = 0;
  EXPECT_FALSE(Hera(opts).Run(ds).ok());
  opts.flat_pipeline_depth = FlatTable::kMaxPipelineDepth + 1;
  EXPECT_FALSE(Hera(opts).Run(ds).ok());
}

}  // namespace
}  // namespace hera
