// Tests for entity fusion (data/entity_fusion.h): the final data
// exchange of the paper's framework.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/hera.h"
#include "data/entity_fusion.h"
#include "data/movie_generator.h"
#include "testing_util.h"

namespace hera {
namespace {

class FusionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = testing_util::MakeCustomersDataset();
    auto result = Hera(HeraOptions{}).Run(ds_);
    ASSERT_TRUE(result.ok());
    result_ = std::move(result).value();
    ASSERT_EQ(result_.super_records.size(), 2u);  // Ground-truth perfect.
  }

  Dataset ds_;
  HeraResult result_;
};

TEST_F(FusionTest, AllConceptsEnumerated) {
  EXPECT_EQ(AllConcepts(ds_),
            (std::vector<uint32_t>{0, 1, 2, 3, 4, 5, 6}));
}

TEST_F(FusionTest, OneFusedRecordPerEntity) {
  FusionResult fused =
      FuseEntities(ds_, result_.super_records, AllConcepts(ds_));
  EXPECT_EQ(fused.dataset.size(), 2u);
  EXPECT_EQ(fused.dataset.schemas().size(), 1u);
  EXPECT_TRUE(fused.dataset.Validate().ok());
  EXPECT_EQ(fused.fused_of.size(), 2u);
  EXPECT_TRUE(fused.contaminated.empty());
  EXPECT_EQ(fused.dataset.entity_of(), (std::vector<uint32_t>{0, 1}));
}

TEST_F(FusionTest, FusedRecordJoinsInformationAcrossSources) {
  // Entity 0 = {r1, r2, r4, r6}: name from all, phone only from
  // CustomerII/III, job only from CustomerII — the fused record must
  // carry all of them (the paper's "ideal exchange": r9 = join of
  // records of the same entity).
  FusionResult fused =
      FuseEntities(ds_, result_.super_records, AllConcepts(ds_));
  // Find the fused record of entity 0.
  uint32_t id = fused.dataset.entity_of()[0] == 0 ? 0 : 1;
  const Record& r = fused.dataset.record(id);
  // Concepts in order: name, address, e-mail, city, Con.Type, phone, job.
  EXPECT_FALSE(r.value(0).is_null());  // name
  EXPECT_FALSE(r.value(1).is_null());  // address
  EXPECT_EQ(r.value(2).ToString(), "bush@gmail");
  EXPECT_EQ(r.value(3).ToString(), "LA");
  EXPECT_EQ(r.value(5).ToString(), "831-432");
  EXPECT_EQ(r.value(6).ToString(), "manager");
}

TEST_F(FusionTest, MostFrequentPolicyPicksMajority) {
  // Entity 0 names: John (r1), Bush (r2), Bush (r4), John (r6) — tie,
  // first seen wins; Con.Type: Electronic (x2), electronics (x1).
  FusionOptions opts;
  opts.policy = ConflictPolicy::kMostFrequent;
  FusionResult fused =
      FuseEntities(ds_, result_.super_records, AllConcepts(ds_), opts);
  uint32_t id = fused.dataset.entity_of()[0] == 0 ? 0 : 1;
  EXPECT_EQ(fused.dataset.record(id).value(4).ToString(), "Electronic");
}

TEST_F(FusionTest, LongestPolicyPicksLongestVariant) {
  FusionOptions opts;
  opts.policy = ConflictPolicy::kLongest;
  FusionResult fused =
      FuseEntities(ds_, result_.super_records, AllConcepts(ds_), opts);
  uint32_t id = fused.dataset.entity_of()[0] == 0 ? 0 : 1;
  EXPECT_EQ(fused.dataset.record(id).value(4).ToString(), "electronics");
  // Address: "2 Norman Street" (15) vs "2 West Norman" (13).
  EXPECT_EQ(fused.dataset.record(id).value(1).ToString(), "2 Norman Street");
}

TEST_F(FusionTest, SubsetTargetSchema) {
  FusionResult fused =
      FuseEntities(ds_, result_.super_records, {0, 5});
  EXPECT_EQ(fused.dataset.schemas().Get(0).size(), 2u);
  for (const Record& r : fused.dataset.records()) {
    EXPECT_EQ(r.size(), 2u);
  }
}

TEST_F(FusionTest, PolicyNames) {
  EXPECT_STREQ(ConflictPolicyToString(ConflictPolicy::kMostFrequent),
               "most_frequent");
  EXPECT_STREQ(ConflictPolicyToString(ConflictPolicy::kLongest), "longest");
  EXPECT_STREQ(ConflictPolicyToString(ConflictPolicy::kFirst), "first");
}

TEST(FusionContaminationTest, MixedClustersReported) {
  // Force an over-merged result: run HERA with a very low delta so
  // different entities land in one super record.
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.xi = 0.1;
  opts.delta = 0.01;
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  if (result->super_records.size() < 2) {
    FusionResult fused =
        FuseEntities(ds, result->super_records, AllConcepts(ds));
    EXPECT_FALSE(fused.contaminated.empty());
  }
}

TEST(FusionGeneratedTest, FusesMovieDatasetCleanly) {
  MovieGeneratorConfig config;
  config.num_records = 200;
  config.num_entities = 30;
  config.seed = 77;
  Dataset ds = GenerateMovieDataset(config);
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  FusionResult fused =
      FuseEntities(ds, result->super_records, AllConcepts(ds));
  EXPECT_EQ(fused.dataset.size(), result->super_records.size());
  EXPECT_TRUE(fused.dataset.Validate().ok());
  // Fused records should be densely populated: merged entities carry
  // values for most concepts.
  size_t populated = 0, total = 0;
  for (const Record& r : fused.dataset.records()) {
    populated += r.NumPresent();
    total += r.size();
  }
  EXPECT_GT(static_cast<double>(populated) / static_cast<double>(total), 0.5);
}

}  // namespace
}  // namespace hera
