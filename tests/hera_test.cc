// End-to-end tests for the HERA algorithm (Algorithm 2), centered on
// the paper's motivating example and robustness edge cases.

#include <gtest/gtest.h>

#include <vector>

#include "core/hera.h"
#include "eval/metrics.h"
#include "testing_util.h"

namespace hera {
namespace {

TEST(HeraTest, MotivatingExampleResolvesGroundTruth) {
  // Section V: xi = 0.5, delta = 0.5 must produce {r1,r2,r4,r6} and
  // {r3,r5} — including the description-difference pair (r1, r2).
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.xi = 0.5;
  opts.delta = 0.5;
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(testing_util::SamePartition(result->entity_of, ds.entity_of()))
      << "got labels: " << ::testing::PrintToString(result->entity_of);
  PairMetrics m = EvaluatePairs(result->entity_of, ds.entity_of());
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(HeraTest, MergesProduceConsistentSuperRecords) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  // Every record belongs to exactly one final super record.
  std::vector<bool> seen(ds.size(), false);
  for (const auto& [rid, sr] : result->super_records) {
    EXPECT_EQ(rid, sr.rid());
    for (uint32_t member : sr.members()) {
      EXPECT_FALSE(seen[member]);
      seen[member] = true;
      EXPECT_EQ(result->entity_of[member], rid);
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(HeraTest, StatsPopulated) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  const HeraStats& st = result->stats;
  EXPECT_GT(st.index_size, 0u);
  EXPECT_GE(st.iterations, 2u);  // At least one merging pass + fixpoint.
  EXPECT_GT(st.merges, 0u);
  EXPECT_GE(st.total_ms, 0.0);
}

TEST(HeraTest, DeterministicAcrossRuns) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto r1 = Hera(HeraOptions{}).Run(ds);
  auto r2 = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->entity_of, r2->entity_of);
  EXPECT_EQ(r1->stats.merges, r2->stats.merges);
  EXPECT_EQ(r1->stats.comparisons, r2->stats.comparisons);
}

TEST(HeraTest, DeltaOneMergesOnlyNearIdentical) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.delta = 1.0;
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  // No record pair reaches similarity 1.0 here: nothing merges.
  PairMetrics m = EvaluatePairs(result->entity_of, ds.entity_of());
  EXPECT_EQ(m.predicted_pairs, 0u);
}

TEST(HeraTest, LowDeltaOverMerges) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.xi = 0.2;
  opts.delta = 0.05;
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  // Aggressive thresholds must merge at least as much as the default.
  PairMetrics loose = EvaluatePairs(result->entity_of, ds.entity_of());
  auto strict_result = Hera(HeraOptions{}).Run(ds);
  PairMetrics strict =
      EvaluatePairs(strict_result->entity_of, ds.entity_of());
  EXPECT_GE(loose.predicted_pairs, strict.predicted_pairs);
}

TEST(HeraTest, EmptyDataset) {
  Dataset ds;
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->entity_of.empty());
  EXPECT_EQ(result->stats.merges, 0u);
}

TEST(HeraTest, SingleRecord) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a"}));
  ds.AddRecord(s, {Value("x")});
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entity_of, (std::vector<uint32_t>{0}));
}

TEST(HeraTest, AllNullRecordsStaySingletons) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a", "b"}));
  ds.AddRecord(s, {Value(), Value()});
  ds.AddRecord(s, {Value(), Value()});
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->entity_of[0], result->entity_of[1]);
}

TEST(HeraTest, IdenticalRecordsMerge) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"name", "city"}));
  for (int i = 0; i < 4; ++i) {
    ds.AddRecord(s, {Value("John Smith"), Value("Springfield")});
  }
  auto result = Hera(HeraOptions{}).Run(ds);
  ASSERT_TRUE(result.ok());
  for (uint32_t r = 1; r < 4; ++r) {
    EXPECT_EQ(result->entity_of[r], result->entity_of[0]);
  }
  EXPECT_EQ(result->super_records.size(), 1u);
}

TEST(HeraTest, RejectsInvalidOptions) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions bad_metric;
  bad_metric.metric = "no_such_metric";
  EXPECT_FALSE(Hera(bad_metric).Run(ds).ok());

  HeraOptions bad_xi;
  bad_xi.xi = 1.5;
  EXPECT_FALSE(Hera(bad_xi).Run(ds).ok());

  HeraOptions bad_delta;
  bad_delta.delta = -0.1;
  EXPECT_FALSE(Hera(bad_delta).Run(ds).ok());
}

TEST(HeraTest, RejectsInvalidDataset) {
  Dataset ds;
  uint32_t s = ds.schemas().Register(Schema("S", {"a", "b"}));
  ds.AddRecord(s, {Value("short")});
  EXPECT_FALSE(Hera(HeraOptions{}).Run(ds).ok());
}

TEST(HeraTest, NestedLoopJoinGivesSameResult) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions fast;
  HeraOptions slow;
  slow.use_prefix_filter_join = false;
  auto rf = Hera(fast).Run(ds);
  auto rs = Hera(slow).Run(ds);
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(testing_util::SamePartition(rf->entity_of, rs->entity_of));
  EXPECT_EQ(rf->stats.index_size, rs->stats.index_size);
}

TEST(HeraTest, SchemaVotingOffStillResolvesExample) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  opts.enable_schema_voting = false;
  auto result = Hera(opts).Run(ds);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(testing_util::SamePartition(result->entity_of, ds.entity_of()));
  EXPECT_EQ(result->stats.decided_schema_matchings, 0u);
}

TEST(HeraTest, AlternativeMetricsRun) {
  Dataset ds = testing_util::MakeCustomersDataset();
  for (const char* metric : {"edit", "jaro_winkler", "cosine_q2",
                             "hybrid(jaccard_q2)"}) {
    HeraOptions opts;
    opts.metric = metric;
    // Non-Jaccard thresholds behave differently; just require a clean
    // run with sane labels.
    auto result = Hera(opts).Run(ds);
    ASSERT_TRUE(result.ok()) << metric;
    EXPECT_EQ(result->entity_of.size(), ds.size()) << metric;
  }
}

TEST(HeraTest, ComparisonsShrinkAsDeltaRises) {
  // Fig 10's trend on the motivating example: higher delta, fewer (or
  // equal) verifications.
  Dataset ds = testing_util::MakeCustomersDataset();
  size_t prev = SIZE_MAX;
  for (double delta : {0.3, 0.5, 0.7, 0.9}) {
    HeraOptions opts;
    opts.delta = delta;
    auto result = Hera(opts).Run(ds);
    ASSERT_TRUE(result.ok());
    size_t work = result->stats.comparisons + result->stats.direct_merges;
    EXPECT_LE(work, prev) << "delta=" << delta;
    prev = work;
  }
}


TEST(HeraTest, RunWithPrecomputedPairsMatchesRun) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  auto pairs = ComputeSimilarValuePairs(ds, opts);
  ASSERT_TRUE(pairs.ok());
  auto direct = Hera(opts).Run(ds);
  auto precomputed = Hera(opts).RunWithPairs(ds, *pairs);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(precomputed.ok());
  EXPECT_EQ(direct->entity_of, precomputed->entity_of);
  EXPECT_EQ(direct->stats.index_size, precomputed->stats.index_size);
  EXPECT_EQ(direct->stats.merges, precomputed->stats.merges);
  EXPECT_EQ(direct->stats.comparisons, precomputed->stats.comparisons);
}

TEST(HeraTest, ComputeSimilarValuePairsRespectsXi) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions loose;
  loose.xi = 0.3;
  HeraOptions strict;
  strict.xi = 0.9;
  auto many = ComputeSimilarValuePairs(ds, loose);
  auto few = ComputeSimilarValuePairs(ds, strict);
  ASSERT_TRUE(many.ok());
  ASSERT_TRUE(few.ok());
  EXPECT_GT(many->size(), few->size());
  for (const ValuePair& p : *few) EXPECT_GE(p.sim, 0.9);
}

TEST(HeraTest, ComputeSimilarValuePairsRejectsBadOptions) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions bad;
  bad.metric = "unknown";
  EXPECT_FALSE(ComputeSimilarValuePairs(ds, bad).ok());
}

}  // namespace
}  // namespace hera

