// Tests for incremental resolution (IncrementalHera) and the
// probe-vs-base join it relies on.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/random.h"
#include "core/hera.h"
#include "core/incremental.h"
#include "eval/metrics.h"
#include "sim/metrics.h"
#include "testing_util.h"

namespace hera {
namespace {

// ------------------------------------------------------------- JoinAB

using PairKey =
    std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, uint32_t, uint32_t>;

PairKey KeyOf(const ValuePair& p) {
  ValueLabel a = p.a, b = p.b;
  if (b.rid < a.rid ||
      (b.rid == a.rid && std::tie(b.fid, b.vid) < std::tie(a.fid, a.vid))) {
    std::swap(a, b);
  }
  return {a.rid, a.fid, a.vid, b.rid, b.fid, b.vid};
}

std::set<PairKey> KeySet(const std::vector<ValuePair>& pairs) {
  std::set<PairKey> out;
  for (const auto& p : pairs) out.insert(KeyOf(p));
  return out;
}

TEST(JoinABTest, PrefixFilterMatchesNestedLoop) {
  std::vector<LabeledValue> base = {
      {ValueLabel{0, 0, 0}, Value("electronic")},
      {ValueLabel{1, 0, 0}, Value("2 Norman Street")},
      {ValueLabel{2, 0, 0}, Value("bush@gmail")},
      {ValueLabel{3, 0, 0}, Value(100.0)},
  };
  std::vector<LabeledValue> probe = {
      {ValueLabel{4, 0, 0}, Value("electronics")},
      {ValueLabel{5, 0, 0}, Value("2 West Norman")},
      {ValueLabel{6, 0, 0}, Value(99.0)},
      {ValueLabel{7, 0, 0}, Value()},
  };
  for (const char* metric_name : {"jaccard_q2", "hybrid(jaccard_q2)"}) {
    auto metric = MakeSimilarity(metric_name);
    for (double xi : {0.3, 0.5, 0.8}) {
      auto fast = KeySet(PrefixFilterJoin().JoinAB(probe, base, *metric, xi));
      auto slow = KeySet(NestedLoopJoin().JoinAB(probe, base, *metric, xi));
      EXPECT_EQ(fast, slow) << metric_name << " xi=" << xi;
    }
  }
}

TEST(JoinABTest, ExcludesSameRid) {
  std::vector<LabeledValue> base = {{ValueLabel{0, 0, 0}, Value("abc")}};
  std::vector<LabeledValue> probe = {{ValueLabel{0, 1, 0}, Value("abc")}};
  auto metric = MakeSimilarity("jaccard_q2");
  EXPECT_TRUE(PrefixFilterJoin().JoinAB(probe, base, *metric, 0.5).empty());
  EXPECT_TRUE(NestedLoopJoin().JoinAB(probe, base, *metric, 0.5).empty());
}

TEST(JoinABTest, RandomizedEquivalence) {
  Rng rng(41);
  const char* kWords[] = {"alpha", "bravo", "charlie", "delta", "echo",
                          "foxtrot", "golf", "hotel"};
  auto make_values = [&](uint32_t rid_base, size_t n) {
    std::vector<LabeledValue> out;
    for (uint32_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.25)) {
        out.push_back({ValueLabel{rid_base + i, 0, 0},
                       Value(static_cast<double>(rng.Uniform(50)))});
      } else {
        std::string s = kWords[rng.Uniform(8)];
        if (rng.Bernoulli(0.5)) s += " " + std::string(kWords[rng.Uniform(8)]);
        if (rng.Bernoulli(0.3)) s[rng.Uniform(s.size())] = 'q';
        out.push_back({ValueLabel{rid_base + i, 0, 0}, Value(s)});
      }
    }
    return out;
  };
  auto metric = MakeSimilarity("hybrid(jaccard_q2)");
  for (int trial = 0; trial < 10; ++trial) {
    auto base = make_values(0, 25);
    auto probe = make_values(100, 15);
    for (double xi : {0.4, 0.6, 0.9}) {
      auto fast = KeySet(PrefixFilterJoin().JoinAB(probe, base, *metric, xi));
      auto slow = KeySet(NestedLoopJoin().JoinAB(probe, base, *metric, xi));
      EXPECT_EQ(fast, slow) << "trial=" << trial << " xi=" << xi;
    }
  }
}

// ---------------------------------------------------- IncrementalHera

TEST(IncrementalHeraTest, RejectsBadConfig) {
  HeraOptions opts;
  opts.metric = "bogus";
  EXPECT_FALSE(IncrementalHera::Create(opts, SchemaCatalog()).ok());
}

TEST(IncrementalHeraTest, RejectsBadRecords) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto inc = IncrementalHera::Create(HeraOptions{}, ds.schemas());
  ASSERT_TRUE(inc.ok());
  EXPECT_FALSE((*inc)->AddRecord(99, {Value("x")}).ok());
  EXPECT_FALSE((*inc)->AddRecord(0, {Value("too few")}).ok());
}

TEST(IncrementalHeraTest, MatchesBatchOnMotivatingExample) {
  Dataset ds = testing_util::MakeCustomersDataset();
  HeraOptions opts;
  auto batch = Hera(opts).Run(ds);
  ASSERT_TRUE(batch.ok());

  auto inc_or = IncrementalHera::Create(opts, ds.schemas());
  ASSERT_TRUE(inc_or.ok());
  IncrementalHera& inc = **inc_or;
  for (const Record& r : ds.records()) {
    auto id = inc.AddRecord(r.schema_id(), r.values());
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, r.id());
  }
  EXPECT_EQ(*inc.Resolve(), ds.size());
  EXPECT_TRUE(testing_util::SamePartition(inc.Labels(), batch->entity_of));
}

TEST(IncrementalHeraTest, RecordByRecordStillResolves) {
  // Feed the motivating example one record per Resolve() round; the
  // final partition must still match ground truth.
  Dataset ds = testing_util::MakeCustomersDataset();
  auto inc_or = IncrementalHera::Create(HeraOptions{}, ds.schemas());
  ASSERT_TRUE(inc_or.ok());
  IncrementalHera& inc = **inc_or;
  for (const Record& r : ds.records()) {
    ASSERT_TRUE(inc.AddRecord(r.schema_id(), r.values()).ok());
    inc.Resolve();
  }
  EXPECT_TRUE(testing_util::SamePartition(inc.Labels(), ds.entity_of()));
}

TEST(IncrementalHeraTest, PendingRecordsAreSingletonsUntilResolve) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto inc_or = IncrementalHera::Create(HeraOptions{}, ds.schemas());
  ASSERT_TRUE(inc_or.ok());
  IncrementalHera& inc = **inc_or;
  ASSERT_TRUE(inc.AddRecord(0, ds.record(0).values()).ok());
  ASSERT_TRUE(inc.AddRecord(2, ds.record(5).values()).ok());
  EXPECT_EQ(inc.NumPending(), 2u);
  auto labels = inc.Labels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_NE(labels[0], labels[1]);  // Not resolved yet.
  inc.Resolve();
  EXPECT_EQ(inc.NumPending(), 0u);
  labels = inc.Labels();
  EXPECT_EQ(labels[0], labels[1]);  // r1 and r6 are near-identical.
}

TEST(IncrementalHeraTest, ResolveWithNothingPendingIsNoop) {
  auto inc_or = IncrementalHera::Create(HeraOptions{}, SchemaCatalog());
  ASSERT_TRUE(inc_or.ok());
  EXPECT_EQ(*(*inc_or)->Resolve(), 0u);
  EXPECT_TRUE((*inc_or)->Labels().empty());
}

TEST(IncrementalHeraTest, LateArrivalBridgesClusters) {
  // Two records of one entity that do not match each other, plus a
  // later third record similar to both: the late arrival must pull
  // the existing clusters together (compare-and-merge across rounds).
  SchemaCatalog schemas;
  uint32_t s1 = schemas.Register(Schema("S1", {"name", "email"}));
  uint32_t s2 = schemas.Register(Schema("S2", {"name", "email", "phone"}));
  uint32_t s3 = schemas.Register(Schema("S3", {"email2", "phone"}));

  HeraOptions opts;
  opts.delta = 0.75;
  auto inc_or = IncrementalHera::Create(opts, schemas);
  ASSERT_TRUE(inc_or.ok());
  IncrementalHera& inc = **inc_or;
  ASSERT_TRUE(inc.AddRecord(s1, {Value("Jon Smith"), Value("jon@x.test")}).ok());
  ASSERT_TRUE(inc.AddRecord(s3, {Value("jon@x.test"), Value("555-0101")}).ok());
  // Records 0 and 1 share only the email -> sim = 1/2 = 0.5 < 0.75.
  inc.Resolve();
  auto labels = inc.Labels();
  EXPECT_NE(labels[0], labels[1]);
  // The bridge shares name+email with r0 (sim 2/2 = 1.0); the merged
  // super record then covers both of r1's fields (email+phone, 1.0).
  ASSERT_TRUE(inc.AddRecord(s2, {Value("Jon Smith"), Value("jon@x.test"),
                                 Value("555-0101")})
                  .ok());
  inc.Resolve();
  labels = inc.Labels();
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[0], labels[1]) << "late arrival must bridge the clusters";
}

TEST(IncrementalHeraTest, StatsAccumulateAcrossRounds) {
  Dataset ds = testing_util::MakeCustomersDataset();
  auto inc_or = IncrementalHera::Create(HeraOptions{}, ds.schemas());
  ASSERT_TRUE(inc_or.ok());
  IncrementalHera& inc = **inc_or;
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(inc.AddRecord(ds.record(i).schema_id(), ds.record(i).values()).ok());
  }
  inc.Resolve();
  size_t iters_after_first = inc.stats().iterations;
  for (uint32_t i = 3; i < 6; ++i) {
    ASSERT_TRUE(inc.AddRecord(ds.record(i).schema_id(), ds.record(i).values()).ok());
  }
  inc.Resolve();
  EXPECT_GT(inc.stats().iterations, iters_after_first);
  EXPECT_GT(inc.stats().merges, 0u);
}

}  // namespace
}  // namespace hera
