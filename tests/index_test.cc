// Tests for src/index: value-pair index ordering (Definition 6), range
// lookups, merge maintenance (Section III-B2, Proposition 3), and the
// bound computation (Algorithm 1).

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <vector>

#include "common/random.h"
#include "index/bounds.h"
#include "index/value_pair_index.h"

namespace hera {
namespace {

ValuePair MakePair(uint32_t r1, uint32_t f1, uint32_t v1, uint32_t r2,
                   uint32_t f2, uint32_t v2, double sim) {
  return {ValueLabel{r1, f1, v1}, ValueLabel{r2, f2, v2}, sim};
}

TEST(ValuePairIndexTest, BuildNormalizesRidOrder) {
  ValuePairIndex index;
  index.Build({MakePair(5, 0, 0, 2, 1, 0, 0.7)});
  auto pairs = index.Dump();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a.rid, 2u);
  EXPECT_EQ(pairs[0].b.rid, 5u);
  EXPECT_TRUE(index.CheckInvariants());
}

TEST(ValuePairIndexTest, SortOrderRid1Rid2SimDesc) {
  ValuePairIndex index;
  index.Build({
      MakePair(1, 0, 0, 3, 0, 0, 0.5),
      MakePair(0, 0, 0, 2, 0, 0, 0.9),
      MakePair(1, 0, 0, 2, 0, 0, 0.6),
      MakePair(1, 1, 0, 3, 1, 0, 0.8),  // Same group as first, higher sim.
  });
  auto pairs = index.Dump();
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[0].a.rid, 0u);  // (0,2) first.
  EXPECT_EQ(pairs[1].a.rid, 1u);  // Then (1,2).
  EXPECT_EQ(pairs[1].b.rid, 2u);
  // Group (1,3): descending similarity.
  EXPECT_EQ(pairs[2].b.rid, 3u);
  EXPECT_DOUBLE_EQ(pairs[2].sim, 0.8);
  EXPECT_DOUBLE_EQ(pairs[3].sim, 0.5);
}

TEST(ValuePairIndexTest, PairsForReturnsGroupDescending) {
  ValuePairIndex index;
  index.Build({
      MakePair(0, 0, 0, 1, 0, 0, 0.4),
      MakePair(0, 1, 0, 1, 1, 0, 0.9),
      MakePair(0, 2, 0, 2, 0, 0, 0.5),
  });
  auto pairs = index.PairsFor(0, 1);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(pairs[0].sim, 0.9);
  EXPECT_DOUBLE_EQ(pairs[1].sim, 0.4);
  // Argument order is irrelevant.
  EXPECT_EQ(index.PairsFor(1, 0).size(), 2u);
  // Missing group.
  EXPECT_TRUE(index.PairsFor(1, 2).empty());
}

TEST(ValuePairIndexTest, ForEachGroupVisitsAllGroupsInOrder) {
  ValuePairIndex index;
  index.Build({
      MakePair(0, 0, 0, 1, 0, 0, 0.5),
      MakePair(0, 0, 0, 2, 0, 0, 0.5),
      MakePair(1, 0, 0, 2, 0, 0, 0.5),
      MakePair(1, 1, 0, 2, 1, 0, 0.7),
  });
  std::vector<std::pair<uint32_t, uint32_t>> groups;
  std::vector<size_t> sizes;
  index.ForEachGroup([&](uint32_t a, uint32_t b,
                         const std::vector<IndexedPair>& pairs) {
    groups.emplace_back(a, b);
    sizes.push_back(pairs.size());
  });
  EXPECT_EQ(groups, (std::vector<std::pair<uint32_t, uint32_t>>{
                        {0, 1}, {0, 2}, {1, 2}}));
  EXPECT_EQ(sizes, (std::vector<size_t>{1, 1, 2}));
}

TEST(ValuePairIndexTest, ApplyMergeDeletesIntraRecordPairs) {
  // Pairs between the two merged records must disappear (delete step).
  ValuePairIndex index;
  index.Build({
      MakePair(0, 0, 0, 1, 0, 0, 0.9),  // Becomes intra after merge(0,1).
      MakePair(0, 1, 0, 2, 0, 0, 0.8),
  });
  std::vector<std::pair<ValueLabel, ValueLabel>> remap = {
      {{0, 0, 0}, {0, 0, 0}},
      {{0, 1, 0}, {0, 1, 0}},
      {{1, 0, 0}, {0, 0, 1}},  // r1's value joins field 0 of merged R0.
  };
  index.ApplyMerge(0, 1, 0, remap);
  auto pairs = index.Dump();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a.rid, 0u);
  EXPECT_EQ(pairs[0].b.rid, 2u);
  EXPECT_TRUE(index.CheckInvariants());
}

TEST(ValuePairIndexTest, ApplyMergeRewritesLabelsAndReorders) {
  // Fig 6: merging r1 and r6 rewrites rid 6 labels to rid 1 and the
  // affected pairs re-sort into their new groups.
  ValuePairIndex index;
  index.Build({
      MakePair(2, 0, 0, 6, 1, 0, 0.95),  // (2,6) -> becomes (1,2) group.
      MakePair(1, 0, 0, 6, 0, 0, 1.0),   // (1,6) -> intra, deleted.
      MakePair(4, 0, 0, 6, 2, 0, 0.7),   // (4,6) -> (1,4).
  });
  std::vector<std::pair<ValueLabel, ValueLabel>> remap = {
      {{1, 0, 0}, {1, 0, 0}},
      {{6, 0, 0}, {1, 0, 0}},  // Dedup onto r1's value.
      {{6, 1, 0}, {1, 5, 0}},
      {{6, 2, 0}, {1, 6, 0}},
  };
  index.ApplyMerge(1, 6, 1, remap);
  EXPECT_TRUE(index.CheckInvariants());
  auto pairs = index.Dump();
  ASSERT_EQ(pairs.size(), 2u);
  // New sort order: (1,2) before (1,4).
  EXPECT_EQ(pairs[0].a.rid, 1u);
  EXPECT_EQ(pairs[0].b.rid, 2u);
  EXPECT_EQ(pairs[0].a.fid, 5u);  // Rewritten label.
  EXPECT_EQ(pairs[1].b.rid, 4u);
  EXPECT_EQ(pairs[1].a.fid, 6u);
}

TEST(ValuePairIndexTest, Proposition3GroupsCombineAfterMerges) {
  // After merging (0,1) and (2,3), all surviving cross pairs live in
  // the single group (0, 2): V_{f(i) f(j)} ⊆ V.
  ValuePairIndex index;
  index.Build({
      MakePair(0, 0, 0, 2, 0, 0, 0.9),
      MakePair(0, 0, 0, 3, 0, 0, 0.8),
      MakePair(1, 0, 0, 2, 0, 0, 0.7),
      MakePair(1, 0, 0, 3, 0, 0, 0.6),
  });
  index.ApplyMerge(0, 1, 0,
                   {{{0, 0, 0}, {0, 0, 0}}, {{1, 0, 0}, {0, 1, 0}}});
  EXPECT_TRUE(index.CheckInvariants());
  index.ApplyMerge(2, 3, 2,
                   {{{2, 0, 0}, {2, 0, 0}}, {{3, 0, 0}, {2, 1, 0}}});
  EXPECT_TRUE(index.CheckInvariants());
  auto pairs = index.PairsFor(0, 2);
  EXPECT_EQ(pairs.size(), 4u);
  EXPECT_EQ(index.size(), 4u);
  // Descending similarity within the combined group.
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_GE(pairs[i - 1].sim, pairs[i].sim);
  }
}

TEST(ValuePairIndexTest, BuildReplacesPreviousContents) {
  ValuePairIndex index;
  index.Build({MakePair(0, 0, 0, 1, 0, 0, 0.5)});
  index.Build({MakePair(2, 0, 0, 3, 0, 0, 0.6)});
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(index.PairsFor(0, 1).empty());
  EXPECT_EQ(index.PairsFor(2, 3).size(), 1u);
}

TEST(ValuePairIndexTest, RandomizedMergeMaintainsInvariants) {
  Rng rng(77);
  const uint32_t kRecords = 20;
  std::vector<ValuePair> pairs;
  for (int i = 0; i < 150; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.Uniform(kRecords));
    uint32_t b = static_cast<uint32_t>(rng.Uniform(kRecords));
    if (a == b) continue;
    pairs.push_back(MakePair(a, static_cast<uint32_t>(rng.Uniform(4)),
                             static_cast<uint32_t>(rng.Uniform(2)), b,
                             static_cast<uint32_t>(rng.Uniform(4)),
                             static_cast<uint32_t>(rng.Uniform(2)),
                             rng.UniformDouble()));
  }
  ValuePairIndex index;
  index.Build(pairs);
  ASSERT_TRUE(index.CheckInvariants());

  // Repeatedly merge random live record pairs with identity-style
  // remaps (values keep fid/vid, rid rewrites to the survivor with a
  // field offset to avoid label collisions).
  std::vector<uint32_t> live;
  for (uint32_t r = 0; r < kRecords; ++r) live.push_back(r);
  for (int step = 0; step < 10 && live.size() >= 2; ++step) {
    size_t ai = rng.Uniform(live.size());
    size_t bi = rng.Uniform(live.size());
    if (ai == bi) continue;
    uint32_t a = live[std::min(ai, bi)], b = live[std::max(ai, bi)];
    // Build the remap from the labels actually present: a's labels map
    // to themselves, b's get globally fresh field ids (guaranteed
    // collision-free across repeated merges).
    static uint32_t next_fid = 1000;
    std::set<ValueLabel> touched;
    std::vector<std::pair<ValueLabel, ValueLabel>> remap;
    for (const auto& p : index.Dump()) {
      for (const ValueLabel& label : {p.a, p.b}) {
        if (label.rid != a && label.rid != b) continue;
        if (!touched.insert(label).second) continue;
        if (label.rid == a) {
          remap.push_back({label, label});
        } else {
          remap.push_back({label, ValueLabel{a, next_fid++, 0}});
        }
      }
    }
    index.ApplyMerge(a, b, a, remap);
    EXPECT_TRUE(index.CheckInvariants()) << "step " << step;
    live.erase(std::remove(live.begin(), live.end(), b), live.end());
    // No pair may reference the dead record.
    for (const auto& p : index.Dump()) {
      EXPECT_NE(p.a.rid, b);
      EXPECT_NE(p.b.rid, b);
    }
  }
}

// -------------------------------------------------------------- Bounds

TEST(BoundsTest, EmptyPairsGiveZeroBounds) {
  BoundResult r = ComputeBounds({}, 3, 3);
  EXPECT_DOUBLE_EQ(r.upper, 0.0);
  EXPECT_DOUBLE_EQ(r.lower, 0.0);
  EXPECT_FALSE(r.exact);
}

TEST(BoundsTest, OneToOnePairsAreExact) {
  // No multiple field: Up == Low == Sim (paper's direct-merge case).
  std::vector<IndexedPair> pairs = {
      {0, {0, 0, 0}, {1, 0, 0}, 1.0},
      {1, {0, 1, 0}, {1, 1, 0}, 0.8},
  };
  BoundResult r = ComputeBounds(pairs, 4, 3);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.upper, (1.0 + 0.8) / 3.0);
  EXPECT_DOUBLE_EQ(r.lower, r.upper);
}

TEST(BoundsTest, MultipleFieldMakesBoundsDiverge) {
  // Field 0 of the left record is covered by two pairs (multiple
  // field): upper counts the max, greedy lower resolves the conflict.
  std::vector<IndexedPair> pairs = {
      {0, {0, 0, 0}, {1, 0, 0}, 0.9},
      {1, {0, 0, 0}, {1, 1, 0}, 0.6},
      {2, {0, 1, 0}, {1, 1, 0}, 0.5},
  };
  BoundResult r = ComputeBounds(pairs, 2, 2);
  EXPECT_FALSE(r.exact);
  // Upper: left sums max per left field: 0.9 + 0.5 = 1.4; right sums
  // 0.9 + 0.6 = 1.5; min is 1.4.
  EXPECT_DOUBLE_EQ(r.upper, 1.4 / 2.0);
  // Greedy: take 0.9 (f0-g0), then 0.5 (f1-g1). Low = 1.4/2 too but via
  // a realizable matching; here they coincide.
  EXPECT_DOUBLE_EQ(r.lower, 1.4 / 2.0);
}

TEST(BoundsTest, RefinedSetKeepsMaxPerFieldPair) {
  std::vector<IndexedPair> pairs = {
      {0, {0, 0, 0}, {1, 0, 0}, 0.9},
      {1, {0, 0, 1}, {1, 0, 1}, 0.7},  // Same field pair, lower sim.
      {2, {0, 1, 0}, {1, 1, 0}, 0.5},
  };
  BoundResult r = ComputeBounds(pairs, 2, 2);
  ASSERT_EQ(r.refined.size(), 2u);
  EXPECT_DOUBLE_EQ(r.refined[0].sim, 0.9);
  EXPECT_DOUBLE_EQ(r.refined[1].sim, 0.5);
  EXPECT_TRUE(r.exact);
}

TEST(BoundsTest, PaperExample4DirectComputation) {
  // (r4, r6): three one-to-one pairs 1.0, 1.0, 0.9 over 5-field
  // records: Up = Low = 2.9 / 5 = 0.58.
  std::vector<IndexedPair> pairs = {
      {0, {3, 2, 0}, {5, 2, 0}, 1.0},
      {1, {3, 3, 0}, {5, 3, 0}, 1.0},
      {2, {3, 4, 0}, {5, 4, 0}, 0.9},
  };
  BoundResult r = ComputeBounds(pairs, 5, 5);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.upper, 2.9 / 5.0);
  EXPECT_DOUBLE_EQ(r.lower, 2.9 / 5.0);
}

// Property: Low <= optimal matching / min <= Up on random instances
// (optimal found by brute force over permutations).
class BoundsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

double BruteForceBestMatching(const std::vector<IndexedPair>& refined,
                              size_t nl, size_t nr) {
  // Exhaustive search over subsets via recursion on left fields.
  std::vector<std::vector<double>> w(nl, std::vector<double>(nr, -1.0));
  for (const auto& p : refined) w[p.a.fid][p.b.fid] = p.sim;
  std::vector<bool> used(nr, false);
  std::function<double(size_t)> best = [&](size_t i) -> double {
    if (i == nl) return 0.0;
    double result = best(i + 1);  // Leave field i unmatched.
    for (size_t j = 0; j < nr; ++j) {
      if (!used[j] && w[i][j] >= 0.0) {
        used[j] = true;
        result = std::max(result, w[i][j] + best(i + 1));
        used[j] = false;
      }
    }
    return result;
  };
  return best(0);
}

TEST_P(BoundsPropertyTest, BoundsSandwichOptimum) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const size_t nl = 2 + rng.Uniform(4), nr = 2 + rng.Uniform(4);
    std::vector<IndexedPair> pairs;
    uint64_t pid = 0;
    for (uint32_t f = 0; f < nl; ++f) {
      for (uint32_t g = 0; g < nr; ++g) {
        if (rng.Bernoulli(0.4)) {
          pairs.push_back({pid++, {0, f, 0}, {1, g, 0},
                           0.3 + 0.7 * rng.UniformDouble()});
        }
      }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const IndexedPair& a, const IndexedPair& b) {
                return a.sim > b.sim;
              });
    BoundResult r = ComputeBounds(pairs, nl, nr);
    double denom = static_cast<double>(std::min(nl, nr));
    double optimal = BruteForceBestMatching(r.refined, nl, nr) / denom;
    EXPECT_LE(r.lower, optimal + 1e-9);
    EXPECT_GE(r.upper, optimal - 1e-9);
    if (r.exact) EXPECT_NEAR(r.lower, optimal, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace hera
