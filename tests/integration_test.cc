// Integration tests: the full pipeline — generator -> HERA on
// heterogeneous records, data exchange -> baselines on homogeneous
// projections — on a scaled-down benchmark dataset. These assert the
// paper's qualitative claims end to end.

#include <gtest/gtest.h>

#include <set>

#include "baselines/naive.h"
#include "baselines/rswoosh.h"
#include "core/hera.h"
#include "data/data_exchange.h"
#include "data/movie_generator.h"
#include "eval/metrics.h"
#include "sim/metrics.h"

namespace hera {
namespace {

/// A small D_m1-style dataset: fast enough for unit testing.
MovieGeneratorConfig SmallMovieConfig() {
  MovieGeneratorConfig config;
  config.num_records = 250;
  config.num_entities = 40;
  config.seed = 1234;
  return config;
}

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(GenerateMovieDataset(SmallMovieConfig()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
};

Dataset* PipelineTest::dataset_ = nullptr;

TEST_F(PipelineTest, HeraResolvesGeneratedDataWell) {
  HeraOptions opts;
  opts.xi = 0.5;
  opts.delta = 0.5;
  auto result = Hera(opts).Run(*dataset_);
  ASSERT_TRUE(result.ok());
  PairMetrics m = EvaluatePairs(result->entity_of, dataset_->entity_of());
  // The generator's mild corruption keeps this well within reach.
  EXPECT_GT(m.precision, 0.8) << "P=" << m.precision << " R=" << m.recall;
  EXPECT_GT(m.recall, 0.6) << "P=" << m.precision << " R=" << m.recall;
}

TEST_F(PipelineTest, HeraOnHeterogeneousBeatsNaiveOnProjection) {
  // The paper's headline: resolving heterogeneous records directly
  // (all source information) beats resolving the lossy homogeneous
  // projection. Which attributes the random target schema keeps
  // decides how lossy a single projection is, so compare against the
  // mean over several target-schema draws.
  HeraOptions opts;
  auto hera_result = Hera(opts).Run(*dataset_);
  ASSERT_TRUE(hera_result.ok());
  PairMetrics hera_m =
      EvaluatePairs(hera_result->entity_of, dataset_->entity_of());

  auto metric = MakeSimilarity("jaccard_q2");
  double naive_f1_sum = 0.0;
  const int kSeeds = 5;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ExchangeResult projected =
        ExchangeToTargetSchema(*dataset_, 1.0 / 3.0, seed);
    auto naive =
        NaivePairwiseER(projected.dataset, *metric, {0.5, 0.5, false});
    naive_f1_sum += EvaluatePairs(naive, dataset_->entity_of()).f1;
  }
  double naive_f1_mean = naive_f1_sum / kSeeds;

  EXPECT_GT(hera_m.f1, naive_f1_mean)
      << "hera F1=" << hera_m.f1
      << " naive-on-projection mean F1=" << naive_f1_mean;
}

TEST_F(PipelineTest, StatsReflectWorkload) {
  HeraOptions opts;
  auto result = Hera(opts).Run(*dataset_);
  ASSERT_TRUE(result.ok());
  const HeraStats& st = result->stats;
  EXPECT_GT(st.index_size, 1000u);  // Plenty of similar value pairs.
  EXPECT_GT(st.merges, 100u);       // 250 records / 40 entities.
  EXPECT_GT(st.comparisons, 0u);
  EXPECT_LT(st.iterations, 50u);
}

TEST_F(PipelineTest, SuperRecordsAccumulateSourceInformation) {
  HeraOptions opts;
  auto result = Hera(opts).Run(*dataset_);
  ASSERT_TRUE(result.ok());
  // At least one super record must have absorbed records from more
  // than one source schema (the point of heterogeneous ER).
  bool found_cross_schema = false;
  for (const auto& [rid, sr] : result->super_records) {
    (void)rid;
    std::set<uint32_t> schemas;
    for (uint32_t member : sr.members()) {
      schemas.insert(dataset_->record(member).schema_id());
    }
    if (schemas.size() >= 2) {
      found_cross_schema = true;
      break;
    }
  }
  EXPECT_TRUE(found_cross_schema);
}

TEST_F(PipelineTest, SchemaVotingDiscoversTrueMatchings) {
  HeraOptions opts;
  opts.enable_schema_voting = true;
  auto result = Hera(opts).Run(*dataset_);
  ASSERT_TRUE(result.ok());
  // With hundreds of merges, the vote must have promoted some
  // cross-schema attribute matchings.
  EXPECT_GT(result->stats.decided_schema_matchings, 0u);
}

TEST_F(PipelineTest, RSwooshOnProjectionRuns) {
  ExchangeResult projected = ExchangeToTargetSchema(*dataset_, 1.0 / 3.0, 7);
  auto metric = MakeSimilarity("jaccard_q2");
  auto labels = RSwoosh(projected.dataset, *metric, {0.5, 0.5});
  ASSERT_EQ(labels.size(), dataset_->size());
  PairMetrics m = EvaluatePairs(labels, dataset_->entity_of());
  EXPECT_GT(m.f1, 0.0);
}

}  // namespace
}  // namespace hera
